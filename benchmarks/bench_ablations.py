"""Ablation benches: the design choices DESIGN.md calls out, asserted.

Full tables: ``python -m repro.bench ablation_{chunk,dict,threshold,predictor,lz}``.
"""

import numpy as np
import pytest

import repro
from repro.core.config import CompressorConfig


@pytest.fixture(scope="module")
def cesm_ps(cesm_dense):
    return cesm_dense


class TestChunkAblation:
    def test_metadata_overhead_monotone_decreasing(self, cesm_ps):
        sizes = []
        for chunk in (256, 1024, 4096, 16384):
            res = repro.compress(cesm_ps, eb=1e-3, huffman_chunk=chunk, workflow="huffman")
            sizes.append(res.section_sizes["q.cbits"])
        assert sizes == sorted(sizes, reverse=True)

    def test_default_chunk_overhead_below_one_percent(self, cesm_ps):
        res = repro.compress(cesm_ps, eb=1e-3, workflow="huffman")
        assert res.section_sizes["q.cbits"] < 0.01 * res.compressed_bytes

    def test_all_chunk_sizes_roundtrip(self, cesm_ps):
        for chunk in (64, 1024, 65536):
            res = repro.compress(cesm_ps, eb=1e-3, huffman_chunk=chunk)
            out = repro.decompress(res.archive)
            assert np.abs(cesm_ps - out).max() <= res.eb_abs


class TestDictAblation:
    def test_outliers_monotone_in_dict_size(self, hacc_field):
        counts = []
        for dict_size in (64, 256, 1024, 4096):
            res = repro.compress(hacc_field, eb=1e-4, dict_size=dict_size,
                                 workflow="huffman")
            counts.append(res.n_outliers)
        assert counts == sorted(counts, reverse=True)

    def test_codebook_cost_scales_with_dict(self, cesm_ps):
        small = repro.compress(cesm_ps, eb=1e-3, dict_size=256, workflow="huffman")
        large = repro.compress(cesm_ps, eb=1e-3, dict_size=4096, workflow="huffman")
        assert large.section_sizes["q.cb"] == 16 * small.section_sizes["q.cb"]


class TestThresholdAblation:
    def test_rule_threshold_is_a_knee(self, cesm_sparse):
        """Below ~1.05 the sparse field misses the RLE path; at the paper's
        1.09 it switches; far above, nothing more changes."""
        picks = {}
        for thr in (0.5, 1.09, 3.0):
            res = repro.compress(cesm_sparse, eb=1e-2, rle_bitlen_threshold=thr)
            picks[thr] = res.workflow
        assert picks[1.09] != "huffman"
        assert picks[3.0] != "huffman"

    def test_bench_threshold_sweep(self, benchmark, cesm_sparse):
        def sweep():
            return [
                repro.compress(cesm_sparse, eb=1e-2, rle_bitlen_threshold=t).workflow
                for t in (1.0, 1.09, 1.5)
            ]

        out = benchmark(sweep)
        assert len(out) == 3


class TestPredictorAblation:
    def test_lorenzo_default_wins_on_science_fields(self, nyx_field):
        cr = {
            p: repro.compress(nyx_field, eb=1e-3, predictor=p).compression_ratio
            for p in ("lorenzo", "regression")
        }
        assert cr["lorenzo"] > cr["regression"]

    def test_bench_regression_predictor(self, benchmark, cesm_dense):
        res = benchmark(
            repro.compress, cesm_dense, eb=1e-3, predictor="regression"
        )
        assert res.predictor == "regression"


class TestLzAblation:
    def test_lz_stage_gains_on_smooth(self, cesm_sparse):
        plain = repro.compress(cesm_sparse, eb=1e-2, workflow="huffman")
        lz = repro.compress(cesm_sparse, eb=1e-2, workflow="huffman+lz")
        assert lz.compression_ratio > 1.3 * plain.compression_ratio

    def test_bench_lz_stage(self, benchmark, cesm_dense):
        res = benchmark(repro.compress, cesm_dense, eb=1e-2, workflow="huffman+lz")
        assert res.compression_ratio > 1.0
