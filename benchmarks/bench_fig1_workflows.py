"""Fig. 1: the adaptive two-path workflow.

The figure's computational content is the compressibility-aware dispatch:
path "a" (Huffman) vs path "b" (RLE) chosen from the histogram without
building a Huffman tree.  Diagram: ``python -m repro.bench fig1``.
"""

import numpy as np

import repro
from repro.core.config import CompressorConfig
from repro.core.dual_quant import quantize_field
from repro.core.selector import select_workflow
from repro.encoding.histogram import histogram


def test_adaptive_picks_rle_path_on_sparse(cesm_sparse):
    res = repro.compress(cesm_sparse, eb=1e-2)
    assert res.workflow == "rle+vle"


def test_adaptive_picks_huffman_path_on_rough(hacc_field):
    res = repro.compress(hacc_field, eb=1e-4)
    assert res.workflow == "huffman"


def test_adaptive_never_much_worse_than_rule_alternatives(cesm_sparse, cesm_dense):
    """The selector's pick is within 10% of the best of the two paths the
    paper's rule decides between (Huffman vs raw-RLE economics).

    Note: this repo's RLE+VLE compresses run metadata more aggressively than
    the paper's, so on some Huffman-classified fields forcing ``rle+vle``
    can still win -- outside the rule's decision model by design.
    """
    for data in (cesm_sparse, cesm_dense):
        best = max(
            repro.compress(data, eb=1e-2, workflow=w).compression_ratio
            for w in ("huffman", "rle")
        )
        auto = repro.compress(data, eb=1e-2).compression_ratio
        assert auto > 0.9 * best


def test_selector_threshold_consistency(cesm_sparse):
    """When the decision fires via the 1.09 rule, the bound estimate agrees."""
    config = CompressorConfig(eb=1e-2)
    bundle, _ = quantize_field(cesm_sparse, config)
    diag = select_workflow(bundle.quant, histogram(bundle.quant, 1024), config)
    if "<=" in diag.reason and "1.09" in diag.reason:
        assert diag.bitlen_lower <= config.rle_bitlen_threshold


def test_bench_selector_overhead(benchmark, cesm_sparse):
    """Selection must be cheap relative to encoding (no tree build)."""
    config = CompressorConfig(eb=1e-2)
    bundle, _ = quantize_field(cesm_sparse, config)
    freqs = histogram(bundle.quant, 1024)
    diag = benchmark(select_workflow, bundle.quant, freqs, config)
    assert diag.decision in ("huffman", "rle", "rle+vle")
