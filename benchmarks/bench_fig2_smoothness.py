"""Fig. 2: madogram/smoothness estimation and the RLE decision signals.

Full figures: ``python -m repro.bench fig2a`` / ``fig2b``.
"""

import numpy as np

from repro.analysis.variogram import empirical_variogram, smoothness
from repro.core.config import CompressorConfig
from repro.core.dual_quant import postquantize, prequantize


def _quant_codes(data, eb_rel=1e-2):
    config = CompressorConfig(eb=eb_rel)
    eb_abs = config.absolute_bound(float(data.max() - data.min()))
    dq = prequantize(data, eb_abs)
    quant, _, _ = postquantize(dq, config.chunks_for(data.ndim), config.dict_size)
    return dq, quant.astype(np.int64) - config.radius


def test_quant_codes_smoother_than_prequant(cesm_sparse):
    """Fig. 2a's core observation."""
    dq, q = _quant_codes(cesm_sparse)
    v_pre = empirical_variogram(dq, kind="absolute", n_samples=30_000).mean()
    v_q = empirical_variogram(q, kind="absolute", n_samples=30_000).mean()
    assert v_q < v_pre


def test_binary_variance_distance_stationary(cesm_sparse):
    """Fig. 2a right panel: roughness is ~flat in encoding distance."""
    _, q = _quant_codes(cesm_sparse)
    v = empirical_variogram(q, kind="binary", n_samples=60_000)
    # Over distances 10..200 the variation around the mean stays small.
    tail = v.values[10:]
    assert float(np.std(tail)) < 0.15 * max(float(np.mean(tail)), 1e-9) + 0.02


def test_smoothness_orders_rle_friendliness(cesm_sparse, cesm_dense):
    """Fig. 2b: smoother quant-codes <-> higher RLE ratio."""
    _, q_sparse = _quant_codes(cesm_sparse)
    _, q_dense = _quant_codes(cesm_dense)
    assert smoothness(q_sparse) > smoothness(q_dense)


def test_bench_variogram_sampling(benchmark, cesm_sparse):
    _, q = _quant_codes(cesm_sparse)
    result = benchmark(empirical_variogram, q, "binary", 200, 50_000, 0)
    assert 0.0 <= result.mean() <= 1.0
