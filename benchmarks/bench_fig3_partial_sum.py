"""Fig. 3: the partial-sum <-> Lorenzo reconstruction equivalence.

The figure is a proof sketch; its computational content is that N passes of
1-D inclusive scans reconstruct exactly what the sequential recursion does,
in any axis order.  Demonstration: ``python -m repro.bench fig3``.
"""

import numpy as np
import pytest

from repro.core.lorenzo import (
    chunked_cumsum,
    lorenzo_construct,
    lorenzo_reconstruct,
    lorenzo_reconstruct_sequential,
)


def test_two_pass_cumsum_is_lorenzo_2d():
    rng = np.random.default_rng(0)
    q = rng.integers(-4, 5, (32, 48)).astype(np.int64)
    two_pass = np.cumsum(np.cumsum(q, axis=1), axis=0)
    seq = lorenzo_reconstruct_sequential(q, (32, 48))
    np.testing.assert_array_equal(two_pass, seq)


def test_axis_order_irrelevant_3d():
    rng = np.random.default_rng(1)
    q = rng.integers(-4, 5, (12, 10, 8)).astype(np.int64)
    orders = [(0, 1, 2), (2, 1, 0), (1, 0, 2)]
    results = []
    for order in orders:
        acc = q
        for axis in order:
            acc = chunked_cumsum(acc, axis, q.shape[axis])
        results.append(acc)
    np.testing.assert_array_equal(results[0], results[1])
    np.testing.assert_array_equal(results[0], results[2])


@pytest.mark.parametrize("shape,chunks", [((512, 512), (16, 16)), ((64, 64, 64), (8, 8, 8))])
def test_bench_construct_reconstruct_cycle(benchmark, shape, chunks):
    """Wall time of a full integer construct+reconstruct cycle."""
    rng = np.random.default_rng(2)
    x = rng.integers(-1000, 1000, shape).astype(np.int64)

    def cycle():
        return lorenzo_reconstruct(lorenzo_construct(x, chunks), chunks)

    out = benchmark(cycle)
    np.testing.assert_array_equal(out, x)
