"""Table I: reference ratios qg/qh/qhg and their orderings.

Full table: ``python -m repro.bench table1``.
"""

import pytest

from repro.baselines import reference_ratios
from repro.core.config import CompressorConfig


def test_qhg_ordering_holds(cesm_dense, config_1e2):
    """qhg (Huffman+gzip) always >= qh; gzip can only help."""
    rr = reference_ratios(cesm_dense, config_1e2)
    assert rr.qhg >= rr.qh * 0.98


def test_coarse_bound_gzip_gain_larger(cesm_dense):
    """Table I's diagonal: the qh->qhg gain shrinks as the bound tightens."""
    gain_coarse = _gain(cesm_dense, 1e-2)
    gain_tight = _gain(cesm_dense, 1e-4)
    assert gain_coarse > gain_tight


def _gain(data, eb):
    rr = reference_ratios(data, CompressorConfig(eb=eb))
    return rr.qhg / rr.qh


def test_qg_crossover(hacc_field):
    """qg beats qh at coarse bounds, loses at tight bounds (Table I HACC)."""
    coarse = reference_ratios(hacc_field, CompressorConfig(eb=1e-2))
    tight = reference_ratios(hacc_field, CompressorConfig(eb=1e-4))
    assert coarse.qg > coarse.qh
    assert tight.qg < tight.qh


@pytest.mark.parametrize("eb", [1e-2, 1e-4])
def test_bench_reference_ratios(benchmark, cesm_dense, eb):
    config = CompressorConfig(eb=eb)
    rr = benchmark(reference_ratios, cesm_dense, config)
    assert rr.qh > 1.0
