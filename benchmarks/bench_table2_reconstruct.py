"""Table II: fine-grained partial-sum reconstruction vs baselines.

Wall-time benchmarks of the real vectorized reconstruction plus the
simulated-GPU shape assertions.  Full table: ``python -m repro.bench table2``.
"""

import numpy as np
import pytest

from repro.core.config import CompressorConfig
from repro.core.dual_quant import quantize_field
from repro.core.lorenzo import lorenzo_reconstruct, lorenzo_reconstruct_sequential
from repro.gpu.costmodel import CostModel
from repro.gpu.device import A100, V100
from repro.kernels.lorenzo_kernels import lorenzo_reconstruct_kernel


@pytest.mark.parametrize("shape,chunks", [
    ((1 << 16,), (256,)),
    ((256, 256), (16, 16)),
    ((40, 40, 40), (8, 8, 8)),
])
def test_bench_partial_sum_reconstruct(benchmark, shape, chunks):
    """Wall time of the N-pass segmented-scan reconstruction."""
    rng = np.random.default_rng(0)
    delta = rng.integers(-5, 6, shape).astype(np.int64)
    out = benchmark(lorenzo_reconstruct, delta, chunks)
    assert out.shape == shape


def test_vectorized_beats_sequential_walltime():
    """The partial-sum formulation is orders of magnitude faster than the
    per-element recursion even on CPU -- the same algorithmic story as the
    paper's 16.8 -> 313 GB/s."""
    import time

    rng = np.random.default_rng(1)
    delta = rng.integers(-5, 6, (64, 64)).astype(np.int64)
    t0 = time.perf_counter()
    seq = lorenzo_reconstruct_sequential(delta, (16, 16))
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    vec = lorenzo_reconstruct(delta, (16, 16))
    t_vec = time.perf_counter() - t0
    np.testing.assert_array_equal(seq, vec)
    assert t_vec < t_seq / 10


@pytest.mark.parametrize("dim_shape", [((1 << 16,),), ((192, 192),), ((32, 32, 32),)])
def test_simulated_variant_ordering(dim_shape):
    """coarse << naive < optimized on V100, as in Table II."""
    rng = np.random.default_rng(2)
    data = rng.normal(size=dim_shape[0]).astype(np.float32)
    bundle, _ = quantize_field(data, CompressorConfig(eb=1e-3))
    model = CostModel(V100)
    n_sim = 200_000_000 if data.ndim == 1 else 6_000_000 if data.ndim == 2 else 130_000_000
    gbps = {}
    for variant in ("coarse", "naive", "optimized"):
        _, prof = lorenzo_reconstruct_kernel(bundle, variant=variant, n_sim=n_sim)
        gbps[variant] = model.time(prof).gbps
    assert gbps["coarse"] * 3 < gbps["naive"] <= gbps["optimized"] * 1.25
    assert gbps["optimized"] > gbps["coarse"] * 4


def test_optimized_scales_with_bandwidth():
    """A100/V100 advantage of the optimized kernel ~ bandwidth ratio."""
    rng = np.random.default_rng(3)
    data = rng.normal(size=(64, 64, 64)).astype(np.float32)
    bundle, _ = quantize_field(data, CompressorConfig(eb=1e-3))
    out_v, prof_v = lorenzo_reconstruct_kernel(bundle, variant="optimized", n_sim=130_000_000)
    gv = CostModel(V100).time(prof_v).gbps
    ga = CostModel(A100).time(prof_v).gbps
    assert 1.4 < ga / gv < 1.85
