"""Table IV: Workflow-RLE vs Workflow-Huffman compression ratios.

Full 35-field table: ``python -m repro.bench table4``.
"""

import pytest

import repro
from repro.data.datasets import TABLE4_CESM_TARGETS, get_dataset


def test_rle_vle_beats_huffman_on_sparse_field(cesm_sparse):
    """The FSDSC row: RLE path exceeds the Huffman 32x ceiling."""
    r_h = repro.compress(cesm_sparse, eb=1e-2, workflow="huffman")
    r_rv = repro.compress(cesm_sparse, eb=1e-2, workflow="rle+vle")
    assert r_rv.compression_ratio > r_h.compression_ratio
    assert r_h.compression_ratio < 32.0
    assert r_rv.compression_ratio > 32.0


def test_raw_rle_loses_on_dense_field(cesm_dense):
    """The PS row: raw RLE alone loses to Huffman on low-run fields."""
    r_h = repro.compress(cesm_dense, eb=1e-2, workflow="huffman")
    r_r = repro.compress(cesm_dense, eb=1e-2, workflow="rle")
    assert r_r.compression_ratio < r_h.compression_ratio


def test_vle_stage_adds_steady_gain(cesm_sparse):
    """Paper: 'additional VLE after RLE provides a steady 2-3x more CR'."""
    r_r = repro.compress(cesm_sparse, eb=1e-2, workflow="rle")
    r_rv = repro.compress(cesm_sparse, eb=1e-2, workflow="rle+vle")
    assert r_rv.compression_ratio / r_r.compression_ratio > 2.0


def test_rle_ratio_ordering_tracks_paper():
    """Measured RLE ratios preserve the paper's field ordering (top vs
    bottom quartile of Table IV's RLE column)."""
    ds = get_dataset("CESM")
    ordered = sorted(TABLE4_CESM_TARGETS, key=lambda k: TABLE4_CESM_TARGETS[k][2])
    low_names, high_names = ordered[:5], ordered[-5:]
    low = [
        repro.compress(ds.field(n).data, eb=1e-2, workflow="rle").compression_ratio
        for n in low_names
    ]
    high = [
        repro.compress(ds.field(n).data, eb=1e-2, workflow="rle").compression_ratio
        for n in high_names
    ]
    assert max(low) < min(high) * 1.5
    assert sum(high) / len(high) > 2 * sum(low) / len(low)


@pytest.mark.parametrize("workflow", ["huffman", "rle", "rle+vle"])
def test_bench_workflow_compress(benchmark, cesm_sparse, workflow):
    res = benchmark(repro.compress, cesm_sparse, eb=1e-2, workflow=workflow)
    assert res.compression_ratio > 1.0
