"""Table V: Workflow-RLE throughput vs Workflow-Huffman.

Full table: ``python -m repro.bench table5``.
"""

import numpy as np

from repro.core.config import CompressorConfig
from repro.encoding.histogram import histogram
from repro.encoding.huffman import build_codebook
from repro.encoding.huffman_codec import encode as huff_encode
from repro.encoding.rle import rle_encode
from repro.gpu import get_device, run_compression


def _quant(nyx_field):
    from repro.core.dual_quant import quantize_field

    bundle, _ = quantize_field(nyx_field, CompressorConfig(eb=1e-2))
    return bundle.quant.reshape(-1)


def test_bench_rle_stage(benchmark, nyx_field):
    q = _quant(nyx_field)
    rle = benchmark(rle_encode, q)
    assert rle.n_runs < q.size


def test_bench_huffman_stage(benchmark, nyx_field):
    q = _quant(nyx_field)
    freqs = histogram(q, 1024)
    book = build_codebook(freqs)
    enc = benchmark(huff_encode, q, book, 4096)
    assert enc.total_bits > 0


def test_rle_workflow_keeps_comparable_throughput(nyx_field):
    """Paper's point: Workflow-RLE maintains comparable overall throughput
    while far exceeding Huffman's compression ratio."""
    config = CompressorConfig(eb=1e-2)
    device = get_device("V100")
    _, rep_rle = run_compression(
        nyx_field, config, device, workflow="rle", n_sim=134_217_728
    )
    _, rep_huf = run_compression(
        nyx_field, config, device, workflow="huffman", n_sim=134_217_728
    )
    assert rep_rle.overall_gbps > 0.8 * rep_huf.overall_gbps


def test_rle_simulated_throughput_near_paper(nyx_field):
    """thrust::reduce_by_key-style RLE lands in the paper's 100-165 GB/s."""
    config = CompressorConfig(eb=1e-2)
    _, rep = run_compression(
        nyx_field, config, get_device("V100"), workflow="rle", n_sim=134_217_728
    )
    assert 90.0 < rep.stage("rle").gbps < 220.0
