"""Table VI: optimized kernel throughput vs original cuSZ on V100.

Full table: ``python -m repro.bench table6``.
"""

import numpy as np
import pytest

from repro.core.config import CompressorConfig
from repro.core.dual_quant import quantize_field
from repro.gpu.costmodel import CostModel
from repro.gpu.device import V100
from repro.kernels.huffman_kernels import huffman_encode_kernel
from repro.kernels.lorenzo_kernels import lorenzo_construct_kernel, lorenzo_reconstruct_kernel


@pytest.fixture(scope="module")
def model():
    return CostModel(V100)


def test_construct_faster_than_cusz(nyx_field, model):
    config = CompressorConfig(eb=1e-4)
    gbps = {}
    for impl in ("cusz", "cuszplus"):
        _, _, prof = lorenzo_construct_kernel(nyx_field, config, impl=impl, n_sim=134_217_728)
        gbps[impl] = model.time(prof).gbps
    # Paper Table VI: 1.09x-1.57x improvement.
    assert 1.05 < gbps["cuszplus"] / gbps["cusz"] < 1.8


def test_encode_gain_grows_with_compressibility(model, nyx_field, hacc_field):
    """Store-reduction helps more when data compresses better (1.08x HACC
    vs ~2x on smoother datasets)."""
    config = CompressorConfig(eb=1e-4)
    gains = {}
    for name, data in (("smooth", nyx_field), ("rough", hacc_field)):
        bundle, _ = quantize_field(data, config)
        per_impl = {}
        for impl in ("cusz", "cuszplus"):
            _, _, prof = huffman_encode_kernel(
                bundle.quant, config, impl=impl, n_sim=134_217_728
            )
            per_impl[impl] = model.time(prof).gbps
        gains[name] = per_impl["cuszplus"] / per_impl["cusz"]
    assert gains["smooth"] > gains["rough"] >= 0.9


def test_reconstruct_speedup_largest_in_1d(model, hacc_field, nyx_field):
    """Table VI: 18.6x on 1-D HACC vs 4-8x on 2-D/3-D."""
    config = CompressorConfig(eb=1e-4)

    def speedup(data, n_sim):
        bundle, _ = quantize_field(data, config)
        _, coarse = lorenzo_reconstruct_kernel(bundle, variant="coarse", n_sim=n_sim)
        _, opt = lorenzo_reconstruct_kernel(bundle, variant="optimized", n_sim=n_sim)
        return model.time(opt).gbps / model.time(coarse).gbps

    s1 = speedup(hacc_field, 280_953_867)
    s3 = speedup(nyx_field, 134_217_728)
    assert s1 > 10.0
    assert 3.0 < s3 < s1


def test_bench_construct_kernel_walltime(benchmark, nyx_field):
    config = CompressorConfig(eb=1e-4)
    bundle, _, _ = benchmark(lorenzo_construct_kernel, nyx_field, config)
    assert bundle.quant.shape == nyx_field.shape
