"""Table VII: full pipeline breakdown on V100 and A100.

Full table: ``python -m repro.bench table7``.
"""

import numpy as np
import pytest

import repro
from repro.core.config import CompressorConfig
from repro.gpu import get_device, run_compression, run_decompression

N_SIM = 134_217_728  # Nyx paper size


@pytest.fixture(scope="module")
def reports(nyx_field):
    config = CompressorConfig(eb=1e-4)
    out = {}
    for dev in ("V100", "A100"):
        art, comp = run_compression(
            nyx_field, config, get_device(dev), impl="cuszplus", n_sim=N_SIM
        )
        recon, dec = run_decompression(
            art, config, get_device(dev), impl="cuszplus", n_sim=N_SIM
        )
        out[dev] = (comp, dec, recon, art)
    return out


def test_roundtrip_correct(reports, nyx_field):
    _, _, recon, art = reports["V100"]
    assert np.abs(nyx_field.astype(np.float64) - recon.astype(np.float64)).max() <= art.eb_abs


def test_memory_bound_kernels_scale_with_bandwidth(reports):
    """lorenzo construct/reconstruct gain ~1.5-1.8x on A100 (1.73x BW)."""
    for stage in ("lorenzo_construct", "lorenzo_reconstruct"):
        v = _stage(reports, "V100", stage)
        a = _stage(reports, "A100", stage)
        assert 1.35 < a / v < 1.9, stage


def test_huffman_decode_stagnates(reports):
    """Serial-bound decode scales only ~1.24x (SM x clock ratio)."""
    v = _stage(reports, "V100", "huffman_decode")
    a = _stage(reports, "A100", "huffman_decode")
    assert 1.05 < a / v < 1.4


def test_decode_scaling_below_memory_scaling(reports):
    dec_ratio = _stage(reports, "A100", "huffman_decode") / _stage(
        reports, "V100", "huffman_decode"
    )
    mem_ratio = _stage(reports, "A100", "lorenzo_construct") / _stage(
        reports, "V100", "lorenzo_construct"
    )
    assert dec_ratio < mem_ratio


def test_overall_in_paper_regime(reports):
    comp_v, dec_v = reports["V100"][0], reports["V100"][1]
    assert 25.0 < comp_v.overall_gbps < 90.0
    assert 20.0 < dec_v.overall_gbps < 90.0


def test_encode_is_compression_bottleneck(reports):
    """Paper footnote 5: Huffman encoding dominates compression time."""
    comp_v = reports["V100"][0]
    encode_t = next(s.seconds for s in comp_v.stages if s.name.startswith("huffman_encode"))
    assert encode_t > 0.4 * comp_v.total_seconds


def _stage(reports, dev, name):
    rep = reports[dev][0] if name != "huffman_decode" and "reconstruct" not in name else None
    comp, dec, _, _ = reports[dev]
    source = dec if name in ("huffman_decode", "scatter_outlier", "lorenzo_reconstruct") else comp
    return source.stage(name).gbps


def test_bench_full_compress_walltime(benchmark, nyx_field):
    res = benchmark(repro.compress, nyx_field, eb=1e-4)
    assert res.compression_ratio > 1.0


def test_bench_full_decompress_walltime(benchmark, nyx_field):
    res = repro.compress(nyx_field, eb=1e-4)
    out = benchmark(repro.decompress, res.archive)
    assert out.shape == nyx_field.shape
