#!/usr/bin/env python
"""Autotuning the error bound for quality or storage targets.

Practitioners ask "give me at least 85 dB" or "make it fit 20:1"; the
bound that achieves either is data-dependent.  This example tunes both
ways on a Hurricane-like field and cross-checks the results, then shows
the point-wise-relative mode for a field whose values span ten decades.

Run:  python examples/autotune_bounds.py
"""

import numpy as np

import repro
from repro.analysis.autotune import tune_for_psnr, tune_for_ratio
from repro.analysis.metrics import psnr
from repro.data import get_dataset

field = get_dataset("Hurricane").field("TCf48").data
print(f"field: Hurricane/TCf48 {field.shape}\n")

# --- target a PSNR ----------------------------------------------------------
for target_db in (70.0, 85.0, 100.0):
    result = tune_for_psnr(field, target_db)
    print(
        f"PSNR ≥ {target_db:5.1f} dB  ->  eb = {result.eb:.3e}  "
        f"(achieved {result.achieved:.1f} dB in {result.evaluations} evaluations)"
    )

# --- target a compression ratio ---------------------------------------------
print()
for target_cr in (8.0, 15.0, 30.0):
    result = tune_for_ratio(field, target_cr)
    status = "ok" if result.satisfied else "UNREACHABLE"
    print(
        f"CR ≥ {target_cr:5.1f}x  ->  eb = {result.eb:.3e}  "
        f"(achieved {result.achieved:.1f}x, {status})"
    )

# --- point-wise relative bounds for high dynamic range -----------------------
print()
from repro.data.synthetic import smooth_field

rng = np.random.default_rng(0)
wide = (10.0 ** (3.5 * smooth_field((256, 256), 6.0, rng))).astype(np.float32)
res = repro.compress(wide, eb=1e-3, mode="pwrel")
out = repro.decompress(res.archive)
rel = np.abs(out.astype(np.float64) - wide) / np.abs(wide)
print(
    f"pwrel 1e-3 on a 10-decade field: CR {res.compression_ratio:.1f}x, "
    f"max relative error {rel.max():.2e} (every value keeps 3 digits)"
)
plain = repro.compress(wide, eb=1e-3)
out_plain = repro.decompress(plain.archive)
small = wide < 1.0
print(
    f"range-relative 1e-3 on the same field: CR {plain.compression_ratio:.1f}x, "
    f"but PSNR of values < 1.0 is "
    f"{psnr(wide[small], out_plain[small]):.1f} dB (they quantize to zero)"
)
