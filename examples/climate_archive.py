#!/usr/bin/env python
"""Adaptive archiving of a multi-field climate dataset (CESM-like).

Demonstrates the compressibility-aware workflow selection of cuSZ+
(Section III): each field's quant-code histogram decides between
Workflow-Huffman and Workflow-RLE, and the choice is reported per field.

Run:  python examples/climate_archive.py
"""

import numpy as np

import repro
from repro.data import get_dataset

EB = 1e-2  # relative error bound, the regime where RLE shines

ds = get_dataset("CESM")
print(f"dataset: {ds.name} — {ds.description}")
print(f"fields : {len(ds.field_names)}, error bound: {EB:g} (relative)\n")

total_in = 0
total_out = 0
rle_count = 0
rows = []
for name in ds.field_names[:12]:  # first dozen fields for a quick demo
    field = ds.field(name)
    result = repro.compress(field.data, eb=EB)
    total_in += result.original_bytes
    total_out += result.compressed_bytes
    if result.workflow != "huffman":
        rle_count += 1
    d = result.diagnostics
    rows.append(
        f"{name:10} {result.workflow:8} CR {result.compression_ratio:8.1f}x   "
        f"p1={d.p1:.3f}  ⟨b⟩∈[{d.bitlen_lower:.2f},{d.bitlen_upper:.2f}]"
    )
    # Round-trip spot check.
    restored = repro.decompress(result.archive)
    assert np.abs(field.data - restored).max() <= result.eb_abs

print("\n".join(rows))
print(
    f"\narchive total: {total_in / 1e6:.1f} MB -> {total_out / 1e6:.2f} MB "
    f"({total_in / total_out:.1f}x); RLE chosen on {rle_count} fields"
)
