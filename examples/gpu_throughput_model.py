#!/usr/bin/env python
"""Predict GPU pipeline throughput for your field with the device simulator.

Runs the full cuSZ+ pipeline (real computation) on a field and reports the
per-kernel throughput breakdown the calibrated V100/A100 cost model predicts
-- the same machinery that regenerates the paper's Table VII.

Run:  python examples/gpu_throughput_model.py
"""

import numpy as np

from repro.core.config import CompressorConfig
from repro.data import get_dataset
from repro.gpu import get_device, run_compression, run_decompression

config = CompressorConfig(eb=1e-4)
field = get_dataset("Nyx").example_field()
print(
    f"field: {field.dataset}/{field.name}, executed at {field.shape}, "
    f"profiled at the paper-scale {field.paper_shape} "
    f"({field.paper_bytes / 1e6:.0f} MB)\n"
)

for dev_name in ("V100", "A100"):
    device = get_device(dev_name)
    art, comp = run_compression(
        field.data, config, device, impl="cuszplus", n_sim=field.paper_elements
    )
    out, dec = run_decompression(
        art, config, device, impl="cuszplus", n_sim=field.paper_elements
    )
    assert np.abs(field.data - out).max() <= art.eb_abs

    print(f"--- {device.name} ({device.mem_bw / 1e9:.0f} GB/s HBM) ---")
    for stage in comp.stages + dec.stages:
        print(f"  {stage.name:30} {stage.gbps:8.1f} GB/s  ({stage.bound}-bound)")
    print(f"  {'overall compress':30} {comp.overall_gbps:8.1f} GB/s")
    print(f"  {'overall decompress':30} {dec.overall_gbps:8.1f} GB/s\n")

print(
    "Note: memory-bound kernels scale with the 1.73x bandwidth ratio, the\n"
    "serial-bound Huffman decode only with the 1.24x SMxclock ratio — the\n"
    "paper's Section V-C scaling observation."
)
