#!/usr/bin/env python
"""In-situ compression of a running simulation (the paper's motivating use).

A 2-D damped wave equation is stepped explicitly; every few steps the state
is compressed in place of raw I/O.  The example tracks the accumulated
storage saving and verifies that every snapshot honors its error bound --
the "LCLS-II produces 250 GB/s, compress before you write" scenario of the
paper's introduction.

Run:  python examples/insitu_simulation.py
"""

import numpy as np

import repro
from repro.analysis.metrics import psnr

N = 384
STEPS = 60
DUMP_EVERY = 10
EB = 1e-3

rng = np.random.default_rng(0)

# Initial condition: a few Gaussian pulses.
xx, yy = np.meshgrid(np.arange(N), np.arange(N), indexing="ij")
u = np.zeros((N, N), dtype=np.float64)
for _ in range(4):
    cx, cy = rng.uniform(N * 0.2, N * 0.8, 2)
    u += np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / 200.0)
u_prev = u.copy()

raw_bytes = 0
packed_bytes = 0
snapshots = []

for step in range(1, STEPS + 1):
    # Damped wave: u_tt = c^2 lap(u) - k u_t  (explicit, periodic).
    lap = (
        np.roll(u, 1, 0) + np.roll(u, -1, 0) + np.roll(u, 1, 1) + np.roll(u, -1, 1)
        - 4 * u
    )
    u_next = 2 * u - u_prev + 0.2 * lap - 0.01 * (u - u_prev)
    u_prev, u = u, u_next

    if step % DUMP_EVERY == 0:
        frame = u.astype(np.float32)
        result = repro.compress(frame, eb=EB)
        restored = repro.decompress(result.archive)
        err_ok = np.abs(frame - restored).max() <= result.eb_abs
        raw_bytes += frame.nbytes
        packed_bytes += result.compressed_bytes
        snapshots.append(result)
        print(
            f"step {step:3d}: workflow={result.workflow:8} "
            f"CR={result.compression_ratio:7.1f}x  "
            f"PSNR={psnr(frame, restored):6.1f} dB  bound ok: {err_ok}"
        )
        assert err_ok

print(
    f"\n{len(snapshots)} snapshots: {raw_bytes / 1e6:.1f} MB raw -> "
    f"{packed_bytes / 1e6:.3f} MB compressed "
    f"({raw_bytes / packed_bytes:.1f}x overall)"
)

# --- temporal mode: exploit inter-snapshot redundancy ------------------------
from repro.core.config import CompressorConfig
from repro.core.temporal import TemporalCompressor, TemporalDecompressor

eb_abs = EB * 2.0  # absolute bound for the stream
tc = TemporalCompressor(CompressorConfig(eb=eb_abs, eb_mode="abs"))
td = TemporalDecompressor()
u = np.zeros((N, N), dtype=np.float64)
for _ in range(4):
    cx, cy = rng.uniform(N * 0.2, N * 0.8, 2)
    u += np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / 200.0)
u_prev = u.copy()
t_bytes = 0
t_raw = 0
kinds = []
for step in range(1, STEPS + 1):
    lap = (
        np.roll(u, 1, 0) + np.roll(u, -1, 0) + np.roll(u, 1, 1) + np.roll(u, -1, 1)
        - 4 * u
    )
    u_next = 2 * u - u_prev + 0.2 * lap - 0.01 * (u - u_prev)
    u_prev, u = u, u_next
    if step % 2 == 0:  # denser cadence: adjacent snapshots stay correlated
        frame = u.astype(np.float32)
        blob = tc.push(frame)
        restored2 = td.pull(blob)
        assert np.abs(frame - restored2).max() <= eb_abs * (1 + 1e-6)
        t_bytes += len(blob)
        t_raw += frame.nbytes
        kinds.append(tc.last_info.is_keyframe)

n_delta = sum(1 for k in kinds if not k)
print(
    f"temporal stream: {t_raw / 1e6:.1f} MB -> {t_bytes / 1e6:.3f} MB "
    f"({t_raw / t_bytes:.1f}x; {n_delta}/{len(kinds)} frames shipped as deltas --\n"
    "a fast-moving wavefront keeps falling back to keyframes, exactly the\n"
    "content-adaptive behaviour the delta/keyframe decision is for)"
)
