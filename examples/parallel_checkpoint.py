#!/usr/bin/env python
"""Parallel compressed checkpointing across simulated ranks.

Decomposes a global field into per-rank slabs, exchanges halos (the
communication skeleton a real code has), writes a collectively-compressed
checkpoint, restores it — including a single-rank partial restore — and
prices the dump against a parallel-file-system model (the paper's HACC
motivation: petabyte dumps vs PFS bandwidth).

Run:  python examples/parallel_checkpoint.py
"""

import numpy as np

from repro.core.config import CompressorConfig
from repro.parallel import (
    MIRA_CLASS_PFS,
    read_checkpoint,
    read_rank_slab,
    run_spmd,
    slab_bounds,
    slab_for_rank,
    write_checkpoint,
)
from repro.parallel.checkpoint import estimate_dump_cost
from repro.parallel.decomposition import exchange_slab_halos

N_RANKS = 8
EB = 1e-3

# A global simulation state (each rank would own only its slab in reality).
rng = np.random.default_rng(7)
x = np.linspace(0, 24, 512)
field = (np.sin(x)[:, None] * np.cos(x)[None, :] * 6 + rng.normal(0, 0.01, (512, 512))).astype(
    np.float32
)
config = CompressorConfig(eb=EB)


def step(comm):
    local = slab_for_rank(field, comm.size, comm.rank).copy()
    # One halo exchange, as a stencil step would do.
    lower, upper = exchange_slab_halos(comm, local)
    assert (lower is None) == (comm.rank == 0)
    assert (upper is None) == (comm.rank == comm.size - 1)
    # Collective compressed dump (root returns the container).
    return write_checkpoint(comm, local, config, global_rows=field.shape[0])


blobs = run_spmd(N_RANKS, step)
checkpoint = blobs[0]
print(f"{N_RANKS} ranks wrote a checkpoint of {len(checkpoint) / 1e3:.1f} kB "
      f"for {field.nbytes / 1e6:.1f} MB of state "
      f"({field.nbytes / len(checkpoint):.1f}x)")

# Full restore.
restored = read_checkpoint(checkpoint)
eb_abs = EB * float(field.max() - field.min())
assert np.abs(field - restored).max() <= eb_abs
print("full restore verified within the error bound")

# Partial restore: rank 3's slab only.
slab3 = read_rank_slab(checkpoint, 3)
start, stop = slab_bounds(field.shape[0], N_RANKS, 3)
assert np.abs(field[start:stop] - slab3).max() <= eb_abs
print(f"partial restore of rank 3 (rows {start}:{stop}) verified")

# Price the dump at scale on a Mira-class PFS.
per_rank_raw = [field.nbytes // N_RANKS] * 4096
per_rank_stored = [len(checkpoint) // N_RANKS] * 4096
raw, packed = estimate_dump_cost(per_rank_raw, per_rank_stored, MIRA_CLASS_PFS, 50.0)
print(
    f"\nat 4096 ranks on {MIRA_CLASS_PFS.name}: raw dump {raw.total_seconds:.2f}s, "
    f"compressed {packed.total_seconds:.3f}s "
    f"({raw.total_seconds / packed.total_seconds:.1f}x faster)"
)
