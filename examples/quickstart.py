#!/usr/bin/env python
"""Quickstart: compress a scientific field with an error bound, verify, restore.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.analysis.metrics import evaluate_quality

# --- make a scientific-looking field (or np.fromfile your own) -------------
rng = np.random.default_rng(42)
x = np.linspace(0, 6 * np.pi, 1200)
y = np.linspace(0, 4 * np.pi, 900)
field = (
    np.sin(y)[:, None] * np.cos(x)[None, :] * 10.0
    + rng.normal(0, 0.02, (900, 1200))
).astype(np.float32)

# --- compress with a relative error bound of 1e-3 ---------------------------
result = repro.compress(field, eb=1e-3, eb_mode="rel")

print(f"original        : {result.original_bytes / 1e6:.2f} MB")
print(f"compressed      : {result.compressed_bytes / 1e6:.3f} MB")
print(f"compression     : {result.compression_ratio:.1f}x")
print(f"workflow chosen : {result.workflow}  ({result.diagnostics.reason})")
print(f"absolute bound  : {result.eb_abs:.3e}")
print("section sizes   :", result.section_sizes)

# --- the archive is a plain bytes blob: store it anywhere --------------------
with open("/tmp/field.rpsz", "wb") as fh:
    fh.write(result.archive)

# --- decompress and verify the error bound ----------------------------------
restored = repro.decompress(open("/tmp/field.rpsz", "rb").read())
quality = evaluate_quality(field, restored, result.eb_abs)

print(f"max |error|     : {quality.max_error:.3e} (bound {result.eb_abs:.3e})")
print(f"bound satisfied : {quality.bound_satisfied}")
print(f"PSNR            : {quality.psnr_db:.1f} dB")
assert quality.bound_satisfied, "error bound must hold pointwise"
print("OK: pointwise error bound verified.")
