#!/usr/bin/env python
"""Rate-distortion study: error-bounded (cuSZ+) vs fixed-rate (ZFP-like).

Sweeps the error bound for the cuSZ+ pipeline and the rate for the ZFP-like
block-transform codec on the same field, printing (compression ratio, PSNR,
max error) pairs — the error-bounded-vs-fixed-rate contrast the paper draws
in its related-work section.

Run:  python examples/rate_distortion_study.py
"""

import numpy as np

import repro
from repro.analysis.metrics import max_abs_error, psnr
from repro.baselines import ZfpLike
from repro.data import get_dataset

field = get_dataset("Miranda").field("pressure")
data = field.data
print(f"field: {field.dataset}/{field.name} {data.shape}\n")

print("cuSZ+ (error-bounded):")
print(f"{'rel eb':>8} {'CR':>8} {'PSNR dB':>8} {'max err':>10} {'bounded?':>9}")
for eb in (1e-2, 1e-3, 1e-4, 1e-5):
    res = repro.compress(data, eb=eb)
    out = repro.decompress(res.archive)
    err = max_abs_error(data, out)
    print(
        f"{eb:>8g} {res.compression_ratio:>8.1f} {psnr(data, out):>8.1f} "
        f"{err:>10.2e} {str(err <= res.eb_abs):>9}"
    )

print("\nZFP-like (fixed-rate, no bound guarantee):")
print(f"{'bits':>8} {'CR':>8} {'PSNR dB':>8} {'max err':>10}")
for rate in (4, 8, 12, 16):
    codec = ZfpLike(rate_bits=rate)
    arch = codec.compress(data)
    out = codec.decompress(arch)
    print(
        f"{rate:>8} {arch.compression_ratio():>8.1f} {psnr(data, out):>8.1f} "
        f"{max_abs_error(data, out):>10.2e}"
    )

print(
    "\nThe fixed-rate codec's distortion varies with content — no pointwise\n"
    "guarantee — while the error-bounded path always satisfies |err| <= eb."
)
