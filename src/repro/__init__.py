"""repro — a reproduction of cuSZ+ (CLUSTER 2021).

Compressibility-aware, error-bounded lossy compression for scientific
floating-point data, with a simulated-GPU performance model reproducing the
paper's V100/A100 evaluation.

Quickstart
----------
>>> import numpy as np, repro
>>> field = np.random.default_rng(0).normal(size=(512, 512)).astype(np.float32)
>>> result = repro.compress(field, eb=1e-3)
>>> restored = repro.decompress(result.archive)
>>> assert np.abs(field - restored).max() <= result.eb_abs
"""

from . import telemetry
from .core.compressor import (
    CompressionResult,
    Compressor,
    DecompressionResult,
    compress,
    decompress,
    decompress_with_stats,
    sniff_container,
)
from .core.config import CompressorConfig, SelectorDiagnostics
from .core.integrity import IntegrityReport, verify_archive
from .core.pwrel import compress_pwrel
from .core.streaming import (
    StreamingCompressor,
    compress_blocks,
    decompress_blocks,
)
from .engine import CompressionEngine, default_jobs
from .core.errors import (
    ArchiveError,
    CodebookOverflowError,
    ConfigError,
    DeviceError,
    DimensionalityError,
    EncodingError,
    IntegrityError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "compress",
    "compress_pwrel",
    "compress_blocks",
    "decompress",
    "decompress_blocks",
    "decompress_with_stats",
    "sniff_container",
    "telemetry",
    "Compressor",
    "CompressionEngine",
    "default_jobs",
    "StreamingCompressor",
    "CompressorConfig",
    "CompressionResult",
    "DecompressionResult",
    "SelectorDiagnostics",
    "ReproError",
    "ConfigError",
    "EncodingError",
    "CodebookOverflowError",
    "ArchiveError",
    "IntegrityError",
    "IntegrityReport",
    "verify_archive",
    "DeviceError",
    "DimensionalityError",
    "__version__",
]
