"""Analysis utilities: entropy/redundancy bounds, variograms, quality metrics."""

from .entropy import bitlen_bounds, shannon_entropy
from .metrics import QualityMetrics, compression_ratio, evaluate_quality, psnr
from .variogram import empirical_variogram, smoothness

__all__ = [
    "shannon_entropy",
    "bitlen_bounds",
    "empirical_variogram",
    "smoothness",
    "QualityMetrics",
    "evaluate_quality",
    "psnr",
    "compression_ratio",
]
