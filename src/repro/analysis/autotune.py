"""Error-bound autotuning: meet a PSNR or compression-ratio target.

Practitioners rarely know the right error bound a priori; they know "I need
at least 85 dB" or "I must fit 10:1".  These helpers search the bound:

* PSNR is analytically tied to the bound -- uniform quantization error at
  absolute bound ``e`` over range ``R`` has PSNR ≈ -20 log10((e/R)/sqrt(3))
  -- so :func:`tune_for_psnr` starts from the closed form and refines with
  at most a couple of real compress/decompress evaluations.
* Compression ratio is monotone (not smooth) in the bound, so
  :func:`tune_for_ratio` brackets and bisects in log space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.compressor import compress, decompress
from ..core.config import CompressorConfig
from ..core.errors import ConfigError
from .metrics import psnr

__all__ = ["TuneResult", "tune_for_psnr", "tune_for_ratio"]


@dataclass(frozen=True)
class TuneResult:
    """Outcome of a bound search."""

    eb: float  # relative bound found
    achieved: float  # achieved PSNR (dB) or ratio
    target: float
    evaluations: int
    satisfied: bool

    def config(self, **kwargs) -> CompressorConfig:
        return CompressorConfig(eb=self.eb, eb_mode="rel", **kwargs)


def _measure_psnr(data: np.ndarray, eb: float) -> float:
    res = compress(data, eb=eb)
    return psnr(data, decompress(res.archive))


def tune_for_psnr(
    data: np.ndarray,
    target_db: float,
    tolerance_db: float = 0.5,
    max_evals: int = 8,
) -> TuneResult:
    """Find the loosest relative bound achieving at least ``target_db`` PSNR."""
    if not 10.0 <= target_db <= 180.0:
        raise ConfigError(f"PSNR target must be in 10..180 dB, got {target_db}")
    data = np.asarray(data)
    # Closed form: NRMSE of uniform error at rel bound e is e/sqrt(3).
    eb = float(np.sqrt(3.0) * 10 ** (-target_db / 20.0))
    evals = 0
    achieved = _measure_psnr(data, eb)
    evals += 1
    # Refine: quantization on structured data is usually slightly better
    # than the uniform model, so widen while we exceed the target; tighten
    # if we undershoot.
    while achieved < target_db and evals < max_evals:
        eb /= 2.0
        achieved = _measure_psnr(data, eb)
        evals += 1
    while achieved > target_db + 6.0 and evals < max_evals:
        wider = eb * 2.0
        candidate = _measure_psnr(data, wider)
        evals += 1
        if candidate < target_db:
            break
        eb, achieved = wider, candidate
    return TuneResult(
        eb=eb, achieved=achieved, target=target_db, evaluations=evals,
        satisfied=achieved >= target_db - tolerance_db,
    )


def tune_for_ratio(
    data: np.ndarray,
    target_ratio: float,
    tolerance: float = 0.1,
    max_evals: int = 16,
    eb_min: float = 1e-7,
    eb_max: float = 1e-1,
) -> TuneResult:
    """Find the tightest relative bound achieving at least ``target_ratio``.

    Bisects log10(eb); returns the last bound whose ratio met the target
    (ratio is monotone non-decreasing in the bound up to plateau effects).
    """
    if target_ratio <= 1.0:
        raise ConfigError(f"ratio target must exceed 1, got {target_ratio}")
    data = np.asarray(data)

    def ratio_at(eb: float) -> float:
        return compress(data, eb=eb).compression_ratio

    evals = 0
    lo, hi = np.log10(eb_min), np.log10(eb_max)
    r_hi = ratio_at(10.0**hi)
    evals += 1
    if r_hi < target_ratio:
        return TuneResult(
            eb=10.0**hi, achieved=r_hi, target=target_ratio,
            evaluations=evals, satisfied=False,
        )
    best_eb, best_ratio = 10.0**hi, r_hi
    while evals < max_evals and (hi - lo) > 0.02:
        mid = (lo + hi) / 2.0
        r = ratio_at(10.0**mid)
        evals += 1
        if r >= target_ratio * (1.0 - tolerance):
            hi, best_eb, best_ratio = mid, 10.0**mid, r
            if r < target_ratio:
                break
        else:
            lo = mid
    return TuneResult(
        eb=best_eb, achieved=best_ratio, target=target_ratio,
        evaluations=evals, satisfied=best_ratio >= target_ratio * (1.0 - tolerance),
    )
