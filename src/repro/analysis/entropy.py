"""Entropy and Huffman-redundancy estimation (Section III-B.1).

The adaptive workflow must predict the average Huffman bit-length ⟨b⟩
*without building the tree*.  With ``H`` the Shannon entropy of the
quant-code histogram and ``p1`` the probability of the most likely symbol,

* Gallager's bound gives the redundancy upper bound
  ``R+ = p1 + 0.086`` (unconditionally), and
* Johnsen's bound gives the lower bound
  ``R- = 1 - H(p1, 1 - p1)`` when ``p1 > 0.4``

so ``H + R- <= ⟨b⟩ <= H + R+``.  The RLE rule fires when the *estimate* of
⟨b⟩ drops to 1.09 or below.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import EncodingError

__all__ = [
    "shannon_entropy",
    "binary_entropy",
    "redundancy_upper",
    "redundancy_lower",
    "bitlen_bounds",
    "GALLAGER_CONSTANT",
]

#: Gallager (1978): Huffman redundancy <= p1 + 0.086 for any source.
GALLAGER_CONSTANT = 0.086


def shannon_entropy(freqs: np.ndarray) -> float:
    """Shannon entropy (bits/symbol) of a frequency histogram."""
    freqs = np.asarray(freqs, dtype=np.float64)
    total = freqs.sum()
    if total <= 0:
        raise EncodingError("entropy of an empty histogram is undefined")
    p = freqs[freqs > 0] / total
    return float(-(p * np.log2(p)).sum())


def binary_entropy(p: float) -> float:
    """H(p, 1-p) in bits; 0 at the endpoints."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    q = 1.0 - p
    return float(-(p * np.log2(p) + q * np.log2(q)))


def redundancy_upper(p1: float) -> float:
    """Gallager's upper bound R+ = p1 + 0.086 on Huffman redundancy."""
    return p1 + GALLAGER_CONSTANT


def redundancy_lower(p1: float) -> float:
    """Johnsen's lower bound R- = 1 - H(p1, 1-p1), valid for p1 > 0.4.

    For p1 <= 0.4 the bound degenerates to 0 (Huffman can be arbitrarily
    close to entropy), which is what we return.
    """
    if p1 <= 0.4:
        return 0.0
    return 1.0 - binary_entropy(p1)


def bitlen_bounds(freqs: np.ndarray) -> tuple[float, float, float, float]:
    """(entropy, p1, ⟨b⟩ lower bound, ⟨b⟩ upper bound) from a histogram.

    The lower bound additionally respects the 1-bit floor of any prefix
    code ("no less than one bit represents a data element").
    """
    freqs = np.asarray(freqs, dtype=np.float64)
    total = freqs.sum()
    if total <= 0:
        raise EncodingError("empty histogram")
    h = shannon_entropy(freqs)
    p1 = float(freqs.max() / total)
    lower = max(1.0, h + redundancy_lower(p1))
    upper = max(lower, h + redundancy_upper(p1))
    return h, p1, lower, upper
