"""Quality and ratio metrics: PSNR, NRMSE, max error, compression ratio.

These are the figures of merit the paper reports: compression ratio for
Tables I/IV/V, PSNR ("higher than 85 dB" for Table VII's error bound), and
the error-bound check that defines "error-bounded" compression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QualityMetrics",
    "max_abs_error",
    "psnr",
    "nrmse",
    "compression_ratio",
    "verify_error_bound",
    "evaluate_quality",
]


@dataclass
class QualityMetrics:
    """Bundle of distortion metrics between original and reconstruction."""

    max_error: float
    psnr_db: float
    nrmse: float
    value_range: float
    bound_satisfied: bool
    eb_abs: float


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest pointwise absolute error."""
    return float(np.max(np.abs(original.astype(np.float64) - reconstructed.astype(np.float64))))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalized by the value range."""
    o = original.astype(np.float64)
    r = reconstructed.astype(np.float64)
    rng = float(o.max() - o.min())
    rmse = float(np.sqrt(np.mean((o - r) ** 2)))
    if rng == 0.0:
        return 0.0 if rmse == 0.0 else float("inf")
    return rmse / rng


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (peak = value range)."""
    e = nrmse(original, reconstructed)
    if e == 0.0:
        return float("inf")
    return float(-20.0 * np.log10(e))


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """Plain size ratio; guards the degenerate empty-archive case."""
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    return original_bytes / compressed_bytes


def verify_error_bound(
    original: np.ndarray, reconstructed: np.ndarray, eb_abs: float, slack: float = 1e-9
) -> bool:
    """Check ``|d - d̂| <= eb`` pointwise (tiny slack for float round-off)."""
    return max_abs_error(original, reconstructed) <= eb_abs * (1.0 + slack) + 1e-300


def evaluate_quality(
    original: np.ndarray, reconstructed: np.ndarray, eb_abs: float
) -> QualityMetrics:
    """Compute all distortion metrics at once."""
    o = np.asarray(original, dtype=np.float64)
    return QualityMetrics(
        max_error=max_abs_error(original, reconstructed),
        psnr_db=psnr(original, reconstructed),
        nrmse=nrmse(original, reconstructed),
        value_range=float(o.max() - o.min()),
        bound_satisfied=verify_error_bound(original, reconstructed, eb_abs),
        eb_abs=eb_abs,
    )
