"""Variogram / madogram / binary-variance smoothness estimation (Section III-B.2).

The paper measures "smoothness" of the quant-code stream to decide when RLE
pays off.  Three estimators, all over randomly sampled index pairs
``(a, a + d)`` with distance ``d`` drawn from ``1..D_max``:

* **variogram** -- mean squared difference ``E[(Z(a) - Z(a+d))^2]``;
* **madogram** -- mean absolute difference (robust variant);
* **binary variance** -- ``P[Z(a) != Z(a+d)]``, distance-free "does an RLE
  run break here" probability.  Its expectation is the *roughness*;
  ``smoothness = 1 - roughness``.

Sampling is along the 1-D encoding order (how RLE iterates the data), so the
estimators operate on the flattened stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "VariogramResult",
    "empirical_variogram",
    "binary_roughness",
    "smoothness",
    "smoothness_to_expected_run_length",
    "expected_rle_compression_ratio",
]

#: Paper default: maximum sampled encoding distance.
DEFAULT_MAX_DISTANCE = 200
#: Paper: "a sufficiently large number sampling number N".
DEFAULT_SAMPLES = 50_000


@dataclass
class VariogramResult:
    """Per-distance variance estimates from pair sampling."""

    distances: np.ndarray  # 1..D_max
    values: np.ndarray  # averaged variance at each distance
    counts: np.ndarray  # number of sampled pairs per distance
    kind: str  # "squared" | "absolute" | "binary"

    def mean(self) -> float:
        """Count-weighted mean across distances (overall roughness level)."""
        total = self.counts.sum()
        if total == 0:
            return float("nan")
        return float((self.values * self.counts).sum() / total)


def _sample_pairs(
    n: int, max_distance: int, n_samples: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random (anchor, distance) pairs with ``anchor + distance`` in range."""
    max_distance = min(max_distance, n - 1)
    if max_distance < 1:
        raise ValueError("stream too short for variogram sampling")
    d = rng.integers(1, max_distance + 1, size=n_samples)
    a = rng.integers(0, n - d, size=n_samples)
    return a, d


def empirical_variogram(
    stream: np.ndarray,
    kind: str = "binary",
    max_distance: int = DEFAULT_MAX_DISTANCE,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int | None = 0,
) -> VariogramResult:
    """Sampled variogram of a flattened stream.

    ``kind`` selects the difference statistic: ``"squared"`` (classic
    variogram ``2*gamma``), ``"absolute"`` (madogram), or ``"binary"``
    (run-break probability).
    """
    stream = np.asarray(stream).reshape(-1)
    rng = np.random.default_rng(seed)
    a, d = _sample_pairs(stream.size, max_distance, n_samples, rng)
    x = stream[a].astype(np.float64)
    y = stream[a + d].astype(np.float64)
    if kind == "squared":
        diff = (x - y) ** 2
    elif kind == "absolute":
        diff = np.abs(x - y)
    elif kind == "binary":
        diff = (x != y).astype(np.float64)
    else:
        raise ValueError(f"unknown variogram kind {kind!r}")
    max_d = int(d.max())
    sums = np.bincount(d, weights=diff, minlength=max_d + 1)[1:]
    counts = np.bincount(d, minlength=max_d + 1)[1:]
    values = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)
    return VariogramResult(
        distances=np.arange(1, max_d + 1),
        values=values,
        counts=counts,
        kind=kind,
    )


def binary_roughness(
    stream: np.ndarray,
    max_distance: int = DEFAULT_MAX_DISTANCE,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int | None = 0,
) -> float:
    """Expected binary variance = probability two sampled values differ."""
    return empirical_variogram(
        stream, kind="binary", max_distance=max_distance, n_samples=n_samples, seed=seed
    ).mean()


def smoothness(
    stream: np.ndarray,
    max_distance: int = DEFAULT_MAX_DISTANCE,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int | None = 0,
) -> float:
    """Paper's smoothness: ``1 - roughness``."""
    return 1.0 - binary_roughness(stream, max_distance, n_samples, seed)


def adjacent_roughness(stream: np.ndarray) -> float:
    """Exact distance-1 roughness: fraction of adjacent pairs that differ.

    This is ``1 / mean_run_length`` up to edge effects and is the quantity
    RLE's output size depends on directly.
    """
    stream = np.asarray(stream).reshape(-1)
    if stream.size < 2:
        return 0.0
    return float(np.count_nonzero(stream[1:] != stream[:-1]) / (stream.size - 1))


def smoothness_to_expected_run_length(s: float) -> float:
    """Expected RLE run length if run breaks are Bernoulli(1 - s)."""
    if not 0.0 <= s <= 1.0:
        raise ValueError(f"smoothness must be in [0, 1], got {s}")
    if s >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - s)


def expected_rle_compression_ratio(
    s: float, symbol_bits: int = 32, value_bits: int = 16, length_bits: int = 16
) -> float:
    """Model CR of RLE given smoothness ``s`` (Fig. 2b's mapping).

    Each expected run of ``1/(1-s)`` symbols (each ``symbol_bits`` of source
    data) is stored as one (value, count) tuple of
    ``value_bits + length_bits``.
    """
    run = smoothness_to_expected_run_length(s)
    if not np.isfinite(run):
        return float("inf")
    return (run * symbol_bits) / (value_bits + length_bits)
