"""Baselines: CPU-SZ reference ratios, original cuSZ semantics, ZFP-like codec."""

from .cpu_sz import CpuSZ, ReferenceRatios, reference_ratios
from .cusz import OriginalCuSZ
from .zfp_like import ZfpLike

__all__ = ["CpuSZ", "ReferenceRatios", "reference_ratios", "OriginalCuSZ", "ZfpLike"]
