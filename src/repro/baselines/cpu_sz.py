"""CPU-SZ baseline: the sequential algorithm and the qg/qh/qhg references.

Two things live here:

1. :class:`CpuSZ` -- the *original SZ* compression-side algorithm the paper
   describes in Section IV-A: in-loop reconstruction.  Every element is
   predicted from already-reconstructed neighbours, the prediction error is
   quantized against the bound, and the reconstructed value replaces the
   original before moving on -- the loop-carried read-after-write dependency
   that motivates dual-quantization.  It is intentionally element-sequential
   (use small arrays).

2. :func:`reference_ratios` -- the qg / qh / qhg compression-ratio reference
   points of Tables I and IV: quant-codes followed by gzip (``qg``),
   multi-byte Huffman (``qh``, what cuSZ ships), and Huffman followed by
   gzip (``qhg``, the CPU-SZ-style upper reference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.compressor import compress
from ..core.config import CompressorConfig
from ..core.dual_quant import quantize_field
from ..core.lorenzo import _predict_at  # reference predictor
from ..encoding.deflate import deflate_bytes
from ..encoding.histogram import histogram
from ..encoding.huffman import build_codebook
from ..encoding.huffman_codec import encode as huff_encode

__all__ = ["CpuSZ", "ReferenceRatios", "reference_ratios"]


class CpuSZ:
    """Sequential original-SZ prediction/quantization (reference).

    Matches the error-bound contract of the main pipeline but with the
    compression-time in-place reconstruction of classic SZ.  Exists to
    (a) document the dependency structure dual-quantization removes and
    (b) cross-validate quant-code statistics in tests.
    """

    def __init__(self, config: CompressorConfig | None = None, **kwargs) -> None:
        self.config = config or CompressorConfig(**kwargs)

    def quantize(self, data: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
        """Return (quant_codes, reconstructed_values, eb_abs).

        ``quant_codes`` uses the same [0, dict_size) convention as the main
        pipeline, with out-of-range errors stored "uncompressed" -- here as
        the exact reconstruction with a placeholder code of ``radius``
        (their positions are recoverable as ``quant == radius`` but delta
        != 0; tests treat the reconstruction as the contract).
        """
        data = np.asarray(data, dtype=np.float64)
        vrange = float(data.max() - data.min())
        eb = self.config.absolute_bound(vrange)
        radius = self.config.radius
        chunks = self.config.chunks_for(data.ndim)
        recon = np.zeros_like(data)
        # Reconstruction happens over *prequantized-scale* reals; classic SZ
        # works on raw floats: predict, quantize the error, compensate.
        quant = np.full(data.shape, radius, dtype=np.int64)
        scale = 2.0 * eb
        # Integer copy of the running reconstruction for the reference
        # predictor (works on integers); we keep reals and round at use.
        for index in np.ndindex(*data.shape):
            origin = tuple((i // c) * c for i, c in zip(index, chunks))
            pred = _predict_float(recon, index, origin)
            err = data[index] - pred
            code = int(np.rint(err / scale))
            if -radius <= code < radius:
                quant[index] = code + radius
                recon[index] = pred + code * scale
            else:
                # Out of range: store losslessly (classic SZ's "unpredicted
                # data"), reconstruction is exact.
                recon[index] = data[index]
        return quant, recon, eb

    def compress_ratio_estimate(self, data: np.ndarray) -> float:
        """CR from Huffman + gzip over the sequential quant-codes."""
        quant, _, _ = self.quantize(data)
        q16 = (quant.reshape(-1)).astype(np.uint16)
        freqs = histogram(q16, self.config.dict_size)
        book = build_codebook(freqs)
        enc = huff_encode(q16, book, self.config.huffman_chunk)
        compressed = len(deflate_bytes(enc.payload.tobytes())) + len(book.serialized())
        return data.nbytes / max(compressed, 1)


def _predict_float(recon: np.ndarray, index, origin) -> float:
    """First-order Lorenzo prediction over a float array (same inclusion-
    exclusion form as the integer reference predictor)."""
    ndim = recon.ndim
    pred = 0.0
    for mask in range(1, 1 << ndim):
        neighbour = list(index)
        bits = 0
        ok = True
        for axis in range(ndim):
            if mask >> axis & 1:
                bits += 1
                neighbour[axis] -= 1
                if neighbour[axis] < origin[axis]:
                    ok = False
                    break
        if not ok:
            continue
        pred += (1.0 if bits % 2 == 1 else -1.0) * recon[tuple(neighbour)]
    return pred


@dataclass
class ReferenceRatios:
    """The qg / qh / qhg compression-ratio reference points."""

    qg: float
    qh: float
    qhg: float
    eb_abs: float

    def as_dict(self) -> dict[str, float]:
        return {"qg": self.qg, "qh": self.qh, "qhg": self.qhg}


def reference_ratios(data: np.ndarray, config: CompressorConfig) -> ReferenceRatios:
    """Compute the Table I/IV reference compression ratios for one field.

    * ``qg``  -- quant-codes interpreted as bytes, DEFLATEd (single-byte
      generic compressor; the "presumed suboptimal scenario").
    * ``qh``  -- multi-byte canonical Huffman (cuSZ's on-GPU scheme),
      including codebook and chunk metadata.
    * ``qhg`` -- Huffman payload additionally DEFLATEd (pattern-finding on
      top of VLE; the CPU-SZ-style best case).

    All three include the outlier section so ratios stay honest.
    """
    data = np.asarray(data)
    bundle, eb_abs = quantize_field(data, config)
    q = bundle.quant.reshape(-1)
    outlier_bytes = bundle.n_outliers * 8

    # qg: raw quant bytes -> DEFLATE.
    qg_bytes = len(deflate_bytes(q.tobytes())) + outlier_bytes

    # qh: the actual Huffman-workflow archive.
    res = compress(data, config.with_(workflow="huffman"))
    qh_bytes = res.compressed_bytes

    # qhg: DEFLATE the Huffman bitstream, keep codebook + chunk metadata.
    freqs = histogram(q, config.dict_size)
    book = build_codebook(freqs)
    enc = huff_encode(q, book, config.huffman_chunk)
    qhg_bytes = (
        len(deflate_bytes(enc.payload.tobytes()))
        + len(deflate_bytes(enc.chunk_bits.tobytes()))
        + len(book.serialized())
        + outlier_bytes
    )
    return ReferenceRatios(
        qg=data.nbytes / max(qg_bytes, 1),
        qh=data.nbytes / max(qh_bytes, 1),
        qhg=data.nbytes / max(qhg_bytes, 1),
        eb_abs=eb_abs,
    )
