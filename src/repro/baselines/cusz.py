"""Original cuSZ baseline semantics (pre-cuSZ+).

The algorithmic differences from cuSZ+ this module captures (Section IV-B.1):

* **Old outlier scheme** -- when the postquant delta is out of range, cuSZ
  stores the *prequantized value* ``d_q`` itself as the outlier and writes a
  placeholder ``0`` quant-code.  Decompression must branch: hitting the
  placeholder means "take the outlier value verbatim instead of predicting",
  which breaks the pure partial-sum structure (divergence + dependency).
* **Coarse-grained reconstruction** -- one thread walks one chunk
  sequentially; modeled here as the element-sequential branchy loop.

Numerically both schemes reconstruct within the same bound; tests verify
that this baseline and the cuSZ+ pipeline agree to within 2*eb everywhere.
Performance differences are modeled by the kernel layer (``impl="cusz"``
and ``variant="coarse"``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import CompressorConfig
from ..core.dual_quant import prequantize
from ..core.errors import ConfigError
from ..core.lorenzo import _predict_at, lorenzo_construct

__all__ = ["OldSchemeQuantized", "OriginalCuSZ"]


@dataclass
class OldSchemeQuantized:
    """cuSZ's compression-side output: quant codes + *value* outliers."""

    quant: np.ndarray  # [0, dict_size); 0 is the outlier placeholder
    outlier_indices: np.ndarray
    outlier_values: np.ndarray  # prequantized values d_q (not deltas!)
    shape: tuple[int, ...]
    chunks: tuple[int, ...]
    radius: int
    eb_twice: float


class OriginalCuSZ:
    """The original cuSZ algorithm (old outlier scheme, branchy decode)."""

    def __init__(self, config: CompressorConfig | None = None, **kwargs) -> None:
        self.config = config or CompressorConfig(**kwargs)

    def quantize(self, data: np.ndarray) -> OldSchemeQuantized:
        data = np.asarray(data)
        if data.size == 0:
            raise ConfigError("cannot compress an empty array")
        vrange = float(data.max() - data.min())
        eb = self.config.absolute_bound(vrange)
        chunks = self.config.chunks_for(data.ndim)
        radius = self.config.radius
        dq = prequantize(data, eb)
        delta = lorenzo_construct(dq, chunks)
        in_range = (delta > -radius) & (delta < radius)  # 0 is reserved
        flat_dq = dq.reshape(-1)
        outlier_indices = np.flatnonzero(~in_range).astype(np.int64)
        outlier_values = flat_dq[outlier_indices].copy()
        quant = np.where(in_range, delta + radius, 0).astype(np.uint16)
        return OldSchemeQuantized(
            quant=quant,
            outlier_indices=outlier_indices,
            outlier_values=outlier_values,
            shape=data.shape,
            chunks=chunks,
            radius=radius,
            eb_twice=2.0 * eb,
        )

    @staticmethod
    def reconstruct_branchy(bundle: OldSchemeQuantized, dtype=np.float32) -> np.ndarray:
        """The coarse-grained branchy reconstruction (element-sequential).

        At placeholder positions the outlier *value* replaces the prediction
        entirely -- the if-branch the modified quantization scheme removes.
        Intentionally slow; use on small arrays (tests, demos).
        """
        quant = bundle.quant.reshape(bundle.shape)
        outliers = dict(
            zip(bundle.outlier_indices.tolist(), bundle.outlier_values.tolist())
        )
        dq = np.zeros(bundle.shape, dtype=np.int64)
        flat_index = 0
        strides = np.array(
            [int(np.prod(bundle.shape[i + 1 :])) for i in range(len(bundle.shape))]
        )
        for index in np.ndindex(*bundle.shape):
            flat_index = int(np.dot(index, strides))
            q = int(quant[index])
            if q == 0:  # placeholder -> take the stored value verbatim
                dq[index] = outliers[flat_index]
            else:
                origin = tuple((i // c) * c for i, c in zip(index, bundle.chunks))
                dq[index] = _predict_at(dq, index, origin) + (q - bundle.radius)
        return (dq.astype(np.float64) * bundle.eb_twice).astype(dtype)

    def roundtrip(self, data: np.ndarray, dtype=np.float32) -> tuple[np.ndarray, float]:
        """Quantize + branchy reconstruct; returns (output, eb_abs)."""
        bundle = self.quantize(data)
        return self.reconstruct_branchy(bundle, dtype=dtype), bundle.eb_twice / 2.0
