"""Fixed-rate block-transform codec (cuZFP stand-in).

The paper's related-work comparison point: cuZFP is faster than cuSZ but
"only supports fixed-rate mode, significantly limiting its adoption".  This
codec reproduces the *design*, not ZFP's exact bitstream: 4^d blocks, a
block-common exponent, an exact integer Haar lifting transform along each
axis to decorrelate, and fixed-rate truncation keeping the top ``rate_bits``
of every coefficient.  It offers no error bound -- distortion varies with
content -- which is precisely the contrast the comparison benchmark draws.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigError, DimensionalityError

__all__ = ["ZfpLike", "ZfpArchive"]

_BLOCK = 4
#: Fixed-point fractional bits used when aligning a block to its exponent.
_FRAC_BITS = 26


def _haar_forward(x: np.ndarray, axis: int) -> np.ndarray:
    """Exact integer Haar lifting along ``axis`` (length-4 blocks -> 2 levels).

    Pairwise: d = a - b; s = b + (d >> 1).  Applied to (0,1) and (2,3), then
    to the two resulting averages -- fully invertible in integers.
    """
    out = x.copy()
    out = _lift_pairs(out, axis, (0, 1))
    out = _lift_pairs(out, axis, (2, 3))
    out = _lift_pairs(out, axis, (0, 2))
    return out


def _haar_inverse(x: np.ndarray, axis: int) -> np.ndarray:
    out = x.copy()
    out = _unlift_pairs(out, axis, (0, 2))
    out = _lift_pairs_inv_leafs(out, axis)
    return out


def _sl(axis: int, i: int) -> tuple:
    idx = [slice(None)] * 10
    idx[axis] = i
    return tuple(idx[: axis + 1])


def _take(x: np.ndarray, axis: int, i: int) -> np.ndarray:
    return np.take(x, i, axis=axis)


def _put(x: np.ndarray, axis: int, i: int, value: np.ndarray) -> None:
    idx = [slice(None)] * x.ndim
    idx[axis] = i
    x[tuple(idx)] = value


def _lift_pairs(x: np.ndarray, axis: int, pair: tuple[int, int]) -> np.ndarray:
    a = _take(x, axis, pair[0])
    b = _take(x, axis, pair[1])
    d = a - b
    s = b + (d >> 1)
    _put(x, axis, pair[0], s)
    _put(x, axis, pair[1], d)
    return x


def _unlift_pair(s: np.ndarray, d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    b = s - (d >> 1)
    a = b + d
    return a, b


def _unlift_pairs(x: np.ndarray, axis: int, pair: tuple[int, int]) -> np.ndarray:
    s = _take(x, axis, pair[0])
    d = _take(x, axis, pair[1])
    a, b = _unlift_pair(s, d)
    _put(x, axis, pair[0], a)
    _put(x, axis, pair[1], b)
    return x


def _lift_pairs_inv_leafs(x: np.ndarray, axis: int) -> np.ndarray:
    x = _unlift_pairs(x, axis, (0, 1))
    x = _unlift_pairs(x, axis, (2, 3))
    return x


@dataclass
class ZfpArchive:
    """Fixed-rate compressed blocks + geometry."""

    payload: bytes
    shape: tuple[int, ...]
    rate_bits: int
    dtype: str

    @property
    def nbytes(self) -> int:
        return len(self.payload) + struct.calcsize("<4QB") + 8

    def compression_ratio(self) -> float:
        original = int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize
        return original / self.nbytes


class ZfpLike:
    """Fixed-rate transform codec over 4^d blocks (1-3D).

    ``rate_bits`` is the stored bits per value (1..30).  Compression ratio
    is deterministic: ``value_bits / (rate_bits + exponent_overhead)``.
    """

    def __init__(self, rate_bits: int = 8) -> None:
        if not 1 <= rate_bits <= 30:
            raise ConfigError(f"rate_bits must be in 1..30, got {rate_bits}")
        self.rate_bits = rate_bits

    # -- public API ----------------------------------------------------------

    def compress(self, data: np.ndarray) -> ZfpArchive:
        data = np.asarray(data, dtype=np.float32)
        if not 1 <= data.ndim <= 3:
            raise DimensionalityError("ZfpLike supports 1..3 dimensions")
        padded, orig_shape = self._pad(data)
        blocks = self._to_blocks(padded)  # (nblocks, 4^d)
        # Block-common exponent alignment (like zfp): scale each block by
        # 2^(-e) so the largest magnitude sits just below 1, then fix-point.
        maxabs = np.abs(blocks).max(axis=1).astype(np.float64)
        exps = np.where(
            maxabs > 0, np.ceil(np.log2(np.maximum(maxabs, 1e-300))), 0
        ).astype(np.int8)
        scale = np.exp2(_FRAC_BITS - exps.astype(np.float64))[:, None]
        ints = np.rint(blocks.astype(np.float64) * scale).astype(np.int64)
        # Decorrelate: Haar lifting along each axis of the 4^d block.
        d = data.ndim
        cube = ints.reshape((-1,) + (_BLOCK,) * d)
        for axis in range(1, d + 1):
            cube = _haar_forward(cube, axis)
        coeffs = cube.reshape(ints.shape[0], -1)
        # Fixed-rate truncation: keep the top rate_bits of each coefficient.
        # The lifting grows magnitudes by up to 2 bits per axis.
        shift = _FRAC_BITS + 2 * d - self.rate_bits
        q = coeffs >> shift if shift > 0 else coeffs << -shift
        lo, hi = -(1 << (self.rate_bits - 1)), (1 << (self.rate_bits - 1)) - 1
        q = np.clip(q, lo, hi)
        payload = self._pack(q - lo, exps)
        return ZfpArchive(
            payload=payload,
            shape=tuple(orig_shape),
            rate_bits=self.rate_bits,
            dtype="float32",
        )

    def decompress(self, archive: ZfpArchive) -> np.ndarray:
        d = len(archive.shape)
        q, exps, nblocks = self._unpack(archive, d)
        lo = -(1 << (archive.rate_bits - 1))
        coeffs = q + lo
        shift = _FRAC_BITS + 2 * d - archive.rate_bits
        # Midpoint reconstruction of the truncated bits.
        if shift > 0:
            coeffs = (coeffs << shift) + (1 << (shift - 1))
        else:
            coeffs = coeffs >> -shift
        cube = coeffs.reshape((-1,) + (_BLOCK,) * d)
        for axis in range(d, 0, -1):
            cube = _haar_inverse(cube, axis)
        ints = cube.reshape(nblocks, -1)
        scale = np.exp2(exps.astype(np.float64) - _FRAC_BITS)[:, None]
        blocks = ints.astype(np.float64) * scale
        return self._from_blocks(blocks.astype(np.float32), archive.shape)

    # -- block plumbing --------------------------------------------------------

    @staticmethod
    def _pad(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        pads = [(0, (-s) % _BLOCK) for s in data.shape]
        return np.pad(data, pads, mode="edge"), data.shape

    @staticmethod
    def _to_blocks(padded: np.ndarray) -> np.ndarray:
        d = padded.ndim
        grid = [s // _BLOCK for s in padded.shape]
        # reshape into (g0, 4, g1, 4, ...) then move block axes last
        shape = []
        for g in grid:
            shape += [g, _BLOCK]
        x = padded.reshape(shape)
        order = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
        return x.transpose(order).reshape(int(np.prod(grid)), _BLOCK**d)

    @staticmethod
    def _from_blocks(blocks: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        d = len(shape)
        padded_shape = [s + ((-s) % _BLOCK) for s in shape]
        grid = [s // _BLOCK for s in padded_shape]
        x = blocks.reshape(grid + [_BLOCK] * d)
        order = []
        for i in range(d):
            order += [i, d + i]
        x = x.transpose(order).reshape(padded_shape)
        return x[tuple(slice(0, s) for s in shape)]

    # -- bit packing ------------------------------------------------------------

    def _pack(self, q: np.ndarray, exps: np.ndarray) -> bytes:
        from ..encoding.bitio import pack_codes

        flat = q.reshape(-1).astype(np.uint64)
        lengths = np.full(flat.size, self.rate_bits, dtype=np.int64)
        packed, total_bits = pack_codes(flat, lengths)
        header = struct.pack("<QQ", q.shape[0], total_bits)
        return header + exps.tobytes() + packed.tobytes()

    def _unpack(self, archive: ZfpArchive, d: int) -> tuple[np.ndarray, np.ndarray, int]:
        from ..encoding.bitio import peek_bits, unpack_to_bits

        raw = archive.payload
        nblocks, total_bits = struct.unpack_from("<QQ", raw, 0)
        nblocks = int(nblocks)
        off = 16
        exps = np.frombuffer(raw[off : off + nblocks], dtype=np.int8)
        off += nblocks
        packed = np.frombuffer(raw[off:], dtype=np.uint8)
        bits = unpack_to_bits(packed, int(total_bits))
        n_vals = nblocks * _BLOCK**d
        positions = np.arange(n_vals, dtype=np.int64) * archive.rate_bits
        vals = peek_bits(bits, positions, archive.rate_bits)
        return vals.reshape(nblocks, _BLOCK**d).astype(np.int64), exps, nblocks
