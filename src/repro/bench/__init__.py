"""Benchmark harness: paper-table experiments and the CLI entry point."""

from . import experiments  # noqa: F401  (registers all experiments)
from .harness import all_experiments, get_experiment

__all__ = ["all_experiments", "get_experiment"]
