"""Benchmark harness: paper-table experiments, scenarios, and regression gates."""

from . import experiments  # noqa: F401  (registers all experiments)
from .diagnose import diagnose_report, render_report
from .harness import all_experiments, get_experiment
from .profiler import fold_trace, kernel_table, profile_scenario
from .record import (
    SCHEMA,
    build_record,
    load_record,
    validate_record,
    write_record,
)
from .regression import PROFILES, ThresholdProfile, compare_records
from .runner import run_case, run_scenario
from .scaling import check_scaling_gate, scaling_summary
from .scenarios import SCENARIOS, BenchCase, Scenario, get_scenario

__all__ = [
    "all_experiments",
    "get_experiment",
    "SCHEMA",
    "build_record",
    "validate_record",
    "write_record",
    "load_record",
    "run_case",
    "run_scenario",
    "check_scaling_gate",
    "scaling_summary",
    "BenchCase",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "ThresholdProfile",
    "PROFILES",
    "compare_records",
    "fold_trace",
    "kernel_table",
    "profile_scenario",
    "diagnose_report",
    "render_report",
]
