"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.bench list                 # show available experiments
    python -m repro.bench table7               # run one
    python -m repro.bench all                  # run everything (slow)
    python -m repro.bench table7 --out results # also write results/table7.txt
                                               # + results/table7.json (the
                                               # structured run record)
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .harness import all_experiments, get_experiment


def main(argv: list[str] | None = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    out_dir: Path | None = None
    if "--out" in args:
        i = args.index("--out")
        try:
            out_dir = Path(args[i + 1])
        except IndexError:
            print("--out requires a directory argument")
            return 1
        del args[i : i + 2]
        out_dir.mkdir(parents=True, exist_ok=True)
    if not args or args[0] in ("-h", "--help", "list"):
        print("available experiments:")
        for name, exp in sorted(all_experiments().items()):
            print(f"  {name:16} {exp.description}")
        return 0
    names = list(all_experiments()) if args[0] == "all" else args
    for name in names:
        try:
            exp = get_experiment(name)
        except KeyError as e:
            print(e)
            return 1
        body = exp.run()
        print(body)
        print()
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(body + "\n")
            if exp.last_record is not None:
                (out_dir / f"{name}.json").write_text(
                    json.dumps(exp.last_record, indent=2) + "\n"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
