"""Selector-accuracy audit: predicted ⟨b⟩ / RLE gain vs realized coded bits.

The paper's adaptive rule rests on two estimators computed from the
quant-code histogram alone: the average Huffman bit-length ⟨b⟩ bounded via
Gallager/Johnsen redundancy (``H + R- <= ⟨b⟩ <= H + R+``) and the RLE
bits-per-symbol from the run-break rate.  This module quantifies how well
those predictions match what the coders actually produce, per field:

* the *actual* Huffman ⟨b⟩ (tree built on the real histogram) against the
  predicted [R-, R+] interval;
* the *actual* coded bits per symbol of the chosen workflow (from the
  archive's quant-stream sections) against the prediction that selected it;
* the ``repro_selector_mispredict_total`` counter, fed by every
  :func:`repro.compress` call via the in-pipeline audit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import telemetry as tel
from ..analysis.entropy import bitlen_bounds
from ..core.compressor import compress
from ..core.config import CompressorConfig
from ..core.dual_quant import quantize_field
from ..encoding.histogram import histogram
from ..encoding.huffman import build_codebook
from .harness import format_table

__all__ = ["DiagnoseField", "DEFAULT_FIELDS", "diagnose_report", "render_report"]


@dataclass(frozen=True)
class DiagnoseField:
    """One audited (dataset, field, error-bound) point."""

    dataset: str
    field_name: str
    eb: float

    @property
    def label(self) -> str:
        return f"{self.dataset}/{self.field_name}@{self.eb:g}"


#: Default audit set: at least one Huffman-regime and one RLE-regime field.
DEFAULT_FIELDS = (
    DiagnoseField("CESM", "PS", 1e-3),
    DiagnoseField("CESM", "FLNTC", 1e-4),
    DiagnoseField("CESM", "FSDSC", 1e-2),
    DiagnoseField("RTM", "snapshot2800", 1e-2),
    DiagnoseField("Nyx", "baryon_density", 1e-3),
)


def _audit_field(spec: DiagnoseField) -> dict:
    from ..data import get_dataset

    data = get_dataset(spec.dataset).field(spec.field_name).data
    config = CompressorConfig(eb=spec.eb)
    bundle, _ = quantize_field(data, config)
    freqs = histogram(bundle.quant, config.dict_size)
    entropy, p1, lower, upper = bitlen_bounds(freqs)
    # Ground truth for the ⟨b⟩ estimator: build the tree the selector avoids.
    actual_b = build_codebook(freqs).average_bit_length(freqs)
    result = compress(data, config)
    audit = result.selector_audit or {}
    decision = audit.get("decision", result.workflow)
    regime = "rle" if decision.startswith("rle") else "huffman"
    predicted_rle = audit.get("predicted_rle_bits_per_symbol")
    actual_bits = audit.get("actual_bits_per_symbol")
    rle_rel_error = None
    if regime == "rle" and predicted_rle and actual_bits:
        rle_rel_error = (predicted_rle - actual_bits) / actual_bits
    return {
        "field": spec.label,
        "regime": regime,
        "decision": decision,
        "p1": p1,
        "entropy": entropy,
        "predicted_bitlen_lower": lower,
        "predicted_bitlen_upper": upper,
        "actual_avg_bitlen": actual_b,
        "within_bounds": bool(lower - 1e-9 <= actual_b <= upper + 1e-9),
        "bitlen_rel_error": (actual_b - lower) / actual_b if actual_b else None,
        "predicted_rle_bits_per_symbol": predicted_rle,
        "actual_bits_per_symbol": actual_bits,
        "rle_estimate_rel_error": rle_rel_error,
        "mispredict": audit.get("mispredict"),
    }


def diagnose_report(fields: tuple[DiagnoseField, ...] = DEFAULT_FIELDS) -> dict:
    """Audit every field; returns a JSON-serializable report dict."""
    with tel.scope(True):
        entries = [_audit_field(spec) for spec in fields]
        mispredict = tel.REGISTRY.counter("repro_selector_mispredict_total")
        by_kind = {
            dict(k).get("kind", "?"): v
            for k, v in ((tuple(e["labels"].items()), e["value"])
                         for e in mispredict.to_json()["values"])
        }
    regimes = {r: sum(1 for e in entries if e["regime"] == r)
               for r in ("huffman", "rle")}
    return {
        "fields": entries,
        "regime_counts": regimes,
        "all_within_bounds": all(e["within_bounds"] for e in entries),
        "mispredict_total": sum(by_kind.values()),
        "mispredict_by_kind": by_kind,
    }


def render_report(report: dict) -> str:
    """Human-readable per-field estimator table plus the summary line."""
    rows = []
    for e in report["fields"]:
        rows.append([
            e["field"], e["regime"], e["decision"],
            e["predicted_bitlen_lower"], e["predicted_bitlen_upper"],
            e["actual_avg_bitlen"],
            "yes" if e["within_bounds"] else "NO",
            e["predicted_rle_bits_per_symbol"],
            e["actual_bits_per_symbol"],
            e["mispredict"] or "-",
        ])
    table = format_table(
        ["field", "regime", "decision", "⟨b⟩ R-", "⟨b⟩ R+", "⟨b⟩ actual",
         "in bounds", "rle pred b/sym", "coded b/sym", "mispredict"],
        rows, title="selector estimator audit (predicted vs actual)",
    )
    counts = report["regime_counts"]
    summary = (
        f"{counts.get('huffman', 0)} huffman-regime / {counts.get('rle', 0)} "
        f"rle-regime fields; bounds hold: {report['all_within_bounds']}; "
        f"mispredictions: {report['mispredict_total']}"
    )
    return f"{table}\n{summary}"
