"""One experiment per paper table/figure (see DESIGN.md Section 4).

Each function regenerates its table/figure from the synthetic datasets and
the simulated devices, printing measured values side by side with the
paper's published numbers from :mod:`repro.bench.paper_targets`.
"""

from __future__ import annotations

import numpy as np

from ..analysis.metrics import psnr
from ..analysis.variogram import empirical_variogram, smoothness
from ..baselines.cpu_sz import reference_ratios
from ..core.compressor import compress
from ..core.config import CompressorConfig
from ..core.dual_quant import postquantize, prequantize, quantize_field
from ..core.lorenzo import lorenzo_reconstruct, lorenzo_reconstruct_sequential
from ..data.datasets import DATASETS, TABLE4_CESM_TARGETS, get_dataset
from ..gpu.costmodel import CostModel
from ..gpu.device import get_device
from ..gpu.runtime import run_compression, run_decompression
from ..kernels.lorenzo_kernels import lorenzo_construct_kernel, lorenzo_reconstruct_kernel
from . import paper_targets as paper
from .harness import ascii_series, format_table, register

# Fields per dataset used when averaging (keeps runtimes laptop-friendly).
_TABLE1_FIELDS = 4
_TABLE1_DATASETS = ["HACC", "CESM", "Hurricane", "Nyx"]


@register("table3", "dataset inventory (Table III)")
def table3() -> str:
    rows = []
    for ds in DATASETS.values():
        rows.append(
            [
                ds.name,
                ds.description,
                "x".join(map(str, ds.paper_shape)),
                "x".join(map(str, ds.scaled_shape)),
                len(ds.field_names),
                f"{ds.paper_size_mb:.1f}",
            ]
        )
    return format_table(
        ["dataset", "description", "paper dims", "scaled dims", "#fields", "MB/field"],
        rows,
    )


@register("table1", "reference compression ratios qg/qh/qhg (Table I)")
def table1() -> str:
    rows = []
    for ds_name in _TABLE1_DATASETS:
        ds = get_dataset(ds_name)
        fields = ds.fields(limit=_TABLE1_FIELDS)
        for eb in (1e-2, 1e-3, 1e-4):
            config = CompressorConfig(eb=eb)
            qg, qh, qhg = [], [], []
            for f in fields:
                rr = reference_ratios(f.data, config)
                qg.append(rr.qg)
                qh.append(rr.qh)
                qhg.append(rr.qhg)
            p_qg, p_qh, p_qhg = paper.TABLE1[ds_name][eb]
            rows.append(
                [
                    f"{ds_name} @{eb:g}",
                    float(np.mean(qg)),
                    float(np.mean(qh)),
                    float(np.mean(qhg)),
                    p_qg,
                    p_qh,
                    p_qhg,
                ]
            )
    return format_table(
        ["dataset@eb", "qg", "qh", "qhg", "paper qg", "paper qh", "paper qhg"],
        rows,
        title=f"averaged over the first {_TABLE1_FIELDS} fields of each dataset",
    )


@register("fig1", "compression/decompression workflows (Fig. 1)")
def fig1() -> str:
    return """\
cuSZ   compression : [1 chunk] -> (2 prequant) -> (3 predict) -> (4 postquant)
                     -> (5 histogram) -> (6 build codebook, 1 thread) -> (7 Huffman enc)
                     -> (8 deflate) -> memcpy to host -> (9 Zstd on CPU)
cuSZ   decompression: Zstd on CPU -> memcpy -> Huffman dec -> coarse-grained
                     per-chunk sequential Lorenzo reconstruction (branch on outliers)

cuSZ+  compression : (1 fused prequant+Lorenzo+postquant, modified outlier scheme)
                     -> (2 gather outliers, cuSPARSE) -> (3 histogram)
                     -> workflow select by estimated <b> vs 1.09:
                        path a (Huffman): (4a codebook) -> (5a Huffman enc) -> (6a deflate)
                        path b (RLE)    : (4b reduce_by_key RLE) -> (5b optional VLE)
cuSZ+  decompression: path decode (Huffman / RLE expand) -> scatter outliers
                     (branch-free fuse q' = (q (+) outlier) - r)
                     -> fine-grained N-pass partial-sum Lorenzo reconstruction

(implemented in repro.core.workflow / repro.gpu.runtime; blue-boldface changes of
the paper's Fig. 1 correspond to the modified scheme, the adaptive selector, and
the partial-sum kernels)"""


@register("fig2a", "madogram / binary-variance smoothness (Fig. 2a)")
def fig2a() -> str:
    ds = get_dataset("CESM")
    f = ds.field("FSDSC")
    config = CompressorConfig(eb=1e-2)
    vrange = float(f.data.max() - f.data.min())
    eb_abs = config.absolute_bound(vrange)
    dq = prequantize(f.data, eb_abs)
    quant, _, _ = postquantize(dq, config.chunks_for(2), config.dict_size)
    q_centered = quant.astype(np.int64) - config.radius

    v_pre = empirical_variogram(dq, kind="absolute", n_samples=60_000)
    v_q = empirical_variogram(q_centered, kind="absolute", n_samples=60_000)
    v_bin = empirical_variogram(q_centered, kind="binary", n_samples=60_000)

    picks = [1, 2, 5, 10, 20, 50, 100, 150, 200]
    rows = []
    for d in picks:
        if d <= v_pre.values.size:
            rows.append([d, v_pre.values[d - 1], v_q.values[d - 1], v_bin.values[d - 1]])
    table = format_table(
        ["distance", "|Δ| prequant", "|Δ| quant-code", "binary variance"],
        rows,
        title="CESM FSDSC @ eb=1e-2 (sampled madogram, paper Fig. 2a)",
    )
    plot = ascii_series(
        list(v_bin.distances[:200]),
        {"binary variance (roughness)": list(v_bin.values[:200])},
        title="roughness vs encoding distance (flat at ~1 - smoothness)",
    )
    checks = [
        f"quant-code |Δ| variance < prequant |Δ| variance: "
        f"{v_q.mean() < v_pre.mean()} ({v_q.mean():.3f} vs {v_pre.mean():.3f})",
        f"binary variance ~ distance-stationary: std/mean over distance = "
        f"{float(np.std(v_bin.values) / np.mean(v_bin.values)):.3f}",
    ]
    return table + "\n\n" + plot + "\n\n" + "\n".join(checks)


@register("fig2b", "smoothness vs p1 vs compression ratio (Fig. 2b)")
def fig2b() -> str:
    from ..data import synthetic as syn

    rows = []
    s_vals, p1_vals, rle_crs, vle_crs = [], [], [], []
    for n_plumes in (1, 2, 4, 8, 16, 32, 64, 128, 256):
        f = syn.plume_field((450, 900), n_plumes, 16.0, np.random.default_rng(7))
        config = CompressorConfig(eb=1e-2)
        bundle, _ = quantize_field(f, config)
        s = smoothness(bundle.quant, n_samples=40_000)
        res_rle = compress(f, config.with_(workflow="rle"))
        res_vle = compress(f, config.with_(workflow="huffman"))
        p1 = res_vle.diagnostics.p1
        rows.append([n_plumes, s, p1, res_rle.compression_ratio, res_vle.compression_ratio])
        s_vals.append(s)
        p1_vals.append(p1)
        rle_crs.append(res_rle.compression_ratio)
        vle_crs.append(res_vle.compression_ratio)
    table = format_table(
        ["n_plumes", "smoothness", "p1", "RLE CR", "VLE CR"],
        rows,
        title="synthetic CESM-like sweep @ eb=1e-2 (paper Fig. 2b)",
    )
    plot = ascii_series(
        s_vals,
        {"RLE CR": rle_crs, "VLE CR (capped <32)": vle_crs},
        title="compression ratio vs smoothness; RLE crosses VLE near the CR-32 point",
    )
    corr = float(np.corrcoef(s_vals, p1_vals)[0, 1])
    return (
        table + "\n\n" + plot
        + f"\n\nsmoothness-p1 correlation: {corr:.3f} (Fig. 2b's mapping)"
    )


@register("table2", "partial-sum reconstruction proof of concept (Table II)")
def table2() -> str:
    cases = {
        "1D (HACC)": ("HACC", "vx"),
        "2D (CESM)": ("CESM", "FSDSC"),
        "3D (Nyx)": ("Nyx", "baryon_density"),
    }
    config = CompressorConfig(eb=1e-4)
    rows = []
    for label, (ds_name, field_name) in cases.items():
        ds = get_dataset(ds_name)
        f = ds.field(field_name)
        bundle, _ = quantize_field(f.data, config)
        for dev_name in ("V100", "A100"):
            device = get_device(dev_name)
            model = CostModel(device)
            measured = {}
            for variant in ("coarse", "naive", "optimized"):
                _, prof = lorenzo_reconstruct_kernel(
                    bundle, variant=variant, n_sim=f.paper_elements
                )
                measured[variant] = model.time(prof).gbps
            p = paper.TABLE2[label][dev_name]
            rows.append(
                [
                    f"{label} {dev_name}",
                    measured["coarse"],
                    measured["naive"],
                    measured["optimized"],
                    p["cusz"],
                    p["naive"],
                    p["optimized"],
                ]
            )
    return format_table(
        ["case", "coarse(cuSZ)", "naive", "ours", "paper cuSZ", "paper naive", "paper ours"],
        rows,
        title="Lorenzo reconstruction throughput in GB/s (simulated vs paper)",
    )


@register("fig3", "partial-sum equivalence demonstration (Fig. 3)")
def fig3() -> str:
    rng = np.random.default_rng(3)
    q = rng.integers(-3, 4, (4, 6)).astype(np.int64)
    pass_x = np.cumsum(q, axis=1)
    pass_xy = np.cumsum(pass_x, axis=0)
    seq = lorenzo_reconstruct_sequential(q, (4, 6))
    vec = lorenzo_reconstruct(q, (4, 6))
    lines = [
        "q' (fused quant-code - radius):",
        str(q),
        "",
        "pass 1: inclusive partial-sum along x:",
        str(pass_x),
        "",
        "pass 2: inclusive partial-sum along y (= full reconstruction):",
        str(pass_xy),
        "",
        f"equals sequential Lorenzo reconstruction: {np.array_equal(pass_xy, seq)}",
        f"equals chunked vectorized implementation: {np.array_equal(pass_xy, vec)}",
    ]
    return "\n".join(lines)


@register("table4", "Workflow-RLE vs Workflow-Huffman on CESM fields (Table IV)")
def table4() -> str:
    ds = get_dataset("CESM")
    config = CompressorConfig(eb=1e-2)
    rows = []
    wins = 0
    gains = []
    for name in TABLE4_CESM_TARGETS:
        f = ds.field(name)
        rr = reference_ratios(f.data, config)
        res_rle = compress(f.data, config.with_(workflow="rle"))
        res_both = compress(f.data, config.with_(workflow="rle+vle"))
        qh = rr.qh
        gain_rle = res_rle.compression_ratio / qh
        gain_both = res_both.compression_ratio / qh
        gains.append(gain_both)
        if res_both.compression_ratio > qh:
            wins += 1
        p_qhg, p_qh, p_rle, p_both = TABLE4_CESM_TARGETS[name]
        rows.append(
            [
                name,
                rr.qhg,
                qh,
                res_rle.compression_ratio,
                f"{gain_rle:.2f}x" if gain_rle > 1 else "-",
                res_both.compression_ratio,
                f"{gain_both:.2f}x",
                p_qh,
                p_rle,
                p_both,
            ]
        )
    table = format_table(
        [
            "field", "qhg ref", "qh VLE", "RLE", "gain", "RLE+VLE", "gain",
            "paper qh", "paper RLE", "paper R+V",
        ],
        rows,
        title="CESM fields @ eb=1e-2 (measured vs paper Table IV)",
    )
    summary = (
        f"\nRLE+VLE beats Workflow-Huffman on {wins}/{len(rows)} fields; "
        f"max gain {max(gains):.2f}x (paper: up to 5.34x)"
    )
    return table + summary


@register("table5", "Workflow-RLE throughput and ratio (Table V)")
def table5() -> str:
    config = CompressorConfig(eb=1e-2)
    rows = []
    for (ds_name, field_name), targets in paper.TABLE5.items():
        ds = get_dataset(ds_name)
        f = ds.field(field_name)
        for impl, workflow, stage in (
            ("cuszplus", "rle", "rle"),
            ("cusz", "huffman", "huffman_encode"),
        ):
            per_dev = {}
            for dev_name in ("V100", "A100"):
                art, rep = run_compression(
                    f.data, config, get_device(dev_name), impl=impl,
                    workflow=workflow, n_sim=f.paper_elements,
                )
                per_dev[dev_name] = (rep.stage(stage).gbps, rep.overall_gbps)
            res = compress(
                f.data,
                config.with_(workflow="rle" if impl == "cuszplus" else "huffman"),
            )
            key = "ours" if impl == "cuszplus" else "cusz"
            p = targets[key]
            rows.append(
                [
                    f"{ds_name}/{field_name} {key}",
                    per_dev["V100"][0],
                    per_dev["V100"][1],
                    per_dev["A100"][0],
                    per_dev["A100"][1],
                    f"{res.compression_ratio:.1f}x",
                    p[0],
                    p[1],
                    f"{p[4]:.1f}x",
                ]
            )
    return format_table(
        [
            "field/impl", "V100 stage", "V100 overall", "A100 stage", "A100 overall",
            "CR", "paper V100 stage", "paper V100 overall", "paper CR",
        ],
        rows,
        title="Workflow-RLE (ours) vs Workflow-Huffman (cuSZ) @ eb=1e-2",
    )


@register("table6", "optimized kernels vs cuSZ on V100 (Table VI)")
def table6() -> str:
    from ..kernels.huffman_kernels import huffman_encode_kernel

    config = CompressorConfig(eb=1e-4)
    device = get_device("V100")
    model = CostModel(device)
    rows = []
    for ds_name in ("HACC", "CESM", "Hurricane", "Nyx", "QMCPACK"):
        ds = get_dataset(ds_name)
        f = ds.example_field()
        measured = {}
        for impl in ("cusz", "cuszplus"):
            bundle, _, prof = lorenzo_construct_kernel(
                f.data, config, impl=impl, n_sim=f.paper_elements
            )
            measured[f"construct_{impl}"] = model.time(prof).gbps
            _, _, eprof = huffman_encode_kernel(
                bundle.quant, config, impl=impl, n_sim=f.paper_elements
            )
            measured[f"encode_{impl}"] = model.time(eprof).gbps
            variant = "coarse" if impl == "cusz" else "optimized"
            _, rprof = lorenzo_reconstruct_kernel(
                bundle, variant=variant, n_sim=f.paper_elements
            )
            measured[f"reconstruct_{impl}"] = model.time(rprof).gbps
        p = paper.TABLE6[ds_name]
        for kernel, mkey in (
            ("lorenzo_construct", "construct"),
            ("huffman_encode", "encode"),
            ("lorenzo_reconstruct", "reconstruct"),
        ):
            cu, ours = measured[f"{mkey}_cusz"], measured[f"{mkey}_cuszplus"]
            pcu, pours = p[kernel]
            rows.append(
                [
                    f"{ds_name} {kernel}",
                    cu,
                    ours,
                    f"{ours / cu:.2f}x",
                    pcu,
                    pours,
                    f"{pours / pcu:.2f}x",
                ]
            )
    return format_table(
        ["dataset/kernel", "cuSZ", "ours", "speedup", "paper cuSZ", "paper ours", "paper speedup"],
        rows,
        title="kernel throughput on V100 in GB/s (simulated vs paper Table VI)",
    )


@register("table7", "full kernel breakdown on V100 and A100 (Table VII)")
def table7() -> str:
    config = CompressorConfig(eb=1e-4)
    results: dict[str, dict[str, dict[str, float]]] = {"V100": {}, "A100": {}}
    psnrs = {}
    for ds_name in paper.TABLE7_DATASETS:
        ds = get_dataset(ds_name)
        f = ds.example_field()
        for dev_name in ("V100", "A100"):
            device = get_device(dev_name)
            art, crep = run_compression(
                f.data, config, device, impl="cuszplus", n_sim=f.paper_elements
            )
            out, drep = run_decompression(
                art, config, device, impl="cuszplus", n_sim=f.paper_elements
            )
            col = {}
            for s in crep.stages + drep.stages:
                col[s.name.split("[")[0]] = s.gbps
            col["overall_compress"] = crep.overall_gbps
            col["overall_decompress"] = drep.overall_gbps
            results[dev_name][ds_name] = col
            if dev_name == "V100":
                psnrs[ds_name] = psnr(f.data, out)
    rows = []
    for kernel in paper.TABLE7_ROWS:
        for dev_name, targets in (("V100", paper.TABLE7_V100), ("A100", paper.TABLE7_A100)):
            row = [f"{kernel} {dev_name}"]
            for ds_name in paper.TABLE7_DATASETS:
                row.append(results[dev_name][ds_name].get(kernel))
            rows.append(row)
            row_p = [f"  (paper {dev_name})"]
            for ds_name in paper.TABLE7_DATASETS:
                row_p.append(targets[kernel][ds_name])
            rows.append(row_p)
    table = format_table(
        ["kernel/device"] + list(paper.TABLE7_DATASETS),
        rows,
        title="cuSZ+ default workflow @ rel eb=1e-4, GB/s (simulated, paper below each row)",
    )
    psnr_line = "PSNR (dB) at eb=1e-4: " + ", ".join(
        f"{k}={v:.1f}" for k, v in psnrs.items()
    )
    return table + "\n" + psnr_line + "  (paper: all > 85 dB)"


# ---------------------------------------------------------------------------
# Ablations: design choices the paper fixes, swept here (DESIGN.md Section 4)
# ---------------------------------------------------------------------------


@register("ablation_chunk", "Huffman chunk size: metadata overhead vs decode parallelism")
def ablation_chunk() -> str:
    ds = get_dataset("CESM")
    f = ds.field("PS")
    rows = []
    for chunk in (256, 1024, 4096, 16384, 65536):
        config = CompressorConfig(eb=1e-3, huffman_chunk=chunk, workflow="huffman")
        res = compress(f.data, config)
        meta_bytes = res.section_sizes.get("q.cbits", 0)
        # Decode work-depth = symbols per chunk (the lockstep step count).
        rows.append(
            [
                chunk,
                res.compression_ratio,
                meta_bytes,
                100.0 * meta_bytes / res.compressed_bytes,
                chunk,  # per-thread serial decode steps
            ]
        )
    note = (
        "larger chunks shrink deflate metadata but deepen each GPU decode\n"
        "thread's serial walk; cuSZ's choice balances the two."
    )
    return format_table(
        ["huffman_chunk", "CR", "chunk-meta bytes", "meta % of archive", "decode depth"],
        rows,
        title="CESM PS @ eb=1e-3",
    ) + "\n" + note


@register("ablation_dict", "dictionary size: outliers vs codebook cost vs ratio")
def ablation_dict() -> str:
    ds = get_dataset("Hurricane")
    f = ds.field("Uf48")
    rows = []
    for dict_size in (64, 256, 1024, 4096):
        config = CompressorConfig(eb=1e-4, dict_size=dict_size, workflow="huffman")
        res = compress(f.data, config)
        rows.append(
            [
                dict_size,
                res.compression_ratio,
                res.n_outliers,
                res.section_sizes.get("q.cb", 0),
            ]
        )
    return format_table(
        ["dict_size", "CR", "outliers", "codebook bytes"],
        rows,
        title="Hurricane Uf48 @ eb=1e-4 (radius = dict_size/2)",
    )


@register("ablation_threshold", "selector threshold sweep around the 1.09 rule")
def ablation_threshold() -> str:
    ds = get_dataset("CESM")
    fields = [ds.field(n) for n in list(TABLE4_CESM_TARGETS)[:12]]
    rows = []
    for thr in (1.0, 1.05, 1.09, 1.2, 1.5, 2.0):
        total_cr = []
        n_rle = 0
        for f in fields:
            res = compress(f.data, CompressorConfig(eb=1e-2, rle_bitlen_threshold=thr))
            total_cr.append(res.compression_ratio)
            n_rle += res.workflow != "huffman"
        rows.append([thr, n_rle, float(np.exp(np.mean(np.log(total_cr))))])
    return format_table(
        ["threshold", "#fields on RLE path", "geomean CR"],
        rows,
        title="12 CESM fields @ eb=1e-2 (paper's rule: 1.09)",
    )


@register("ablation_predictor", "Lorenzo vs regression predictor across datasets")
def ablation_predictor() -> str:
    rows = []
    for ds_name in ("CESM", "Hurricane", "Nyx", "Miranda"):
        f = get_dataset(ds_name).example_field()
        crs = {}
        for pred in ("lorenzo", "regression", "interp"):
            res = compress(f.data, CompressorConfig(eb=1e-3, predictor=pred))
            crs[pred] = res.compression_ratio
        auto = compress(f.data, CompressorConfig(eb=1e-3, predictor="auto"))
        rows.append(
            [
                f"{ds_name}/{f.name}",
                crs["lorenzo"],
                crs["regression"],
                crs["interp"],
                auto.predictor,
                auto.compression_ratio,
            ]
        )
    note = (
        "first-order Lorenzo holds up on locally-rough science data (the\n"
        "paper's Section II-B.3 rationale); the SZ3-style interpolation\n"
        "(ref. [19]) overtakes it exactly on the smoothest fields."
    )
    return format_table(
        ["field", "lorenzo CR", "regression CR", "interp CR", "auto picks", "auto CR"],
        rows,
        title="predictor ablation @ eb=1e-3",
    ) + "\n" + note


@register("io_dump", "parallel dump-time model: raw vs compressed I/O (paper intro)")
def io_dump() -> str:
    """The HACC motivating arithmetic: per-node ~1 GB fields dumped against
    a shared PFS, raw vs cuSZ+-compressed (compression at the simulated
    V100's overall throughput)."""
    from ..parallel.checkpoint import estimate_dump_cost
    from ..parallel.io_model import MIRA_CLASS_PFS, MODERN_PFS

    config = CompressorConfig(eb=1e-3)
    f = get_dataset("HACC").example_field()
    res = compress(f.data, config)
    # Scale measured sizes to the paper-scale per-rank field.
    per_rank_raw = f.paper_bytes
    per_rank_stored = int(per_rank_raw / res.compression_ratio)
    art, crep = run_compression(
        f.data, config, get_device("V100"), n_sim=f.paper_elements
    )
    rows = []
    for n_ranks in (16, 256, 4096, 16384):
        for pfs in (MIRA_CLASS_PFS, MODERN_PFS):
            raw, packed = estimate_dump_cost(
                [per_rank_raw] * n_ranks,
                [per_rank_stored] * n_ranks,
                pfs,
                compress_gbps_per_rank=crep.overall_gbps,
            )
            rows.append(
                [
                    f"{n_ranks} ranks / {pfs.name}",
                    raw.total_seconds,
                    packed.compress_seconds,
                    packed.write_seconds,
                    packed.total_seconds,
                    f"{raw.total_seconds / packed.total_seconds:.1f}x",
                ]
            )
    head = (
        f"HACC-like dump: {per_rank_raw / 1e9:.2f} GB/rank, CR "
        f"{res.compression_ratio:.1f}x, compression at "
        f"{crep.overall_gbps:.1f} GB/s per rank (V100 model)"
    )
    return head + "\n" + format_table(
        ["configuration", "raw dump s", "compress s", "write s", "total s", "speedup"],
        rows,
    )


@register("future_scaling", "conclusion's extrapolation: V100 -> A100 -> H100")
def future_scaling() -> str:
    """The paper concludes cuSZ+ "can benefit more from the improvement of
    memory bandwidth than that of peak FLOPS"; run the calibrated pipeline
    on an H100-class device (3.7x V100 bandwidth, 1.55x issue rate) and see
    which kernels follow which axis."""
    config = CompressorConfig(eb=1e-4)
    f = get_dataset("Nyx").example_field()
    per_dev = {}
    for dev_name in ("V100", "A100", "H100"):
        device = get_device(dev_name)
        art, crep = run_compression(
            f.data, config, device, impl="cuszplus", n_sim=f.paper_elements
        )
        _, drep = run_decompression(
            art, config, device, impl="cuszplus", n_sim=f.paper_elements
        )
        col = {s.name.split("[")[0]: s.gbps for s in crep.stages + drep.stages}
        col["overall compress"] = crep.overall_gbps
        col["overall decompress"] = drep.overall_gbps
        per_dev[dev_name] = col
    rows = []
    for kernel in per_dev["V100"]:
        v, a, h = (per_dev[d][kernel] for d in ("V100", "A100", "H100"))
        rows.append([kernel, v, a, h, f"{h / v:.2f}x"])
    v100 = get_device("V100")
    h100 = get_device("H100")
    note = (
        f"bandwidth axis: {h100.mem_bw / v100.mem_bw:.2f}x; "
        f"issue (SMxclock) axis: {h100.issue_rate / v100.issue_rate:.2f}x\n"
        "memory-bound kernels ride the first, Huffman decode the second --\n"
        "decompression becomes increasingly decode-dominated on future parts."
    )
    return format_table(
        ["kernel", "V100", "A100", "H100", "H100/V100"],
        rows,
        title="Nyx baryon_density @ eb=1e-4, GB/s",
    ) + "\n" + note


@register("ablation_lz", "dictionary stage: from-scratch LZ77 vs zlib on quant streams")
def ablation_lz() -> str:
    import time
    import zlib

    from ..encoding.lz77 import lz_compress, lz_decompress

    rows = []
    for ds_name, field_name in (("CESM", "FSDSC"), ("CESM", "PS"), ("Nyx", "baryon_density")):
        f = get_dataset(ds_name).field(field_name)
        bundle, _ = quantize_field(f.data, CompressorConfig(eb=1e-2))
        raw = bundle.quant.tobytes()
        t0 = time.perf_counter()
        ours = lz_compress(raw)
        t_ours = time.perf_counter() - t0
        assert lz_decompress(ours) == raw
        t0 = time.perf_counter()
        theirs = zlib.compress(raw, 6)
        t_zlib = time.perf_counter() - t0
        rows.append(
            [
                f"{ds_name}/{field_name}",
                len(raw) / len(ours),
                len(raw) / len(theirs),
                t_ours * 1e3,
                t_zlib * 1e3,
            ]
        )
    note = (
        "the from-scratch coder (entropy-coded tokens, greedy parse) lands\n"
        "within ~1.5x of zlib's ratio; its structure -- parallel candidate\n"
        "search and length extension, inherently sequential parse -- is the\n"
        "paper's point about dictionary coding on GPUs."
    )
    return format_table(
        ["quant stream", "LZ77 CR", "zlib CR", "LZ77 ms", "zlib ms"],
        rows,
        title="dictionary coding of quant-code bytes @ eb=1e-2",
    ) + "\n" + note


@register("roofline", "per-kernel bound classification on V100")
def roofline() -> str:
    config = CompressorConfig(eb=1e-4)
    f = get_dataset("Nyx").example_field()
    device = get_device("V100")
    art, crep = run_compression(f.data, config, device, n_sim=f.paper_elements)
    _, drep = run_decompression(art, config, device, n_sim=f.paper_elements)
    rows = []
    for s in crep.stages + drep.stages:
        rows.append([s.name, s.gbps, s.seconds * 1e3, s.bound])
    return format_table(
        ["kernel", "GB/s", "time ms", "bound"],
        rows,
        title=f"Nyx baryon_density at paper scale ({f.paper_bytes / 1e6:.0f} MB) on V100",
    )


@register("ablation_host", "why not just add gzip? host-stage cost (Section III-A.3)")
def ablation_host() -> str:
    """Price cuSZ's Step-9 (ship the Huffman payload over PCIe, run the CPU
    dictionary codec) against the GPU-only adaptive workflow -- the paper's
    argument for compressibility-awareness instead of a host stage."""
    from ..gpu.host_model import host_link_for, host_stage_time

    config = CompressorConfig(eb=1e-2)
    rows = []
    for ds_name, field_name in (("CESM", "FSDSC"), ("Nyx", "baryon_density")):
        f = get_dataset(ds_name).field(field_name)
        device = get_device("V100")
        link = host_link_for(device)
        # GPU-only paths.
        _, rep_h = run_compression(f.data, config, device, workflow="huffman",
                                   n_sim=f.paper_elements)
        _, rep_r = run_compression(f.data, config, device, workflow="rle",
                                   n_sim=f.paper_elements)
        res_h = compress(f.data, config.with_(workflow="huffman"))
        res_lz = compress(f.data, config.with_(workflow="huffman+lz"))
        res_r = compress(f.data, config.with_(workflow="rle"))
        # Host-stage path: huffman on GPU, payload shipped + zstd'd on host.
        payload = int(f.paper_bytes / res_h.compression_ratio)
        t_xfer, t_codec = host_stage_time(payload, link, codec="zstd")
        t_total = rep_h.total_seconds + t_xfer + t_codec
        host_gbps = f.paper_bytes / t_total / 1e9
        rows.append([
            f"{ds_name}/{field_name} GPU huffman",
            rep_h.overall_gbps, f"{res_h.compression_ratio:.1f}x",
        ])
        rows.append([
            "  + host zstd stage", host_gbps, f"{res_lz.compression_ratio:.1f}x",
        ])
        rows.append([
            "  GPU Workflow-RLE", rep_r.overall_gbps, f"{res_r.compression_ratio:.1f}x",
        ])
    note = (
        "the host stage buys ratio but divides throughput; Workflow-RLE\n"
        "recovers (most of) the ratio while staying at GPU speed -- the\n"
        "design argument of Section III."
    )
    return format_table(
        ["pipeline", "overall GB/s", "CR"],
        rows,
        title="V100 @ eb=1e-2 (host: PCIe3 + ~500 MB/s Zstd)",
    ) + "\n" + note


@register("fidelity", "reproduction scorecard: measured vs paper, all throughput tables")
def fidelity() -> str:
    """Quantify the reproduction: per cell group, the geometric mean and
    worst-case ratio of measured/paper across Tables II, VI and VII."""
    config = CompressorConfig(eb=1e-4)
    ratios: dict[str, list[float]] = {}

    def note(group: str, measured: float, target: float | None) -> None:
        if target and measured > 0:
            ratios.setdefault(group, []).append(measured / target)

    # Table VII (both devices) + Table VI via the same pipeline runs.
    results = {}
    for ds_name in paper.TABLE7_DATASETS:
        f = get_dataset(ds_name).example_field()
        for dev_name in ("V100", "A100"):
            device = get_device(dev_name)
            art, crep = run_compression(f.data, config, device, n_sim=f.paper_elements)
            _, drep = run_decompression(art, config, device, n_sim=f.paper_elements)
            col = {s.name.split("[")[0]: s.gbps for s in crep.stages + drep.stages}
            col["overall_compress"] = crep.overall_gbps
            col["overall_decompress"] = drep.overall_gbps
            results[(ds_name, dev_name)] = col
            targets = paper.TABLE7_V100 if dev_name == "V100" else paper.TABLE7_A100
            for kernel in paper.TABLE7_ROWS:
                note(f"T7 {kernel} {dev_name}", col.get(kernel, 0.0),
                     targets[kernel][ds_name])

    # Table VI: cuSZ baselines on V100.
    model = CostModel(get_device("V100"))
    for ds_name, kernels in paper.TABLE6.items():
        f = get_dataset(ds_name).example_field()
        bundle, _, prof = lorenzo_construct_kernel(f.data, config, impl="cusz",
                                                   n_sim=f.paper_elements)
        note("T6 cuSZ construct", model.time(prof).gbps, kernels["lorenzo_construct"][0])
        from ..kernels.huffman_kernels import huffman_encode_kernel

        _, _, eprof = huffman_encode_kernel(bundle.quant, config, impl="cusz",
                                            n_sim=f.paper_elements)
        note("T6 cuSZ encode", model.time(eprof).gbps, kernels["huffman_encode"][0])
        _, rprof = lorenzo_reconstruct_kernel(bundle, variant="coarse",
                                              n_sim=f.paper_elements)
        note("T6 cuSZ reconstruct", model.time(rprof).gbps,
             kernels["lorenzo_reconstruct"][0])

    # Table IV: compression ratios (codecs, no model).
    ds = get_dataset("CESM")
    cfg2 = CompressorConfig(eb=1e-2)
    for name, (qhg, qh, rle, both) in list(TABLE4_CESM_TARGETS.items()):
        f = ds.field(name)
        res = compress(f.data, cfg2.with_(workflow="rle"))
        note("T4 RLE ratio", res.compression_ratio, rle)

    rows = []
    overall = []
    for group in sorted(ratios):
        r = np.array(ratios[group])
        overall.extend(np.log(r))
        gm = float(np.exp(np.mean(np.log(r))))
        worst = float(r[np.argmax(np.abs(np.log(r)))])
        rows.append([group, len(r), gm, worst])
    gm_all = float(np.exp(np.mean(overall)))
    table = format_table(
        ["cell group", "#cells", "geomean meas/paper", "worst"],
        rows,
        title="reproduction scorecard (1.00 = exact)",
    )
    return table + f"\n\noverall geometric mean across {len(overall)} cells: {gm_all:.3f}"
