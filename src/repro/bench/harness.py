"""Experiment harness: table formatting and the experiment registry.

Every paper table/figure has one experiment function in
:mod:`repro.bench.experiments`; this module provides the shared plumbing --
fixed-width table rendering (so terminal output reads like the paper's
tables), an ASCII series plotter for the figures, and the registry the CLI
dispatches on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = [
    "format_table",
    "ascii_series",
    "Experiment",
    "register",
    "get_experiment",
    "all_experiments",
]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table (right-aligned numeric columns)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(
            " | ".join(
                c.ljust(w) if i == 0 else c.rjust(w)
                for i, (c, w) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(out)


def ascii_series(
    x: Sequence[float],
    ys: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Plot one or more series as ASCII art (the figure stand-in)."""
    symbols = "*o+x#@"
    all_y = [v for series in ys.values() for v in series if v == v]
    if not all_y:
        return "(no data)"
    ymin, ymax = min(all_y), max(all_y)
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(x), max(x)
    if xmax == xmin:
        xmax = xmin + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, series) in enumerate(ys.items()):
        sym = symbols[si % len(symbols)]
        for xv, yv in zip(x, series):
            if yv != yv:
                continue
            col = int((xv - xmin) / (xmax - xmin) * (width - 1))
            row = int((yv - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = sym
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ymax:10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{ymin:10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{xmin:<10.4g}" + " " * (width - 20) + f"{xmax:>10.4g}")
    legend = "   ".join(
        f"{symbols[i % len(symbols)]} {name}" for i, name in enumerate(ys)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


@dataclass
class Experiment:
    """A registered paper experiment."""

    name: str
    description: str
    func: Callable[[], str]
    tags: tuple[str, ...] = ()
    #: Structured record of the most recent :meth:`run` (JSON-serializable):
    #: wall seconds, span/stage summary, and a metrics snapshot.  ``None``
    #: until the experiment has run.
    last_record: dict | None = field(default=None, compare=False, repr=False)

    def run(self) -> str:
        from .. import telemetry as tel

        t0 = time.perf_counter()
        with tel.trace(self.name) as tr:
            body = self.func()
        dt = time.perf_counter() - t0
        self.last_record = self._build_record(dt, tr)
        return f"== {self.name}: {self.description} ==\n{body}\n(ran in {dt:.1f}s)"

    def _build_record(self, seconds: float, tr) -> dict:
        from .. import telemetry as tel

        spans = list(tr.spans())
        stage_seconds: dict[str, float] = {}
        for s in spans:
            stage_seconds[s.name] = stage_seconds.get(s.name, 0.0) + s.duration
        if tel.enabled():
            tel.REGISTRY.gauge("repro_experiment_seconds").set_value(
                seconds, experiment=self.name
            )
        return {
            "experiment": self.name,
            "description": self.description,
            "tags": list(self.tags),
            "seconds": seconds,
            "telemetry_enabled": tel.enabled(),
            "n_spans": len(spans),
            "stage_seconds": stage_seconds,
            "metrics": tel.render_json(),
        }


_REGISTRY: dict[str, Experiment] = {}


def register(name: str, description: str, tags: tuple[str, ...] = ()):
    """Decorator adding an experiment function to the registry."""

    def deco(func):
        _REGISTRY[name] = Experiment(name=name, description=description, func=func, tags=tags)
        return func

    return deco


def get_experiment(name: str) -> Experiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> dict[str, Experiment]:
    return dict(_REGISTRY)
