"""The paper's published numbers, for side-by-side comparison.

Transcribed from Tian et al., "Optimizing Error-Bounded Lossy Compression
for Scientific Data on GPUs", IEEE CLUSTER 2021: Tables I, II, V, VI, VII.
(Table IV lives next to the CESM generators in
:mod:`repro.data.datasets`.)  Units are GB/s unless stated otherwise.
"""

from __future__ import annotations

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE5",
    "TABLE6",
    "TABLE7_V100",
    "TABLE7_A100",
    "TABLE7_SIZES_MB",
]

#: Table I: averaged compression ratios, dataset -> eb -> (qg, qh, qhg).
TABLE1: dict[str, dict[float, tuple[float, float, float]]] = {
    "HACC": {
        1e-2: (22.72, 20.33, 31.02),
        1e-3: (7.58, 9.51, 10.01),
        1e-4: (3.89, 4.82, 5.01),
    },
    "Hurricane": {
        1e-2: (43.67, 24.80, 58.76),
        1e-3: (18.41, 17.04, 24.65),
        1e-4: (10.31, 9.76, 12.99),
    },
    "CESM": {
        1e-2: (61.21, 24.24, 75.50),
        1e-3: (20.78, 18.38, 28.13),
        1e-4: (9.98, 10.29, 12.50),
    },
    "Nyx": {
        1e-2: (118.94, 30.24, 164.39),
        1e-3: (28.25, 23.92, 40.17),
        1e-4: (12.87, 15.27, 17.95),
    },
}

#: Table II: Lorenzo reconstruction proof-of-concept throughput (GB/s).
#: dim -> device -> {variant: value}; None where the paper has a dash.
TABLE2: dict[str, dict[str, dict[str, float | None]]] = {
    "1D (HACC)": {
        "V100": {"cusz": 16.8, "naive": 252.6, "optimized": 313.1},
        "A100": {"cusz": None, "naive": 219.8, "optimized": 504.5},
    },
    "2D (CESM)": {
        "V100": {"cusz": 58.5, "naive": 198.4, "optimized": 254.2},
        "A100": {"cusz": None, "naive": 182.1, "optimized": 508.6},
    },
    "3D (Nyx)": {
        "V100": {"cusz": 29.7, "naive": 175.9, "optimized": 238.1},
        "A100": {"cusz": None, "naive": 147.9, "optimized": 405.1},
    },
}

#: Table V: Workflow-RLE vs cuSZ Workflow-Huffman.
#: (dataset, field) -> impl -> (V100 stage GB/s, V100 overall, A100 stage,
#: A100 overall, CR).  "stage" is the RLE kernel for ours, Huffman for cuSZ.
TABLE5: dict[tuple[str, str], dict[str, tuple[float, float, float, float, float]]] = {
    ("RTM", "snapshot2800"): {
        "ours": (142.4, 57.8, 212.6, 78.0, 76.0),
        "cusz": (135.7, 55.1, 233.9, 80.8, 31.7),
    },
    ("CESM", "FSDSC"): {
        "ours": (104.8, 47.7, 162.4, 57.8, 26.1),
        "cusz": (146.3, 54.8, 146.4, 55.5, 23.0),
    },
    ("Nyx", "baryon_density"): {
        "ours": (159.1, 64.1, 214.5, 91.2, 122.7),
        "cusz": (130.8, 58.9, 234.2, 94.8, 31.0),
    },
}

#: Table VI: kernel throughput on V100, dataset -> kernel -> (cusz, ours).
TABLE6: dict[str, dict[str, tuple[float, float]]] = {
    "HACC": {
        "lorenzo_construct": (207.7, 307.4),
        "huffman_encode": (54.1, 58.3),
        "lorenzo_reconstruct": (16.8, 313.1),
    },
    "CESM": {
        "lorenzo_construct": (252.1, 273.9),
        "huffman_encode": (57.2, 107.7),
        "lorenzo_reconstruct": (58.5, 254.2),
    },
    "Hurricane": {
        "lorenzo_construct": (175.8, 229.9),
        "huffman_encode": (55.2, 111.2),
        "lorenzo_reconstruct": (43.9, 218.4),
    },
    "Nyx": {
        "lorenzo_construct": (200.2, 296.0),
        "huffman_encode": (58.8, 120.5),
        "lorenzo_reconstruct": (29.7, 238.1),
    },
    "QMCPACK": {
        "lorenzo_construct": (189.6, 298.6),
        "huffman_encode": (61.0, 110.8),
        "lorenzo_reconstruct": (22.4, 255.5),
    },
}

_T7_ROWS = [
    "lorenzo_construct",
    "gather_outlier",
    "histogram",
    "huffman_encode",
    "overall_compress",
    "huffman_decode",
    "scatter_outlier",
    "lorenzo_reconstruct",
    "overall_decompress",
]

_T7_DATASETS = ["HACC", "CESM", "Hurricane", "Nyx", "RTM", "Miranda", "QMCPACK"]

#: Table VII, V100 columns: kernel -> dataset -> GB/s.
TABLE7_V100: dict[str, dict[str, float]] = {
    "lorenzo_construct": dict(zip(_T7_DATASETS, [328.3, 273.9, 199.0, 296.0, 193.1, 289.3, 298.6])),
    "gather_outlier": dict(zip(_T7_DATASETS, [221.4, 160.6, 251.1, 238.0, 249.7, 228.6, 261.2])),
    "histogram": dict(zip(_T7_DATASETS, [565.9, 356.5, 438.4, 372.4, 573.6, 489.8, 724.3])),
    "huffman_encode": dict(zip(_T7_DATASETS, [58.3, 107.7, 111.2, 120.5, 123.2, 161.1, 110.8])),
    "overall_compress": dict(zip(_T7_DATASETS, [42.1, 44.8, 49.3, 53.9, 52.5, 62.2, 56.9])),
    "huffman_decode": dict(zip(_T7_DATASETS, [42.1, 37.9, 45.8, 66.8, 48.9, 42.7, 44.6])),
    "scatter_outlier": dict(zip(_T7_DATASETS, [225.0, 334.8, 628.1, 359.7, 440.2, 679.1, 347.1])),
    "lorenzo_reconstruct": dict(zip(_T7_DATASETS, [308.7, 267.0, 200.1, 251.7, 201.3, 245.3, 255.5])),
    "overall_decompress": dict(zip(_T7_DATASETS, [31.8, 30.2, 35.2, 46.0, 36.1, 34.5, 34.2])),
}

#: Table VII, A100 columns.
TABLE7_A100: dict[str, dict[str, float]] = {
    "lorenzo_construct": dict(zip(_T7_DATASETS, [501.1, 466.8, 429.0, 481.3, 422.7, 480.7, 492.9])),
    "gather_outlier": dict(zip(_T7_DATASETS, [324.8, 151.4, 284.2, 334.9, 221.6, 336.0, 266.2])),
    "histogram": dict(zip(_T7_DATASETS, [923.5, 409.8, 681.2, 870.2, 793.9, 714.9, 569.7])),
    "huffman_encode": dict(zip(_T7_DATASETS, [174.6, 121.6, 206.0, 217.2, 202.2, 201.6, 198.4])),
    "overall_compress": dict(zip(_T7_DATASETS, [84.1, 51.5, 82.2, 92.4, 76.4, 87.6, 79.5])),
    "huffman_decode": dict(zip(_T7_DATASETS, [48.5, 26.6, 51.8, 91.2, 56.0, 50.1, 49.0])),
    "scatter_outlier": dict(zip(_T7_DATASETS, [658.4, 630.2, 918.3, 797.4, 906.6, 1066.8, 782.8])),
    "lorenzo_reconstruct": dict(zip(_T7_DATASETS, [504.4, 495.3, 345.5, 398.6, 335.6, 386.9, 384.0])),
    "overall_decompress": dict(zip(_T7_DATASETS, [41.4, 24.3, 43.0, 67.9, 45.6, 42.6, 41.2])),
}

#: Table VII header row: per-field sizes in MB.
TABLE7_SIZES_MB = dict(
    zip(_T7_DATASETS, [1071.8, 24.7, 95.4, 512.0, 180.7, 144.0, 601.5])
)

TABLE7_ROWS = _T7_ROWS
TABLE7_DATASETS = _T7_DATASETS
