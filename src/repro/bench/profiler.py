"""Pipeline profiler: fold span trees into hotspots and flamegraph stacks.

Two views over the same telemetry trace:

* **hotspots** -- per span name: call count, inclusive wall time, *self*
  time (inclusive minus children -- where the time actually goes), bytes
  moved and the derived GB/s, sorted by self time;
* **folded stacks** -- ``root;child;leaf <self-microseconds>`` lines, the
  input format of flamegraph.pl / speedscope / Perfetto's "import folded".

Plus a per-kernel table derived from the ``repro_kernel_*`` counters and
the simulated-seconds histogram: elements processed, DRAM bytes moved, and
the cost-model GB/s each kernel achieved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry as tel
from .harness import format_table

__all__ = [
    "HotSpot",
    "ProfileView",
    "fold_trace",
    "kernel_table",
    "profile_scenario",
]


@dataclass
class HotSpot:
    """Aggregated statistics for one span name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0
    bytes_moved: int = 0

    @property
    def gbps(self) -> float:
        return (
            self.bytes_moved / self.total_seconds / 1e9
            if self.total_seconds > 0 and self.bytes_moved
            else 0.0
        )


@dataclass
class ProfileView:
    """Hotspot list + folded stacks for one captured trace."""

    hotspots: list[HotSpot] = field(default_factory=list)
    folded: dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0

    def render(self, top: int = 20) -> str:
        rows = []
        for h in self.hotspots[:top]:
            share = h.self_seconds / self.total_seconds if self.total_seconds else 0.0
            rows.append([
                h.name, h.count,
                h.self_seconds * 1e3, h.total_seconds * 1e3,
                share * 100.0, h.gbps if h.gbps else None,
            ])
        return format_table(
            ["span", "calls", "self ms", "total ms", "self %", "GB/s"],
            rows,
            title=f"hotspots by self time (total {self.total_seconds * 1e3:.1f} ms)",
        )

    def folded_lines(self) -> list[str]:
        """``path self_us`` lines, flamegraph.pl-compatible."""
        return [
            f"{path} {int(round(us))}"
            for path, us in sorted(self.folded.items())
            if us >= 1.0
        ]


def fold_trace(trace) -> ProfileView:
    """Aggregate a :class:`~repro.telemetry.context.Trace` (or span list)."""
    roots = trace.roots if hasattr(trace, "roots") else list(trace)
    spots: dict[str, HotSpot] = {}
    folded: dict[str, float] = {}
    total = 0.0

    def visit(span, path: str) -> None:
        nonlocal total
        here = f"{path};{span.name}" if path else span.name
        child_time = sum(c.duration for c in span.children)
        self_s = max(span.duration - child_time, 0.0)
        spot = spots.setdefault(span.name, HotSpot(span.name))
        spot.count += 1
        spot.total_seconds += span.duration
        spot.self_seconds += self_s
        spot.bytes_moved += max(span.bytes_in, span.bytes_out)
        folded[here] = folded.get(here, 0.0) + self_s * 1e6
        for child in span.children:
            visit(child, here)

    for root in roots:
        total += root.duration
        visit(root, "")
    view = ProfileView(
        hotspots=sorted(spots.values(), key=lambda h: -h.self_seconds),
        folded=folded,
        total_seconds=total,
    )
    return view


def kernel_table() -> str:
    """Per-kernel counter table: elements, bytes moved, cost-model GB/s."""
    elements = tel.REGISTRY.get("repro_kernel_elements_total")
    kbytes = tel.REGISTRY.get("repro_kernel_bytes_total")
    sim = tel.REGISTRY.get("repro_kernel_simulated_seconds")
    if elements is None or not elements.to_json()["values"]:
        return "(no kernel counters recorded; run a gpu workload first)"
    per_kernel: dict[str, dict] = {}
    for entry in elements.to_json()["values"]:
        name = entry["labels"].get("kernel", "?")
        per_kernel.setdefault(name, {})["elements"] = entry["value"]
    if kbytes is not None:
        for entry in kbytes.to_json()["values"]:
            name = entry["labels"].get("kernel", "?")
            key = "bytes_" + entry["labels"].get("direction", "read")
            per_kernel.setdefault(name, {})[key] = entry["value"]
    if sim is not None:
        for entry in sim.to_json()["values"]:
            name = entry["labels"].get("kernel", "?")
            per_kernel.setdefault(name, {})["sim_seconds"] = entry["sum"]
    rows = []
    for name in sorted(per_kernel):
        k = per_kernel[name]
        moved = k.get("bytes_read", 0.0) + k.get("bytes_written", 0.0)
        secs = k.get("sim_seconds", 0.0)
        rows.append([
            name,
            k.get("elements"),
            moved / 1e6 if moved else None,
            secs * 1e3 if secs else None,
            moved / secs / 1e9 if secs and moved else None,
        ])
    return format_table(
        ["kernel", "elements", "MB moved", "sim ms", "GB/s"],
        rows, title="simulated kernels (cost-model device time)",
    )


def profile_scenario(scenario_name: str = "smoke", repeats: int = 1) -> tuple[ProfileView, str]:
    """Run a scenario once under a trace; returns (view, kernel table)."""
    from .scenarios import get_scenario

    scenario = get_scenario(scenario_name)
    tel.reset_metrics()
    with tel.scope(True), tel.trace(f"profile {scenario.name}") as tr:
        if scenario.extra is not None:
            scenario.extra()
        for case in scenario.cases:
            data = case.make_field()
            from ..core.compressor import compress, decompress_with_stats
            from ..core.config import CompressorConfig

            config = CompressorConfig(eb=case.eb, eb_mode=case.eb_mode,
                                      workflow=case.workflow)
            for _ in range(max(int(repeats), 1)):
                result = compress(data, config)
                decompress_with_stats(result.archive)
    return fold_trace(tr), kernel_table()
