"""Structured benchmark run records (the ``BENCH_<label>.json`` format).

A *record* is the machine-readable outcome of one ``repro bench run``:
per-case timing statistics aggregated from the telemetry span tree, quality
figures (compression ratio / PSNR / max error), the selector audit, a
metrics-registry snapshot, and an environment fingerprint that makes two
records comparable (same machine? same commit?).

The schema is versioned (``repro.bench/v1``) and deliberately stable: the
regression detector (:mod:`repro.bench.regression`) and CI gate on these
files, so additions are fine but renames/removals bump the version.
"""

from __future__ import annotations

import json
import math
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

__all__ = [
    "SCHEMA",
    "RecordSchemaError",
    "RECORD_REQUIRED_KEYS",
    "RESULT_REQUIRED_KEYS",
    "environment_fingerprint",
    "quantiles",
    "summarize",
    "build_record",
    "validate_record",
    "write_record",
    "load_record",
    "record_filename",
]

#: Current record schema identifier.
SCHEMA = "repro.bench/v1"

#: Prefix shared by every version of the record schema.
_SCHEMA_FAMILY = "repro.bench/v"


class RecordSchemaError(ValueError):
    """A record declares a ``repro.bench`` schema this tool cannot read.

    Distinguished from plain :class:`ValueError` (malformed record) so the
    CLI can exit with a dedicated status: a *newer* record is not corrupt,
    the reader is just too old for it.  ``newer`` is True exactly in that
    case.
    """

    def __init__(self, message: str, schema: str, newer: bool) -> None:
        super().__init__(message)
        self.schema = schema
        self.newer = newer


def _check_schema(schema: object) -> None:
    """Version-aware schema check: newer majors get a distinct error."""
    if schema == SCHEMA:
        return
    newer = False
    if isinstance(schema, str) and schema.startswith(_SCHEMA_FAMILY):
        try:
            version = int(schema[len(_SCHEMA_FAMILY):])
        except ValueError:
            version = None
        current = int(SCHEMA[len(_SCHEMA_FAMILY):])
        newer = version is not None and version > current
    if newer:
        raise RecordSchemaError(
            f"record schema {schema!r} is newer than this tool understands "
            f"({SCHEMA!r}); upgrade repro to compare it",
            schema=schema, newer=True,
        )
    raise RecordSchemaError(
        f"unsupported record schema {schema!r}; expected {SCHEMA!r}",
        schema=str(schema), newer=False,
    )

#: Keys every record must carry at the top level.
RECORD_REQUIRED_KEYS = (
    "schema", "label", "scenario", "created_unix", "environment",
    "config", "results", "metrics",
)

#: Keys every per-case result must carry.
RESULT_REQUIRED_KEYS = (
    "case", "dataset", "field", "eb", "workflow", "repeats",
    "timing", "quality", "sizes", "selector",
)

#: Keys every timing summary must carry.
SUMMARY_REQUIRED_KEYS = ("mean", "min", "max", "stdev", "n")


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _cpu_model() -> str:
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def environment_fingerprint() -> dict:
    """Everything needed to judge whether two records are comparable."""
    import numpy

    return {
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu": _cpu_model(),
        "cpu_count": os.cpu_count() or 1,
    }


def summarize(samples: list[float]) -> dict:
    """mean/min/max/stdev/n summary of repeated measurements."""
    if not samples:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "stdev": 0.0, "n": 0}
    return {
        "mean": statistics.fmean(samples),
        "min": min(samples),
        "max": max(samples),
        "stdev": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "n": len(samples),
    }


def quantiles(
    samples: list[float], qs: tuple[float, ...] = (0.5, 0.95, 0.99)
) -> dict:
    """Exact order-statistic quantiles keyed Prometheus-style (``p50`` ...).

    Unlike the metrics registry's bucket-interpolated estimates, these come
    from the sorted raw samples, so a latency report built from them is
    exact.  Empty input yields all-zero quantiles (``n == 0`` elsewhere in
    the summary disambiguates).
    """
    out = {}
    ordered = sorted(samples)
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        key = f"p{q * 100:g}"
        if not ordered:
            out[key] = 0.0
            continue
        rank = max(int(math.ceil(q * len(ordered))) - 1, 0)
        out[key] = ordered[min(rank, len(ordered) - 1)]
    return out


def build_record(
    label: str,
    scenario: str,
    results: list[dict],
    config: dict,
    metrics: dict,
) -> dict:
    """Assemble and validate a complete record dict."""
    record = {
        "schema": SCHEMA,
        "label": label,
        "scenario": scenario,
        "created_unix": time.time(),
        "environment": environment_fingerprint(),
        "config": config,
        "results": results,
        "metrics": metrics,
    }
    validate_record(record)
    return record


def validate_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` satisfies the v1 schema."""
    if not isinstance(record, dict):
        raise ValueError(f"record must be a dict, got {type(record).__name__}")
    # Schema first: a record from a future writer may legitimately lack or
    # rename keys, and "your tool is too old" beats "missing keys" there.
    _check_schema(record.get("schema"))
    missing = [k for k in RECORD_REQUIRED_KEYS if k not in record]
    if missing:
        raise ValueError(f"record missing required keys: {missing}")
    if not isinstance(record["results"], list) or not record["results"]:
        raise ValueError("record must carry a non-empty results list")
    for i, result in enumerate(record["results"]):
        missing = [k for k in RESULT_REQUIRED_KEYS if k not in result]
        if missing:
            raise ValueError(f"results[{i}] missing required keys: {missing}")
        timing = result["timing"]
        if not isinstance(timing, dict) or not timing:
            raise ValueError(f"results[{i}] timing must be a non-empty dict")
        for stage, summary in timing.items():
            bad = [k for k in SUMMARY_REQUIRED_KEYS if k not in summary]
            if bad:
                raise ValueError(
                    f"results[{i}] timing[{stage!r}] missing {bad}"
                )
    json.dumps(record)  # must be serializable end to end


def record_filename(label: str) -> str:
    """Canonical on-disk name for a record with the given label."""
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in label)
    return f"BENCH_{safe}.json"


def write_record(record: dict, out_dir: str | Path) -> Path:
    """Validate and write ``record`` to ``out_dir``; returns the file path."""
    validate_record(record)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / record_filename(record["label"])
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path


def load_record(path: str | Path) -> dict:
    """Read and validate a record file."""
    record = json.loads(Path(path).read_text())
    validate_record(record)
    return record
