"""Noise-aware benchmark regression detection between two BENCH records.

Timing metrics are compared on the best-of-k (``min``) with a relative
threshold widened by the measured noise (coefficient of variation across
repeats): a stage only regresses when the new best exceeds the old best by
more than ``max(base_tolerance, noise_sigma * cv)``.  Quality metrics
(compression ratio, PSNR, max error) are deterministic and use tight
thresholds.  Two profiles ship: ``default`` (local, strict-ish) and ``ci``
(generous: shared runners are noisy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .harness import format_table
from .record import validate_record

__all__ = [
    "ThresholdProfile",
    "PROFILES",
    "CompareRow",
    "CompareReport",
    "compare_records",
]


@dataclass(frozen=True)
class ThresholdProfile:
    """Per-metric-class tolerances for one comparison strictness level."""

    name: str
    #: Base relative tolerance on timing metrics (0.25 = +25% is a regression).
    time_rel: float = 0.25
    #: Noise widening: tolerance >= noise_sigma * max(cv_old, cv_new).
    noise_sigma: float = 3.0
    #: Stages whose old best is under this many seconds are reported but
    #: never gated on (timer noise dominates).
    min_seconds: float = 0.002
    #: Relative drop in compression ratio that counts as a regression.
    ratio_rel: float = 0.02
    #: Absolute dB drop in PSNR that counts as a regression.
    psnr_abs: float = 0.1
    #: Relative growth in max error that counts as a regression.
    error_rel: float = 0.02


PROFILES: dict[str, ThresholdProfile] = {
    "default": ThresholdProfile(name="default"),
    "ci": ThresholdProfile(
        name="ci", time_rel=1.5, noise_sigma=5.0, min_seconds=0.01,
        ratio_rel=0.05, psnr_abs=0.5, error_rel=0.10,
    ),
}


@dataclass(frozen=True)
class CompareRow:
    """One (case, metric) comparison outcome."""

    case: str
    metric: str
    old: float | None
    new: float | None
    delta_pct: float | None
    tolerance_pct: float | None
    status: str  # ok | regression | improved | info | missing | new

    def to_json(self) -> dict:
        return {
            "case": self.case, "metric": self.metric,
            "old": self.old, "new": self.new,
            "delta_pct": self.delta_pct, "tolerance_pct": self.tolerance_pct,
            "status": self.status,
        }


@dataclass
class CompareReport:
    """All rows of a record-vs-record comparison."""

    profile: str
    rows: list[CompareRow] = field(default_factory=list)

    @property
    def regressions(self) -> list[CompareRow]:
        return [r for r in self.rows if r.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_json(self) -> dict:
        return {
            "profile": self.profile,
            "ok": self.ok,
            "n_regressions": len(self.regressions),
            "rows": [r.to_json() for r in self.rows],
        }

    def render(self, all_rows: bool = False) -> str:
        """Human-readable comparison table plus the verdict line."""
        shown = self.rows if all_rows else [
            r for r in self.rows if r.status != "ok"
        ]
        if not shown and self.rows:
            shown = self.rows  # nothing notable: show everything
        table = format_table(
            ["case / metric", "old", "new", "delta %", "tol %", "status"],
            [
                [f"{r.case} · {r.metric}", r.old, r.new, r.delta_pct,
                 r.tolerance_pct, r.status]
                for r in shown
            ],
            title=f"bench compare (profile={self.profile})",
        )
        verdict = (
            "OK: no regressions"
            if self.ok
            else f"REGRESSION: {len(self.regressions)} metric(s) regressed"
        )
        return f"{table}\n{verdict}"


def _pct(old: float, new: float) -> float | None:
    if old == 0:
        return None
    return (new - old) / old * 100.0


def _cv(summary: dict) -> float:
    mean = summary.get("mean", 0.0)
    return summary.get("stdev", 0.0) / mean if mean > 0 else 0.0


def _compare_timing(case: str, old_t: dict, new_t: dict, prof: ThresholdProfile,
                    rows: list[CompareRow],
                    gate_stages: frozenset[str] = frozenset()) -> None:
    for stage in sorted(set(old_t) | set(new_t) | gate_stages):
        gated = stage in gate_stages
        o, n = old_t.get(stage), new_t.get(stage)
        if o is None or n is None:
            # A gated stage must exist in both records: silently dropping it
            # (e.g. a renamed span) would disable the gate without anyone
            # noticing, so its absence is itself a regression.
            rows.append(CompareRow(case, stage, o and o["min"], n and n["min"],
                                   None, None, "missing" if gated else "info"))
            continue
        tol = max(prof.time_rel, prof.noise_sigma * max(_cv(o), _cv(n)))
        old_best, new_best = o["min"], n["min"]
        delta = _pct(old_best, new_best)
        if old_best < prof.min_seconds and not gated:
            status = "info"
        elif new_best > old_best * (1.0 + tol):
            status = "regression"
        elif new_best < old_best * (1.0 - tol):
            status = "improved"
        else:
            status = "ok"
        rows.append(CompareRow(case, stage, old_best, new_best, delta,
                               tol * 100.0, status))


def _compare_quality(case: str, old_q: dict, new_q: dict, prof: ThresholdProfile,
                     rows: list[CompareRow]) -> None:
    def judge(metric: str, worse) -> None:
        o, n = old_q.get(metric), new_q.get(metric)
        if o is None or n is None:
            return
        rows.append(CompareRow(
            case, metric, o, n, _pct(o, n) if isinstance(o, (int, float)) else None,
            None, "regression" if worse(o, n) else "ok",
        ))

    judge("compression_ratio", lambda o, n: n < o * (1.0 - prof.ratio_rel))
    judge("psnr_db", lambda o, n: n < o - prof.psnr_abs)
    judge("max_error", lambda o, n: n > o * (1.0 + prof.error_rel))
    judge("bound_satisfied", lambda o, n: bool(o) and not bool(n))


def compare_records(
    old: dict, new: dict, profile: str | ThresholdProfile = "default",
    gate_stages=(),
) -> CompareReport:
    """Compare two validated BENCH records case by case.

    ``gate_stages`` names timing stages that are always gated: they are
    compared even when the profile's ``min_seconds`` floor would demote
    them to informational, and a gated stage missing from either record
    counts as a regression (so a renamed span cannot silently disable its
    gate).
    """
    validate_record(old)
    validate_record(new)
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    gates = frozenset(gate_stages)
    report = CompareReport(profile=prof.name)
    old_cases = {r["case"]: r for r in old["results"]}
    new_cases = {r["case"]: r for r in new["results"]}
    for name in sorted(set(old_cases) | set(new_cases)):
        if name not in new_cases:
            report.rows.append(CompareRow(name, "(case)", None, None, None, None,
                                          "missing"))
            continue
        if name not in old_cases:
            report.rows.append(CompareRow(name, "(case)", None, None, None, None,
                                          "new"))
            continue
        o, n = old_cases[name], new_cases[name]
        _compare_timing(name, o["timing"], n["timing"], prof, report.rows,
                        gates)
        _compare_quality(name, o["quality"], n["quality"], prof, report.rows)
    return report
