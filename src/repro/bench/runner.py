"""Structured benchmark harness: execute scenarios into BENCH records.

For every :class:`~repro.bench.scenarios.BenchCase` the runner repeats a
full compress → decompress round trip ``k`` times under a telemetry trace,
aggregates per-stage wall times from the span tree, measures quality
(compression ratio / PSNR / max error) once (the pipeline is
deterministic), and snapshots the metrics registry.  The result is a
validated ``repro.bench/v1`` record (see :mod:`repro.bench.record`).
"""

from __future__ import annotations

from .. import telemetry as tel
from ..analysis.metrics import evaluate_quality
from ..core.compressor import compress, decompress_with_stats
from ..core.config import CompressorConfig
from .record import build_record, summarize
from .scenarios import BenchCase, Scenario, get_scenario

__all__ = ["run_case", "run_scenario"]


def _stage_samples(tr, op: str) -> dict[str, float]:
    """``<op>.<stage>`` + ``<op>_total`` wall seconds from one trace."""
    out: dict[str, float] = {}
    for root in tr.roots:
        if root.name != op:
            continue
        out[f"{op}_total"] = root.duration
        for child in root.children:
            out[f"{op}.{child.name}"] = out.get(f"{op}.{child.name}", 0.0) + child.duration
    return out


def run_case(case: BenchCase, repeats: int) -> dict:
    """Run one case ``repeats`` times; returns the per-case result dict."""
    if case.block_bytes is not None or case.jobs is not None:
        return _run_block_case(case, repeats)
    field = case.make_field()
    config = CompressorConfig(
        eb=case.eb, eb_mode=case.eb_mode, workflow=case.workflow,
    )
    samples: dict[str, list[float]] = {}
    result = restored = None
    for _ in range(max(int(repeats), 1)):
        with tel.scope(True), tel.trace(case.name) as tr:
            result = compress(field, config)
            restored = decompress_with_stats(result.archive)
        for stage, seconds in {
            **_stage_samples(tr, "compress"),
            **_stage_samples(tr, "decompress"),
        }.items():
            samples.setdefault(stage, []).append(seconds)
    quality = evaluate_quality(field, restored.data, result.eb_abs)
    timing = {stage: summarize(vals) for stage, vals in sorted(samples.items())}
    best_compress = timing.get("compress_total", {}).get("min", 0.0)
    best_decompress = timing.get("decompress_total", {}).get("min", 0.0)
    return {
        "case": case.name,
        "dataset": case.dataset,
        "field": case.field_name,
        "eb": case.eb,
        "workflow": case.workflow,
        "repeats": int(repeats),
        "timing": timing,
        "quality": {
            "compression_ratio": result.compression_ratio,
            "psnr_db": quality.psnr_db,
            "max_error": quality.max_error,
            "nrmse": quality.nrmse,
            "bound_satisfied": bool(quality.bound_satisfied),
        },
        "sizes": {
            "original_bytes": result.original_bytes,
            "compressed_bytes": result.compressed_bytes,
            "section_sizes": result.section_sizes,
        },
        "throughput": {
            "compress_gbps": (
                result.original_bytes / best_compress / 1e9 if best_compress else 0.0
            ),
            "decompress_gbps": (
                result.original_bytes / best_decompress / 1e9 if best_decompress else 0.0
            ),
        },
        "selector": dict(result.selector_audit) if result.selector_audit else {},
        "workflow_selected": result.workflow,
    }


def _run_block_case(case: BenchCase, repeats: int) -> dict:
    """Multi-block engine path: time ``compress_blocks`` round trips.

    The trace roots are ``compress_blocks``/``decompress_blocks``; their
    totals are reported under the standard ``compress_total`` /
    ``decompress_total`` keys so regression comparison and throughput math
    work unchanged across serial and block cases, and mirrored as
    ``blocks.compress``/``blocks.decompress`` stages so scaling gates can
    target the block path by name.  A ``case.backend`` builds a fresh
    engine per repeat (pool spawn is part of the honest cost) and both the
    compress and decompress legs run through it.
    """
    from ..core.streaming import compress_blocks, decompress_blocks_with_stats
    from ..engine.backends import get_executor

    field = case.make_field()
    config = CompressorConfig(
        eb=case.eb, eb_mode=case.eb_mode, workflow=case.workflow,
    )
    block_bytes = case.block_bytes or (64 << 20)
    samples: dict[str, list[float]] = {}
    blob = restored = None
    engine_snap: dict | None = None
    for _ in range(max(int(repeats), 1)):
        eng = (
            get_executor(case.backend, jobs=case.jobs, config=config)
            if case.backend is not None else None
        )
        try:
            with tel.scope(True), tel.trace(case.name) as tr:
                blob = compress_blocks(
                    field, config, max_block_bytes=block_bytes,
                    jobs=case.jobs, backend=eng,
                )
                restored = decompress_blocks_with_stats(blob, backend=eng)
            if eng is not None:
                engine_snap = eng.diagnostics_snapshot()
        finally:
            if eng is not None:
                eng.shutdown(wait=True)
        raw = {
            **_stage_samples(tr, "compress_blocks"),
            **_stage_samples(tr, "decompress_blocks"),
        }
        for stage, seconds in raw.items():
            key = {
                "compress_blocks_total": "compress_total",
                "decompress_blocks_total": "decompress_total",
            }.get(stage, stage)
            samples.setdefault(key, []).append(seconds)
            alias = {
                "compress_blocks_total": "blocks.compress",
                "decompress_blocks_total": "blocks.decompress",
            }.get(stage)
            if alias:
                samples.setdefault(alias, []).append(seconds)
    quality = evaluate_quality(field, restored.data, restored.eb_abs)
    timing = {stage: summarize(vals) for stage, vals in sorted(samples.items())}
    best_compress = timing.get("compress_total", {}).get("min", 0.0)
    best_decompress = timing.get("decompress_total", {}).get("min", 0.0)
    original_bytes = int(field.nbytes)
    return {
        "case": case.name,
        "dataset": case.dataset,
        "field": case.field_name,
        "eb": case.eb,
        "workflow": case.workflow,
        "repeats": int(repeats),
        "timing": timing,
        "quality": {
            "compression_ratio": original_bytes / len(blob),
            "psnr_db": quality.psnr_db,
            "max_error": quality.max_error,
            "nrmse": quality.nrmse,
            "bound_satisfied": bool(quality.bound_satisfied),
        },
        "sizes": {
            "original_bytes": original_bytes,
            "compressed_bytes": len(blob),
            "section_sizes": restored.section_sizes,
        },
        "throughput": {
            "compress_gbps": (
                original_bytes / best_compress / 1e9 if best_compress else 0.0
            ),
            "decompress_gbps": (
                original_bytes / best_decompress / 1e9 if best_decompress else 0.0
            ),
        },
        "selector": {},
        "workflow_selected": restored.workflow,
        "engine": {
            "jobs": case.jobs or 1,
            "block_bytes": block_bytes,
            "backend": (
                engine_snap["backend"] if engine_snap is not None
                else (case.backend or "thread")
            ),
        },
    }


def run_scenario(
    scenario: str | Scenario,
    repeats: int | None = None,
    label: str | None = None,
) -> dict:
    """Execute every case of a scenario into one validated record.

    The metrics registry is reset at the start so the record's snapshot
    reflects exactly this run (repeat isolation is the runner's contract:
    a fresh process or an explicit reset yields identical snapshots).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    k = int(repeats) if repeats else scenario.repeats
    tel.reset_metrics()
    with tel.scope(True):
        if scenario.extra is not None:
            scenario.extra()
        results = [run_case(case, k) for case in scenario.cases]
        metrics = tel.render_json()
    config = {"repeats": k, "cases": [c.name for c in scenario.cases]}
    if scenario.summary is not None:
        config.update(scenario.summary(results))
    return build_record(
        label=label or scenario.name,
        scenario=scenario.name,
        results=results,
        config=config,
        metrics=metrics,
    )
