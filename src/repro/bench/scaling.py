"""Scaling-scenario analysis: speedup curves and the CI speedup gate.

The ``scaling`` scenario (:mod:`repro.bench.scenarios`) runs an identical
block workload at 1/2/4/8 jobs on the thread and process backends.  This
module turns those per-case results into:

* :func:`scaling_summary` -- per-backend speedup curves (relative to that
  backend's ``jobs=1`` case) plus a CPU-vs-IPC breakdown, merged into the
  record's ``config`` block so the curve ships inside ``BENCH_scaling.json``
  itself;
* :func:`check_scaling_gate` -- the CI gate: the process backend at
  ``jobs=4`` must beat its own ``jobs=1`` by ``min_speedup`` on the block
  compress stage.  On hosts with fewer than ``min_cores`` cores the gate
  *skips with a notice* instead of failing -- a 1-core runner cannot
  demonstrate parallel speedup, and a fabricated pass would be worse than
  an honest skip.
"""

from __future__ import annotations

__all__ = ["GATE_STAGE", "check_scaling_gate", "scaling_summary"]

#: Timing-stage key the scaling gate reads (see ``_run_block_case``).
GATE_STAGE = "blocks.compress"


def _case_key(result: dict) -> tuple[str, int]:
    """(backend, jobs) for one scaling-scenario case result."""
    engine = result.get("engine", {})
    return (
        str(engine.get("backend", "thread")),
        int(engine.get("jobs", 1)),
    )


def _stage_min(result: dict, stage: str) -> float | None:
    summary = result.get("timing", {}).get(stage)
    if not summary:
        return None
    return float(summary.get("min", 0.0))


def scaling_summary(results: list, stage: str = GATE_STAGE) -> dict:
    """Per-backend speedup curves from the scaling scenario's case results.

    For each backend present, the curve reports best-of-repeats wall time
    at every job count and the speedup relative to that backend's own
    ``jobs=1`` point (so thread and process are each judged against their
    own serial dispatch cost, not against each other).  The cross-backend
    comparison lives in ``fastest_backend``.
    """
    curves: dict[str, list[dict]] = {}
    for result in results:
        backend, jobs = _case_key(result)
        wall = _stage_min(result, stage)
        if wall is None:
            wall = _stage_min(result, "compress_total")
        if wall is None:
            continue
        curves.setdefault(backend, []).append({
            "case": result.get("case", ""),
            "jobs": jobs,
            "wall_seconds": wall,
        })
    summary: dict[str, dict] = {}
    fastest: tuple[float, str] | None = None
    for backend, points in curves.items():
        points.sort(key=lambda p: p["jobs"])
        base = next(
            (p["wall_seconds"] for p in points if p["jobs"] == 1),
            points[0]["wall_seconds"],
        )
        for p in points:
            p["speedup"] = base / p["wall_seconds"] if p["wall_seconds"] else 0.0
            p["efficiency"] = p["speedup"] / max(p["jobs"], 1)
        best_wall = min(p["wall_seconds"] for p in points)
        if fastest is None or best_wall < fastest[0]:
            fastest = (best_wall, backend)
        summary[backend] = {
            "stage": stage,
            "points": points,
            "max_speedup": max(p["speedup"] for p in points),
        }
    return {
        "scaling": summary,
        "fastest_backend": fastest[1] if fastest else "thread",
    }


def check_scaling_gate(
    record: dict,
    min_speedup: float = 1.5,
    min_cores: int = 4,
    stage: str = GATE_STAGE,
    backend: str = "process",
    jobs: int = 4,
) -> tuple[str, str]:
    """Judge a scaling record against the CI speedup gate.

    Returns ``(status, message)`` with status one of:

    * ``"pass"``  -- ``backend`` at ``jobs`` reached ``min_speedup``x over
      its own ``jobs=1`` case on ``stage``;
    * ``"fail"``  -- the curve exists but falls short;
    * ``"skip"``  -- the host cannot demonstrate the speedup (fewer than
      ``min_cores`` cores recorded in the environment fingerprint) or the
      record lacks the needed cases.  CI treats skip as success-with-notice.
    """
    cores = int(record.get("environment", {}).get("cpu_count") or 0)
    if cores and cores < min_cores:
        return (
            "skip",
            f"scaling gate skipped: host has {cores} core(s), "
            f"need >= {min_cores} to demonstrate a {min_speedup:.2f}x "
            f"speedup honestly",
        )
    walls: dict[int, float] = {}
    for result in record.get("results", []):
        b, j = _case_key(result)
        if b != backend:
            continue
        wall = _stage_min(result, stage) or _stage_min(result, "compress_total")
        if wall is not None:
            walls[j] = wall
    if 1 not in walls or jobs not in walls:
        have = sorted(walls) or ["none"]
        return (
            "skip",
            f"scaling gate skipped: record lacks {backend} jobs=1/jobs={jobs} "
            f"cases for stage {stage!r} (have jobs={have})",
        )
    if walls[jobs] <= 0.0:
        return "skip", f"scaling gate skipped: zero wall time at jobs={jobs}"
    speedup = walls[1] / walls[jobs]
    detail = (
        f"{backend} backend {stage}: jobs={jobs} {walls[jobs] * 1e3:.1f} ms "
        f"vs jobs=1 {walls[1] * 1e3:.1f} ms -> {speedup:.2f}x "
        f"(gate {min_speedup:.2f}x)"
    )
    if speedup >= min_speedup:
        return "pass", detail
    return "fail", detail
