"""Named benchmark scenarios: dataset × error bound × workflow matrices.

A scenario is a small, deterministic set of :class:`BenchCase` instances the
structured harness (:mod:`repro.bench.runner`) executes.  ``smoke`` is the
CI gate: one Huffman-regime field and one RLE-regime field, small enough to
finish in seconds; ``selector`` stresses the adaptive rule across regimes;
``full`` covers every workflow on representative fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["BenchCase", "Scenario", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class BenchCase:
    """One (field, error bound, workflow) measurement point.

    ``block_bytes``/``jobs`` switch the case to the multi-block engine path
    (:func:`repro.core.streaming.compress_blocks`): the field is split into
    blocks of at most ``block_bytes`` uncompressed bytes and compressed on
    ``jobs`` workers.  The ``parallel`` scenario uses matching cases at
    ``jobs=1`` and ``jobs>1`` to measure engine scaling; their archives are
    byte-identical, so quality rows must agree exactly.
    """

    name: str
    dataset: str
    field_name: str
    eb: float
    workflow: str = "auto"
    eb_mode: str = "rel"
    jobs: int | None = None
    block_bytes: int | None = None
    #: Executor backend for the engine path (``None`` keeps the library
    #: default resolution); the ``scaling`` scenario runs matched cases on
    #: ``thread`` vs ``process`` to compare the two pools honestly.
    backend: str | None = None

    def make_field(self) -> np.ndarray:
        from ..data import get_dataset

        return get_dataset(self.dataset).field(self.field_name).data


@dataclass(frozen=True)
class Scenario:
    """A named list of cases plus the default repeat count."""

    name: str
    description: str
    cases: tuple[BenchCase, ...]
    repeats: int = 3
    #: Optional extra workload run once per bench (not timed per repeat),
    #: e.g. the simulated-GPU pipeline that populates kernel counters.
    extra: Callable[[], None] | None = field(default=None, compare=False)
    #: Optional post-processor over the per-case results; its return dict is
    #: merged into the record's ``config`` (the ``scaling`` scenario derives
    #: per-backend speedup curves and the CI gate block there).
    summary: Callable[[list], dict] | None = field(default=None, compare=False)


def _gpu_smoke_workload() -> None:
    """Tiny simulated-GPU pipeline run so kernel counters have data."""
    from ..core.config import CompressorConfig
    from ..data import get_dataset
    from ..gpu.device import V100
    from ..gpu.runtime import run_compression, run_decompression

    data = get_dataset("CESM").field("PS").data
    config = CompressorConfig(eb=1e-3)
    art, _ = run_compression(data, config, V100, workflow="huffman")
    run_decompression(art, config, V100)


_SMOKE = Scenario(
    name="smoke",
    description="CI gate: one Huffman-regime and one RLE-regime CESM field",
    cases=(
        BenchCase("cesm_ps_1e-3_auto", "CESM", "PS", 1e-3),
        BenchCase("cesm_fsdsc_1e-2_auto", "CESM", "FSDSC", 1e-2),
    ),
    repeats=3,
    extra=_gpu_smoke_workload,
)

_SELECTOR = Scenario(
    name="selector",
    description="adaptive-rule coverage: fields spanning both regimes",
    cases=(
        BenchCase("cesm_ps_1e-3_auto", "CESM", "PS", 1e-3),
        BenchCase("cesm_ps_1e-4_auto", "CESM", "PS", 1e-4),
        BenchCase("cesm_fsdsc_1e-2_auto", "CESM", "FSDSC", 1e-2),
        BenchCase("rtm_snap_1e-2_auto", "RTM", "snapshot2800", 1e-2),
        BenchCase("nyx_density_1e-3_auto", "Nyx", "baryon_density", 1e-3),
    ),
    repeats=3,
)

_FULL = Scenario(
    name="full",
    description="every workflow on representative fields (slow)",
    cases=(
        BenchCase("cesm_ps_1e-3_auto", "CESM", "PS", 1e-3),
        BenchCase("cesm_ps_1e-3_huffman", "CESM", "PS", 1e-3, workflow="huffman"),
        BenchCase("cesm_fsdsc_1e-2_rle", "CESM", "FSDSC", 1e-2, workflow="rle"),
        BenchCase("cesm_fsdsc_1e-2_rlevle", "CESM", "FSDSC", 1e-2, workflow="rle+vle"),
        BenchCase("hacc_vx_1e-3_auto", "HACC", "vx", 1e-3),
        BenchCase("nyx_density_1e-3_auto", "Nyx", "baryon_density", 1e-3),
        BenchCase("hurricane_cloud_1e-2_auto", "Hurricane", "CLOUDf48", 1e-2),
    ),
    repeats=5,
    extra=_gpu_smoke_workload,
)

_PARALLEL = Scenario(
    name="parallel",
    description="engine scaling: identical block workload at 1 vs N workers",
    cases=(
        BenchCase("cesm_ps_1e-3_blocks_j1", "CESM", "PS", 1e-3,
                  jobs=1, block_bytes=1 << 20),
        BenchCase("cesm_ps_1e-3_blocks_j4", "CESM", "PS", 1e-3,
                  jobs=4, block_bytes=1 << 20),
        BenchCase("cesm_fsdsc_1e-2_blocks_j4", "CESM", "FSDSC", 1e-2,
                  jobs=4, block_bytes=1 << 20),
    ),
    repeats=3,
)

def _scaling_cases() -> tuple[BenchCase, ...]:
    cases = []
    for backend in ("thread", "process"):
        for jobs in (1, 2, 4, 8):
            cases.append(
                BenchCase(
                    f"cesm_ps_1e-3_blocks_{backend}_j{jobs}", "CESM", "PS", 1e-3,
                    jobs=jobs, block_bytes=1 << 20, backend=backend,
                )
            )
    return tuple(cases)


def _scaling_summary(results: list) -> dict:
    from .scaling import scaling_summary

    return scaling_summary(results)


_SCALING = Scenario(
    name="scaling",
    description=(
        "executor-backend speedup curves: identical block workload at "
        "1/2/4/8 jobs on the thread vs process backends"
    ),
    cases=_scaling_cases(),
    repeats=3,
    summary=_scaling_summary,
)

SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (_SMOKE, _SELECTOR, _FULL, _PARALLEL, _SCALING)
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
