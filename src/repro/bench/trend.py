"""Trajectory plots across committed BENCH records (``repro bench trend``).

The regression detector answers "did *this* change regress against *that*
baseline"; the trend view answers the longitudinal question -- how has a
metric moved across every committed record.  It loads a set of
``BENCH_<label>.json`` files, orders them by ``created_unix``, and renders
one series per case for the chosen metric (ASCII plot + table, or JSON).

Records written by a *newer* schema than this tool understands are skipped
with a note rather than aborting the whole trend: old and new records
routinely coexist in a results directory that spans tool versions.
"""

from __future__ import annotations

import glob
from pathlib import Path

from .record import RecordSchemaError, load_record

__all__ = ["METRICS", "collect_records", "trend_report", "render_trend"]

#: metric name -> (extractor over one per-case result dict, axis label)
METRICS = {
    "ratio": (lambda r: r["quality"]["compression_ratio"], "compression ratio (x)"),
    "psnr": (lambda r: r["quality"]["psnr_db"], "PSNR (dB)"),
    "compress_ms": (
        lambda r: r["timing"]["compress_total"]["min"] * 1e3,
        "compress wall (ms, best)",
    ),
    "decompress_ms": (
        lambda r: r["timing"]["decompress_total"]["min"] * 1e3,
        "decompress wall (ms, best)",
    ),
}


def collect_records(paths: list[Path]) -> tuple[list[dict], list[str]]:
    """Load records (directories expand to their ``BENCH_*.json`` files).

    Returns ``(records_sorted_by_created_unix, skipped_notes)``; unreadable
    or future-schema files land in the notes instead of raising.
    """
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(Path(p) for p in glob.glob(str(path / "BENCH_*.json"))))
        else:
            files.append(path)
    records, notes = [], []
    for file in files:
        try:
            records.append((load_record(file), file))
        except RecordSchemaError as exc:
            kind = "newer schema" if exc.newer else "unsupported schema"
            notes.append(f"skipped {file}: {kind} {exc.schema!r}")
        except (ValueError, OSError) as exc:
            notes.append(f"skipped {file}: {exc}")
    records.sort(key=lambda pair: pair[0]["created_unix"])
    return [rec for rec, _ in records], notes


def trend_report(records: list[dict], metric: str, case: str | None = None) -> dict:
    """Per-case series of ``metric`` across ``records`` (oldest first)."""
    try:
        extract, axis_label = METRICS[metric]
    except KeyError:
        raise ValueError(
            f"unknown trend metric {metric!r}; choose from {sorted(METRICS)}"
        ) from None
    series: dict[str, dict] = {}
    for k, record in enumerate(records):
        for result in record["results"]:
            name = result["case"]
            if case is not None and name != case:
                continue
            entry = series.setdefault(name, {"x": [], "y": [], "labels": []})
            try:
                value = float(extract(result))
            except (KeyError, TypeError):
                continue
            entry["x"].append(float(k))
            entry["y"].append(value)
            entry["labels"].append(record["label"])
    return {
        "metric": metric,
        "axis_label": axis_label,
        "n_records": len(records),
        "labels": [r["label"] for r in records],
        "created_unix": [r["created_unix"] for r in records],
        "series": series,
    }


def render_trend(report: dict, notes: list[str] | None = None) -> str:
    """ASCII plot plus first/last/delta table for each case's series."""
    from .harness import ascii_series, format_table

    if not report["series"]:
        return "no matching records/cases to plot"
    # All series share the record index axis; pad nothing -- ascii_series
    # takes the union x implicitly via per-series alignment, so plot on the
    # longest series' x and feed NaN where a case is absent from a record.
    n = report["n_records"]
    x = [float(i) for i in range(n)]
    ys = {}
    for name, entry in report["series"].items():
        by_index = dict(zip(entry["x"], entry["y"]))
        ys[name] = [by_index.get(float(i), float("nan")) for i in range(n)]
    plot = ascii_series(
        x, ys, width=min(72, max(24, 6 * n)), height=12,
        title=f"{report['axis_label']} across {n} records (oldest -> newest)",
    )
    rows = []
    for name, entry in sorted(report["series"].items()):
        first, last = entry["y"][0], entry["y"][-1]
        delta = (last / first - 1.0) * 100.0 if first else float("nan")
        rows.append([name, len(entry["y"]), f"{first:.3g}", f"{last:.3g}",
                     f"{delta:+.1f}%"])
    table = format_table(
        ["case", "points", "first", "last", "change"], rows,
        title=f"trend · metric={report['metric']}",
    )
    parts = [plot, "", table]
    if notes:
        parts += [""] + [f"note: {line}" for line in notes]
    parts.append("records: " + ", ".join(report["labels"]))
    return "\n".join(parts)
