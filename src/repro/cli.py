"""Command-line interface: the ``cusz``-binary equivalent.

Subcommands::

    python -m repro compress   INPUT -o OUT.rpsz --dims 1800 3600 --eb 1e-3
    python -m repro decompress OUT.rpsz -o restored.f32
    python -m repro info       OUT.rpsz
    python -m repro verify     INPUT OUT.rpsz --dims 1800 3600

Input fields are SDRBench-style headerless binaries (``.f32``/``.f64``);
``--dims`` is given slowest-varying first, exactly like the real tool.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .analysis.metrics import evaluate_quality
from .core.archive import ArchiveReader
from .core.compressor import compress, decompress
from .core.config import CompressorConfig
from .core.errors import ReproError
from .data.io import load_binary

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="cuSZ+-style error-bounded lossy compression for scientific data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pc = sub.add_parser("compress", help="compress a flat binary field")
    pc.add_argument("input", type=Path, help="input .f32/.f64 field")
    pc.add_argument("-o", "--output", type=Path, required=True, help="archive path")
    pc.add_argument("--dims", type=int, nargs="+", required=True,
                    help="field dimensions, slowest-varying first")
    pc.add_argument("--eb", type=float, default=1e-4, help="error bound (default 1e-4)")
    pc.add_argument("--mode", choices=["rel", "abs"], default="rel",
                    help="bound interpretation (default: relative to value range)")
    pc.add_argument("--workflow", choices=["auto", "huffman", "rle", "rle+vle"],
                    default="auto")
    pc.add_argument("--predictor", choices=["lorenzo", "regression", "interp", "auto"],
                    default="lorenzo")
    pc.add_argument("--dict-size", type=int, default=1024)
    pc.add_argument("--dtype", choices=["f32", "f64"], default=None,
                    help="override dtype inference from the file suffix")

    pd = sub.add_parser("decompress", help="decompress an archive")
    pd.add_argument("archive", type=Path)
    pd.add_argument("-o", "--output", type=Path, required=True,
                    help="output flat binary path")

    pi = sub.add_parser("info", help="describe an archive")
    pi.add_argument("archive", type=Path)

    ps = sub.add_parser("stats", help="size/entropy breakdown of an archive")
    ps.add_argument("archive", type=Path)

    pv = sub.add_parser("verify", help="verify an archive against its original")
    pv.add_argument("input", type=Path, help="original .f32/.f64 field")
    pv.add_argument("archive", type=Path)
    pv.add_argument("--dims", type=int, nargs="+", required=True)
    pv.add_argument("--dtype", choices=["f32", "f64"], default=None)
    return parser


def _load_field(path: Path, dims: list[int], dtype_flag: str | None) -> np.ndarray:
    dtype = {"f32": np.float32, "f64": np.float64, None: None}[dtype_flag]
    return load_binary(path, tuple(dims), dtype=dtype)


def _cmd_compress(args) -> int:
    field = _load_field(args.input, args.dims, args.dtype)
    config = CompressorConfig(
        eb=args.eb, eb_mode=args.mode, workflow=args.workflow,
        predictor=args.predictor, dict_size=args.dict_size,
    )
    result = compress(field, config)
    args.output.write_bytes(result.archive)
    print(f"{args.input} -> {args.output}")
    print(f"  {result.original_bytes} -> {result.compressed_bytes} bytes "
          f"({result.compression_ratio:.2f}x)")
    print(f"  workflow={result.workflow} predictor={result.predictor} "
          f"eb_abs={result.eb_abs:.4g} outliers={result.n_outliers}")
    return 0


def _cmd_decompress(args) -> int:
    field = decompress(args.archive.read_bytes())
    np.ascontiguousarray(field).tofile(args.output)
    print(f"{args.archive} -> {args.output}  shape={field.shape} dtype={field.dtype}")
    return 0


def _cmd_info(args) -> int:
    blob = args.archive.read_bytes()
    reader = ArchiveReader(blob)
    from .core.compressor import _unpack_meta  # shared parsing

    meta = _unpack_meta(reader.get_bytes("meta"))
    print(f"archive    : {args.archive} ({len(blob)} bytes)")
    print(f"shape      : {meta['shape']}  dtype={np.dtype(meta['dtype']).name}")
    print(f"workflow   : {meta['workflow']}  predictor={meta['predictor']}")
    print(f"error bound: {meta['eb_abs']:.4g} (absolute, user bound)")
    print(f"dict size  : {meta['dict_size']}  outliers={meta['n_outliers']}")
    original = int(np.prod(meta["shape"])) * np.dtype(meta["dtype"]).itemsize
    print(f"ratio      : {original / len(blob):.2f}x")
    print("sections   :")
    for name in reader.names():
        print(f"  {name:10} {len(reader.get_bytes(name)):>12} bytes")
    return 0


def _cmd_stats(args) -> int:
    from .core.inspect import inspect_archive

    print(inspect_archive(args.archive.read_bytes()).report())
    return 0


def _cmd_verify(args) -> int:
    field = _load_field(args.input, args.dims, args.dtype)
    restored = decompress(args.archive.read_bytes())
    if restored.shape != field.shape:
        print(f"FAIL: archive shape {restored.shape} != field shape {field.shape}")
        return 1
    from .core.compressor import _unpack_meta

    meta = _unpack_meta(ArchiveReader(args.archive.read_bytes()).get_bytes("meta"))
    quality = evaluate_quality(field, restored, meta["eb_abs"])
    print(f"max |error| : {quality.max_error:.4g}")
    print(f"bound       : {quality.eb_abs:.4g}  satisfied={quality.bound_satisfied}")
    print(f"PSNR        : {quality.psnr_db:.2f} dB   NRMSE={quality.nrmse:.3g}")
    return 0 if quality.bound_satisfied else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "info": _cmd_info,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
    }[args.command]
    try:
        return handler(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
