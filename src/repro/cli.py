"""Command-line interface: the ``cusz``-binary equivalent.

Subcommands::

    python -m repro compress   INPUT -o OUT.rpsz --dims 1800 3600 --eb 1e-3
    python -m repro decompress OUT.rpsz -o restored.f32
    python -m repro info       OUT.rpsz
    python -m repro verify     INPUT OUT.rpsz --dims 1800 3600
    python -m repro bench      run --scenario smoke [--baseline BENCH.json]
    python -m repro bench      compare OLD.json NEW.json
    python -m repro bench      trend results/ --metric ratio
    python -m repro bench      scaling-gate BENCH_scaling.json [--min-speedup 1.5]
    python -m repro profile    [--scenario smoke] [--fold out.folded]
    python -m repro diagnose   [--json]
    python -m repro conformance generate|check [--dir tests/vectors]
    python -m repro obs        serve [--port 9464] [--once]
    python -m repro obs        report [LEDGER.jsonl]
    python -m repro obs        scaling --jobs 1,2,4 --backends thread,process
    python -m repro serve      [--port 8077] [--backend process] [-j 4]
    python -m repro replay     PROFILE.jsonl [--url http://host:port] [--out DIR]

Input fields are SDRBench-style headerless binaries (``.f32``/``.f64``);
``--dims`` is given slowest-varying first, exactly like the real tool.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from . import telemetry
from .analysis.metrics import evaluate_quality
from .core.archive import ArchiveReader
from .core.compressor import compress, decompress_with_stats
from .core.config import CompressorConfig
from .core.errors import ReproError
from .data.io import load_binary

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="cuSZ+-style error-bounded lossy compression for scientific data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pc = sub.add_parser("compress", help="compress a flat binary field")
    pc.add_argument("input", type=Path, help="input .f32/.f64 field")
    pc.add_argument("-o", "--output", type=Path, required=True, help="archive path")
    pc.add_argument("--dims", type=int, nargs="+", required=True,
                    help="field dimensions, slowest-varying first")
    pc.add_argument("--eb", type=float, default=1e-4, help="error bound (default 1e-4)")
    pc.add_argument("--mode", choices=["rel", "abs", "pwrel"], default="rel",
                    help="bound interpretation: relative to value range "
                         "(default), absolute, or point-wise relative")
    pc.add_argument("--workflow", choices=["auto", "huffman", "rle", "rle+vle"],
                    default="auto")
    pc.add_argument("--predictor", choices=["lorenzo", "regression", "interp", "auto"],
                    default="lorenzo")
    pc.add_argument("--dict-size", type=int, default=1024)
    pc.add_argument("--dtype", choices=["f32", "f64"], default=None,
                    help="override dtype inference from the file suffix")
    pc.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                    help="compress blocks concurrently on N engine workers "
                         "(emits a multi-block archive; output is "
                         "byte-identical to --jobs 1)")
    pc.add_argument("--backend", choices=["serial", "thread", "process"],
                    default=None,
                    help="executor backend for --jobs (default: thread, or "
                         "$REPRO_ENGINE_BACKEND); output bytes are identical "
                         "across backends")
    pc.add_argument("--block-bytes", type=int, default=None, metavar="BYTES",
                    help="split the field into blocks of at most BYTES "
                         "uncompressed bytes (implies a multi-block archive; "
                         "default 64 MiB when --jobs is given)")
    _add_telemetry_flags(pc)
    pc.add_argument("--json", action="store_true", dest="as_json",
                    help="emit a machine-readable JSON result on stdout")

    pd = sub.add_parser("decompress", help="decompress an archive")
    pd.add_argument("archive", type=Path)
    pd.add_argument("-o", "--output", type=Path, required=True,
                    help="output flat binary path")
    pd.add_argument("-j", "--jobs", type=int, default=None,
                    help="decode with N parallel workers (across blocks, or "
                         "across the byte-aligned chunk groups of a format-v3 "
                         "archive); output is identical to the serial decode")
    pd.add_argument("--backend", choices=["serial", "thread", "process"],
                    default=None,
                    help="executor backend for --jobs (default: thread, or "
                         "$REPRO_ENGINE_BACKEND)")
    _add_telemetry_flags(pd)
    pd.add_argument("--json", action="store_true", dest="as_json",
                    help="emit a machine-readable JSON result on stdout")

    pi = sub.add_parser("info", help="describe an archive")
    pi.add_argument("archive", type=Path)
    pi.add_argument("--json", action="store_true", dest="as_json",
                    help="emit a machine-readable JSON result on stdout")

    ps = sub.add_parser("stats", help="size/entropy breakdown of an archive")
    ps.add_argument("archive", type=Path)

    pv = sub.add_parser(
        "verify",
        help="verify an archive against its original, or (--deep, archive "
             "only) validate its integrity without decompression",
    )
    pv.add_argument("input", type=Path,
                    help="original .f32/.f64 field, or the archive itself "
                         "when --deep is given without an original")
    pv.add_argument("archive", type=Path, nargs="?", default=None)
    pv.add_argument("--dims", type=int, nargs="+", default=None)
    pv.add_argument("--dtype", choices=["f32", "f64"], default=None)
    pv.add_argument("--deep", action="store_true",
                    help="walk the archive (including nested block/rank "
                         "archives) validating framing, checksums, and "
                         "metadata without decompressing")
    pv.add_argument("--json", action="store_true", dest="as_json",
                    help="emit a machine-readable JSON result on stdout")

    pb = sub.add_parser(
        "bench",
        help="structured benchmark harness: run scenarios into BENCH "
             "records and detect regressions between records",
    )
    bench_sub = pb.add_subparsers(dest="bench_command", required=True)
    pbr = bench_sub.add_parser("run", help="execute a named scenario")
    pbr.add_argument("--scenario", default="smoke",
                     help="scenario name (default: smoke)")
    pbr.add_argument("--repeats", type=int, default=None,
                     help="override the scenario's repeat count")
    pbr.add_argument("--label", default=None,
                     help="record label (default: the scenario name)")
    pbr.add_argument("--out", type=Path, default=Path("results"),
                     help="directory for BENCH_<label>.json (default: results)")
    pbr.add_argument("--baseline", type=Path, default=None,
                     help="compare the fresh record against this baseline "
                          "record and exit nonzero on regression")
    pbr.add_argument("--profile", dest="cmp_profile",
                     choices=["default", "ci"], default="default",
                     help="threshold profile for --baseline comparison")
    pbr.add_argument("--gate-stage", dest="gate_stages", action="append",
                     default=[], metavar="STAGE",
                     help="timing stage to gate unconditionally in the "
                          "--baseline comparison (repeatable); a gated stage "
                          "missing from either record is a regression")
    pbr.add_argument("--json", action="store_true", dest="as_json",
                     help="print the record (and comparison) as JSON")
    pbc = bench_sub.add_parser(
        "compare", help="compare two BENCH records; exit 1 on regression")
    pbc.add_argument("old", type=Path, help="baseline record")
    pbc.add_argument("new", type=Path, help="candidate record")
    pbc.add_argument("--profile", dest="cmp_profile",
                     choices=["default", "ci"], default="default")
    pbc.add_argument("--gate-stage", dest="gate_stages", action="append",
                     default=[], metavar="STAGE",
                     help="timing stage to gate unconditionally, even below "
                          "the profile's min-seconds floor (repeatable)")
    pbc.add_argument("--all", action="store_true", dest="show_all",
                     help="show every row, not just notable ones")
    pbc.add_argument("--json", action="store_true", dest="as_json")
    pbt = bench_sub.add_parser(
        "trend",
        help="plot a metric's trajectory across committed BENCH records")
    pbt.add_argument("records", type=Path, nargs="+",
                     help="record files and/or directories of BENCH_*.json")
    pbt.add_argument("--metric", default="ratio",
                     choices=["ratio", "psnr", "compress_ms", "decompress_ms"],
                     help="which per-case figure to plot (default: ratio)")
    pbt.add_argument("--case", default=None,
                     help="restrict to one benchmark case")
    pbt.add_argument("--json", action="store_true", dest="as_json")
    pbg = bench_sub.add_parser(
        "scaling-gate",
        help="judge a scaling-scenario record against the parallel-speedup "
             "gate (process jobs=4 vs jobs=1 on the block compress stage); "
             "skips with a notice on hosts with too few cores",
    )
    pbg.add_argument("record", type=Path, help="BENCH_scaling.json record")
    pbg.add_argument("--min-speedup", type=float, default=1.5,
                     help="required speedup of jobs=4 over jobs=1 (default 1.5)")
    pbg.add_argument("--min-cores", type=int, default=4,
                     help="cores below which the gate skips with a notice "
                          "(default 4)")
    pbg.add_argument("--stage", default="blocks.compress",
                     help="timing stage to gate (default blocks.compress)")
    pbg.add_argument("--backend", default="process",
                     choices=["serial", "thread", "process"],
                     help="backend whose curve is gated (default process)")
    pbg.add_argument("--gate-jobs", type=int, default=4,
                     help="job count compared against jobs=1 (default 4)")
    pbg.add_argument("--json", action="store_true", dest="as_json")

    pp = sub.add_parser(
        "profile",
        help="run a scenario under the profiler: self-time hotspots, "
             "folded flamegraph stacks, per-kernel counters",
    )
    pp.add_argument("--scenario", default="smoke")
    pp.add_argument("--repeats", type=int, default=1)
    pp.add_argument("--top", type=int, default=20,
                    help="hotspot rows to print (default 20)")
    pp.add_argument("--fold", type=Path, default=None, metavar="OUT.folded",
                    help="write folded stacks (flamegraph.pl input)")
    pp.add_argument("--json", action="store_true", dest="as_json")

    pdg = sub.add_parser(
        "diagnose",
        help="selector-accuracy audit: predicted ⟨b⟩ bounds and RLE gain "
             "vs the actually coded bits, per field",
    )
    pdg.add_argument("--json", action="store_true", dest="as_json")

    pcf = sub.add_parser(
        "conformance",
        help="golden-vector corpus tooling: (re)generate the committed "
             "compatibility vectors or check them for format drift",
    )
    conf_sub = pcf.add_subparsers(dest="conformance_command", required=True)
    pcg = conf_sub.add_parser(
        "generate",
        help="write every corpus vector plus manifest.json (policy: "
             "committed vectors only change with a format version bump)",
    )
    pcg.add_argument("--out", type=Path, default=None,
                     help="corpus directory (default: tests/vectors)")
    pcc = conf_sub.add_parser(
        "check",
        help="decode every committed vector; fail on any byte-level or "
             "behavioral drift",
    )
    pcc.add_argument("--dir", type=Path, default=None, dest="vector_dir",
                     help="corpus directory (default: tests/vectors)")
    pcc.add_argument("--jobs", type=int, default=2,
                     help="worker count for the parallel-identity re-encode "
                          "(default 2)")
    pcc.add_argument("--backend", choices=["serial", "thread", "process"],
                     default=None,
                     help="executor backend for the parallel-identity "
                          "re-encode (default: thread)")
    pcc.add_argument("--json", action="store_true", dest="as_json")

    po = sub.add_parser(
        "obs",
        help="continuous observability: run-ledger reports, the /metrics "
             "endpoint, and engine scaling diagnostics",
    )
    obs_sub = po.add_subparsers(dest="obs_command", required=True)
    pose = obs_sub.add_parser(
        "serve",
        help="serve the metrics registry over HTTP (/metrics Prometheus "
             "text, /metrics.json JSON)",
    )
    pose.add_argument("--host", default="127.0.0.1")
    pose.add_argument("--port", type=int, default=9464)
    pose.add_argument("--once", action="store_true",
                      help="print one Prometheus exposition to stdout and "
                           "exit instead of serving")
    porp = obs_sub.add_parser(
        "report",
        help="aggregate a run ledger into per-stage/per-workflow summaries",
    )
    porp.add_argument("ledger", type=Path, nargs="?", default=None,
                      help="ledger JSONL path (default: $REPRO_LEDGER)")
    porp.add_argument("--live-only", action="store_true",
                      help="ignore rotated generations (ledger.1, ...)")
    porp.add_argument("--json", action="store_true", dest="as_json")
    posc = obs_sub.add_parser(
        "scaling",
        help="sweep engine worker counts per backend and print the speedup "
             "curves with a CPU-vs-lock-wait-vs-IPC breakdown and a backend "
             "recommendation",
    )
    posc.add_argument("--jobs", default="1,2,4,8",
                      help="comma-separated worker counts (default 1,2,4,8)")
    posc.add_argument("--backends", default="thread,process",
                      help="comma-separated executor backends to sweep "
                           "(default thread,process)")
    posc.add_argument("--fields", type=int, default=8,
                      help="fields per batch (default 8)")
    posc.add_argument("--shape", type=int, nargs="+", default=[256, 256],
                      help="per-field shape (default 256 256)")
    posc.add_argument("--eb", type=float, default=1e-3)
    posc.add_argument("--repeats", type=int, default=3,
                      help="best-of repeats per point (default 3)")
    posc.add_argument("--json", action="store_true", dest="as_json")

    psrv = sub.add_parser(
        "serve",
        help="serve compress/decompress/verify over HTTP with per-tenant "
             "quotas, priority classes, and 429 backpressure",
    )
    psrv.add_argument("--host", default="127.0.0.1")
    psrv.add_argument("--port", type=int, default=8077,
                      help="listen port (0 picks an ephemeral one)")
    psrv.add_argument("-j", "--jobs", type=int, default=None,
                      help="engine workers (default: core count)")
    psrv.add_argument("--backend", choices=["serial", "thread", "process"],
                      default=None,
                      help="executor backend (default: $REPRO_ENGINE_BACKEND "
                           "then thread)")
    psrv.add_argument("--max-inflight", type=int, default=None,
                      help="admission limit on in-flight requests "
                           "(default 2 * jobs)")
    psrv.add_argument("--batch-reserve", type=int, default=None,
                      help="slots withheld from batch-priority requests "
                           "(default max-inflight // 4)")
    psrv.add_argument("--quota", default="100", metavar="RATE[:BURST]",
                      help="default per-tenant token-bucket quota in "
                           "requests/second (default 100)")
    psrv.add_argument("--tenant-quota", action="append", default=[],
                      metavar="TENANT=RATE[:BURST]",
                      help="per-tenant quota override (repeatable)")
    psrv.add_argument("--max-body-mb", type=int, default=256,
                      help="largest accepted request body (default 256 MiB)")

    prp = sub.add_parser(
        "replay",
        help="replay a JSONL traffic profile against a live server and "
             "emit a repro.bench latency record",
    )
    prp.add_argument("profile", type=Path, help="JSONL traffic profile")
    prp.add_argument("--url", default=None,
                     help="server base URL (overrides --host/--port)")
    prp.add_argument("--host", default="127.0.0.1")
    prp.add_argument("--port", type=int, default=8077)
    prp.add_argument("--out", type=Path, default=None,
                     help="directory for the BENCH_<label>.json record")
    prp.add_argument("--label", default=None,
                     help="record label (default replay_<profile-stem>)")
    prp.add_argument("--speed", type=float, default=1.0,
                     help="time-compression factor for arrival offsets")
    prp.add_argument("--max-concurrency", type=int, default=64,
                     help="client-side cap on simultaneous requests")
    prp.add_argument("--json", action="store_true", dest="as_json")
    return parser


def _add_telemetry_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--trace", type=Path, default=None, metavar="OUT.json",
        help="write a Chrome trace-event JSON file (open in Perfetto)")
    sub_parser.add_argument(
        "--stats", action="store_true",
        help="print per-stage wall timings after the run")


def _load_field(path: Path, dims: list[int], dtype_flag: str | None) -> np.ndarray:
    dtype = {"f32": np.float32, "f64": np.float64, None: None}[dtype_flag]
    return load_binary(path, tuple(dims), dtype=dtype)


def _telemetry_capture(args):
    """Trace collector for a command run; forces telemetry on when any
    telemetry output (``--trace``/``--stats``) was requested."""
    if args.trace or args.stats:
        return telemetry.scope(True), telemetry.trace(f"repro {args.command}")
    return nullcontext(), nullcontext()


def _emit_trace(args, tr) -> None:
    if args.trace and tr is not None:
        telemetry.write_chrome_trace(args.trace, tr)


def _note_trace(args) -> None:
    if args.trace:
        print(f"  trace -> {args.trace}")


def _print_stage_stats(stage_stats: dict[str, float]) -> None:
    timings = {k[: -len("_seconds")]: v for k, v in stage_stats.items()
               if k.endswith("_seconds")}
    if not timings:
        print("  (no stage timings recorded; is REPRO_TELEMETRY disabled?)")
        return
    total = timings.pop("total", None) or sum(timings.values()) or 1.0
    print("  stage timings:")
    for name, seconds in sorted(timings.items(), key=lambda kv: -kv[1]):
        print(f"    {name:<18} {seconds * 1e3:9.3f} ms  ({seconds / total:6.1%})")
    print(f"    {'total':<18} {total * 1e3:9.3f} ms")


def _cmd_compress(args) -> int:
    field = _load_field(args.input, args.dims, args.dtype)
    config = CompressorConfig(
        eb=args.eb, eb_mode=args.mode, workflow=args.workflow,
        predictor=args.predictor, dict_size=args.dict_size,
        telemetry=True if (args.trace or args.stats) else None,
    )
    if (args.jobs is not None or args.block_bytes is not None
            or args.backend is not None):
        return _cmd_compress_blocks(args, field, config)
    scope_ctx, trace_ctx = _telemetry_capture(args)
    with scope_ctx, trace_ctx as tr:
        result = compress(field, config)
    args.output.write_bytes(result.archive)
    _emit_trace(args, tr)
    if args.as_json:
        print(json.dumps({
            "command": "compress",
            "input": str(args.input),
            "output": str(args.output),
            "original_bytes": result.original_bytes,
            "compressed_bytes": result.compressed_bytes,
            "compression_ratio": result.compression_ratio,
            "workflow": result.workflow,
            "predictor": result.predictor,
            "eb_abs": result.eb_abs,
            "n_outliers": result.n_outliers,
            "section_sizes": result.section_sizes,
            "stage_stats": result.stage_stats,
            "diagnostics": dataclasses.asdict(result.diagnostics)
            if result.diagnostics else None,
        }, indent=2))
        return 0
    print(f"{args.input} -> {args.output}")
    print(f"  {result.original_bytes} -> {result.compressed_bytes} bytes "
          f"({result.compression_ratio:.2f}x)")
    print(f"  workflow={result.workflow} predictor={result.predictor} "
          f"eb_abs={result.eb_abs:.4g} outliers={result.n_outliers}")
    if args.stats:
        _print_stage_stats(result.stage_stats)
    _note_trace(args)
    return 0


def _cmd_compress_blocks(args, field: np.ndarray, config: CompressorConfig) -> int:
    """``repro compress --jobs N`` / ``--block-bytes``: multi-block archive."""
    from .core.streaming import block_manifest, compress_blocks

    max_block_bytes = args.block_bytes or (64 << 20)
    scope_ctx, trace_ctx = _telemetry_capture(args)
    with scope_ctx, trace_ctx as tr:
        blob = compress_blocks(
            field, config, max_block_bytes=max_block_bytes, jobs=args.jobs,
            backend=args.backend,
        )
    args.output.write_bytes(blob)
    _emit_trace(args, tr)
    manifest = block_manifest(blob)
    ratio = field.nbytes / len(blob)
    if args.as_json:
        print(json.dumps({
            "command": "compress",
            "input": str(args.input),
            "output": str(args.output),
            "original_bytes": int(field.nbytes),
            "compressed_bytes": len(blob),
            "compression_ratio": ratio,
            "container": "blocks",
            "n_blocks": manifest.n_blocks,
            "jobs": args.jobs or 1,
            "backend": args.backend or "thread",
            "block_bytes": max_block_bytes,
        }, indent=2))
        return 0
    print(f"{args.input} -> {args.output}")
    print(f"  {field.nbytes} -> {len(blob)} bytes ({ratio:.2f}x)")
    print(f"  blocks={manifest.n_blocks} (<= {max_block_bytes} bytes each) "
          f"jobs={args.jobs or 1} backend={args.backend or 'thread'}")
    _note_trace(args)
    return 0


def _cmd_decompress(args) -> int:
    blob = args.archive.read_bytes()
    scope_ctx, trace_ctx = _telemetry_capture(args)
    with scope_ctx, trace_ctx as tr:
        result = decompress_with_stats(blob, jobs=args.jobs, backend=args.backend)
    field = result.data
    np.ascontiguousarray(field).tofile(args.output)
    _emit_trace(args, tr)
    if args.as_json:
        print(json.dumps({
            "command": "decompress",
            "archive": str(args.archive),
            "output": str(args.output),
            "shape": list(field.shape),
            "dtype": field.dtype.name,
            "workflow": result.workflow,
            "predictor": result.predictor,
            "eb_abs": result.eb_abs,
            "n_outliers": result.n_outliers,
            "section_sizes": result.section_sizes,
            "stage_stats": result.stage_stats,
        }, indent=2))
        return 0
    print(f"{args.archive} -> {args.output}  shape={field.shape} dtype={field.dtype}")
    if args.stats:
        _print_stage_stats(result.stage_stats)
    _note_trace(args)
    return 0


def _cmd_info(args) -> int:
    blob = args.archive.read_bytes()
    reader = ArchiveReader(blob)
    from .core.compressor import _unpack_meta, sniff_container  # shared parsing

    kind = sniff_container(blob)
    if kind == "blocks":
        return _info_blocks(args, blob, reader)
    if kind == "pwrel":
        # Describe the wrapped log-domain archive; the pw.* sections carry
        # signs/zeros and the point-wise bound.
        inner_reader = ArchiveReader(reader.get_bytes("pw.inner"))
        meta = _unpack_meta(inner_reader.get_bytes("meta"))
        rel_bound = float(np.frombuffer(reader.get_bytes("pw.meta")[:8], np.float64)[0])
        meta["eb_abs"] = rel_bound
        meta["workflow"] = f"pwrel({meta['workflow']})"
    else:
        meta = _unpack_meta(reader.get_bytes("meta"))
    # Format-v3 indexed payloads carry per-chunk sync points (the *.idx
    # sections), which is what makes the archive parallel-decodable.
    sync_sections = [n for n in reader.names() if n.endswith(".idx")
                     and n != "o.idx"]
    if args.as_json:
        original = int(np.prod(meta["shape"])) * np.dtype(meta["dtype"]).itemsize
        print(json.dumps({
            "command": "info",
            "archive": str(args.archive),
            "archive_bytes": len(blob),
            "format_version": reader.version,
            "indexed_payload": bool(sync_sections),
            "shape": list(meta["shape"]),
            "dtype": np.dtype(meta["dtype"]).name,
            "workflow": meta["workflow"],
            "predictor": meta["predictor"],
            "eb_abs": meta["eb_abs"],
            "dict_size": meta["dict_size"],
            "n_outliers": meta["n_outliers"],
            "compression_ratio": original / len(blob),
            "section_sizes": reader.section_sizes(),
        }, indent=2))
        return 0
    print(f"archive    : {args.archive} ({len(blob)} bytes, format v{reader.version})")
    print(f"shape      : {meta['shape']}  dtype={np.dtype(meta['dtype']).name}")
    print(f"workflow   : {meta['workflow']}  predictor={meta['predictor']}")
    print(f"error bound: {meta['eb_abs']:.4g} (absolute, user bound)")
    print(f"dict size  : {meta['dict_size']}  outliers={meta['n_outliers']}")
    if sync_sections:
        print(f"sync points: {', '.join(sync_sections)} (indexed payload, "
              "parallel-decodable)")
    original = int(np.prod(meta["shape"])) * np.dtype(meta["dtype"]).itemsize
    print(f"ratio      : {original / len(blob):.2f}x")
    print("sections   :")
    for name in reader.names():
        print(f"  {name:10} {len(reader.get_bytes(name)):>12} bytes")
    return 0


def _info_blocks(args, blob: bytes, reader: ArchiveReader) -> int:
    """``repro info`` on a multi-block container: geometry, not per-field meta."""
    from .core.streaming import block_manifest

    manifest = block_manifest(blob)
    if args.as_json:
        print(json.dumps({
            "command": "info",
            "archive": str(args.archive),
            "archive_bytes": len(blob),
            "container": "blocks",
            "shape": list(manifest.shape),
            "n_blocks": manifest.n_blocks,
            "block_extents": list(manifest.extents),
            "section_sizes": reader.section_sizes(),
        }, indent=2))
        return 0
    print(f"archive    : {args.archive} ({len(blob)} bytes, format v{reader.version})")
    print(f"container  : multi-block  shape={manifest.shape}")
    print(f"blocks     : {manifest.n_blocks}  extents={list(manifest.extents)}")
    print("sections   :")
    for name in reader.names():
        print(f"  {name:10} {len(reader.get_bytes(name)):>12} bytes")
    return 0


def _deep_verify(args, archive_path: Path, quiet: bool = False) -> int:
    """Integrity-validate one archive; print a report unless ``quiet``."""
    from .core.integrity import verify_archive

    blob = archive_path.read_bytes()
    try:
        report = verify_archive(blob, deep=True)
    except ReproError as exc:
        if args.as_json:
            print(json.dumps({
                "command": "verify",
                "deep": True,
                "archive": str(archive_path),
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }, indent=2))
        else:
            print(f"FAIL: {archive_path}: {exc}", file=sys.stderr)
        return 2
    if quiet:
        return 0
    if args.as_json:
        print(json.dumps({
            "command": "verify",
            "deep": True,
            "archive": str(archive_path),
            "ok": True,
            "format_version": report.version,
            "checksum_algo": report.checksum_algo,
            "kind": report.kind,
            "sections_checked": report.total_sections_checked,
            "nested_archives": len(report.nested),
            "section_bytes": report.section_bytes,
        }, indent=2))
        return 0
    print(f"{archive_path} ({len(blob)} bytes): integrity OK")
    print("  " + report.summary().replace("\n", "\n  "))
    return 0


def _cmd_stats(args) -> int:
    from .core.inspect import inspect_archive

    print(inspect_archive(args.archive.read_bytes()).report())
    return 0


def _cmd_verify(args) -> int:
    if args.archive is None:
        # Archive-only invocation: integrity validation, no original field.
        if not args.deep:
            print("error: verify needs an original field and an archive, or "
                  "--deep with just an archive", file=sys.stderr)
            return 2
        return _deep_verify(args, args.input)
    if args.dims is None:
        print("error: --dims is required when verifying against an original",
              file=sys.stderr)
        return 2
    if args.deep:
        rc = _deep_verify(args, args.archive, quiet=args.as_json)
        if rc != 0:
            return rc
    field = _load_field(args.input, args.dims, args.dtype)
    result = decompress_with_stats(args.archive.read_bytes())
    restored = result.data
    if restored.shape != field.shape:
        if args.as_json:
            print(json.dumps({
                "command": "verify",
                "ok": False,
                "error": f"archive shape {list(restored.shape)} != field shape {list(field.shape)}",
            }, indent=2))
        else:
            print(f"FAIL: archive shape {restored.shape} != field shape {field.shape}")
        return 1
    quality = evaluate_quality(field, restored, result.eb_abs)
    if args.as_json:
        print(json.dumps({
            "command": "verify",
            "ok": bool(quality.bound_satisfied),
            "max_error": quality.max_error,
            "eb_abs": quality.eb_abs,
            "bound_satisfied": bool(quality.bound_satisfied),
            "psnr_db": quality.psnr_db,
            "nrmse": quality.nrmse,
            "workflow": result.workflow,
            "stage_stats": result.stage_stats,
            "deep_ok": True if args.deep else None,
        }, indent=2))
        return 0 if quality.bound_satisfied else 1
    print(f"max |error| : {quality.max_error:.4g}")
    print(f"bound       : {quality.eb_abs:.4g}  satisfied={quality.bound_satisfied}")
    print(f"PSNR        : {quality.psnr_db:.2f} dB   NRMSE={quality.nrmse:.3g}")
    return 0 if quality.bound_satisfied else 1


def _cmd_bench(args) -> int:
    from .bench.record import load_record, write_record
    from .bench.regression import compare_records

    if args.bench_command == "trend":
        from .bench.trend import collect_records, render_trend, trend_report

        records, notes = collect_records(args.records)
        if not records:
            for note in notes:
                print(note, file=sys.stderr)
            print("error: no readable BENCH records found", file=sys.stderr)
            return 2
        report = trend_report(records, args.metric, case=args.case)
        if args.as_json:
            print(json.dumps({"command": "bench trend", **report,
                              "skipped": notes}, indent=2))
        else:
            print(render_trend(report, notes))
        return 0

    if args.bench_command == "compare":
        report = compare_records(
            load_record(args.old), load_record(args.new), args.cmp_profile,
            gate_stages=args.gate_stages,
        )
        if args.as_json:
            print(json.dumps(report.to_json(), indent=2))
        else:
            print(report.render(all_rows=args.show_all))
        return report.exit_code

    if args.bench_command == "scaling-gate":
        return _cmd_bench_scaling_gate(args)

    from .bench.runner import run_scenario

    record = run_scenario(args.scenario, repeats=args.repeats, label=args.label)
    path = write_record(record, args.out)
    if args.as_json:
        print(json.dumps(record, indent=2))
    else:
        print(f"wrote {path}")
        for result in record["results"]:
            t = result["timing"].get("compress_total", {})
            print(
                f"  {result['case']:<24} ratio {result['quality']['compression_ratio']:8.2f}x"
                f"  psnr {result['quality']['psnr_db']:6.1f} dB"
                f"  compress {t.get('min', 0.0) * 1e3:8.1f} ms (best of {t.get('n', 0)})"
            )
    if args.baseline is None:
        return 0
    report = compare_records(load_record(args.baseline), record, args.cmp_profile,
                             gate_stages=args.gate_stages)
    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return report.exit_code


def _cmd_bench_scaling_gate(args) -> int:
    """``repro bench scaling-gate``: pass/fail/skip on the speedup gate."""
    from .bench.record import load_record
    from .bench.scaling import check_scaling_gate

    record = load_record(args.record)
    status, message = check_scaling_gate(
        record, min_speedup=args.min_speedup, min_cores=args.min_cores,
        stage=args.stage, backend=args.backend, jobs=args.gate_jobs,
    )
    if args.as_json:
        print(json.dumps({
            "command": "bench scaling-gate",
            "record": str(args.record),
            "status": status,
            "message": message,
        }, indent=2))
    else:
        print(f"scaling gate: {status.upper()} -- {message}")
    return 1 if status == "fail" else 0


def _cmd_profile(args) -> int:
    from .bench.profiler import profile_scenario

    view, kernels = profile_scenario(args.scenario, repeats=args.repeats)
    if args.as_json:
        print(json.dumps({
            "command": "profile",
            "scenario": args.scenario,
            "total_seconds": view.total_seconds,
            "hotspots": [
                {"span": h.name, "calls": h.count, "self_seconds": h.self_seconds,
                 "total_seconds": h.total_seconds, "gbps": h.gbps}
                for h in view.hotspots
            ],
            "folded": view.folded_lines(),
        }, indent=2))
    else:
        print(view.render(top=args.top))
        print()
        print(kernels)
    if args.fold is not None:
        args.fold.write_text("\n".join(view.folded_lines()) + "\n")
        if not args.as_json:
            print(f"\nfolded stacks -> {args.fold}")
    return 0


def _cmd_conformance(args) -> int:
    from .conformance import check_corpus, generate_corpus
    from .conformance.corpus import default_vector_dir

    if args.conformance_command == "generate":
        out_dir = args.out or default_vector_dir()
        manifest = generate_corpus(out_dir)
        total = sum(e["archive_bytes"] for e in manifest["vectors"])
        print(f"wrote {manifest['n_vectors']} vectors "
              f"({total} archive bytes) + {out_dir}/manifest.json")
        return 0

    report = check_corpus(args.vector_dir, jobs=args.jobs, backend=args.backend)
    if args.as_json:
        print(json.dumps({"command": "conformance", **report.to_json()}, indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_obs(args) -> int:
    if args.obs_command == "serve":
        return _cmd_obs_serve(args)
    if args.obs_command == "report":
        return _cmd_obs_report(args)
    return _cmd_obs_scaling(args)


def _cmd_obs_serve(args) -> int:
    from .telemetry.exposition import serve_forever
    from .telemetry.metrics import render_prometheus

    if args.once:
        sys.stdout.write(render_prometheus())
        return 0
    print(f"serving metrics on http://{args.host}:{args.port}/metrics "
          f"(JSON at /metrics.json); Ctrl-C to stop", file=sys.stderr)
    serve_forever(host=args.host, port=args.port)
    return 0


def _cmd_obs_report(args) -> int:
    import os

    from .telemetry.ledger import aggregate_ledger, read_ledger, render_ledger_report

    path = args.ledger or os.environ.get("REPRO_LEDGER")
    if not path:
        print("error: no ledger given and REPRO_LEDGER is not set",
              file=sys.stderr)
        return 2
    path = Path(path)
    if not path.exists():
        print(f"error: ledger {path} does not exist", file=sys.stderr)
        return 2
    records = read_ledger(path, include_rotated=not args.live_only)
    report = aggregate_ledger(records)
    if args.as_json:
        print(json.dumps({"command": "obs report", "ledger": str(path),
                          **report}, indent=2))
    else:
        print(render_ledger_report(report))
    return 0


def _cmd_obs_scaling(args) -> int:
    from .engine.backends import BACKEND_NAMES
    from .engine.diagnostics import compare_backends, recommend_backend

    try:
        jobs_list = tuple(int(j) for j in str(args.jobs).split(",") if j.strip())
    except ValueError:
        print(f"error: --jobs must be comma-separated integers, got "
              f"{args.jobs!r}", file=sys.stderr)
        return 2
    if not jobs_list or any(j < 1 for j in jobs_list):
        print("error: --jobs needs positive worker counts", file=sys.stderr)
        return 2
    backends = tuple(b.strip() for b in str(args.backends).split(",") if b.strip())
    bad = [b for b in backends if b not in BACKEND_NAMES]
    if not backends or bad:
        print(f"error: --backends must name backends from "
              f"{list(BACKEND_NAMES)}, got {args.backends!r}", file=sys.stderr)
        return 2
    reports = compare_backends(
        jobs_list=jobs_list, backends=backends, n_fields=args.fields,
        shape=tuple(args.shape), eb=args.eb, repeats=args.repeats,
    )
    recommendation = recommend_backend(reports)
    if args.as_json:
        print(json.dumps({
            "command": "obs scaling",
            "backends": {name: rep.to_json() for name, rep in reports.items()},
            "recommendation": recommendation,
        }, indent=2))
        return 0
    for rep in reports.values():
        print(rep.render())
        print()
    print(f"recommended backend: {recommendation}")
    return 0


def _cmd_diagnose(args) -> int:
    from .bench.diagnose import diagnose_report, render_report

    report = diagnose_report()
    if args.as_json:
        print(json.dumps({"command": "diagnose", **report}, indent=2))
    else:
        print(render_report(report))
    return 0


def _cmd_serve(args) -> int:
    from .core.errors import ConfigError
    from .server import ServerConfig, parse_quota, serve_forever

    rate, burst = parse_quota(args.quota)
    tenant_quotas = {}
    for spec in args.tenant_quota:
        name, sep, quota = spec.partition("=")
        if not sep or not name:
            raise ConfigError(
                f"--tenant-quota must be TENANT=RATE[:BURST], got {spec!r}"
            )
        tenant_quotas[name] = parse_quota(quota)
    serve_forever(ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        backend=args.backend,
        max_inflight=args.max_inflight,
        batch_reserve=args.batch_reserve,
        quota_rate=rate,
        quota_burst=burst,
        tenant_quotas=tenant_quotas,
        max_body=args.max_body_mb << 20,
    ))
    return 0


def _cmd_replay(args) -> int:
    from urllib.parse import urlsplit

    from .core.errors import ConfigError
    from .server.replay import replay_profile

    host, port = args.host, args.port
    if args.url:
        split = urlsplit(args.url)
        if not split.hostname or not split.port:
            raise ConfigError(
                f"--url must look like http://host:port, got {args.url!r}"
            )
        host, port = split.hostname, split.port
    summary = replay_profile(
        args.profile,
        host=host,
        port=port,
        out_dir=args.out,
        label=args.label,
        speed=args.speed,
        max_concurrency=args.max_concurrency,
    )
    failed = bool(summary["errors"]) or summary["digest_mismatches"] > 0
    if args.as_json:
        print(json.dumps(summary, indent=2))
        return 1 if failed else 0
    lat = summary["latency_seconds"]
    print(f"replayed {summary['n_requests']} requests "
          f"({summary['n_tenants']} tenant(s)) against {summary['url']} "
          f"in {summary['wall_seconds']:.2f}s "
          f"({summary['requests_per_second']:.1f} req/s)")
    print(f"  statuses: {summary['statuses']}")
    print(f"  latency p50/p95/p99: {lat['p50'] * 1e3:.1f} / "
          f"{lat['p95'] * 1e3:.1f} / {lat['p99'] * 1e3:.1f} ms")
    if summary["record_path"]:
        print(f"  bench record -> {summary['record_path']}")
    if failed:
        print(f"  FAILED: {len(summary['errors'])} error(s), "
              f"{summary['digest_mismatches']} digest mismatch(es)")
        for err in summary["errors"][:10]:
            print(f"    #{err['index']} {err['op']} [{err['tenant']}] "
                  f"status={err['status']}: {err['detail']}")
        return 1
    print("  all round-trips byte-identical to the library pipeline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "info": _cmd_info,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
        "diagnose": _cmd_diagnose,
        "conformance": _cmd_conformance,
        "obs": _cmd_obs,
        "serve": _cmd_serve,
        "replay": _cmd_replay,
    }[args.command]
    try:
        return handler(args)
    except ValueError as exc:
        from .bench.record import RecordSchemaError

        print(f"error: {exc}", file=sys.stderr)
        # A record written by a newer tool is a distinct failure mode from
        # a malformed one: exit 3 so CI can tell "upgrade me" from "broken".
        if isinstance(exc, RecordSchemaError) and exc.newer:
            return 3
        # Record-schema/scenario-name problems from the bench harness.
        return 2
    except KeyError as exc:
        if args.command in ("bench", "profile", "diagnose"):
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
