"""Conformance kit: golden vectors, compatibility checking, invariants.

Three tools that together pin the *on-disk* archive format against drift:

* :mod:`repro.conformance.corpus` -- generates the committed golden-vector
  corpus under ``tests/vectors/``: tiny archives spanning format versions,
  container kinds, workflows, dtypes and dimensionalities, plus a
  ``manifest.json`` recording SHA-256 digests of each archive and of its
  decoded output.
* :mod:`repro.conformance.check` -- decodes every committed vector and
  verifies byte-exact archive and output digests, error-bound satisfaction,
  and serial-vs-parallel encoder identity, with a diff report that names
  the offending vector and archive section on mismatch.
* :mod:`repro.conformance.metamorphic` -- pure metamorphic invariants
  (re-compression idempotence, error-bound monotonicity, axis/order
  consistency, rel-mode scale covariance, serial-vs-parallel byte
  identity) that the tier-1 suite parametrizes across the whole
  workflow/container matrix.

The CLI front ends are ``repro conformance generate`` and
``repro conformance check``; CI runs ``check`` from a fresh checkout so any
encode/decode co-change that would break previously written archives fails
the build.  Committed vectors only change together with an explicit format
version bump (see ``docs/testing.md``).
"""

from .check import ConformanceReport, VectorFailure, check_corpus, locate_divergence
from .corpus import (
    CORPUS,
    VectorSpec,
    build_vector,
    default_vector_dir,
    generate_corpus,
    make_field,
)
from .metamorphic import (
    check_decode_serial_parallel_identity,
    check_decoder_agreement,
    check_eb_monotonicity,
    check_order_invariance,
    check_recompression_idempotence,
    check_rel_scale_covariance,
    check_serial_parallel_identity,
    check_transpose_consistency,
)

__all__ = [
    "CORPUS",
    "VectorSpec",
    "build_vector",
    "default_vector_dir",
    "generate_corpus",
    "make_field",
    "ConformanceReport",
    "VectorFailure",
    "check_corpus",
    "locate_divergence",
    "check_recompression_idempotence",
    "check_eb_monotonicity",
    "check_transpose_consistency",
    "check_order_invariance",
    "check_rel_scale_covariance",
    "check_serial_parallel_identity",
    "check_decoder_agreement",
    "check_decode_serial_parallel_identity",
]
