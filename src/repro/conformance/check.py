"""Compatibility checker: decode every committed golden vector, byte-exactly.

For each manifest entry the checker verifies, in order:

1. **encode stability** -- rebuilding the vector from its spec with today's
   code reproduces the committed archive bytes (a drifted encoder would
   silently re-golden every test that regenerates its own archives; here it
   fails loudly);
2. **archive digest** -- the committed file still hashes to the manifest's
   SHA-256 (bit-rot / accidental edits), with a diff that names the archive
   *section* containing the first divergent byte;
3. **decode** -- today's decoder reads the committed bytes without error;
4. **output digest** -- the decoded array is byte-identical to the output
   recorded when the vector was written;
5. **error bound** -- the decoded array satisfies the vector's bound
   against the regenerated original field (absolute for rel-mode vectors,
   point-wise relative for pwrel vectors, zeros exact);
6. **parallel identity** -- re-encoding through a ``jobs=2`` engine yields
   the same bytes as the serial build.

A failure never aborts the run: the report collects every violation so one
drifted format change shows its whole blast radius at once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.archive import ArchiveReader
from ..core.errors import ReproError
from .corpus import (
    MANIFEST_NAME,
    VectorSpec,
    build_vector,
    load_manifest,
    make_field,
    output_digest,
)

__all__ = ["VectorFailure", "ConformanceReport", "check_corpus", "locate_divergence"]


@dataclass(frozen=True)
class VectorFailure:
    """One violated conformance property."""

    vector: str
    check: str  # encode-drift | archive-digest | decode | output-digest | error-bound | parallel-identity | missing-file
    detail: str

    def render(self) -> str:
        return f"FAIL {self.vector} [{self.check}]: {self.detail}"


@dataclass
class ConformanceReport:
    """Everything one :func:`check_corpus` run established."""

    vector_dir: str
    n_vectors: int = 0
    n_checked: int = 0
    failures: list[VectorFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and self.n_checked == self.n_vectors

    def render(self) -> str:
        lines = [
            f"conformance corpus: {self.vector_dir} "
            f"({self.n_checked}/{self.n_vectors} vectors checked)"
        ]
        for f in self.failures:
            lines.append("  " + f.render())
        lines.append(
            "OK: every vector decodes byte-identically" if self.ok
            else f"DRIFT DETECTED: {len(self.failures)} failure(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "vector_dir": self.vector_dir,
            "n_vectors": self.n_vectors,
            "n_checked": self.n_checked,
            "ok": self.ok,
            "failures": [
                {"vector": f.vector, "check": f.check, "detail": f.detail}
                for f in self.failures
            ],
        }


def locate_divergence(reference: bytes, actual: bytes) -> str:
    """Name the archive section containing the first byte where ``actual``
    diverges from the well-formed ``reference`` blob.

    The reference parses cleanly (it was just rebuilt), so its section table
    maps any byte offset to a region: the header/section-table prefix, one
    of the payload sections, or past-the-end truncation.  ``actual`` may be
    arbitrarily corrupt -- it is never parsed.
    """
    limit = min(len(reference), len(actual))
    offset = next(
        (i for i in range(limit) if reference[i] != actual[i]), None
    )
    if offset is None:
        if len(reference) == len(actual):
            return "no byte-level divergence"
        if len(actual) < len(reference):
            offset = len(actual)
            region = _region_for_offset(reference, offset)
            return (
                f"truncated at byte {offset}/{len(reference)} (inside {region})"
            )
        return f"{len(actual) - len(reference)} trailing bytes past the archive end"
    return f"first divergent byte at offset {offset} (inside {_region_for_offset(reference, offset)})"


def _region_for_offset(reference: bytes, offset: int) -> str:
    try:
        reader = ArchiveReader(reference)
        spans = reader.section_spans()
    except ReproError:  # pragma: no cover - reference is always well-formed
        return "unparseable archive"
    payload_start = min((off for off, _ in spans.values()), default=len(reference))
    if offset < payload_start:
        return "header/section-table"
    for name, (off, length) in spans.items():
        if off <= offset < off + length:
            return f"section {name!r}"
    return "inter-section padding"  # pragma: no cover - sections are contiguous


def _spec_from_entry(entry: dict) -> VectorSpec:
    return VectorSpec(
        version=int(entry["version"]),
        container=entry["container"],
        workflow=entry["workflow"],
        dtype=entry["dtype"],
        ndim=int(entry["ndim"]),
        eb=float(entry["eb"]),
        seed=int(entry["seed"]),
    )


def _check_bound(field_data: np.ndarray, out: np.ndarray, spec: VectorSpec,
                 eb_abs: float) -> str | None:
    """Error-bound violation description, or None when satisfied."""
    a = field_data.astype(np.float64).reshape(-1)
    b = out.astype(np.float64).reshape(-1)
    if spec.eb_mode == "pwrel":
        nonzero = a != 0.0
        if not np.array_equal(b[~nonzero], a[~nonzero]):
            return "pwrel zeros were not restored exactly"
        rel = np.abs(b[nonzero] - a[nonzero]) / np.abs(a[nonzero])
        worst = float(rel.max()) if rel.size else 0.0
        if worst > spec.eb * (1 + 1e-9):
            return f"point-wise relative error {worst:.3e} exceeds bound {spec.eb:.3e}"
        return None
    worst = float(np.abs(a - b).max())
    if worst > eb_abs * (1 + 1e-12):
        return f"max |error| {worst:.3e} exceeds bound {eb_abs:.3e}"
    return None


def check_corpus(
    vector_dir: Path | str | None = None,
    names: list[str] | None = None,
    jobs: int = 2,
    backend: str | None = None,
) -> ConformanceReport:
    """Run every conformance check over the committed corpus.

    ``names`` restricts the run to specific vectors (test speed-up);
    ``jobs``/``backend`` configure the parallel-identity re-encode engine
    (``--backend process`` asserts the process pool's zero-copy path emits
    the committed bytes too).
    """
    from ..core.compressor import decompress
    from .corpus import default_vector_dir

    vector_dir = Path(vector_dir) if vector_dir is not None else default_vector_dir()
    report = ConformanceReport(vector_dir=str(vector_dir))
    if not (vector_dir / MANIFEST_NAME).exists():
        report.n_vectors = 1
        report.failures.append(VectorFailure(
            vector=MANIFEST_NAME, check="missing-file",
            detail=f"no manifest at {vector_dir / MANIFEST_NAME}; run "
                   "`repro conformance generate` once and commit the corpus",
        ))
        return report
    manifest = load_manifest(vector_dir)
    entries = manifest["vectors"]
    if names is not None:
        entries = [e for e in entries if e["name"] in set(names)]
    report.n_vectors = len(entries)

    for entry in entries:
        name = entry["name"]
        spec = _spec_from_entry(entry)
        fail = lambda check, detail: report.failures.append(  # noqa: E731
            VectorFailure(vector=name, check=check, detail=detail)
        )

        path = vector_dir / entry["file"]
        if not path.exists():
            fail("missing-file", f"{path} is listed in the manifest but absent")
            continue
        committed = path.read_bytes()
        rebuilt = build_vector(spec)

        if hashlib.sha256(rebuilt).hexdigest() != entry["archive_sha256"]:
            fail("encode-drift",
                 "today's encoder no longer reproduces the committed bytes: "
                 + locate_divergence(rebuilt, committed))
        if hashlib.sha256(committed).hexdigest() != entry["archive_sha256"]:
            fail("archive-digest",
                 "committed file does not match its manifest digest: "
                 + locate_divergence(rebuilt, committed))

        try:
            out = decompress(committed)
        except ReproError as exc:
            fail("decode", f"{type(exc).__name__}: {exc}")
        else:
            if output_digest(out) != entry["output_sha256"]:
                fail("output-digest",
                     "decoded output bytes differ from the recorded digest "
                     f"(shape={out.shape}, dtype={out.dtype})")
            field_data = make_field(spec)
            eb_abs = _eb_abs_for(spec, field_data)
            bound_problem = _check_bound(field_data, out, spec, eb_abs)
            if bound_problem:
                fail("error-bound", bound_problem)

        parallel = build_vector(spec, jobs=jobs, backend=backend)
        if parallel != rebuilt:
            fail("parallel-identity",
                 f"jobs={jobs} backend={backend or 'thread'} re-encode "
                 "diverges from the serial build: "
                 + locate_divergence(rebuilt, parallel))

        report.n_checked += 1
    return report


def _eb_abs_for(spec: VectorSpec, field_data: np.ndarray) -> float:
    """Absolute bound a rel-mode vector promises (pwrel checks relatively)."""
    if spec.eb_mode == "pwrel":
        return float("nan")
    value_range = float(np.max(field_data) - np.min(field_data))
    from .corpus import spec_config

    return spec_config(spec).absolute_bound(value_range)
