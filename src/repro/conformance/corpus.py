"""Golden-vector corpus: the committed on-disk-format compatibility set.

Every vector is a tiny archive (16--64-element field) produced by one point
of the format matrix

    {format v1, v2, v3} x {single, blocks, pwrel} x
    {huffman, rle, rle+vle, huffman+lz} x {f4, f8} x {1D, 2D, 3D}

The single-field container carries the full workflow/dtype/dimensionality
cross product; the blocks and pwrel containers cover every axis value in a
reduced combination set (their inner payloads reuse the single-field layout,
so the cross product there would re-test the same bytes while tripling the
committed corpus size).

Byte stability across machines is what makes the corpus a compatibility
oracle, so generation runs under :func:`repro.core.archive.pinned_format`
with CRC-32 (always available, identical everywhere) rather than the
host-dependent default checksum, and all field data comes from seeded
``numpy`` generators whose streams are stable across versions.

Regenerate with ``python -m repro conformance generate`` -- but note the
policy: committed vectors only change together with an explicit archive
format version bump (see ``docs/testing.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.archive import pinned_format
from ..core.compressor import compress
from ..core.config import CompressorConfig
from ..core.integrity import ALGO_CRC32, ALGO_NAMES
from ..core.streaming import compress_blocks

__all__ = [
    "CORPUS",
    "MANIFEST_NAME",
    "VectorSpec",
    "build_vector",
    "default_vector_dir",
    "generate_corpus",
    "make_field",
    "spec_config",
]

MANIFEST_NAME = "manifest.json"

#: Checksum algorithm pinned into every vector (CRC-32: available and
#: byte-identical on every host, unlike the native-dependent CRC-32C).
VECTOR_CHECKSUM_ALGO = ALGO_CRC32

#: Workflow name -> filename-safe slug.
_WORKFLOW_SLUGS = {
    "huffman": "huff",
    "rle": "rle",
    "rle+vle": "rlevle",
    "huffman+lz": "hufflz",
}

#: Per-dimensionality field shapes (16--64 elements keeps archives tiny).
_SHAPES = {1: (48,), 2: (8, 8), 3: (4, 4, 4)}

#: Small alphabet keeps the dense Huffman codebook section at 64 bytes.
_DICT_SIZE = 64


@dataclass(frozen=True)
class VectorSpec:
    """One point of the conformance matrix (fully determines the bytes)."""

    version: int  # archive format version: 1, 2 or 3
    container: str  # "single" | "blocks" | "pwrel"
    workflow: str  # "huffman" | "rle" | "rle+vle" | "huffman+lz"
    dtype: str  # "f4" | "f8"
    ndim: int  # 1 | 2 | 3
    eb: float = 1e-3
    seed: int = 7

    @property
    def name(self) -> str:
        return (
            f"v{self.version}-{self.container}-{_WORKFLOW_SLUGS[self.workflow]}"
            f"-{self.dtype}-{self.ndim}d"
        )

    @property
    def filename(self) -> str:
        return f"{self.name}.rpsz"

    @property
    def shape(self) -> tuple[int, ...]:
        return _SHAPES[self.ndim]

    @property
    def eb_mode(self) -> str:
        return "pwrel" if self.container == "pwrel" else "rel"

    @property
    def block_bytes(self) -> int | None:
        """Uncompressed block budget chosen to split the field into 2 blocks."""
        if self.container != "blocks":
            return None
        shape = self.shape
        itemsize = np.dtype(np.float32 if self.dtype == "f4" else np.float64).itemsize
        row_bytes = itemsize * int(np.prod(shape[1:], dtype=np.int64))
        return row_bytes * ((shape[0] + 1) // 2)


def _full_cross(container: str) -> list[VectorSpec]:
    return [
        VectorSpec(version=v, container=container, workflow=wf, dtype=dt, ndim=nd)
        for v in (1, 2, 3)
        for wf in ("huffman", "rle", "rle+vle", "huffman+lz")
        for dt in ("f4", "f8")
        for nd in (1, 2, 3)
    ]


def _axis_cover(container: str) -> list[VectorSpec]:
    """Cover every workflow, dtype and ndim for ``container`` without the
    full cross product (the inner archives reuse the single-field layout)."""
    specs = []
    for v in (1, 2, 3):
        for wf in ("huffman", "rle", "rle+vle", "huffman+lz"):
            specs.append(VectorSpec(version=v, container=container, workflow=wf,
                                    dtype="f4", ndim=2))
        specs.append(VectorSpec(version=v, container=container, workflow="huffman",
                                dtype="f8", ndim=1))
        specs.append(VectorSpec(version=v, container=container, workflow="rle",
                                dtype="f8", ndim=3))
    return specs


#: The committed corpus, in manifest order.
CORPUS: list[VectorSpec] = (
    _full_cross("single") + _axis_cover("blocks") + _axis_cover("pwrel")
)


def make_field(spec: VectorSpec) -> np.ndarray:
    """Deterministic synthetic field for ``spec`` (seeded numpy stream).

    A smooth ramp plus plateaus keeps both Huffman and RLE viable; a single
    exact zero pins the pwrel zero-index path; everything stays finite and
    the stream is stable across numpy versions (Generator bit-stream
    compatibility policy).
    """
    dtype = np.float32 if spec.dtype == "f4" else np.float64
    n = int(np.prod(spec.shape, dtype=np.int64))
    rng = np.random.default_rng(spec.seed + 1000 * spec.ndim)
    t = np.linspace(0.0, 3.0 * np.pi, n)
    smooth = np.sin(t) * 4.0 + 8.0
    plateaus = np.repeat(rng.integers(0, 3, (n + 7) // 8).astype(np.float64), 8)[:n]
    flat = smooth + plateaus + rng.normal(0.0, 0.01, n)
    flat[n // 2] = 0.0  # exact zero: exercises the pwrel zero-index section
    return flat.astype(dtype).reshape(spec.shape)


def spec_config(spec: VectorSpec) -> CompressorConfig:
    """The compressor configuration a spec's archive is produced with."""
    return CompressorConfig(
        eb=spec.eb,
        eb_mode=spec.eb_mode,
        workflow=spec.workflow,
        dict_size=_DICT_SIZE,
    )


def build_vector(
    spec: VectorSpec, jobs: int | None = None, backend: str | None = None
) -> bytes:
    """Produce the archive bytes for one spec (pinned format + checksum).

    ``jobs``/``backend`` route encoding through a
    :class:`~repro.engine.CompressionEngine` worker pool; the result must
    be byte-identical to the serial build -- the checker asserts exactly
    that, for every backend.
    """
    field = make_field(spec)
    config = spec_config(spec)
    with pinned_format(version=spec.version, checksum_algo=VECTOR_CHECKSUM_ALGO):
        if spec.container == "blocks":
            return compress_blocks(
                field, config, max_block_bytes=spec.block_bytes,
                jobs=jobs, backend=backend,
            )
        if backend is not None or (jobs is not None and jobs != 1):
            from ..engine.backends import get_executor

            with get_executor(backend, jobs=jobs, config=config) as engine:
                return engine.submit(field, config).result().archive
        return compress(field, config).archive


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def output_digest(out: np.ndarray) -> str:
    """Digest of a decoded array's exact bytes (C order, native dtype)."""
    return _sha256(np.ascontiguousarray(out).tobytes())


def default_vector_dir() -> Path:
    """The committed corpus location: ``tests/vectors`` at the repo root.

    Resolved relative to the working directory so CI's fresh-checkout run
    and local runs agree; falls back to the path relative to this file for
    invocations from outside the repository root.
    """
    cwd_dir = Path("tests") / "vectors"
    if (cwd_dir / MANIFEST_NAME).exists() or not _repo_relative_dir().exists():
        return cwd_dir
    return _repo_relative_dir()


def _repo_relative_dir() -> Path:
    return Path(__file__).resolve().parents[3] / "tests" / "vectors"


def generate_corpus(out_dir: Path | str) -> dict:
    """Write every corpus vector plus ``manifest.json`` into ``out_dir``.

    Returns the manifest dict.  Existing vector files are overwritten --
    the caller (CLI / tests) owns the don't-rewrite-history policy.
    """
    from ..core.compressor import decompress

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    entries = []
    for spec in CORPUS:
        blob = build_vector(spec)
        out = decompress(blob)
        (out_dir / spec.filename).write_bytes(blob)
        entries.append({
            **asdict(spec),
            "name": spec.name,
            "file": spec.filename,
            "shape": list(spec.shape),
            "eb_mode": spec.eb_mode,
            "block_bytes": spec.block_bytes,
            "archive_bytes": len(blob),
            "archive_sha256": _sha256(blob),
            "output_sha256": output_digest(out),
            "output_dtype": out.dtype.name,
        })
    manifest = {
        "_format": "repro.conformance/v1",
        "_regenerate": "PYTHONPATH=src python -m repro conformance generate",
        "_policy": (
            "Committed vectors are a compatibility contract: they only "
            "change together with an explicit archive format version bump. "
            "See docs/testing.md."
        ),
        "checksum_algo": ALGO_NAMES[VECTOR_CHECKSUM_ALGO],
        "n_vectors": len(entries),
        "vectors": entries,
    }
    (out_dir / MANIFEST_NAME).write_text(json.dumps(manifest, indent=1) + "\n")
    return manifest


def load_manifest(vector_dir: Path | str) -> dict:
    """Read and structurally validate a corpus manifest."""
    path = Path(vector_dir) / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    if manifest.get("_format") != "repro.conformance/v1":
        raise ValueError(f"{path}: unknown conformance manifest format")
    return manifest
