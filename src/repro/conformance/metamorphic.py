"""Metamorphic invariants of the codec, as pure checkable functions.

Each function states one relation that must hold between *related* pipeline
runs -- no golden values involved, so these catch logic drift the vector
corpus cannot (the corpus pins bytes; these pin behavior):

* **re-compression idempotence** -- a decompressed field is already on the
  quantization grid, so compressing it again and decompressing stays within
  one error bound of the first reconstruction;
* **error-bound monotonicity** -- tightening the bound never lowers PSNR;
* **axis-transpose consistency** -- compressing a transposed field honors
  the bound on the transposed data (predictors are axis-aware, so bytes may
  differ; the contract may not);
* **C/F-order invariance** -- the archive depends on the field's *values*,
  not its memory layout: Fortran-ordered input yields identical bytes;
* **rel-mode scale covariance** -- scaling a field by a power of two scales
  the resolved bound exactly and reproduces the exact scaled reconstruction
  (quant codes are scale-free under a value-range-relative bound);
* **serial/parallel identity** -- a ``jobs=N`` engine produces the same
  container bytes as the serial path;
* **decoder agreement** -- the two-level LUT decoder, the lockstep
  ``searchsorted`` decoder, and the bit-by-bit sequential reference decode
  every Huffman stream of an archive to byte-identical symbols;
* **decode serial/parallel identity** -- ``decompress(jobs=N)`` over a
  format-v3 indexed payload reconstructs the byte-identical array;
* **backend identity** -- the ``serial``, ``thread``, and ``process``
  executor backends emit byte-identical containers and byte-identical
  decodes (the process backend's shared-memory handoff and worker-state
  re-initialization must be invisible in the output).

``tests/test_conformance_metamorphic.py`` parametrizes these across all
four workflows and all three container kinds.
"""

from __future__ import annotations

import numpy as np

from ..analysis.metrics import evaluate_quality
from ..core.compressor import compress, decompress
from ..core.config import CompressorConfig
from ..core.streaming import compress_blocks

__all__ = [
    "roundtrip",
    "check_recompression_idempotence",
    "check_eb_monotonicity",
    "check_transpose_consistency",
    "check_order_invariance",
    "check_rel_scale_covariance",
    "check_serial_parallel_identity",
    "check_decoder_agreement",
    "check_decode_serial_parallel_identity",
    "check_backend_identity",
]


def roundtrip(
    field: np.ndarray, config: CompressorConfig, container: str = "single",
    block_bytes: int | None = None,
) -> tuple[bytes, np.ndarray, float]:
    """Compress+decompress through one container kind.

    Returns ``(archive bytes, reconstruction, promised absolute bound)``;
    for pwrel configs the returned bound is the point-wise relative bound.
    """
    if container == "blocks":
        blob = compress_blocks(
            field, config, max_block_bytes=block_bytes or _half_split(field)
        )
        eb_abs = _resolved_bound(field, config)
    elif container in ("single", "pwrel"):
        result = compress(field, config)
        blob, eb_abs = result.archive, result.eb_abs
    else:
        raise ValueError(f"unknown container kind {container!r}")
    return blob, decompress(blob), eb_abs


def _half_split(field: np.ndarray) -> int:
    """Block budget that splits a field into two blocks along axis 0."""
    row_bytes = max(int(field.nbytes // field.shape[0]), 1)
    return row_bytes * ((field.shape[0] + 1) // 2)


def _resolved_bound(field: np.ndarray, config: CompressorConfig) -> float:
    if config.eb_mode == "pwrel":
        return config.eb
    return config.absolute_bound(float(np.max(field) - np.min(field)))


def _max_err(a: np.ndarray, b: np.ndarray, relative: bool) -> float:
    a64 = a.astype(np.float64).reshape(-1)
    b64 = b.astype(np.float64).reshape(-1)
    if relative:
        nz = a64 != 0.0
        if not np.array_equal(b64[~nz], a64[~nz]):
            return float("inf")  # zeros must be restored exactly under pwrel
        return float(np.abs((b64[nz] - a64[nz]) / a64[nz]).max()) if nz.any() else 0.0
    return float(np.abs(a64 - b64).max())


_TOL = 1 + 1e-9


def check_recompression_idempotence(
    field: np.ndarray, config: CompressorConfig, container: str = "single"
) -> None:
    """``decompress(compress(decompress(compress(x))))`` stays bound-close.

    The second reconstruction must satisfy the bound against the first one
    (it is re-quantizing on-grid data), and transitively stay within twice
    the bound of the original.
    """
    relative = config.eb_mode == "pwrel"
    _, first, eb = roundtrip(field, config, container)
    _, second, _ = roundtrip(first, config, container)
    assert _max_err(first, second, relative) <= eb * _TOL, (
        "re-compression violated the bound against the first reconstruction"
    )
    assert _max_err(field, second, relative) <= (2 * eb + eb * eb) * _TOL, (
        "re-compression drifted beyond twice the bound from the original"
    )


def check_eb_monotonicity(
    field: np.ndarray, config: CompressorConfig, container: str = "single",
    ebs: tuple[float, ...] = (1e-2, 1e-3, 1e-4),
) -> None:
    """Tightening the error bound never makes PSNR worse.

    ``ebs`` is ordered loose -> tight; a small slack absorbs PSNR jitter on
    fields the loose bound already reconstructs near-perfectly.
    """
    psnrs = []
    for eb in ebs:
        cfg = config.with_(eb=eb)
        _, out, eb_abs = roundtrip(field, cfg, container)
        bound = eb if cfg.eb_mode == "pwrel" else eb_abs
        quality = evaluate_quality(field, out, bound)
        psnrs.append(quality.psnr_db)
    for loose, tight in zip(psnrs, psnrs[1:]):
        assert tight >= loose - 1e-6, (
            f"PSNR degraded when the bound tightened: {psnrs} for ebs {ebs}"
        )


def check_transpose_consistency(
    field: np.ndarray, config: CompressorConfig, container: str = "single"
) -> None:
    """Compressing ``x.T`` satisfies the bound on ``x.T``.

    Predictors walk axes in a fixed order, so the transposed archive's bytes
    legitimately differ -- but the error contract must hold on the
    transposed view exactly as on the original.
    """
    transposed = np.ascontiguousarray(field.T)
    relative = config.eb_mode == "pwrel"
    _, out, eb = roundtrip(transposed, config, container)
    assert out.shape == transposed.shape
    assert _max_err(transposed, out, relative) <= eb * _TOL, (
        "transposed field violated the error bound"
    )


def check_order_invariance(
    field: np.ndarray, config: CompressorConfig, container: str = "single"
) -> None:
    """C-ordered and Fortran-ordered inputs produce identical archives."""
    c_blob, _, _ = roundtrip(np.ascontiguousarray(field), config, container)
    f_blob, _, _ = roundtrip(np.asfortranarray(field), config, container)
    assert c_blob == f_blob, (
        "archive bytes depend on the input array's memory order"
    )


def check_rel_scale_covariance(
    field: np.ndarray, config: CompressorConfig, container: str = "single",
    scale: float = 4.0,
) -> None:
    """Under a rel-mode bound, scaling by a power of two commutes exactly.

    Power-of-two scaling is lossless in floating point, the value range
    scales exactly, hence the resolved absolute bound and the quantization
    step scale exactly -- so the scaled field's reconstruction is exactly
    ``scale`` times the original's.
    """
    assert config.eb_mode == "rel", "scale covariance is a rel-mode property"
    assert scale != 0 and float(np.log2(abs(scale))).is_integer(), (
        "covariance is exact only for power-of-two scales"
    )
    _, base, eb_base = roundtrip(field, config, container)
    _, scaled, eb_scaled = roundtrip(
        (field.astype(np.float64) * scale).astype(field.dtype), config, container
    )
    assert eb_scaled == eb_base * scale, (
        f"resolved bound did not scale: {eb_base} -> {eb_scaled} under x{scale}"
    )
    np.testing.assert_array_equal(
        scaled, (base.astype(np.float64) * scale).astype(base.dtype),
        err_msg="scaled reconstruction is not exactly the scaled original",
    )


def check_serial_parallel_identity(
    field: np.ndarray, config: CompressorConfig, jobs: int = 2,
    block_bytes: int | None = None,
) -> None:
    """A ``jobs=N`` block container is byte-identical to the serial one."""
    block_bytes = block_bytes or _half_split(field)
    serial = compress_blocks(field, config, max_block_bytes=block_bytes, jobs=1)
    parallel = compress_blocks(field, config, max_block_bytes=block_bytes, jobs=jobs)
    assert parallel == serial, f"jobs={jobs} container diverged from serial bytes"


def check_decoder_agreement(
    field: np.ndarray, config: CompressorConfig, container: str = "single"
) -> None:
    """The LUT, lockstep, and sequential Huffman decoders agree exactly.

    Encodes the field's quant-code stream -- the very symbols the archive
    carries under ``config`` -- through both payload layouts (dense v1/v2
    and byte-aligned v3 with sync points) and decodes each with all three
    decoders.  All six reconstructions must be byte-identical to the
    symbols that went in; any divergence means one decoder misreads a
    bitstream the others accept.
    """
    from ..core.dual_quant import quantize_field
    from ..engine.cache import cached_codebook, cached_histogram
    from ..encoding.huffman_codec import (
        decode,
        decode_lockstep,
        decode_sequential,
        encode,
    )

    bundle, _ = quantize_field(np.asarray(field), config)
    symbols = bundle.quant.reshape(-1)
    book = cached_codebook(cached_histogram(symbols, config.dict_size))
    out_dtype = symbols.dtype
    for aligned in (False, True):
        encoded = encode(symbols, book, config.huffman_chunk, aligned=aligned)
        layout = "aligned" if aligned else "dense"
        lut = decode(encoded, book, out_dtype=out_dtype)
        lockstep = decode_lockstep(encoded, book, out_dtype=out_dtype)
        sequential = decode_sequential(encoded, book, out_dtype=out_dtype)
        assert lut.tobytes() == symbols.tobytes(), (
            f"LUT decoder diverged on the {layout} payload"
        )
        assert lockstep.tobytes() == symbols.tobytes(), (
            f"lockstep decoder diverged on the {layout} payload"
        )
        assert sequential.tobytes() == symbols.tobytes(), (
            f"sequential decoder diverged on the {layout} payload"
        )


def check_decode_serial_parallel_identity(
    field: np.ndarray, config: CompressorConfig, container: str = "single",
    jobs: int = 2,
) -> None:
    """``decompress(jobs=N)`` reconstructs byte-identical output.

    Format v3 carries per-chunk sync points, so a parallel decode splits
    the payload into independently decoded chunk groups; regardless of the
    split the concatenated result must match the serial decode bit-for-bit
    (not merely within the error bound).
    """
    blob, serial, _ = roundtrip(field, config, container)
    parallel = decompress(blob, jobs=jobs)
    assert serial.dtype == parallel.dtype and serial.shape == parallel.shape
    np.testing.assert_array_equal(
        parallel, serial,
        err_msg=f"jobs={jobs} decode diverged from the serial reconstruction",
    )


def check_backend_identity(
    field: np.ndarray, config: CompressorConfig, container: str = "single",
    jobs: int = 2, backends: tuple[str, ...] = ("serial", "thread", "process"),
    engines: dict | None = None,
) -> None:
    """Every executor backend emits the serial path's exact bytes and decode.

    Compresses the field through each backend (block container via
    ``compress_blocks(backend=...)``, single/pwrel archives via
    ``engine.submit``) and asserts byte-identity against the inline serial
    reference; then decodes the reference blob through each backend and
    asserts array identity (which exercises the v3 chunk-group fan-out when
    the config's payload carries sync points).

    ``engines`` may map backend names to prebuilt
    :class:`~repro.engine.CompressionEngine` instances so a test session can
    amortize process-pool spawn across many parametrized cases; missing
    entries get a transient engine.
    """
    from ..engine.backends import get_executor

    block_bytes = _half_split(field)
    if container == "blocks":
        reference = compress_blocks(field, config, max_block_bytes=block_bytes)
    else:
        reference = compress(field, config).archive
    serial_out = decompress(reference)
    for name in backends:
        eng = engines.get(name) if engines else None
        own = eng is None
        if eng is None:
            eng = get_executor(name, jobs=1 if name == "serial" else jobs, config=config)
        try:
            if container == "blocks":
                blob = compress_blocks(
                    field, config, max_block_bytes=block_bytes, backend=eng
                )
            else:
                blob = eng.submit(field, config).result().archive
            assert blob == reference, (
                f"backend={name} container diverged from the serial bytes"
            )
            out = decompress(reference, backend=eng)
            assert out.dtype == serial_out.dtype and out.shape == serial_out.shape
            np.testing.assert_array_equal(
                out, serial_out,
                err_msg=f"backend={name} decode diverged from the serial reconstruction",
            )
        finally:
            if own:
                eng.shutdown(wait=True)
