"""Core pipeline: dual-quantization, Lorenzo, workflows, archive, public API."""

from .compressor import (
    CompressionResult,
    Compressor,
    DecompressionResult,
    compress,
    decompress,
    decompress_with_stats,
    sniff_container,
)
from .config import CompressorConfig, SelectorDiagnostics
from .inspect import ArchiveStats, inspect_archive
from .integrity import IntegrityReport, verify_archive
from .pwrel import compress_pwrel
from .streaming import (
    StreamingCompressor,
    compress_blocks,
    decompress_blocks,
    decompress_blocks_with_stats,
)
from .temporal import TemporalCompressor, TemporalDecompressor

__all__ = [
    "compress",
    "decompress",
    "decompress_with_stats",
    "sniff_container",
    "compress_pwrel",
    "Compressor",
    "CompressorConfig",
    "CompressionResult",
    "DecompressionResult",
    "SelectorDiagnostics",
    "compress_blocks",
    "decompress_blocks",
    "decompress_blocks_with_stats",
    "StreamingCompressor",
    "TemporalCompressor",
    "TemporalDecompressor",
    "ArchiveStats",
    "inspect_archive",
    "IntegrityReport",
    "verify_archive",
]
