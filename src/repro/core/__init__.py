"""Core pipeline: dual-quantization, Lorenzo, workflows, archive, public API."""

from .compressor import CompressionResult, Compressor, compress, decompress
from .config import CompressorConfig, SelectorDiagnostics
from .inspect import ArchiveStats, inspect_archive
from .integrity import IntegrityReport, verify_archive
from .pwrel import compress_pwrel
from .streaming import StreamingCompressor, compress_blocks, decompress_blocks
from .temporal import TemporalCompressor, TemporalDecompressor

__all__ = [
    "compress",
    "decompress",
    "compress_pwrel",
    "Compressor",
    "CompressorConfig",
    "CompressionResult",
    "SelectorDiagnostics",
    "compress_blocks",
    "decompress_blocks",
    "StreamingCompressor",
    "TemporalCompressor",
    "TemporalDecompressor",
    "ArchiveStats",
    "inspect_archive",
    "IntegrityReport",
    "verify_archive",
]
