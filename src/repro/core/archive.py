"""Self-describing binary archive for compressed fields.

The archive is a small sectioned container: a fixed header, a section table
(name, dtype, byte length), and the concatenated section payloads.  Every
byte the decompressor needs is inside, so compression-ratio accounting is
honest: ``CR = original_bytes / len(archive)`` includes codebooks, chunk
metadata, outliers, and the header itself (the paper's Table IV note about
chunkwise metadata overhead).

Format **v2** adds verifiable framing: the header records the
whole-archive byte count and a checksum algorithm id, every section-table
entry carries a checksum of its payload, and a digest of the header +
section table follows the table.  A flipped bit or truncated payload is
therefore detected *before* it reaches Huffman decode and raises a typed
:class:`IntegrityError`/:class:`ArchiveError` instead of silently decoding
to garbage.

Format **v3** (the default) keeps the v2 container byte layout unchanged --
only the header's version field differs -- and signals *indexed Huffman
payloads*: every Huffman chunk starts at a byte boundary and a sync-point
section (``<prefix>.idx``, per-chunk byte offsets) accompanies each
bitstream, so chunk groups decode independently and in parallel
(arXiv:2201.09118's gap array).  v1 and v2 archives remain readable.

The layout is deliberately explicit (struct-packed, little-endian) rather
than pickle/JSON so archives are portable and their size is deterministic.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

import numpy as np

from .errors import ArchiveError, IntegrityError
from .integrity import ALGO_NAMES, DEFAULT_ALGO, checksum

__all__ = [
    "ArchiveBuilder",
    "ArchiveReader",
    "MAGIC",
    "VERSION",
    "current_pinned_format",
    "pinned_format",
]

MAGIC = b"RPRSZP1\x00"
VERSION = 3

#: v1 layout: header (magic, version, n_sections) + per-section
#: (name, dtype, length) entries + concatenated payloads.
_HEADER_V1 = struct.Struct("<8sHI")
_ENTRY_V1 = struct.Struct("<16s8sQ")

#: v2 layout: header additionally records the checksum algorithm id, a
#: reserved flags byte, and the total archive byte count; each entry gains
#: a payload checksum; a u32 digest of header+table sits after the table.
_HEADER_V2 = struct.Struct("<8sHIBB2xQ")  # magic, version, n_sections, algo, flags, total
_ENTRY_V2 = struct.Struct("<16s8sQI")  # name, dtype, length, payload checksum
_DIGEST = struct.Struct("<I")

#: dtype tag for raw (untyped) byte sections.
_RAW = b"raw"

#: (version, checksum_algo) defaults pinned by :func:`pinned_format`; ``None``
#: entries fall through to ``VERSION`` / ``DEFAULT_ALGO``.  A ContextVar so
#: the pin survives into engine workers (they run in a copy of the submitting
#: context) without threading a parameter through every producer.
_PINNED_FORMAT: ContextVar[tuple[int | None, int | None]] = ContextVar(
    "repro_pinned_archive_format", default=(None, None)
)


@contextmanager
def pinned_format(version: int | None = None, checksum_algo: int | None = None):
    """Pin the format every :class:`ArchiveBuilder` in this context writes.

    Producers that do not pass an explicit ``version``/``checksum_algo`` --
    which is all of them: :func:`repro.compress`, the block/streaming
    containers, the pwrel wrapper, and checkpoint writers -- pick up the
    pinned values instead of the library defaults.  The conformance corpus
    generator uses this to emit byte-stable v1 *and* v2 archives with a
    fixed checksum algorithm regardless of which CRC implementation the
    host happens to have installed.  Engine workers inherit the pin because
    jobs run in a copy of the submitting context.
    """
    if version is not None and version not in (1, 2, 3):
        raise ArchiveError(f"cannot pin archive version {version}")
    if checksum_algo is not None and checksum_algo not in ALGO_NAMES:
        raise ArchiveError(f"unknown checksum algorithm id {checksum_algo}")
    token = _PINNED_FORMAT.set((version, checksum_algo))
    try:
        yield
    finally:
        _PINNED_FORMAT.reset(token)


def current_pinned_format() -> tuple[int | None, int | None]:
    """The ``(version, checksum_algo)`` pinned in this context, if any.

    The engine's process backend captures this at submit time and re-pins it
    inside worker processes, which (unlike engine threads) do not inherit the
    submitting context."""
    return _PINNED_FORMAT.get()


def _dtype_tag(dtype: np.dtype) -> bytes:
    tag = np.dtype(dtype).str.encode()  # e.g. b"<u2", b"<f4"
    if len(tag) > 8:
        raise ArchiveError(f"dtype tag too long: {tag!r}")
    return tag


def _note_corruption(kind: str) -> None:
    """Count a detected-corruption event (telemetry; no-op when disabled)."""
    from .. import telemetry as tel
    from ..telemetry import instruments as ins

    if tel.enabled():
        ins.INTEGRITY_FAILURES.inc(kind=kind)


@dataclass
class _Section:
    name: str
    dtype: bytes
    payload: bytes


class ArchiveBuilder:
    """Accumulate named sections and serialize to one byte blob.

    Writes format v3 by default; ``version=2`` keeps the same checksummed
    container without the indexed-payload marker, ``version=1`` produces the
    legacy checksum-free layout (compatibility tests, size experiments).
    Arguments
    left as ``None`` honor an enclosing :func:`pinned_format` context before
    falling back to ``VERSION`` / the environment's default checksum.
    """

    def __init__(self, version: int | None = None, checksum_algo: int | None = None) -> None:
        pin_version, pin_algo = _PINNED_FORMAT.get()
        if version is None:
            version = pin_version if pin_version is not None else VERSION
        if checksum_algo is None:
            checksum_algo = pin_algo
        if version not in (1, 2, 3):
            raise ArchiveError(f"cannot write archive version {version}")
        algo = DEFAULT_ALGO if checksum_algo is None else checksum_algo
        if algo not in ALGO_NAMES:
            raise ArchiveError(f"unknown checksum algorithm id {algo}")
        self._version = version
        self._algo = algo
        self._sections: list[_Section] = []
        self._names: set[str] = set()

    @property
    def version(self) -> int:
        """The format version this builder writes (producers branch on it:
        >= 3 means Huffman payloads are emitted indexed/byte-aligned)."""
        return self._version

    def add_bytes(self, name: str, payload: bytes) -> "ArchiveBuilder":
        """Add an untyped byte section."""
        self._add(name, _RAW, bytes(payload))
        return self

    def add_array(self, name: str, arr: np.ndarray) -> "ArchiveBuilder":
        """Add a 1-D typed array section (dtype is recorded for the reader)."""
        arr = np.ascontiguousarray(arr)
        self._add(name, _dtype_tag(arr.dtype), arr.tobytes())
        return self

    def _add(self, name: str, dtype: bytes, payload: bytes) -> None:
        if not name:
            raise ArchiveError("section name must be non-empty")
        if len(name.encode()) > 16:
            raise ArchiveError(f"section name too long: {name!r}")
        if name in self._names:
            raise ArchiveError(f"duplicate section {name!r}")
        self._names.add(name)
        self._sections.append(_Section(name, dtype, payload))

    def to_bytes(self) -> bytes:
        """Serialize header + section table (+ digest) + payloads."""
        if self._version == 1:
            return self._to_bytes_v1()
        payload_total = sum(len(s.payload) for s in self._sections)
        total = (
            _HEADER_V2.size
            + _ENTRY_V2.size * len(self._sections)
            + _DIGEST.size
            + payload_total
        )
        parts = [
            _HEADER_V2.pack(MAGIC, self._version, len(self._sections), self._algo, 0, total)
        ]
        for s in self._sections:
            parts.append(
                _ENTRY_V2.pack(
                    s.name.encode().ljust(16, b"\x00"),
                    s.dtype.ljust(8, b"\x00"),
                    len(s.payload),
                    checksum(s.payload, self._algo),
                )
            )
        head_and_table = b"".join(parts)
        parts.append(_DIGEST.pack(checksum(head_and_table, self._algo)))
        for s in self._sections:
            parts.append(s.payload)
        return b"".join(parts)

    def _to_bytes_v1(self) -> bytes:
        parts = [_HEADER_V1.pack(MAGIC, 1, len(self._sections))]
        for s in self._sections:
            parts.append(_ENTRY_V1.pack(s.name.encode().ljust(16, b"\x00"),
                                        s.dtype.ljust(8, b"\x00"),
                                        len(s.payload)))
        for s in self._sections:
            parts.append(s.payload)
        return b"".join(parts)

    def section_sizes(self) -> dict[str, int]:
        """Per-section payload byte counts (for size breakdowns)."""
        return {s.name: len(s.payload) for s in self._sections}

    @property
    def overhead_bytes(self) -> int:
        """Header + section-table (+ digest) bytes: the container's footprint."""
        if self._version == 1:
            return _HEADER_V1.size + _ENTRY_V1.size * len(self._sections)
        return _HEADER_V2.size + _ENTRY_V2.size * len(self._sections) + _DIGEST.size


class ArchiveReader:
    """Parse an archive blob and expose sections by name.

    Reads v1, v2 and v3.  For v2/v3 the constructor validates framing (declared
    total size) and the header/table digest; each section's payload checksum
    is validated on first access (:meth:`get_bytes` / :meth:`get_array`), and
    :meth:`verify_all` forces validation of every section up front.
    """

    def __init__(self, blob: bytes) -> None:
        blob = bytes(blob)
        if len(blob) < _HEADER_V1.size:
            raise ArchiveError("archive truncated: missing header")
        magic, version = struct.unpack_from("<8sH", blob, 0)
        if magic != MAGIC:
            raise ArchiveError(f"bad magic {magic!r}; not a repro archive")
        self._blob = blob
        self.version = int(version)
        self.checksum_algo = 0
        #: name -> (dtype tag, payload offset, length, checksum or None)
        self._sections: dict[str, tuple[bytes, int, int, int | None]] = {}
        self._verified: set[str] = set()
        if version == 1:
            self._parse_v1(blob)
        elif version in (2, 3):
            # v3 shares the v2 container layout byte-for-byte; the version
            # field only signals indexed (byte-aligned) Huffman payloads.
            self._parse_v2(blob)
        else:
            raise ArchiveError(f"unsupported archive version {version}")

    # -- parsing ----------------------------------------------------------

    def _parse_v1(self, blob: bytes) -> None:
        _, _, n_sections = _HEADER_V1.unpack_from(blob, 0)
        table_end = _HEADER_V1.size + _ENTRY_V1.size * n_sections
        if len(blob) < table_end:
            raise ArchiveError("archive truncated: incomplete section table")
        offset, payload_off = _HEADER_V1.size, table_end
        for _ in range(n_sections):
            raw_name, raw_dtype, length = _ENTRY_V1.unpack_from(blob, offset)
            offset += _ENTRY_V1.size
            name = self._decode_name(raw_name)
            if payload_off + length > len(blob):
                raise ArchiveError(f"archive truncated: section {name!r} payload")
            self._sections[name] = (raw_dtype.rstrip(b"\x00"), payload_off, int(length), None)
            payload_off += length

    def _parse_v2(self, blob: bytes) -> None:
        if len(blob) < _HEADER_V2.size:
            raise ArchiveError("archive truncated: missing v2 header")
        _, _, n_sections, algo, flags, total = _HEADER_V2.unpack_from(blob, 0)
        if flags != 0:
            raise ArchiveError(f"unsupported archive flags 0x{flags:02x}")
        if algo not in ALGO_NAMES:
            raise ArchiveError(f"unknown checksum algorithm id {algo}")
        self.checksum_algo = int(algo)
        table_end = _HEADER_V2.size + _ENTRY_V2.size * n_sections
        digest_end = table_end + _DIGEST.size
        if len(blob) < digest_end:
            raise ArchiveError("archive truncated: incomplete section table")
        if total != len(blob):
            _note_corruption("framing")
            raise ArchiveError(
                f"archive framing mismatch: header declares {total} bytes, got {len(blob)}"
            )
        (stored_digest,) = _DIGEST.unpack_from(blob, table_end)
        if checksum(blob[:table_end], algo) != stored_digest:
            _note_corruption("header_digest")
            raise IntegrityError(
                "archive header/section-table digest mismatch (corrupt header)"
            )
        offset, payload_off = _HEADER_V2.size, digest_end
        for _ in range(n_sections):
            raw_name, raw_dtype, length, crc = _ENTRY_V2.unpack_from(blob, offset)
            offset += _ENTRY_V2.size
            name = self._decode_name(raw_name)
            if payload_off + length > len(blob):
                raise ArchiveError(f"archive truncated: section {name!r} payload")
            self._sections[name] = (
                raw_dtype.rstrip(b"\x00"), payload_off, int(length), int(crc),
            )
            payload_off += length
        if payload_off != len(blob):
            _note_corruption("framing")
            raise ArchiveError(
                f"archive has {len(blob) - payload_off} trailing bytes past the last section"
            )

    def _decode_name(self, raw_name: bytes) -> str:
        try:
            name = raw_name.rstrip(b"\x00").decode("ascii")
        except UnicodeDecodeError:
            raise ArchiveError("corrupt section table: non-ASCII section name") from None
        if not name:
            raise ArchiveError("corrupt section table: empty section name")
        if name in self._sections:
            raise ArchiveError(f"corrupt section table: duplicate section {name!r}")
        return name

    # -- access -----------------------------------------------------------

    def names(self) -> list[str]:
        return list(self._sections)

    def section_sizes(self) -> dict[str, int]:
        """Payload bytes per section, in archive order."""
        return {name: length for name, (_, _, length, _) in self._sections.items()}

    def section_spans(self) -> dict[str, tuple[int, int]]:
        """``name -> (payload byte offset, length)``, in archive order.

        Lets tooling (the conformance checker's diff report) map a raw byte
        offset in the blob back to the section it lands in.
        """
        return {name: (off, length) for name, (_, off, length, _) in self._sections.items()}

    def has(self, name: str) -> bool:
        return name in self._sections

    def get_bytes(self, name: str) -> bytes:
        _, off, length, crc = self._entry(name)
        payload = self._blob[off : off + length]
        if crc is not None and name not in self._verified:
            if checksum(payload, self.checksum_algo) != crc:
                _note_corruption("section_checksum")
                raise IntegrityError(
                    f"section {name!r} checksum mismatch (corrupt payload)"
                )
            self._verified.add(name)
        return payload

    def get_array(self, name: str) -> np.ndarray:
        """Read back a typed array section (1-D, recorded dtype)."""
        raw_dtype = self._entry(name)[0]
        if raw_dtype == _RAW:
            raise ArchiveError(f"section {name!r} is raw bytes, not an array")
        try:
            dtype = np.dtype(raw_dtype.decode("ascii"))
        except (TypeError, UnicodeDecodeError):
            raise ArchiveError(
                f"section {name!r} has a corrupt dtype tag {raw_dtype!r}"
            ) from None
        payload = self.get_bytes(name)
        if len(payload) % dtype.itemsize:
            raise ArchiveError(
                f"section {name!r} holds {len(payload)} bytes, not a multiple of "
                f"dtype {dtype} itemsize {dtype.itemsize}"
            )
        return np.frombuffer(payload, dtype=dtype)

    def verify_all(self) -> None:
        """Validate every section's checksum now (v2; no-op for v1)."""
        for name in self._sections:
            self.get_bytes(name)

    def _entry(self, name: str) -> tuple[bytes, int, int, int | None]:
        try:
            return self._sections[name]
        except KeyError:
            raise ArchiveError(f"archive has no section {name!r}") from None
