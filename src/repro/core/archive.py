"""Self-describing binary archive for compressed fields.

The archive is a small sectioned container: a fixed header, a section table
(name, dtype, byte length), and the concatenated section payloads.  Every
byte the decompressor needs is inside, so compression-ratio accounting is
honest: ``CR = original_bytes / len(archive)`` includes codebooks, chunk
metadata, outliers, and the header itself (the paper's Table IV note about
chunkwise metadata overhead).

The layout is deliberately explicit (struct-packed, little-endian) rather
than pickle/JSON so archives are portable and their size is deterministic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from .errors import ArchiveError

__all__ = ["ArchiveBuilder", "ArchiveReader", "MAGIC", "VERSION"]

MAGIC = b"RPRSZP1\x00"
VERSION = 1

#: Section-table entry: 16-byte name, 8-byte dtype string, u64 length.
_ENTRY = struct.Struct("<16s8sQ")
_HEADER = struct.Struct("<8sHI")  # magic, version, n_sections

#: dtype tag for raw (untyped) byte sections.
_RAW = b"raw"


def _dtype_tag(dtype: np.dtype) -> bytes:
    tag = np.dtype(dtype).str.encode()  # e.g. b"<u2", b"<f4"
    if len(tag) > 8:
        raise ArchiveError(f"dtype tag too long: {tag!r}")
    return tag


@dataclass
class _Section:
    name: str
    dtype: bytes
    payload: bytes


class ArchiveBuilder:
    """Accumulate named sections and serialize to one byte blob."""

    def __init__(self) -> None:
        self._sections: list[_Section] = []
        self._names: set[str] = set()

    def add_bytes(self, name: str, payload: bytes) -> "ArchiveBuilder":
        """Add an untyped byte section."""
        self._add(name, _RAW, bytes(payload))
        return self

    def add_array(self, name: str, arr: np.ndarray) -> "ArchiveBuilder":
        """Add a 1-D typed array section (dtype is recorded for the reader)."""
        arr = np.ascontiguousarray(arr)
        self._add(name, _dtype_tag(arr.dtype), arr.tobytes())
        return self

    def _add(self, name: str, dtype: bytes, payload: bytes) -> None:
        if len(name.encode()) > 16:
            raise ArchiveError(f"section name too long: {name!r}")
        if name in self._names:
            raise ArchiveError(f"duplicate section {name!r}")
        self._names.add(name)
        self._sections.append(_Section(name, dtype, payload))

    def to_bytes(self) -> bytes:
        """Serialize header + section table + payloads."""
        parts = [_HEADER.pack(MAGIC, VERSION, len(self._sections))]
        for s in self._sections:
            parts.append(_ENTRY.pack(s.name.encode().ljust(16, b"\x00"),
                                     s.dtype.ljust(8, b"\x00"),
                                     len(s.payload)))
        for s in self._sections:
            parts.append(s.payload)
        return b"".join(parts)

    def section_sizes(self) -> dict[str, int]:
        """Per-section payload byte counts (for size breakdowns)."""
        return {s.name: len(s.payload) for s in self._sections}

    @property
    def overhead_bytes(self) -> int:
        """Header + section-table bytes (the container's own footprint)."""
        return _HEADER.size + _ENTRY.size * len(self._sections)


class ArchiveReader:
    """Parse an archive blob and expose sections by name."""

    def __init__(self, blob: bytes) -> None:
        if len(blob) < _HEADER.size:
            raise ArchiveError("archive truncated: missing header")
        magic, version, n_sections = _HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise ArchiveError(f"bad magic {magic!r}; not a repro archive")
        if version != VERSION:
            raise ArchiveError(f"unsupported archive version {version}")
        offset = _HEADER.size
        table_end = offset + _ENTRY.size * n_sections
        if len(blob) < table_end:
            raise ArchiveError("archive truncated: incomplete section table")
        self._sections: dict[str, tuple[bytes, int, int]] = {}
        payload_off = table_end
        for _ in range(n_sections):
            raw_name, raw_dtype, length = _ENTRY.unpack_from(blob, offset)
            offset += _ENTRY.size
            try:
                name = raw_name.rstrip(b"\x00").decode("ascii")
            except UnicodeDecodeError:
                raise ArchiveError("corrupt section table: non-ASCII section name") from None
            dtype = raw_dtype.rstrip(b"\x00")
            if payload_off + length > len(blob):
                raise ArchiveError(f"archive truncated: section {name!r} payload")
            self._sections[name] = (dtype, payload_off, int(length))
            payload_off += length
        self._blob = blob

    def names(self) -> list[str]:
        return list(self._sections)

    def section_sizes(self) -> dict[str, int]:
        """Payload bytes per section, in archive order."""
        return {name: length for name, (_, _, length) in self._sections.items()}

    def has(self, name: str) -> bool:
        return name in self._sections

    def get_bytes(self, name: str) -> bytes:
        dtype, off, length = self._entry(name)
        return self._blob[off : off + length]

    def get_array(self, name: str) -> np.ndarray:
        """Read back a typed array section (1-D, recorded dtype)."""
        raw_dtype, off, length = self._entry(name)
        if raw_dtype == _RAW:
            raise ArchiveError(f"section {name!r} is raw bytes, not an array")
        try:
            dtype = np.dtype(raw_dtype.decode("ascii"))
        except (TypeError, UnicodeDecodeError):
            raise ArchiveError(
                f"section {name!r} has a corrupt dtype tag {raw_dtype!r}"
            ) from None
        return np.frombuffer(self._blob, dtype=dtype,
                             count=length // dtype.itemsize, offset=off)

    def _entry(self, name: str) -> tuple[bytes, int, int]:
        try:
            return self._sections[name]
        except KeyError:
            raise ArchiveError(f"archive has no section {name!r}") from None
