"""Public compression API: :func:`compress`, :func:`decompress`, :class:`Compressor`.

End-to-end cuSZ+ pipeline (Fig. 1, bottom):

1. dual-quantization (prequant -> Lorenzo prediction -> postquant) with the
   modified outlier scheme (outliers carry the compensation delta);
2. histogram of quant-codes;
3. compressibility-aware workflow selection (⟨b⟩ <= 1.09 rule);
4. Workflow-Huffman (canonical multi-byte VLE, chunked/deflated) or
   Workflow-RLE (reduce-by-key runs, optional VLE over run values);
5. outlier gather into a sparse section;
6. sectioned archive serialization.

Decompression is the mirror image, ending in the branch-free partial-sum
Lorenzo reconstruction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry as tel
from ..engine.cache import active_cache, cached_histogram
from ..telemetry import instruments as ins
from ..telemetry import ledger as ledger_mod
from .archive import ArchiveBuilder, ArchiveReader
from .config import CompressorConfig, SelectorDiagnostics
from .dual_quant import (
    Quantized,
    fuse_quant_and_outliers,
    quantize_field,
)
from .errors import ArchiveError, ConfigError
from .lorenzo import lorenzo_reconstruct
from .selector import select_workflow
from .workflow import (
    emit_huffman_sections,
    emit_rle_sections,
    read_huffman_sections,
    read_rle_sections,
)

__all__ = [
    "CompressionResult",
    "DecompressionResult",
    "Compressor",
    "compress",
    "decompress",
    "decompress_with_stats",
    "sniff_container",
]

# Archive metadata section layout (little-endian):
#   dtype_code u8, ndim u8, workflow u8, predictor u8,
#   dict_size u32, huffman_chunk u32, rle_length_bytes u32,
#   shape 4*u64, chunks 4*u32,
#   eb_twice f64 (guarded quantization step), n_symbols u64, n_runs u64,
#   n_outliers u64, eb_abs f64 (the user-facing bound, for verification)
_META = struct.Struct("<BBBBIII4Q4IdQQQd")

_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
_CODE_DTYPES = {v: k for k, v in _DTYPE_CODES.items()}
_WORKFLOW_CODES = {"huffman": 0, "rle": 1, "rle+vle": 2, "huffman+lz": 3}
_CODE_WORKFLOWS = {v: k for k, v in _WORKFLOW_CODES.items()}
_PREDICTOR_CODES = {"lorenzo": 0, "regression": 1, "interp": 2}
_CODE_PREDICTORS = {v: k for k, v in _PREDICTOR_CODES.items()}


@dataclass
class CompressionResult:
    """Everything :func:`compress` produces.

    ``archive`` is the self-contained byte blob; the rest is reporting:
    per-section sizes, the selected workflow with its selector diagnostics,
    and the resolved absolute error bound.
    """

    archive: bytes
    workflow: str
    eb_abs: float
    original_bytes: int
    section_sizes: dict[str, int] = field(default_factory=dict)
    diagnostics: SelectorDiagnostics | None = None
    stage_stats: dict[str, float] = field(default_factory=dict)
    n_outliers: int = 0
    predictor: str = "lorenzo"
    #: Predicted-vs-actual selector audit (see :func:`_selector_audit`):
    #: the estimated ⟨b⟩ bounds / RLE gain next to the realized coded bits,
    #: plus the detected misprediction kind (if any).
    selector_audit: dict | None = None

    @property
    def compressed_bytes(self) -> int:
        return len(self.archive)

    @property
    def compression_ratio(self) -> float:
        return self.original_bytes / len(self.archive)


@dataclass
class DecompressionResult:
    """Everything :func:`decompress_with_stats` produces.

    ``data`` is the reconstructed array; the rest mirrors
    :class:`CompressionResult`'s reporting so ``repro decompress`` and
    ``verify`` can print per-stage timings symmetric with compression.
    ``stage_stats`` holds span-derived ``<stage>_seconds`` keys when
    telemetry is enabled (empty when disabled).
    """

    data: np.ndarray
    workflow: str
    predictor: str
    eb_abs: float
    n_outliers: int
    section_sizes: dict[str, int] = field(default_factory=dict)
    stage_stats: dict[str, float] = field(default_factory=dict)

    @property
    def decompressed_bytes(self) -> int:
        return int(self.data.nbytes)


def compress(data: np.ndarray, config: CompressorConfig | None = None, **kwargs) -> CompressionResult:
    """Compress a 1..4-D float array into a self-contained archive.

    ``kwargs`` are convenience overrides for :class:`CompressorConfig`
    fields, e.g. ``compress(x, eb=1e-3, workflow="huffman")``.  The
    configured error-bound mode drives the pipeline: ``"abs"``/``"rel"``
    run the dual-quantization path directly, ``"pwrel"`` routes through the
    point-wise-relative log transform (:mod:`repro.core.pwrel`) and wraps
    the result in a ``pw.*`` container that :func:`decompress` recognizes.
    """
    if config is None:
        config = CompressorConfig(**kwargs)
    elif kwargs:
        config = config.with_(**kwargs)
    if config.eb_mode == "pwrel":
        from .pwrel import _compress_pwrel

        return _compress_pwrel(np.asarray(data), config.eb, config)
    data = np.asarray(data)
    if data.dtype not in _DTYPE_CODES:
        if np.issubdtype(data.dtype, np.floating):
            data = data.astype(np.float32)
        else:
            raise ConfigError(f"unsupported dtype {data.dtype}; expected float32/float64")

    with tel.scope(config.telemetry):
        return _compress_impl(data, config)


def _compress_impl(data: np.ndarray, config: CompressorConfig) -> CompressionResult:
    led = ledger_mod.ledger_for(config)
    if led is not None:
        cache = active_cache()
        cache0 = (cache.stats.hits, cache.stats.misses) if cache else None
    with tel.span("compress", bytes_in=int(data.nbytes)) as root:
        # Missing values (NaN masks are routine in observational/climate
        # data): record their positions losslessly and fill with the finite
        # mean so the predictor sees smooth data; decompression restores the
        # NaNs exactly.
        nan_mask = np.isnan(data)
        nan_payload: bytes | None = None
        if nan_mask.any():
            with tel.span("nan_mask"):
                finite = data[~nan_mask]
                if finite.size == 0:
                    # A relative bound has no range to resolve against.  An
                    # absolute bound is still well-defined (the mask alone
                    # restores every value exactly), and all-NaN *blocks*
                    # are routine once a masked field is split on axis 0.
                    if config.eb_mode != "abs":
                        raise ConfigError("field is entirely NaN; nothing to compress")
                    fill = 0.0
                else:
                    fill = float(finite.mean())
                data = np.where(nan_mask, np.asarray(fill, dtype=data.dtype), data)
                nan_payload = _encode_nan_mask(nan_mask)

        with tel.span("quantize", bytes_in=int(data.nbytes)) as sp:
            bundle, eb_abs = quantize_field(data, config)
            sp.set(bytes_out=int(bundle.quant.nbytes), predictor=bundle.predictor,
                   n_outliers=bundle.n_outliers)
        with tel.span("histogram", bytes_in=int(bundle.quant.nbytes)):
            freqs = cached_histogram(bundle.quant, config.dict_size)
        with tel.span("select_workflow") as sp:
            diag = select_workflow(bundle.quant, freqs, config)
            workflow = diag.decision
            sp.set(workflow=workflow)

        builder = ArchiveBuilder()
        stage_stats: dict[str, float] = {}
        flat = bundle.quant.reshape(-1)
        n_runs = 0
        with tel.span("encode", bytes_in=int(flat.nbytes), workflow=workflow):
            if workflow in ("huffman", "huffman+lz"):
                stage_stats.update(
                    emit_huffman_sections(
                        flat, config.dict_size, config.huffman_chunk, builder,
                        lz_stage=workflow == "huffman+lz",
                    )
                )
            elif workflow in ("rle", "rle+vle"):
                rle_stats = emit_rle_sections(
                    flat, config, builder, with_vle=workflow == "rle+vle"
                )
                n_runs = int(rle_stats.pop("n_runs"))
                stage_stats.update(rle_stats)
            else:  # pragma: no cover - selector guarantees a known value
                raise ConfigError(f"selector produced unknown workflow {workflow!r}")

        with tel.span("outliers", bytes_in=int(bundle.outlier_values.nbytes)):
            _emit_outliers(bundle, builder)
        with tel.span("archive") as sp:
            if nan_payload is not None:
                builder.add_bytes("nan", nan_payload)
            if bundle.predictor == "regression":
                builder.add_bytes("reg", bundle.reg_coeffs.serialized())
            builder.add_bytes("meta", _pack_meta(data, config, bundle, workflow, eb_abs, n_runs))
            blob = builder.to_bytes()
            sp.set(bytes_out=len(blob))
        root.set(bytes_out=len(blob), workflow=workflow)

    stage_stats.update(ins.stage_stats_from_span(root))
    audit = _selector_audit(
        diag, workflow, stage_stats, builder.section_sizes(),
        n=int(np.prod(bundle.shape)), forced=config.workflow != "auto",
    )
    result = CompressionResult(
        archive=blob,
        workflow=workflow,
        eb_abs=eb_abs,
        original_bytes=int(data.nbytes),
        section_sizes=builder.section_sizes(),
        diagnostics=diag,
        stage_stats=stage_stats,
        n_outliers=bundle.n_outliers,
        predictor=bundle.predictor,
        selector_audit=audit,
    )
    if tel.enabled():
        if audit.get("mispredict"):
            ins.SELECTOR_MISPREDICT.inc(kind=audit["mispredict"])
        ins.COMPRESS_CALLS.inc()
        ins.INPUT_BYTES.inc(result.original_bytes)
        ins.ARCHIVE_BYTES.inc(result.compressed_bytes)
        ins.SELECTOR_DECISIONS.inc(workflow=workflow)
        if bundle.n_outliers:
            ins.OUTLIERS.inc(bundle.n_outliers)
        ins.LAST_RATIO.set_value(result.compression_ratio)
        ins.record_stage_metrics(root, op="compress")
    if led is not None:
        cache = active_cache()
        cache_delta = None
        if cache is not None and cache0 is not None:
            cache_delta = {
                "hits": cache.stats.hits - cache0[0],
                "misses": cache.stats.misses - cache0[1],
            }
        led.record(
            "compress",
            fingerprint=ledger_mod.config_fingerprint(config),
            config={
                "eb": config.eb,
                "eb_mode": config.eb_mode,
                "workflow": config.workflow,
                "predictor": config.predictor,
                "dict_size": config.dict_size,
            },
            shape=[int(s) for s in bundle.shape],
            dtype=str(data.dtype),
            selector={
                "decision": workflow,
                "forced": config.workflow != "auto",
                "mispredict": audit.get("mispredict"),
            },
            stages=ledger_mod.span_self_times(root),
            sizes={
                "original_bytes": result.original_bytes,
                "compressed_bytes": result.compressed_bytes,
                "ratio": result.compression_ratio,
            },
            outliers=bundle.n_outliers,
            cache=cache_delta,
        )
    return result


#: Archive sections that carry the coded quant stream (not outliers/meta),
#: per workflow family: the Huffman group or the RLE value/length groups.
_QUANT_SECTION_PREFIXES = ("q.", "r.", "rv.", "rl.")


def _selector_audit(
    diag: SelectorDiagnostics,
    workflow: str,
    stage_stats: dict[str, float],
    section_sizes: dict[str, int],
    n: int,
    forced: bool,
) -> dict:
    """Predicted-vs-actual audit of the workflow selector's estimators.

    Records the Gallager/Johnsen ⟨b⟩ bounds (R+/R-) and the RLE
    bits-per-symbol estimate next to the bits the chosen coder actually
    produced, and classifies mispredictions:

    * ``huffman_bounds`` -- the realized Huffman ⟨b⟩ fell outside the
      predicted [H+R-, H+R+] interval (estimator assumption broken);
    * ``rle_regret`` -- RLE was chosen but coded more bits per symbol than
      Huffman's predicted *worst case*, i.e. the selector made a losing
      call.

    Forced workflows are audited (the coded bits are still recorded) but
    never counted as mispredictions: there was no prediction to get wrong.
    """
    coded_bytes = sum(
        size for name, size in section_sizes.items()
        if name.startswith(_QUANT_SECTION_PREFIXES)
    )
    actual_bits = coded_bytes * 8.0 / n if n else 0.0
    actual_huffman = stage_stats.get("avg_bitlen")
    rle_estimate = diag.rle_bitlen_estimate
    audit = {
        "decision": workflow,
        "forced": forced,
        "predicted_bitlen_lower": diag.bitlen_lower,
        "predicted_bitlen_upper": diag.bitlen_upper,
        "predicted_rle_bits_per_symbol": (
            None if rle_estimate != rle_estimate else rle_estimate
        ),
        "actual_huffman_avg_bitlen": actual_huffman,
        "actual_bits_per_symbol": actual_bits,
        "mispredict": None,
    }
    if forced:
        return audit
    eps = 1e-9
    if workflow in ("huffman", "huffman+lz") and actual_huffman is not None:
        if not (diag.bitlen_lower - eps <= actual_huffman <= diag.bitlen_upper + eps):
            audit["mispredict"] = "huffman_bounds"
    elif workflow in ("rle", "rle+vle"):
        if actual_bits > diag.bitlen_upper + eps:
            audit["mispredict"] = "rle_regret"
    return audit


def sniff_container(blob: bytes) -> str:
    """Identify an archive blob's container kind without decoding it.

    Returns ``"single"`` (one field), ``"blocks"`` (multi-block container),
    or ``"pwrel"`` (point-wise-relative wrapper).  Raises
    :class:`ArchiveError` with a hint for anything unrecognizable.
    """
    reader = ArchiveReader(blob)
    if reader.has("pw.inner"):
        return "pwrel"
    if reader.has("bmeta"):
        return "blocks"
    if reader.has("meta"):
        return "single"
    raise ArchiveError(
        "blob has valid framing but no recognizable payload (expected a "
        "'meta', 'bmeta', or 'pw.inner' section); it may be a partial "
        f"write or not a repro archive. sections present: {reader.names()}"
    )


def decompress(
    blob: bytes, jobs: int | None = None, backend=None, engine=None
) -> np.ndarray:
    """Reconstruct the original-shaped array from any archive blob.

    This is the single front door: it sniffs the container kind (single
    archive, multi-block container, or point-wise-relative wrapper) from
    the section manifest and dispatches accordingly.  Malformed blobs raise
    :class:`ArchiveError` with a hint, never a bare ``struct.error``.  For
    per-stage timings use :func:`decompress_with_stats`.

    ``jobs=N`` decodes in parallel on a transient
    :class:`~repro.engine.CompressionEngine` -- across blocks for a
    multi-block container, across byte-aligned chunk groups for a single
    format-v3 archive (v1/v2 payloads have no sync points and decode
    serially).  ``backend=`` selects its executor
    (``"serial"``/``"thread"``/``"process"``), or reuses a caller-owned
    engine passed in its place.  The output is identical to the serial
    decode regardless of backend and worker count.

    .. deprecated:: the ``engine=`` keyword; pass the engine as ``backend=``.
    """
    from ..engine.backends import deprecate_engine_kwarg

    if engine is not None and backend is None:
        backend = deprecate_engine_kwarg("decompress", engine)
    return decompress_with_stats(blob, jobs=jobs, backend=backend).data


def decompress_with_stats(
    blob: bytes, jobs: int | None = None, backend=None, engine=None
) -> DecompressionResult:
    """Like :func:`decompress`, returning the array plus stage reporting.

    .. deprecated:: the ``engine=`` keyword; pass the engine as ``backend=``.
    """
    from ..engine.backends import deprecate_engine_kwarg, resolve_execution

    if engine is not None and backend is None:
        backend = deprecate_engine_kwarg("decompress_with_stats", engine)
    eng, own_engine = resolve_execution(backend, jobs, None)
    try:
        kind = sniff_container(blob)
        if kind == "pwrel":
            from .pwrel import decompress_pwrel_with_stats

            return decompress_pwrel_with_stats(blob, engine=eng)
        if kind == "blocks":
            from .streaming import decompress_blocks_with_stats

            return decompress_blocks_with_stats(blob, backend=eng)
        return _decompress_impl(ArchiveReader(blob), blob, engine=eng)
    except struct.error as exc:
        # Belt and braces: structured parsing is length-checked everywhere,
        # but a raw struct.error must never leak to the caller.
        raise ArchiveError(
            f"archive metadata malformed ({exc}); the blob is likely "
            "truncated or corrupt"
        ) from None
    finally:
        if own_engine:
            eng.shutdown(wait=True)


def _decompress_impl(
    reader: ArchiveReader, blob: bytes, engine=None
) -> DecompressionResult:
    with tel.span("decompress", bytes_in=len(blob)) as root:
        with tel.span("archive_read", bytes_in=len(blob)):
            meta = _unpack_meta(reader.get_bytes("meta"))
            config = CompressorConfig(
                eb=meta["eb_twice"] / 2.0,
                eb_mode="abs",
                dict_size=meta["dict_size"],
                huffman_chunk=meta["huffman_chunk"],
                rle_length_dtype=f"uint{meta['rle_length_bytes'] * 8}",
            )
        quant_dtype = np.uint16 if meta["dict_size"] <= 1 << 16 else np.uint32
        n = meta["n_symbols"]
        with tel.span("decode", workflow=meta["workflow"]) as sp:
            if meta["workflow"] in ("huffman", "huffman+lz"):
                flat = read_huffman_sections(
                    reader, n, meta["huffman_chunk"], out_dtype=quant_dtype,
                    engine=engine,
                )
            else:
                flat = read_rle_sections(
                    reader, n, meta["n_runs"], config, quant_dtype=quant_dtype,
                    engine=engine,
                )
            sp.set(bytes_out=int(flat.nbytes))
        if flat.size != n:
            raise ArchiveError(f"decoded {flat.size} quant-codes, expected {n}")

        with tel.span("scatter_outliers") as sp:
            oidx, oval = _read_outliers(reader, meta["n_outliers"])
            fused = fuse_quant_and_outliers(flat, oidx, oval, meta["dict_size"] // 2)
            sp.set(n_outliers=meta["n_outliers"])
        with tel.span("reconstruct", predictor=meta["predictor"]) as sp:
            if meta["predictor"] == "regression":
                from .regression import RegressionCoefficients, predict_from_coefficients

                grid = tuple(-(-s // c) for s, c in zip(meta["shape"], meta["chunks"]))
                coeffs = RegressionCoefficients.deserialized(
                    reader.get_bytes("reg"), grid, meta["chunks"]
                )
                dq = predict_from_coefficients(coeffs, meta["shape"]) + fused.reshape(meta["shape"])
            elif meta["predictor"] == "interp":
                from .interp import interp_reconstruct

                dq = interp_reconstruct(fused.reshape(meta["shape"]), cubic=True)
            else:
                dq = lorenzo_reconstruct(fused.reshape(meta["shape"]), meta["chunks"])
            out = (dq.astype(np.float64) * meta["eb_twice"]).astype(meta["dtype"])
            sp.set(bytes_out=int(out.nbytes))
        if reader.has("nan"):
            with tel.span("nan_restore"):
                mask = _decode_nan_mask(reader.get_bytes("nan"), int(np.prod(meta["shape"])))
                out.reshape(-1)[mask] = np.nan
        root.set(bytes_out=int(out.nbytes), workflow=meta["workflow"])

    if tel.enabled():
        ins.DECOMPRESS_CALLS.inc()
        ins.record_stage_metrics(root, op="decompress")
    led = ledger_mod.ledger_for(None)
    if led is not None:
        led.record(
            "decompress",
            shape=[int(s) for s in meta["shape"]],
            dtype=str(np.dtype(meta["dtype"])),
            workflow=meta["workflow"],
            predictor=meta["predictor"],
            stages=ledger_mod.span_self_times(root),
            sizes={
                "compressed_bytes": len(blob),
                "original_bytes": int(out.nbytes),
                "ratio": (int(out.nbytes) / len(blob)) if len(blob) else 0.0,
            },
            outliers=meta["n_outliers"],
        )
    return DecompressionResult(
        data=out,
        workflow=meta["workflow"],
        predictor=meta["predictor"],
        eb_abs=meta["eb_abs"],
        n_outliers=meta["n_outliers"],
        section_sizes=reader.section_sizes(),
        stage_stats=ins.stage_stats_from_span(root),
    )


class Compressor:
    """Stateful front door binding a configuration to the full codec surface.

    Every method applies ``self.config``; decompression auto-dispatches on
    the container kind, so one ``Compressor`` round-trips single fields,
    multi-block containers, batches, and streams alike.

    >>> comp = Compressor(eb=1e-3)
    >>> result = comp.compress(field)
    >>> restored = comp.decompress(result.archive)

    Batch compression returns engine futures (submission order preserved):

    >>> futures = comp.batch([field_a, field_b])
    >>> results = [f.result() for f in futures]

    Streams are context-managed; the sealed container appears on exit:

    >>> with Compressor(eb=1e-3, eb_mode="abs").stream() as sc:
    ...     for block in simulation_steps():
    ...         sc.append(block)
    >>> blob = sc.container

    ``jobs`` sets the worker count -- and ``backend`` the executor
    (``"serial"``/``"thread"``/``"process"``) -- of the lazily-created
    engine behind :meth:`batch` and :meth:`compress_blocks` (defaults: the
    core count, and the config/``REPRO_ENGINE_BACKEND`` resolution).  Use
    the ``Compressor`` as a context manager (or call :meth:`close`) to shut
    that engine down eagerly.
    """

    def __init__(
        self,
        config: CompressorConfig | None = None,
        jobs: int | None = None,
        backend: str | None = None,
        **kwargs,
    ) -> None:
        self.config = config.with_(**kwargs) if config and kwargs else (
            config or CompressorConfig(**kwargs)
        )
        self.jobs = jobs
        self.backend = backend
        self._engine = None

    # -- single fields ------------------------------------------------------

    def compress(self, data: np.ndarray, **overrides) -> CompressionResult:
        return compress(data, self.config, **overrides)

    @staticmethod
    def decompress(
        blob: bytes, jobs: int | None = None, backend=None, engine=None
    ) -> np.ndarray:
        return decompress(blob, jobs=jobs, backend=backend, engine=engine)

    @staticmethod
    def decompress_with_stats(
        blob: bytes, jobs: int | None = None, backend=None, engine=None
    ) -> DecompressionResult:
        return decompress_with_stats(blob, jobs=jobs, backend=backend, engine=engine)

    # -- blocks, batches, streams ------------------------------------------

    def compress_blocks(
        self,
        data: np.ndarray,
        max_block_bytes: int = 64 << 20,
        jobs: int | None = None,
    ) -> bytes:
        """Block-split container via the engine (see
        :func:`repro.core.streaming.compress_blocks`)."""
        from .streaming import compress_blocks

        engine = self.engine(jobs) if (jobs or self.jobs or self._engine) else None
        return compress_blocks(
            data, self.config, max_block_bytes=max_block_bytes, backend=engine
        )

    def batch(self, fields, **overrides) -> list:
        """Submit every field to the engine; returns futures in order."""
        return self.engine().batch(fields, self.config, **overrides)

    def stream(self, jobs: int | None = None, **overrides):
        """A context-managed :class:`~repro.core.streaming.StreamingCompressor`
        bound to this configuration."""
        from .streaming import StreamingCompressor

        config = self.config.with_(**overrides) if overrides else self.config
        engine = self.engine(jobs) if (jobs or self.jobs or self._engine) else None
        return StreamingCompressor(config, backend=engine)

    # -- engine lifecycle ---------------------------------------------------

    def engine(self, jobs: int | None = None):
        """The lazily-created shared :class:`~repro.engine.CompressionEngine`.

        ``jobs`` applies only on first creation; afterwards the existing
        pool is reused regardless.
        """
        if self._engine is None or self._engine.closed:
            from ..engine.core import CompressionEngine

            self._engine = CompressionEngine(
                self.config, jobs=jobs or self.jobs, backend=self.backend
            )
        return self._engine

    def close(self) -> None:
        """Shut down the shared engine (no-op if none was created)."""
        if self._engine is not None:
            self._engine.shutdown(wait=True)
            self._engine = None

    def __enter__(self) -> "Compressor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# Section helpers
# ---------------------------------------------------------------------------


def _encode_nan_mask(mask: np.ndarray) -> bytes:
    """Pick the smaller of a packed bit-mask and a u32 index list."""
    flat = mask.reshape(-1)
    idx = np.flatnonzero(flat).astype(np.uint32)
    bitmask_bytes = (flat.size + 7) // 8
    if idx.nbytes < bitmask_bytes:
        return b"\x01" + idx.tobytes()
    return b"\x00" + np.packbits(flat).tobytes()


def _decode_nan_mask(raw: bytes, n: int) -> np.ndarray:
    """Flat boolean mask from :func:`_encode_nan_mask`'s payload."""
    if not raw:
        raise ArchiveError("empty NaN-mask section")
    kind, payload = raw[0], raw[1:]
    if kind == 1:
        try:
            idx = np.frombuffer(payload, dtype=np.uint32)
        except ValueError as exc:
            raise ArchiveError(f"NaN-mask index list malformed: {exc}") from None
        if idx.size and int(idx.max()) >= n:
            raise ArchiveError("NaN-mask index out of range")
        mask = np.zeros(n, dtype=bool)
        mask[idx.astype(np.int64)] = True
        return mask
    if kind == 0:
        packed = np.frombuffer(payload, dtype=np.uint8)
        if packed.size * 8 < n:
            raise ArchiveError("NaN bit-mask too short")
        return np.unpackbits(packed, count=n).astype(bool)
    raise ArchiveError(f"unknown NaN-mask encoding {kind}")


def _emit_outliers(bundle: Quantized, builder: ArchiveBuilder) -> None:
    """Gather-outlier stage: store sparse (index, delta) pairs compactly."""
    idx = bundle.outlier_indices
    val = bundle.outlier_values
    n = int(np.prod(bundle.shape))
    idx_dtype = np.uint32 if n <= np.iinfo(np.uint32).max else np.int64
    if val.size and (val.min() < np.iinfo(np.int32).min or val.max() > np.iinfo(np.int32).max):
        val_dtype = np.int64
    else:
        val_dtype = np.int32
    builder.add_array("o.idx", idx.astype(idx_dtype))
    builder.add_array("o.val", val.astype(val_dtype))


def _read_outliers(reader: ArchiveReader, n_outliers: int) -> tuple[np.ndarray, np.ndarray]:
    idx = reader.get_array("o.idx").astype(np.int64)
    val = reader.get_array("o.val").astype(np.int64)
    if idx.size != n_outliers or val.size != n_outliers:
        raise ArchiveError("outlier section size mismatch with header")
    return idx, val


def _pack_meta(
    data: np.ndarray,
    config: CompressorConfig,
    bundle: Quantized,
    workflow: str,
    eb_abs: float,
    n_runs: int,
) -> bytes:
    shape = list(bundle.shape) + [0] * (4 - len(bundle.shape))
    chunks = list(bundle.chunks) + [0] * (4 - len(bundle.chunks))
    return _META.pack(
        _DTYPE_CODES[np.dtype(data.dtype)],
        data.ndim,
        _WORKFLOW_CODES[workflow],
        _PREDICTOR_CODES[bundle.predictor],
        config.dict_size,
        config.huffman_chunk,
        np.dtype(config.rle_length_dtype).itemsize,
        *shape,
        *chunks,
        bundle.eb_twice,
        int(np.prod(bundle.shape)),
        n_runs,
        bundle.n_outliers,
        eb_abs,
    )


def _unpack_meta(raw: bytes) -> dict:
    if len(raw) != _META.size:
        raise ArchiveError(f"meta section has {len(raw)} bytes, expected {_META.size}")
    fields = _META.unpack(raw)
    (dtype_code, ndim, wf_code, pred_code, dict_size, huffman_chunk, rle_len_bytes) = fields[:7]
    shape4 = fields[7:11]
    chunks4 = fields[11:15]
    eb_twice, n_symbols, n_runs, n_outliers, eb_abs = fields[15:]
    if dtype_code not in _CODE_DTYPES:
        raise ArchiveError(f"unknown dtype code {dtype_code}")
    if wf_code not in _CODE_WORKFLOWS:
        raise ArchiveError(f"unknown workflow code {wf_code}")
    if pred_code not in _CODE_PREDICTORS:
        raise ArchiveError(f"unknown predictor code {pred_code}")
    if not 1 <= ndim <= 4:
        raise ArchiveError(f"invalid ndim {ndim}")
    shape = tuple(int(s) for s in shape4[:ndim])
    chunks = tuple(int(c) for c in chunks4[:ndim])
    if any(s < 1 for s in shape) or int(np.prod(shape, dtype=np.float64)) != n_symbols:
        raise ArchiveError(f"corrupt metadata: shape {shape} != {n_symbols} elements")
    if n_symbols < 1 or n_symbols > 1 << 40:
        raise ArchiveError(f"corrupt metadata: implausible element count {n_symbols}")
    if any(c < 1 for c in chunks):
        raise ArchiveError(f"corrupt metadata: chunk sizes {chunks}")
    if not (2 <= dict_size <= 1 << 20) or dict_size % 2:
        raise ArchiveError(f"corrupt metadata: dict_size {dict_size}")
    if huffman_chunk < 1:
        raise ArchiveError(f"corrupt metadata: huffman_chunk {huffman_chunk}")
    if rle_len_bytes not in (1, 2, 4, 8):
        raise ArchiveError(f"corrupt metadata: rle length width {rle_len_bytes}")
    if not (eb_twice > 0 and np.isfinite(eb_twice)):
        raise ArchiveError(f"corrupt metadata: quantization step {eb_twice}")
    return {
        "dtype": _CODE_DTYPES[dtype_code],
        "workflow": _CODE_WORKFLOWS[wf_code],
        "predictor": _CODE_PREDICTORS[pred_code],
        "dict_size": int(dict_size),
        "huffman_chunk": int(huffman_chunk),
        "rle_length_bytes": int(rle_len_bytes),
        "shape": shape,
        "chunks": chunks,
        "eb_twice": float(eb_twice),
        "n_symbols": int(n_symbols),
        "n_runs": int(n_runs),
        "n_outliers": int(n_outliers),
        "eb_abs": float(eb_abs),
    }
