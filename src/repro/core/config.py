"""Configuration objects for the compressor.

The defaults mirror cuSZ/cuSZ+ as described in the paper:

* quant-code dictionary (``dict_size``) of 1024 symbols, i.e. a quantization
  *radius* of 512;
* per-chunk compression with chunk sizes 256 (1D), 16x16 (2D) and 8x8x8 (3D),
  matching the paper's Section IV-B.3 kernel chunking;
* Huffman coding performed in independent chunks of ``huffman_chunk``
  quant-codes (the "deflating" granularity), which is what makes GPU decoding
  parallelizable;
* the adaptive workflow rule "use RLE when the estimated average Huffman
  bit-length is no greater than ``rle_bitlen_threshold`` (= 1.09)".
"""

from __future__ import annotations

import math
from dataclasses import InitVar, dataclass, field, replace
from pathlib import Path
from typing import Literal

from .errors import ConfigError, DimensionalityError

#: Supported error-bound interpretation modes.
#:   ``abs``   -- the bound is an absolute value difference.
#:   ``rel``   -- the bound is relative to the field's value range (the
#:                paper's "relative to value range" bounds, e.g. 1e-4).
#:   ``pwrel`` -- the bound is point-wise relative, ``|d' - d| <= eb * |d|``
#:                (paper Section VI; implemented via the log transform of
#:                :mod:`repro.core.pwrel`).
ErrorBoundMode = Literal["abs", "rel", "pwrel"]

#: Workflow selection.  ``auto`` applies the paper's compressibility-aware
#: rule; the other values force a specific pipeline.  ``huffman+lz`` appends
#: the CPU-side dictionary stage (cuSZ Step-9 / the qhg reference) using the
#: from-scratch LZ77 coder -- highest ratio, host-side throughput.
WorkflowChoice = Literal["auto", "huffman", "rle", "rle+vle", "huffman+lz"]

#: Predictor selection.  ``lorenzo`` is the paper's default; ``regression``
#: is the SZ2-style block hyperplane predictor (the paper's stated future
#: work); ``interp`` is the SZ3-style multi-level cubic interpolation
#: (paper ref. [19]); ``auto`` quantizes with each and keeps the cheapest.
PredictorChoice = Literal["lorenzo", "regression", "interp", "auto"]

#: Default per-dimensionality chunk shapes (cuSZ block sizes).
DEFAULT_CHUNKS: dict[int, tuple[int, ...]] = {
    1: (256,),
    2: (16, 16),
    3: (8, 8, 8),
    4: (8, 8, 8, 8),
}

#: Average-bit-length threshold below which Workflow-RLE is selected
#: (paper Section III-B: "when Huffman is likely to achieve an average
#: bit-length lower than 1.09, we can use RLE").
RLE_BITLEN_THRESHOLD = 1.09


@dataclass(frozen=True)
class CompressorConfig:
    """User-facing configuration for :func:`repro.compress`.

    Parameters
    ----------
    eb:
        Error bound.  Interpreted according to ``eb_mode``.
    eb_mode:
        ``"rel"`` (default, bound is ``eb * (max - min)`` of the field),
        ``"abs"``, or ``"pwrel"`` (point-wise relative,
        ``|d' - d| <= eb * |d|``; requires ``1e-6 <= eb < 1``).  The
        keyword ``mode`` is accepted as an alias at construction time:
        ``CompressorConfig(mode="pwrel", eb=1e-3)``.
    dict_size:
        Number of quant-code symbols (histogram bins / Huffman alphabet).
        Must be an even positive integer; the quantization radius is
        ``dict_size // 2``.
    workflow:
        ``"auto"`` to apply the adaptive selection rule, or force one of
        ``"huffman"``, ``"rle"``, ``"rle+vle"``.
    chunks:
        Optional per-axis chunk shape; ``None`` selects the cuSZ default for
        the data's dimensionality.
    huffman_chunk:
        Number of quant-codes per independently-decodable Huffman chunk.
    rle_bitlen_threshold:
        The adaptive rule's threshold on the estimated average Huffman
        bit-length.
    rle_encode_lengths:
        Whether to Huffman-encode the RLE run-length metadata as well
        (paper default: disabled -- metadata is stored raw).
    rle_length_dtype:
        Integer dtype used for raw RLE run lengths.
    predictor:
        ``"lorenzo"`` (default), ``"regression"`` (SZ2-style block
        hyperplanes), or ``"auto"`` (pick per field by estimated cost).
    telemetry:
        Per-call telemetry override: ``True``/``False`` force spans and
        metrics on/off for this compressor regardless of the global switch;
        ``None`` (default) follows ``repro.telemetry.enabled()`` (the
        ``REPRO_TELEMETRY`` environment variable).
    ledger:
        Optional path to a run-ledger JSONL file: every compress invocation
        under this config appends one record describing what it did (see
        :mod:`repro.telemetry.ledger`).  ``None`` (default) follows the
        ``REPRO_LEDGER`` environment variable.  Observability only -- the
        produced archive is byte-identical either way.
    backend:
        Default executor backend (``"serial"``, ``"thread"`` or
        ``"process"``) for engines built from this config.  ``None``
        (default) follows the ``REPRO_ENGINE_BACKEND`` environment variable,
        then ``"thread"``.  Execution strategy only -- archives are
        byte-identical across backends.
    """

    eb: float = 1e-4
    eb_mode: ErrorBoundMode = "rel"
    dict_size: int = 1024
    workflow: WorkflowChoice = "auto"
    predictor: PredictorChoice = "lorenzo"
    chunks: tuple[int, ...] | None = None
    huffman_chunk: int = 4096
    rle_bitlen_threshold: float = RLE_BITLEN_THRESHOLD
    rle_encode_lengths: bool = False
    rle_length_dtype: str = "uint16"
    telemetry: bool | None = None
    ledger: str | None = None
    backend: str | None = None
    #: Construction-time alias for ``eb_mode`` (the unified codec API's
    #: spelling); it never survives as state -- ``eb_mode`` holds the truth.
    mode: InitVar[str | None] = None

    def __post_init__(self, mode: str | None = None) -> None:
        if mode is not None:
            object.__setattr__(self, "eb_mode", mode)
        if self.telemetry is not None and not isinstance(self.telemetry, bool):
            raise ConfigError(f"telemetry must be True, False or None, got {self.telemetry!r}")
        if self.ledger is not None and not isinstance(self.ledger, (str, Path)):
            raise ConfigError(f"ledger must be a path or None, got {self.ledger!r}")
        if self.backend is not None and self.backend not in ("serial", "thread", "process"):
            raise ConfigError(
                f"backend must be 'serial', 'thread', 'process' or None, got {self.backend!r}"
            )
        if not (self.eb > 0.0 and math.isfinite(self.eb)):
            raise ConfigError(f"error bound must be a positive finite number, got {self.eb!r}")
        if self.eb_mode not in ("abs", "rel", "pwrel"):
            raise ConfigError(
                f"eb_mode must be 'abs', 'rel' or 'pwrel', got {self.eb_mode!r}"
            )
        if self.eb_mode == "pwrel" and not 1e-6 <= self.eb < 1.0:
            raise ConfigError(
                f"point-wise relative bound must be in [1e-6, 1), got {self.eb!r}"
            )
        if self.dict_size < 2 or self.dict_size % 2 != 0:
            raise ConfigError(f"dict_size must be an even integer >= 2, got {self.dict_size!r}")
        if self.workflow not in ("auto", "huffman", "rle", "rle+vle", "huffman+lz"):
            raise ConfigError(f"unknown workflow {self.workflow!r}")
        if self.predictor not in ("lorenzo", "regression", "interp", "auto"):
            raise ConfigError(f"unknown predictor {self.predictor!r}")
        if self.huffman_chunk < 1:
            raise ConfigError(f"huffman_chunk must be >= 1, got {self.huffman_chunk!r}")
        if self.chunks is not None:
            if len(self.chunks) not in DEFAULT_CHUNKS:
                raise DimensionalityError(
                    f"chunks must have 1..4 axes, got {len(self.chunks)}"
                )
            if any(int(c) < 1 for c in self.chunks):
                raise ConfigError(f"chunk sizes must be positive, got {self.chunks!r}")
        if not (0.0 < self.rle_bitlen_threshold):
            raise ConfigError("rle_bitlen_threshold must be positive")

    @property
    def radius(self) -> int:
        """Quantization radius: quant-codes live in ``[0, dict_size)`` with
        the zero prediction error mapped to ``radius``."""
        return self.dict_size // 2

    def chunks_for(self, ndim: int) -> tuple[int, ...]:
        """Chunk shape to use for ``ndim``-dimensional data."""
        if self.chunks is not None:
            if len(self.chunks) != ndim:
                raise DimensionalityError(
                    f"configured chunks {self.chunks!r} do not match {ndim}-D data"
                )
            return self.chunks
        try:
            return DEFAULT_CHUNKS[ndim]
        except KeyError:
            raise DimensionalityError(f"unsupported dimensionality {ndim}") from None

    def absolute_bound(self, value_range: float) -> float:
        """Resolve the configured bound to an absolute error bound.

        ``value_range`` is ``max - min`` of the field being compressed and is
        only consulted in ``rel`` mode.  A constant field (range 0) in
        relative mode degenerates to a tiny positive bound so quantization
        stays well-defined.  A point-wise relative bound has no absolute
        equivalent -- :func:`repro.compress` dispatches ``pwrel`` configs to
        the log-transform path before quantization ever asks for one.
        """
        if self.eb_mode == "pwrel":
            raise ConfigError(
                "a point-wise relative bound has no absolute equivalent; "
                "pwrel compression goes through the log-transform path"
            )
        if self.eb_mode == "abs":
            return self.eb
        if value_range <= 0.0:
            return self.eb
        return self.eb * value_range

    def with_(self, **kwargs) -> "CompressorConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class SelectorDiagnostics:
    """Diagnostics produced by the adaptive workflow selector.

    Captures everything the decision rule looked at so benchmarks and users
    can audit why a workflow was chosen.
    """

    p1: float
    entropy: float
    bitlen_lower: float
    bitlen_upper: float
    rle_bitlen_estimate: float
    smoothness: float | None
    decision: str
    reason: str = ""


__all__ = [
    "CompressorConfig",
    "SelectorDiagnostics",
    "ErrorBoundMode",
    "WorkflowChoice",
    "DEFAULT_CHUNKS",
    "RLE_BITLEN_THRESHOLD",
]
