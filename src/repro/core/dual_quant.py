"""Dual-quantization (prequant + postquant) and the modified outlier scheme.

Original SZ reconstructs data *during* compression (the decompressor's
recursion run in-place), creating a loop-carried read-after-write dependency.
cuSZ's dual-quantization (Section IV-A) removes it:

* **prequant** -- integerize every value up front:
  ``d_q = round(d / (2 * eb))``, guaranteeing ``|d - d_q * 2eb| <= eb``;
* **postquant** -- Lorenzo-predict over the *integers* and keep the integer
  difference ``delta = d_q - prediction`` as the quant-code.  Because the
  integers are exact, no further error accrues and every element is
  independent.

cuSZ+ additionally *modifies the outlier scheme* (Section IV-B.1): when
``delta`` falls outside the dictionary range, the **compensation delta
itself** is stored as the outlier (not the prequantized value as in cuSZ),
and the quant-code keeps the neutral placeholder.  Decompression then fuses
quant-codes and outliers into one dense ``q' = (q - radius) + scatter(out)``
array and reconstructs with a branch-free partial sum -- no divergence.

Quant-codes are kept in ``[0, dict_size)`` with zero-delta mapped to
``radius = dict_size // 2`` so the most frequent symbol is ``radius``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import CompressorConfig
from .errors import ConfigError
from .lorenzo import lorenzo_construct, lorenzo_reconstruct
from .interp import interp_construct, interp_reconstruct
from .regression import (
    RegressionCoefficients,
    fit_predict_chunks,
    predict_from_coefficients,
)

__all__ = [
    "Quantized",
    "prequantize",
    "dequantize",
    "postquantize",
    "fuse_quant_and_outliers",
    "quantize_field",
    "reconstruct_field",
]

#: Largest prequantized magnitude we accept before declaring the error bound
#: too small for the value range (int64 cumsum headroom).
_MAX_PREQUANT_MAGNITUDE = 2**53

#: Per-dtype unit round-off of the *output* cast: reconstructing into
#: float32/float64 rounds the float64 product ``d_q * 2eb`` once more, adding
#: up to ``|value| * eps/2`` of error on top of the quantization error.
_CAST_EPS = {np.dtype(np.float32): 2.0**-24, np.dtype(np.float64): 2.0**-53}


@dataclass
class Quantized:
    """Output of the prediction-and-quantization stage.

    Attributes
    ----------
    quant:
        Dense quant-codes in ``[0, dict_size)``; dtype ``uint16`` when the
        dictionary fits (the multi-byte symbols of the paper), else
        ``uint32``.
    outlier_indices:
        Flat indices (C order) whose delta fell outside the dictionary.
    outlier_values:
        The out-of-range compensation deltas (int64) -- the cuSZ+ modified
        scheme stores the *delta*, enabling branch-free fusion.
    shape:
        Original array shape.
    chunks:
        Chunk sizes used for Lorenzo prediction.
    radius:
        Quantization radius (``dict_size // 2``).
    eb_twice:
        The prequantization step size ``2 * eb`` (absolute).
    """

    quant: np.ndarray
    outlier_indices: np.ndarray
    outlier_values: np.ndarray
    shape: tuple[int, ...]
    chunks: tuple[int, ...]
    radius: int
    eb_twice: float
    predictor: str = "lorenzo"
    reg_coeffs: RegressionCoefficients | None = None

    @property
    def n_outliers(self) -> int:
        return int(self.outlier_indices.size)

    @property
    def outlier_fraction(self) -> float:
        n = int(np.prod(self.shape))
        return self.n_outliers / n if n else 0.0


def prequantize(data: np.ndarray, eb_abs: float) -> np.ndarray:
    """Integerize ``data`` with step ``2 * eb_abs`` (Algorithm 1, line 2).

    Rounding to nearest guarantees the reconstruction error
    ``|d - round(d / 2eb) * 2eb| <= eb``.
    """
    if eb_abs <= 0:
        raise ConfigError(f"absolute error bound must be positive, got {eb_abs}")
    scaled = np.asarray(data, dtype=np.float64) / (2.0 * eb_abs)
    peak = float(np.max(np.abs(scaled), initial=0.0))
    if not np.isfinite(peak) or peak > _MAX_PREQUANT_MAGNITUDE:
        raise ConfigError(
            "error bound too small for the data's value range: prequantized "
            f"magnitude {peak:.3g} exceeds integer headroom"
        )
    return np.rint(scaled).astype(np.int64)


def dequantize(codes: np.ndarray, eb_abs: float, dtype=np.float32) -> np.ndarray:
    """Map prequantized integers back to floating point (Algorithm 1, line 13)."""
    return (codes.astype(np.float64) * (2.0 * eb_abs)).astype(dtype)


def postquantize(dq: np.ndarray, chunks: tuple[int, ...], dict_size: int) -> tuple[
    np.ndarray, np.ndarray, np.ndarray
]:
    """Lorenzo-predict integers and split deltas into quant-codes + outliers.

    Returns ``(quant, outlier_indices, outlier_values)``.  ``quant`` holds
    ``delta + radius`` clipped to the dictionary; out-of-range positions get
    the neutral placeholder ``radius`` and their raw delta goes to the
    outlier stream (cuSZ+ modified scheme, Algorithm 1 lines 4-8).
    """
    delta = lorenzo_construct(dq, chunks)
    return split_deltas(delta, dict_size)


def split_deltas(delta: np.ndarray, dict_size: int) -> tuple[
    np.ndarray, np.ndarray, np.ndarray
]:
    """Split integer prediction deltas into quant-codes + sparse outliers."""
    radius = dict_size // 2
    # Capture range: -radius <= delta < radius  =>  0 <= q < dict_size.
    in_range = (delta >= -radius) & (delta < radius)
    outlier_indices = np.flatnonzero(~in_range).astype(np.int64)
    outlier_values = delta.reshape(-1)[outlier_indices].copy()
    quant_dtype = np.uint16 if dict_size <= np.iinfo(np.uint16).max + 1 else np.uint32
    quant = np.where(in_range, delta + radius, radius).astype(quant_dtype)
    return quant, outlier_indices, outlier_values


def fuse_quant_and_outliers(
    quant: np.ndarray,
    outlier_indices: np.ndarray,
    outlier_values: np.ndarray,
    radius: int,
) -> np.ndarray:
    """Fuse quant-codes and outliers into a dense delta array (line 9).

    ``q' = (q - radius)`` everywhere, then outlier positions -- which carry
    the neutral placeholder, i.e. ``q' = 0`` -- are overwritten with their
    stored deltas.  The result feeds the partial-sum reconstruction with no
    branching, the key enabler of fine-grained decompression.
    """
    fused = quant.astype(np.int64) - radius
    if outlier_indices.size:
        fused.reshape(-1)[outlier_indices] = outlier_values
    return fused


def quantize_field(data: np.ndarray, config: CompressorConfig) -> tuple[Quantized, float]:
    """Full compression-side transform: prequant -> Lorenzo -> postquant.

    Returns the :class:`Quantized` bundle and the resolved absolute error
    bound (needed by the decompressor and recorded in the archive header).
    """
    data = np.asarray(data)
    if data.size == 0:
        raise ConfigError("cannot compress an empty array")
    finite = np.isfinite(data)
    if not finite.all():
        raise ConfigError("data contains non-finite values; mask or replace them first")
    vmin = float(data.min())
    vmax = float(data.max())
    eb_abs = config.absolute_bound(vmax - vmin)
    chunks = config.chunks_for(data.ndim)
    # Quantize with a tighter step so |d - d̂| <= eb_abs holds strictly even
    # at exact-half rounding (raw error == step/2) plus the output-dtype cast
    # (up to |value| * eps of extra rounding).  When the requested bound is
    # below the output dtype's own precision the cast error is unavoidable;
    # we then keep half the bound as quantization budget, which is the best
    # achievable, and the bound holds up to one output ulp.
    eps = _CAST_EPS.get(np.dtype(data.dtype), 2.0**-24)
    cast_guard = max(abs(vmin), abs(vmax)) * 2.0 * eps
    eb_quant = max(eb_abs - cast_guard, eb_abs * 0.5) * (1.0 - 1e-12)
    dq = prequantize(data, eb_quant)

    predictor = config.predictor
    reg_coeffs: RegressionCoefficients | None = None
    if predictor == "auto":
        predictor = _choose_predictor(dq, chunks, config.dict_size)
    if predictor == "regression":
        pred, reg_coeffs = fit_predict_chunks(dq, chunks)
        quant, oidx, oval = split_deltas(dq - pred, config.dict_size)
    elif predictor == "interp":
        if not 1 <= dq.ndim <= 3:
            raise ConfigError("interp predictor supports 1..3-D data")
        quant, oidx, oval = split_deltas(interp_construct(dq, cubic=True), config.dict_size)
    else:
        quant, oidx, oval = postquantize(dq, chunks, config.dict_size)
    bundle = Quantized(
        quant=quant,
        outlier_indices=oidx,
        outlier_values=oval,
        shape=data.shape,
        chunks=chunks,
        radius=config.radius,
        eb_twice=2.0 * eb_quant,
        predictor=predictor,
        reg_coeffs=reg_coeffs,
    )
    return bundle, eb_abs


def _choose_predictor(dq: np.ndarray, chunks: tuple[int, ...], dict_size: int) -> str:
    """Pick the predictor with the lower estimated encoded size.

    Cost model: quant-code entropy times element count, plus 64 bits per
    outlier, plus the regression path's coefficient storage.
    """
    from ..analysis.entropy import shannon_entropy

    def cost(quant, oidx, extra_bits: float) -> float:
        freqs = np.bincount(quant.reshape(-1), minlength=dict_size)
        return shannon_entropy(freqs) * quant.size + 64.0 * oidx.size + extra_bits

    lq, loidx, _ = postquantize(dq, chunks, dict_size)
    pred, coeffs = fit_predict_chunks(dq, chunks)
    rq, roidx, _ = split_deltas(dq - pred, dict_size)
    costs = {
        "lorenzo": cost(lq, loidx, 0.0),
        "regression": cost(rq, roidx, coeffs.payload_bytes() * 8.0),
    }
    if 1 <= dq.ndim <= 3:
        iq, ioidx, _ = split_deltas(interp_construct(dq, cubic=True), dict_size)
        costs["interp"] = cost(iq, ioidx, 0.0)
    return min(costs, key=costs.get)


def reconstruct_field(bundle: Quantized, dtype=np.float32) -> np.ndarray:
    """Full decompression-side transform: fuse -> predict+sum -> dequantize."""
    fused = fuse_quant_and_outliers(
        bundle.quant, bundle.outlier_indices, bundle.outlier_values, bundle.radius
    )
    if bundle.predictor == "regression":
        if bundle.reg_coeffs is None:
            raise ConfigError("regression bundle is missing its coefficients")
        pred = predict_from_coefficients(bundle.reg_coeffs, bundle.shape)
        dq = pred + fused.reshape(bundle.shape)
    elif bundle.predictor == "interp":
        dq = interp_reconstruct(fused.reshape(bundle.shape), cubic=True)
    else:
        dq = lorenzo_reconstruct(fused.reshape(bundle.shape), bundle.chunks)
    return (dq.astype(np.float64) * bundle.eb_twice).astype(dtype)
