"""Exception hierarchy for the repro compression framework.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class.  Errors are split by the stage that raised them
(configuration, encoding, archive parsing, device simulation) because the
stages have different recovery strategies: a configuration error is a caller
bug, a corrupt archive is an input problem, a device error is a simulator
misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """Invalid compressor or kernel configuration supplied by the caller."""


class EncodingError(ReproError):
    """A lossless-encoding stage (Huffman, RLE, bit I/O) failed."""


class CodebookOverflowError(EncodingError):
    """A symbol outside the codebook alphabet was given to an encoder."""


class ArchiveError(ReproError):
    """A compressed archive is malformed, truncated, or version-mismatched."""


class IntegrityError(ArchiveError):
    """An archive's recorded checksum does not match its bytes.

    Subclass of :class:`ArchiveError` so existing ``except ArchiveError``
    handlers keep working; the narrower type distinguishes *tampered or
    bit-rotted* archives (payload exists but its digest disagrees) from
    *structurally malformed* ones."""


class EngineError(ReproError):
    """The parallel engine's executor failed outside the job's own code.

    Raised when a worker process dies mid-batch (segfault, ``os._exit``,
    OOM-kill), when jobs are submitted to a broken or shut-down executor,
    or when the shared-memory arena is unusable.  Errors raised *by* a job
    (e.g. :class:`ConfigError` from bad input) propagate unchanged through
    the job's future; :class:`EngineError` means the execution substrate
    itself failed."""


class DeviceError(ReproError):
    """Invalid use of the simulated GPU device/runtime."""


class DimensionalityError(ConfigError):
    """Data dimensionality outside the supported 1..4-D range."""
