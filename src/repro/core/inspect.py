"""Archive inspection: size accounting and payload statistics.

Answers the operational questions a compression deployment asks of an
archive without (fully) decompressing it:

* where did the bytes go? (payload vs codebook vs chunk metadata vs
  outliers vs container overhead)
* how close is the Huffman payload to its entropy bound?
* what do the quant-codes look like? (p1, entropy, outlier rate -- the
  selector's view, recovered from the archive alone)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.entropy import bitlen_bounds
from .archive import ArchiveReader
from .compressor import _unpack_meta
from .config import CompressorConfig
from .errors import ArchiveError
from .workflow import read_huffman_sections, read_rle_sections

__all__ = ["ArchiveStats", "inspect_archive"]


@dataclass
class ArchiveStats:
    """Everything :func:`inspect_archive` derives from one archive."""

    total_bytes: int
    original_bytes: int
    shape: tuple[int, ...]
    dtype: str
    workflow: str
    predictor: str
    eb_abs: float
    section_bytes: dict[str, int] = field(default_factory=dict)
    container_overhead: int = 0
    # Quant-code statistics recovered from the archive.
    p1: float = 0.0
    entropy: float = 0.0
    bitlen_lower: float = 0.0
    bitlen_upper: float = 0.0
    n_outliers: int = 0
    payload_bits_per_element: float = 0.0
    entropy_gap_percent: float = 0.0

    @property
    def compression_ratio(self) -> float:
        return self.original_bytes / self.total_bytes

    def breakdown(self) -> list[tuple[str, int, float]]:
        """(section, bytes, percent-of-archive) rows plus overhead."""
        rows = [
            (name, size, 100.0 * size / self.total_bytes)
            for name, size in sorted(self.section_bytes.items(), key=lambda kv: -kv[1])
        ]
        rows.append(
            ("(container)", self.container_overhead,
             100.0 * self.container_overhead / self.total_bytes)
        )
        return rows

    def report(self) -> str:
        lines = [
            f"archive   : {self.total_bytes} bytes for {self.original_bytes} "
            f"({self.compression_ratio:.2f}x)",
            f"field     : shape={self.shape} dtype={self.dtype} "
            f"workflow={self.workflow} predictor={self.predictor}",
            f"bound     : {self.eb_abs:.4g} (absolute)",
            f"quant     : p1={self.p1:.4f} entropy={self.entropy:.3f} b/sym "
            f"(⟨b⟩ ∈ [{self.bitlen_lower:.2f}, {self.bitlen_upper:.2f}]), "
            f"outliers={self.n_outliers}",
            f"payload   : {self.payload_bits_per_element:.3f} bits/element "
            f"({self.entropy_gap_percent:+.1f}% vs entropy)",
            "sections  :",
        ]
        for name, size, pct in self.breakdown():
            lines.append(f"  {name:12} {size:>12} B  {pct:5.1f}%")
        return "\n".join(lines)


def inspect_archive(blob: bytes) -> ArchiveStats:
    """Analyze a single-field archive (raises on multi-block/pwrel/checkpoint
    containers -- inspect their inner archives instead)."""
    reader = ArchiveReader(blob)
    if not reader.has("meta"):
        raise ArchiveError(
            "not a single-field archive (no 'meta' section); for containers, "
            "inspect the inner block/rank archives"
        )
    meta = _unpack_meta(reader.get_bytes("meta"))
    dtype = np.dtype(meta["dtype"])
    original = meta["n_symbols"] * dtype.itemsize
    sections = {name: len(reader.get_bytes(name)) for name in reader.names()}
    overhead = len(blob) - sum(sections.values())

    # Recover the quant stream to recompute the selector's statistics.
    config = CompressorConfig(
        eb=meta["eb_twice"] / 2.0, eb_mode="abs", dict_size=meta["dict_size"],
        huffman_chunk=meta["huffman_chunk"],
        rle_length_dtype=f"uint{meta['rle_length_bytes'] * 8}",
    )
    qdtype = np.uint16 if meta["dict_size"] <= 1 << 16 else np.uint32
    if meta["workflow"] in ("huffman", "huffman+lz"):
        quant = read_huffman_sections(
            reader, meta["n_symbols"], meta["huffman_chunk"], out_dtype=qdtype
        )
    else:
        quant = read_rle_sections(
            reader, meta["n_symbols"], meta["n_runs"], config, quant_dtype=qdtype
        )
    freqs = np.bincount(quant, minlength=meta["dict_size"])
    entropy, p1, lower, upper = bitlen_bounds(freqs)

    payload_sections = [s for s in ("q.bits", "q.lz", "r.val", "r.len",
                                    "rv.bits", "rl.bits") if s in sections]
    payload_bits = 8.0 * sum(sections[s] for s in payload_sections)
    bits_per_elem = payload_bits / meta["n_symbols"]
    gap = (bits_per_elem / entropy - 1.0) * 100.0 if entropy > 0 else 0.0

    return ArchiveStats(
        total_bytes=len(blob),
        original_bytes=original,
        shape=meta["shape"],
        dtype=dtype.name,
        workflow=meta["workflow"],
        predictor=meta["predictor"],
        eb_abs=meta["eb_abs"],
        section_bytes=sections,
        container_overhead=overhead,
        p1=p1,
        entropy=entropy,
        bitlen_lower=lower,
        bitlen_upper=upper,
        n_outliers=meta["n_outliers"],
        payload_bits_per_element=bits_per_elem,
        entropy_gap_percent=gap,
    )
