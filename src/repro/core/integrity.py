"""Archive integrity: checksums, deep verification, and fault injection.

Three concerns live here, all about the same contract -- *the archive that
reaches the decompressor must be exactly the archive that was written, or
the failure must be loud and typed*:

* **Checksums.**  Format v2 stamps every section payload with a CRC and
  digests the header + section table.  The algorithm is recorded per
  archive: CRC-32C (Castagnoli, the checksum production compressors and
  filesystems use) when a native implementation is importable, otherwise
  zlib's CRC-32 -- both verify everywhere because a pure-Python CRC-32C
  fallback is always available for *reading* foreign archives.
* **Deep verification.**  :func:`verify_archive` walks a container --
  including nested block / rank / point-wise-relative archives -- and
  validates framing, checksums, and metadata plausibility *without
  decompressing any payload*.  This is what ``repro verify --deep`` runs.
* **Fault injection.**  :func:`iter_corruptions` and the mutators under it
  produce systematically corrupted variants of an archive (bit-flips,
  truncations, section-table swaps, length mutations) for the fuzz suite,
  which asserts every one of them raises :class:`~repro.core.errors.ArchiveError`
  / :class:`~repro.core.errors.IntegrityError`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator

from .errors import ArchiveError, IntegrityError

__all__ = [
    "ALGO_CRC32",
    "ALGO_CRC32C",
    "ALGO_NAMES",
    "DEFAULT_ALGO",
    "crc32c",
    "checksum",
    "IntegrityReport",
    "verify_archive",
    "flip_bit",
    "with_swapped_table_entries",
    "with_mutated_section_length",
    "iter_corruptions",
]

#: Checksum algorithm ids recorded in the v2 archive header.
ALGO_CRC32 = 1   # zlib.crc32 (CRC-32/ISO-HDLC) -- always available, C speed
ALGO_CRC32C = 2  # CRC-32C (Castagnoli) -- native module when installed
ALGO_NAMES = {ALGO_CRC32: "crc32", ALGO_CRC32C: "crc32c"}

_CASTAGNOLI = 0x82F63B78  # reflected CRC-32C polynomial


def _build_crc32c_tables(n: int = 8) -> list[list[int]]:
    """Slicing-by-``n`` lookup tables for the software CRC-32C path."""
    t0 = []
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ _CASTAGNOLI if c & 1 else c >> 1
        t0.append(c)
    tables = [t0]
    for _ in range(1, n):
        prev = tables[-1]
        tables.append([t0[v & 0xFF] ^ (v >> 8) for v in prev])
    return tables


_CRC32C_TABLES: list[list[int]] | None = None


def _crc32c_software(data: bytes, crc: int = 0) -> int:
    """Pure-Python CRC-32C, slicing-by-8 (tables built on first use)."""
    global _CRC32C_TABLES
    if _CRC32C_TABLES is None:
        _CRC32C_TABLES = _build_crc32c_tables()
    t0, t1, t2, t3, t4, t5, t6, t7 = _CRC32C_TABLES
    crc = ~crc & 0xFFFFFFFF
    n8 = len(data) - len(data) % 8
    i = 0
    while i < n8:
        crc ^= data[i] | data[i + 1] << 8 | data[i + 2] << 16 | data[i + 3] << 24
        crc = (
            t7[crc & 0xFF]
            ^ t6[(crc >> 8) & 0xFF]
            ^ t5[(crc >> 16) & 0xFF]
            ^ t4[crc >> 24]
            ^ t3[data[i + 4]]
            ^ t2[data[i + 5]]
            ^ t1[data[i + 6]]
            ^ t0[data[i + 7]]
        )
        i += 8
    for b in data[n8:]:
        crc = t0[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return ~crc & 0xFFFFFFFF


def _find_native_crc32c():
    """A C-speed CRC-32C if one is installed; None otherwise."""
    try:  # pragma: no cover - depends on environment
        import crc32c as _m

        return _m.crc32c
    except ImportError:
        pass
    try:  # pragma: no cover - depends on environment
        import google_crc32c as _m

        return lambda data, crc=0: _m.extend(crc, bytes(data))
    except ImportError:
        return None


_NATIVE_CRC32C = _find_native_crc32c()

#: Algorithm newly-built archives use.  CRC-32C when it runs at C speed,
#: else zlib's CRC-32 (the id is recorded per archive, so readers always
#: know how to verify regardless of where the archive was written).
DEFAULT_ALGO = ALGO_CRC32C if _NATIVE_CRC32C is not None else ALGO_CRC32


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C (Castagnoli) of ``data``, native when available."""
    if _NATIVE_CRC32C is not None:
        return _NATIVE_CRC32C(data, crc) & 0xFFFFFFFF
    return _crc32c_software(bytes(data), crc)


def checksum(data: bytes, algo: int) -> int:
    """Checksum ``data`` with the algorithm recorded in an archive header."""
    if algo == ALGO_CRC32:
        return zlib.crc32(data) & 0xFFFFFFFF
    if algo == ALGO_CRC32C:
        return crc32c(data)
    raise ArchiveError(f"unknown checksum algorithm id {algo}")


# ---------------------------------------------------------------------------
# Deep verification
# ---------------------------------------------------------------------------


@dataclass
class IntegrityReport:
    """What :func:`verify_archive` validated, for reporting."""

    version: int
    checksum_algo: str
    n_sections: int
    section_bytes: dict[str, int] = field(default_factory=dict)
    kind: str = "sections"  # single-field | blocks | checkpoint | pwrel | sections
    nested: dict[str, "IntegrityReport"] = field(default_factory=dict)

    @property
    def total_sections_checked(self) -> int:
        return self.n_sections + sum(r.total_sections_checked for r in self.nested.values())

    def summary(self) -> str:
        lines = [
            f"format v{self.version} ({self.checksum_algo}"
            f"{'' if self.version >= 2 else ', no checksums'}), kind={self.kind}",
            f"sections verified: {self.total_sections_checked}"
            f" ({len(self.nested)} nested archive(s))",
        ]
        return "\n".join(lines)


def verify_archive(blob: bytes, deep: bool = True) -> IntegrityReport:
    """Validate an archive without decompressing it.

    Checks framing, the v2 header digest and every section checksum, the
    plausibility of the ``meta``/``bmeta``/``cmeta``/``pw.meta`` metadata,
    and -- when ``deep`` -- recurses into nested block / rank / point-wise
    archives.  Raises :class:`ArchiveError` (or the narrower
    :class:`IntegrityError`) on the first violation; returns an
    :class:`IntegrityReport` when the archive is sound.
    """
    from .archive import ArchiveReader

    reader = ArchiveReader(blob)  # framing + header digest
    reader.verify_all()  # every section checksum (v2; no-op for v1)
    report = IntegrityReport(
        version=reader.version,
        checksum_algo=ALGO_NAMES.get(reader.checksum_algo, "none"),
        n_sections=len(reader.names()),
        section_bytes=reader.section_sizes(),
    )

    if reader.has("meta"):
        report.kind = "single-field"
        _verify_single_field(reader)
    elif reader.has("bmeta"):
        report.kind = "blocks"
        _verify_nested(reader, blob, report, "bmeta", "blk", deep)
    elif reader.has("cmeta"):
        report.kind = "checkpoint"
        _verify_nested(reader, blob, report, "cmeta", "r", deep)
    elif reader.has("pw.inner"):
        report.kind = "pwrel"
        if len(reader.get_bytes("pw.meta")) != 17:
            raise ArchiveError("pwrel metadata malformed")
        if deep:
            report.nested["pw.inner"] = verify_archive(reader.get_bytes("pw.inner"), deep)
    return report


def _verify_single_field(reader) -> None:
    """Metadata/section cross-checks for one compressed field (no decode)."""
    from .compressor import _unpack_meta

    meta = _unpack_meta(reader.get_bytes("meta"))
    for name in ("o.idx", "o.val"):
        arr = reader.get_array(name)
        if arr.size != meta["n_outliers"]:
            raise ArchiveError(
                f"outlier section {name!r} holds {arr.size} entries, "
                f"header says {meta['n_outliers']}"
            )
    if meta["workflow"] in ("rle", "rle+vle") and reader.has("r.len"):
        n_lens = reader.get_array("r.len").size
        if n_lens != meta["n_runs"]:
            raise ArchiveError(
                f"RLE length section holds {n_lens} runs, header says {meta['n_runs']}"
            )


def _verify_nested(reader, blob, report, meta_name: str, prefix: str, deep: bool) -> None:
    """Shared manifest walk for block and checkpoint containers."""
    if meta_name == "bmeta":
        from .streaming import _unpack_manifest

        n = _unpack_manifest(reader.get_bytes(meta_name)).n_blocks
    else:
        from ..parallel.checkpoint import _unpack_cmeta

        n = _unpack_cmeta(reader.get_bytes(meta_name)).n_ranks
    for k in range(n):
        name = f"{prefix}{k}"
        if not reader.has(name):
            raise ArchiveError(f"container manifest lists {name!r} but section is missing")
        if deep:
            report.nested[name] = verify_archive(reader.get_bytes(name), deep)


# ---------------------------------------------------------------------------
# Fault injection (consumed by tests/fuzz)
# ---------------------------------------------------------------------------


def flip_bit(blob: bytes, bit_index: int) -> bytes:
    """Return ``blob`` with exactly one bit flipped."""
    if not 0 <= bit_index < 8 * len(blob):
        raise ValueError(f"bit {bit_index} outside blob of {len(blob)} bytes")
    out = bytearray(blob)
    out[bit_index >> 3] ^= 1 << (bit_index & 7)
    return bytes(out)


def _v2_table_span(blob: bytes) -> tuple[int, int, int]:
    """(table_offset, entry_size, n_sections) of a v2/v3 archive's section
    table (v3 shares the v2 container layout)."""
    from .archive import _ENTRY_V2, _HEADER_V2, MAGIC

    magic, version, n_sections = struct.unpack_from("<8sHI", blob, 0)
    if magic != MAGIC or version not in (2, 3):
        raise ArchiveError("not a v2/v3 archive")
    return _HEADER_V2.size, _ENTRY_V2.size, n_sections


def with_swapped_table_entries(blob: bytes, i: int = 0, j: int = 1) -> bytes:
    """Swap two v2 section-table entries in place (digest left stale)."""
    off, esz, n = _v2_table_span(blob)
    if not (0 <= i < n and 0 <= j < n and i != j):
        raise ValueError(f"cannot swap entries {i},{j} of {n}")
    out = bytearray(blob)
    a, b = off + i * esz, off + j * esz
    out[a : a + esz], out[b : b + esz] = blob[b : b + esz], blob[a : a + esz]
    return bytes(out)


def with_mutated_section_length(blob: bytes, index: int, delta: int) -> bytes:
    """Add ``delta`` to one v2 table entry's recorded payload length."""
    off, esz, n = _v2_table_span(blob)
    if not 0 <= index < n:
        raise ValueError(f"entry {index} outside table of {n}")
    pos = off + index * esz + 24  # past name[16] + dtype[8]
    (length,) = struct.unpack_from("<Q", blob, pos)
    out = bytearray(blob)
    struct.pack_into("<Q", out, pos, max(length + delta, 0))
    return bytes(out)


def iter_corruptions(
    blob: bytes,
    *,
    bit_positions: int = 64,
    truncation_points: int = 32,
    seed: int = 0,
) -> Iterator[tuple[str, bytes]]:
    """Yield ``(label, corrupted_blob)`` variants of a v2 archive.

    Covers the fault classes the format must detect: single-bit flips
    spread over the whole blob (header, table, digest, and every payload
    region), truncation at sampled boundaries plus the exact section
    boundaries, swapped section-table entries, and over/under-stated
    section lengths.  Deterministic for a given ``seed``.
    """
    import numpy as np

    n = len(blob)
    rng = np.random.default_rng(seed)
    for bit in sorted(rng.choice(8 * n, size=min(bit_positions, 8 * n), replace=False)):
        yield f"bitflip@{int(bit)}", flip_bit(blob, int(bit))
    cuts = set(np.linspace(1, n - 1, min(truncation_points, n - 1), dtype=int).tolist())
    try:
        off, esz, n_sections = _v2_table_span(blob)
        cuts.update(off + k * esz for k in range(n_sections + 1))
        for index in range(n_sections):
            for delta in (-1, 1, 4096):
                bad = with_mutated_section_length(blob, index, delta)
                if bad != blob:  # shrinking a zero-length entry is a no-op
                    yield f"length{delta:+d}@entry{index}", bad
        if n_sections >= 2:
            yield "table-swap", with_swapped_table_entries(blob, 0, n_sections - 1)
    except ArchiveError:
        pass  # not v2: bit-flips and truncations still apply
    for cut in sorted(c for c in cuts if 0 < c < n):
        yield f"truncate@{cut}", blob[:cut]
    yield "empty", b""
