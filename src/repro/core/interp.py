"""Multi-level interpolation predictor (SZ3-style, the paper's ref. [19]).

The paper's related work singles out "dynamic spline interpolation" (Zhao et
al., ICDE'21 -- the predictor that became SZ3) as the next step beyond
Lorenzo.  This module implements that predictor family on the same
dual-quantization substrate:

* a coarse **anchor grid** is stored as-is (predicted from zero);
* levels refine the grid by halving the stride; at each level every axis is
  swept in turn, predicting the points whose coordinate along that axis is
  an odd multiple of the stride from their two known neighbours at
  ``+/- stride`` (linear) or four at ``+/-stride, +/-3*stride`` (cubic);
* all arithmetic is exact integer (floor-midpoint / fixed-point cubic), so
  compressor and decompressor predictions agree bit-for-bit and the error
  bound argument is unchanged from the Lorenzo path.

The quant-code array keeps the field's own layout (deltas live at their
original positions), so the histogram/Huffman/RLE stages are untouched --
only the prediction traversal differs.  Interpolation shines exactly where
the paper's reference says it should: very smooth fields at coarse bounds,
where Lorenzo's noise-amplifying stencil (its deltas sum 4 neighbours in
3-D) wastes bits.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .errors import DimensionalityError

__all__ = ["interp_construct", "interp_reconstruct"]


def _top_stride(shape: tuple[int, ...]) -> int:
    n = max(shape)
    s = 1
    while s * 2 < n:
        s *= 2
    return s


def _strides(shape: tuple[int, ...]) -> list[int]:
    s = _top_stride(shape)
    out = []
    while s >= 1:
        out.append(s)
        s //= 2
    return out


def _axis_coords(n: int, stride: int, refined: bool) -> np.ndarray:
    """Known coordinates along one axis: multiples of ``stride`` if this
    axis was already refined at the current level, else of ``2*stride``."""
    step = stride if refined else 2 * stride
    return np.arange(0, n, step)


def _sweeps(shape: tuple[int, ...]) -> Iterator[tuple[int, int, tuple[np.ndarray, ...]]]:
    """Yield (axis, stride, known-coordinate vectors) for every sweep, in
    the exact order both construction and reconstruction must follow."""
    ndim = len(shape)
    for stride in _strides(shape):
        for axis in range(ndim):
            coords = tuple(
                _axis_coords(shape[a], stride, refined=a <= axis)
                for a in range(ndim)
            )
            targets_along = np.arange(stride, shape[axis], 2 * stride)
            if targets_along.size == 0:
                continue
            yield axis, stride, coords, targets_along


def _predict_sweep(
    dq: np.ndarray, axis: int, stride: int,
    coords: tuple[np.ndarray, ...], targets_along: np.ndarray,
    cubic: bool,
) -> tuple[tuple, np.ndarray]:
    """Integer prediction for one sweep's target points.

    Returns (open-mesh index tuple for the targets, predicted values).
    Reads only coordinates on the pre-sweep known grid, which both sides
    reconstruct identically.
    """
    n = dq.shape[axis]
    mesh = list(coords)
    mesh[axis] = targets_along
    target_ix = np.ix_(*mesh)

    def along(offset_coords: np.ndarray) -> np.ndarray:
        m = list(coords)
        m[axis] = offset_coords
        return dq[np.ix_(*m)].astype(np.int64)

    left = along(targets_along - stride)
    has_right = targets_along + stride < n
    right_coords = np.where(has_right, targets_along + stride, targets_along - stride)
    right = along(right_coords)
    linear = (left + right) >> 1
    if not cubic:
        return target_ix, linear
    # Cubic (Catmull-Rom-flavoured) where all four taps exist:
    # p = (-f(-3s) + 9 f(-s) + 9 f(+s) - f(+3s)) / 16, floor-rounded.
    has_l2 = targets_along - 3 * stride >= 0
    has_r2 = targets_along + 3 * stride < n
    full = has_right & has_l2 & has_r2
    l2 = along(np.where(has_l2, targets_along - 3 * stride, targets_along - stride))
    r2 = along(np.where(has_r2, targets_along + 3 * stride, right_coords))
    cubic_pred = (9 * (left + right) - l2 - r2 + 8) >> 4
    shape_mask = np.zeros(linear.shape, dtype=bool)
    ax_index = [None] * linear.ndim
    ax_index[axis] = slice(None)
    expand = [np.newaxis] * linear.ndim
    expand[axis] = slice(None)
    shape_mask |= full[tuple(expand)]
    return target_ix, np.where(shape_mask, cubic_pred, linear)


def interp_construct(dq: np.ndarray, cubic: bool = False) -> np.ndarray:
    """Prediction deltas of the interpolation predictor (same shape as input).

    Anchor-grid points carry their raw values (prediction from zero);
    every other position carries ``value - interpolated prediction``.
    """
    if not 1 <= dq.ndim <= 3:
        raise DimensionalityError("interpolation predictor supports 1..3-D data")
    dq = dq.astype(np.int64)
    delta = dq.copy()  # anchors default to raw values; sweeps overwrite rest
    for axis, stride, coords, targets_along in _sweeps(dq.shape):
        target_ix, pred = _predict_sweep(dq, axis, stride, coords, targets_along, cubic)
        delta[target_ix] = dq[target_ix] - pred
    return delta


def interp_reconstruct(delta: np.ndarray, cubic: bool = False) -> np.ndarray:
    """Invert :func:`interp_construct` level by level."""
    if not 1 <= delta.ndim <= 3:
        raise DimensionalityError("interpolation predictor supports 1..3-D data")
    dq = delta.astype(np.int64).copy()  # anchors are already correct
    for axis, stride, coords, targets_along in _sweeps(delta.shape):
        target_ix, pred = _predict_sweep(dq, axis, stride, coords, targets_along, cubic)
        dq[target_ix] = pred + delta[target_ix]
    return dq
