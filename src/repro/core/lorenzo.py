"""First-order Lorenzo prediction as N-pass finite differences.

The paper's central observation (Section IV-B.2) is that first-order Lorenzo
*reconstruction* is an N-dimensional inclusive partial-sum, decomposable into
N passes of 1-D prefix sums.  The dual statement, used here for
*construction*, is that the Lorenzo prediction error

    delta = d - p(d)       (p = first-order Lorenzo predictor)

equals N passes of 1-D first differences.  For 2-D, for instance::

    delta[y, x] = d[y, x] - d[y-1, x] - d[y, x-1] + d[y-1, x-1]
                = (D_y D_x d)[y, x]

with out-of-range neighbours treated as zero.  ``D_a`` (diff along axis
``a``) and its inverse ``S_a`` (inclusive scan along axis ``a``) commute
across axes because integer addition is commutative and associative
(Section IV-A.1b), so the passes may run in any order -- this is what lets
the GPU kernels reorder the computation freely.

cuSZ compresses in independent chunks (256 for 1-D, 16x16 for 2-D, 8x8x8 for
3-D) with prediction starting from zeros at every chunk boundary.  The
functions here therefore implement *segmented* diff and *segmented* inclusive
scan: the operation restarts at every index that is a multiple of the chunk
size along that axis.  Both are fully vectorized -- the segmented scan uses
the classic "global cumsum minus per-segment offset" decomposition, which is
also how a GPU BlockScan composes chunk results.
"""

from __future__ import annotations

import numpy as np

from .errors import DimensionalityError

__all__ = [
    "chunked_diff",
    "chunked_cumsum",
    "lorenzo_construct",
    "lorenzo_reconstruct",
    "lorenzo_predict_sequential",
    "lorenzo_reconstruct_sequential",
]

#: Maximum supported dimensionality (the paper evaluates 1-D..3-D plus a 4-D
#: QMCPACK field reinterpreted as 3-D; we support 4-D natively).
MAX_NDIM = 4


def _check_ndim(ndim: int) -> None:
    if not 1 <= ndim <= MAX_NDIM:
        raise DimensionalityError(f"supported dimensionalities are 1..{MAX_NDIM}, got {ndim}")


def _shift_one(x: np.ndarray, axis: int) -> np.ndarray:
    """Return ``x`` shifted by +1 along ``axis`` with a zero fill.

    ``out[..., i, ...] = x[..., i-1, ...]`` and ``out[..., 0, ...] = 0``.
    """
    out = np.zeros_like(x)
    src = [slice(None)] * x.ndim
    dst = [slice(None)] * x.ndim
    src[axis] = slice(0, -1)
    dst[axis] = slice(1, None)
    out[tuple(dst)] = x[tuple(src)]
    return out


def chunked_diff(x: np.ndarray, axis: int, chunk: int) -> np.ndarray:
    """First difference along ``axis`` restarting at every chunk boundary.

    ``out[i] = x[i] - x[i-1]`` within a chunk and ``out[i] = x[i]`` at chunk
    starts (``i % chunk == 0``), i.e. prediction-from-zero at boundaries.
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    prev = _shift_one(x, axis)
    if chunk < x.shape[axis]:
        # Zero the "previous" value at every chunk start so those positions
        # keep their raw value (predicted from zero).
        starts = np.arange(0, x.shape[axis], chunk)
        idx = [slice(None)] * x.ndim
        idx[axis] = starts
        prev[tuple(idx)] = 0
    return x - prev


def chunked_cumsum(x: np.ndarray, axis: int, chunk: int) -> np.ndarray:
    """Inclusive prefix sum along ``axis`` restarting at every chunk boundary.

    This is the exact inverse of :func:`chunked_diff` with the same ``chunk``
    and is the 1-D pass of the paper's partial-sum reconstruction.  The
    implementation is a segmented scan: one global ``cumsum`` followed by
    subtracting, within each segment, the running total accumulated before
    the segment started.  Integer inputs stay exact (no float round-off).
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    total = np.cumsum(x, axis=axis)
    n = x.shape[axis]
    if chunk >= n:
        return total
    starts = np.arange(chunk, n, chunk)  # segment starts after the first
    idx = [slice(None)] * x.ndim
    idx[axis] = starts - 1
    # Running totals just before each later segment begins.
    bases = total[tuple(idx)]
    # Per-position offset to subtract: 0 for the first segment, then the
    # cumsum value at the previous segment's end, repeated across the
    # segment.  Lengths of segments 1.. may include a short tail.
    seg_lengths = np.diff(np.append(starts, n))
    offsets = np.repeat(bases, seg_lengths, axis=axis)
    out = total.copy()
    tail = [slice(None)] * x.ndim
    tail[axis] = slice(chunk, None)
    out[tuple(tail)] -= offsets
    return out


def lorenzo_construct(x: np.ndarray, chunks: tuple[int, ...]) -> np.ndarray:
    """Lorenzo prediction errors via N passes of segmented first differences.

    Parameters
    ----------
    x:
        Integer (prequantized) data of 1..4 dimensions.
    chunks:
        Per-axis chunk sizes; prediction restarts at chunk boundaries so
        chunks decompress independently.

    Returns
    -------
    Array of the same shape: ``delta = x - lorenzo_prediction(x)``.
    """
    _check_ndim(x.ndim)
    if len(chunks) != x.ndim:
        raise DimensionalityError(
            f"chunks {chunks!r} do not match data dimensionality {x.ndim}"
        )
    out = x
    for axis, chunk in enumerate(chunks):
        out = chunked_diff(out, axis, chunk)
    return out


def lorenzo_reconstruct(delta: np.ndarray, chunks: tuple[int, ...]) -> np.ndarray:
    """Invert :func:`lorenzo_construct` via N passes of segmented prefix sums.

    This is the paper's fine-grained partial-sum reconstruction
    (Algorithm 1, lines 10-12): ``d = pSum_z(pSum_y(pSum_x(q')))``.
    """
    _check_ndim(delta.ndim)
    if len(chunks) != delta.ndim:
        raise DimensionalityError(
            f"chunks {chunks!r} do not match data dimensionality {delta.ndim}"
        )
    out = delta
    for axis, chunk in enumerate(chunks):
        out = chunked_cumsum(out, axis, chunk)
    return out


# ---------------------------------------------------------------------------
# Sequential reference implementations (the paper's explicit predictor
# formulas).  These exist to *prove* the partial-sum equivalence in tests and
# to model the coarse-grained per-chunk-sequential baseline of original cuSZ.
# They are deliberately written element-by-element.
# ---------------------------------------------------------------------------


def _predict_at(d: np.ndarray, index: tuple[int, ...], origin: tuple[int, ...]) -> int:
    """First-order Lorenzo prediction at ``index`` from already-known values.

    ``origin`` is the chunk's starting corner; neighbours before the origin
    along any axis are treated as zero (prediction-from-zero at chunk
    boundaries).  Implements the general inclusion-exclusion form

        p = sum over non-empty subsets S of axes of
            (-1)^(|S|+1) * d[index - e_S]

    which expands to the explicit 1-D/2-D/3-D formulas of Section IV-B.2.
    """
    ndim = d.ndim
    pred = 0
    for mask in range(1, 1 << ndim):
        neighbour = list(index)
        bits = 0
        in_range = True
        for axis in range(ndim):
            if mask >> axis & 1:
                bits += 1
                neighbour[axis] -= 1
                if neighbour[axis] < origin[axis]:
                    in_range = False
                    break
        if not in_range:
            continue
        sign = 1 if bits % 2 == 1 else -1
        pred += sign * int(d[tuple(neighbour)])
    return pred


def lorenzo_predict_sequential(x: np.ndarray, chunks: tuple[int, ...]) -> np.ndarray:
    """Element-by-element Lorenzo prediction errors (reference).

    Matches :func:`lorenzo_construct` exactly; quadratically slower.  Only
    use on small arrays (tests).
    """
    _check_ndim(x.ndim)
    delta = np.zeros_like(x)
    for index in np.ndindex(*x.shape):
        origin = tuple((i // c) * c for i, c in zip(index, chunks))
        delta[index] = int(x[index]) - _predict_at(x, index, origin)
    return delta


def lorenzo_reconstruct_sequential(delta: np.ndarray, chunks: tuple[int, ...]) -> np.ndarray:
    """Element-by-element Lorenzo reconstruction (reference / coarse baseline).

    This is how original cuSZ decompresses: one value at a time per chunk,
    each prediction depending on already-reconstructed predecessors -- the
    read-after-write chain the paper's partial-sum formulation removes.
    """
    _check_ndim(delta.ndim)
    d = np.zeros_like(delta)
    for index in np.ndindex(*delta.shape):
        origin = tuple((i // c) * c for i, c in zip(index, chunks))
        d[index] = _predict_at(d, index, origin) + int(delta[index])
    return d
