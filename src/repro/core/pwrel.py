"""Point-wise relative error bounds via logarithmic transform.

SZ supports three distortion controls (paper Section VI): absolute bound,
value-range-relative bound, and *point-wise relative* bound
``|d' - d| <= r * |d|``.  The standard trick (Liang et al. [4]) reduces the
third to the first: compress ``log|d|`` with the absolute bound
``log(1 + r)``; then the reconstructed magnitude satisfies

    exp(-e) <= |d'| / |d| <= exp(e)   with e = log(1 + r)

so the relative error is at most ``exp(e) - 1 = r`` (the lower side,
``1 - exp(-e)``, is strictly smaller).  Signs are packed separately, and
exact zeros -- whose point-wise bound is zero, i.e. lossless -- travel as a
sparse index list.

The produced container wraps a regular archive (the log-domain payload) in
sections ``pw.*``; :func:`repro.decompress` dispatches on their presence.

**Unified API**: this mode is reachable through the main entry point as
``repro.compress(data, eb=r, mode="pwrel")`` / ``repro.decompress(blob)``.
The historical entry points :func:`compress_pwrel` and
:func:`decompress_pwrel` remain as thin shims that emit a
``DeprecationWarning`` once per process.
"""

from __future__ import annotations

import warnings

import numpy as np

from .. import telemetry as tel
from ..telemetry import instruments as ins
from .archive import ArchiveBuilder, ArchiveReader
from .compressor import CompressionResult, DecompressionResult, compress
from .config import CompressorConfig
from .errors import ArchiveError, ConfigError

__all__ = [
    "compress_pwrel",
    "decompress_pwrel",
    "decompress_pwrel_with_stats",
    "is_pwrel_archive",
]

#: Guard against the output-dtype cast (one ulp of relative rounding).
_CAST_REL = {np.dtype(np.float32): 2.0**-23, np.dtype(np.float64): 2.0**-52}

#: Deprecated entry points that already warned (one warning per process).
_WARNED: set[str] = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"repro.core.pwrel.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def compress_pwrel(
    data: np.ndarray, rel_bound: float, config: CompressorConfig | None = None
) -> CompressionResult:
    """Deprecated shim: use ``repro.compress(data, eb=r, mode="pwrel")``."""
    _warn_deprecated("compress_pwrel", 'repro.compress(data, eb=r, mode="pwrel")')
    return _compress_pwrel(data, rel_bound, config)


def _compress_pwrel(
    data: np.ndarray, rel_bound: float, config: CompressorConfig | None = None
) -> CompressionResult:
    """Compress with a point-wise relative bound ``|d' - d| <= r |d|``."""
    if not 1e-6 <= rel_bound < 1.0:
        raise ConfigError(f"point-wise relative bound must be in [1e-6, 1), got {rel_bound}")
    data = np.asarray(data)
    if not np.issubdtype(data.dtype, np.floating):
        raise ConfigError(f"unsupported dtype {data.dtype}")
    if data.dtype not in _CAST_REL:
        data = data.astype(np.float32)
    if not np.isfinite(data).all():
        raise ConfigError("data contains non-finite values")
    base = config or CompressorConfig()

    with tel.scope(base.telemetry):
        with tel.span("compress_pwrel", bytes_in=int(data.nbytes)) as root:
            # The log transform is a real pipeline stage with its own cost;
            # record it as one instead of inheriting only the inner stages.
            with tel.span("pwrel_transform", bytes_in=int(data.nbytes)):
                flat = data.reshape(-1).astype(np.float64)
                zero_idx = np.flatnonzero(flat == 0.0).astype(np.uint32)
                neg_mask = flat < 0.0
                mags = np.abs(flat)
                # Zeros get a placeholder magnitude (the field's smallest
                # nonzero) so the log field stays finite; their positions are
                # restored exactly.
                nonzero = mags > 0.0
                if not nonzero.any():
                    fill = 1.0
                else:
                    fill = float(mags[nonzero].min())
                mags[~nonzero] = fill
                logs = np.log(mags).reshape(data.shape)

            r_eff = rel_bound * (1.0 - 1e-9) - 2.0 * _CAST_REL[np.dtype(data.dtype)]
            if r_eff <= 0:
                raise ConfigError(
                    f"bound {rel_bound} is below the output dtype's own precision"
                )
            eb_log = float(np.log1p(r_eff))
            inner = compress(logs, base.with_(eb=eb_log, eb_mode="abs"))

            with tel.span("pwrel_container") as sp:
                builder = ArchiveBuilder()
                builder.add_bytes("pw.inner", inner.archive)
                builder.add_array("pw.signs", np.packbits(neg_mask))
                builder.add_array("pw.zeros", zero_idx)
                builder.add_bytes(
                    "pw.meta",
                    np.array([rel_bound, float(data.ndim)], dtype=np.float64).tobytes()
                    + np.array([1 if data.dtype == np.float64 else 0], dtype=np.uint8).tobytes(),
                )
                blob = builder.to_bytes()
                sp.set(bytes_out=len(blob))
            root.set(bytes_out=len(blob))

    # Copy the inner stats (not a shared reference) and overlay this
    # container's own span-derived stages (pwrel_transform_seconds, ...).
    stage_stats = dict(inner.stage_stats)
    stage_stats.update(ins.stage_stats_from_span(root))
    return CompressionResult(
        archive=blob,
        workflow=inner.workflow,
        eb_abs=rel_bound,  # interpretation: point-wise relative
        original_bytes=int(data.nbytes),
        section_sizes=builder.section_sizes(),
        diagnostics=inner.diagnostics,
        stage_stats=stage_stats,
        n_outliers=inner.n_outliers,
        predictor=inner.predictor,
    )


def is_pwrel_archive(blob: bytes) -> bool:
    """Whether a blob is a point-wise-relative container."""
    try:
        return ArchiveReader(blob).has("pw.inner")
    except ArchiveError:
        return False


def decompress_pwrel(blob: bytes) -> np.ndarray:
    """Deprecated shim: use ``repro.decompress(blob)`` (auto-dispatching)."""
    _warn_deprecated("decompress_pwrel", "repro.decompress(blob)")
    return decompress_pwrel_with_stats(blob).data


def decompress_pwrel_with_stats(blob: bytes, engine=None) -> DecompressionResult:
    """Invert the pwrel container, returning per-stage reporting too."""
    from .compressor import decompress_with_stats

    with tel.span("decompress_pwrel", bytes_in=len(blob)) as root:
        with tel.span("archive_read", bytes_in=len(blob)):
            reader = ArchiveReader(blob)
            raw_meta = reader.get_bytes("pw.meta")
            if len(raw_meta) != 17:
                raise ArchiveError("pwrel metadata malformed")
            rel_bound, _ndim = np.frombuffer(raw_meta[:16], dtype=np.float64)
            is_f64 = raw_meta[16] == 1
            out_dtype = np.float64 if is_f64 else np.float32

        inner = decompress_with_stats(reader.get_bytes("pw.inner"), backend=engine)
        logs = inner.data
        with tel.span("pwrel_inverse") as sp:
            mags = np.exp(logs.astype(np.float64)).reshape(-1)
            signs_packed = reader.get_array("pw.signs")
            neg_mask = np.unpackbits(signs_packed, count=mags.size).astype(bool)
            mags[neg_mask] *= -1.0
            zero_idx = reader.get_array("pw.zeros")
            if zero_idx.size:
                mags[zero_idx.astype(np.int64)] = 0.0
            out = mags.reshape(logs.shape).astype(out_dtype)
            sp.set(bytes_out=int(out.nbytes))
        root.set(bytes_out=int(out.nbytes))

    stage_stats = dict(inner.stage_stats)
    stage_stats.update(ins.stage_stats_from_span(root))
    return DecompressionResult(
        data=out,
        workflow=inner.workflow,
        predictor=inner.predictor,
        eb_abs=float(rel_bound),
        n_outliers=inner.n_outliers,
        section_sizes=reader.section_sizes(),
        stage_stats=stage_stats,
    )
