"""Linear-regression block predictor (the paper's stated future work).

The conclusion of the paper plans to "implement other data prediction
methods such as linear-regression-based predictors" -- the predictor family
SZ2 (Liang et al. [3]) introduced.  This module provides it on top of the
same dual-quantization substrate:

* the field is prequantized to integers exactly as for Lorenzo;
* each chunk fits a least-squares hyperplane
  ``pred(x) = c0 + sum_i c_i * x_i`` over the *prequantized integers*;
* coefficients are quantized to a fixed-point grid and stored per chunk,
  so the decompressor recomputes bit-identical predictions;
* residuals ``d_q - round(pred)`` go through the same quant-code/outlier
  machinery as the Lorenzo path.

Because the residual is an exact integer difference against a prediction
both sides reconstruct identically, the pointwise error bound is preserved
unchanged.  Regression beats Lorenzo on fields with strong large-scale
gradients and weak local correlation; Lorenzo wins on locally smooth data
-- which is why SZ2 selects per block.  Here the choice is per field
(``predictor="auto"`` samples both).

The plane fit is fully vectorized across chunks: for chunk-aligned shapes
all chunks are solved in one batched normal-equation evaluation; ragged
edges fall back to a per-chunk loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ConfigError, DimensionalityError

__all__ = ["RegressionCoefficients", "fit_predict_chunks", "predict_from_coefficients"]

#: Fixed-point fractional bits for stored coefficients.  The quantization
#: step must keep the worst-case prediction perturbation well under one
#: prequantization unit: with chunk extents <= 64 the slope error
#: contributes < 64 * 2^-12 < 0.02 units per axis.
COEFF_FRAC_BITS = 12


@dataclass
class RegressionCoefficients:
    """Quantized per-chunk hyperplane coefficients.

    ``values`` has shape ``(n_chunks, ndim + 1)`` (intercept last), stored
    as fixed-point int64 at :data:`COEFF_FRAC_BITS` fractional bits.
    ``grid`` is the chunk-grid shape.
    """

    values: np.ndarray
    grid: tuple[int, ...]
    chunks: tuple[int, ...]

    @property
    def n_chunks(self) -> int:
        return int(self.values.shape[0])

    def payload_bytes(self) -> int:
        return int(self.values.astype(np.int32).nbytes)

    def serialized(self) -> bytes:
        return self.values.astype(np.int64).tobytes()

    @classmethod
    def deserialized(
        cls, raw: bytes, grid: tuple[int, ...], chunks: tuple[int, ...]
    ) -> "RegressionCoefficients":
        ndim = len(chunks)
        values = np.frombuffer(raw, dtype=np.int64).reshape(-1, ndim + 1).copy()
        expected = int(np.prod(grid))
        if values.shape[0] != expected:
            raise ConfigError(
                f"coefficient section has {values.shape[0]} chunks, grid needs {expected}"
            )
        return cls(values=values, grid=grid, chunks=chunks)


def _chunk_grid(shape: tuple[int, ...], chunks: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(-(-s // c) for s, c in zip(shape, chunks))


def _local_coords(chunk_shape: tuple[int, ...]) -> np.ndarray:
    """Design matrix columns: local integer coordinates plus the constant 1.

    Returns shape ``(n_points, ndim + 1)``.
    """
    grids = np.meshgrid(
        *[np.arange(s, dtype=np.float64) for s in chunk_shape], indexing="ij"
    )
    cols = [g.reshape(-1) for g in grids] + [np.ones(int(np.prod(chunk_shape)))]
    return np.stack(cols, axis=1)


def _quantize_coeffs(coeffs: np.ndarray) -> np.ndarray:
    return np.rint(coeffs * (1 << COEFF_FRAC_BITS)).astype(np.int64)


def _dequantize_coeffs(fixed: np.ndarray) -> np.ndarray:
    return fixed.astype(np.float64) / (1 << COEFF_FRAC_BITS)


def _iter_chunk_slices(shape: tuple[int, ...], chunks: tuple[int, ...]):
    grid = _chunk_grid(shape, chunks)
    for idx in np.ndindex(*grid):
        yield tuple(
            slice(i * c, min((i + 1) * c, s)) for i, c, s in zip(idx, chunks, shape)
        )


def fit_predict_chunks(
    dq: np.ndarray, chunks: tuple[int, ...]
) -> tuple[np.ndarray, RegressionCoefficients]:
    """Fit a hyperplane per chunk and return (integer predictions, coeffs).

    Predictions are computed from the *quantized* coefficients, so they are
    exactly what the decompressor will recompute.
    """
    if not 1 <= dq.ndim <= 4:
        raise DimensionalityError("regression predictor supports 1..4-D data")
    shape = dq.shape
    grid = _chunk_grid(shape, chunks)
    n_chunks = int(np.prod(grid))
    ndim = dq.ndim
    fixed = np.zeros((n_chunks, ndim + 1), dtype=np.int64)
    pred = np.empty(shape, dtype=np.int64)

    aligned = all(s % c == 0 for s, c in zip(shape, chunks))
    if aligned:
        # Batched solve: gather all chunks into (n_chunks, n_points).
        blocks = _to_blocks(dq, chunks).astype(np.float64)
        design = _local_coords(chunks)  # (n_points, ndim+1)
        # Normal equations once: (X^T X)^-1 X^T  is shared by all chunks.
        pinv = np.linalg.pinv(design)  # (ndim+1, n_points)
        coeffs = blocks @ pinv.T  # (n_chunks, ndim+1)
        fixed = _quantize_coeffs(coeffs)
        preds = (_dequantize_coeffs(fixed) @ design.T)  # (n_chunks, n_points)
        pred = _from_blocks(np.rint(preds).astype(np.int64), shape, chunks)
    else:
        for k, slicer in enumerate(_iter_chunk_slices(shape, chunks)):
            block = dq[slicer].astype(np.float64)
            design = _local_coords(block.shape)
            coeffs, *_ = np.linalg.lstsq(design, block.reshape(-1), rcond=None)
            fixed[k] = _quantize_coeffs(coeffs)
            values = design @ _dequantize_coeffs(fixed[k])
            pred[slicer] = np.rint(values).astype(np.int64).reshape(block.shape)
    return pred, RegressionCoefficients(values=fixed, grid=grid, chunks=chunks)


def predict_from_coefficients(
    coeffs: RegressionCoefficients, shape: tuple[int, ...]
) -> np.ndarray:
    """Decompression side: recompute the integer predictions exactly."""
    chunks = coeffs.chunks
    grid = _chunk_grid(shape, chunks)
    if grid != coeffs.grid:
        raise ConfigError(f"coefficient grid {coeffs.grid} does not match shape {shape}")
    pred = np.empty(shape, dtype=np.int64)
    aligned = all(s % c == 0 for s, c in zip(shape, chunks))
    if aligned:
        design = _local_coords(chunks)
        preds = _dequantize_coeffs(coeffs.values) @ design.T
        return _from_blocks(np.rint(preds).astype(np.int64), shape, chunks)
    for k, slicer in enumerate(_iter_chunk_slices(shape, chunks)):
        block_shape = tuple(sl.stop - sl.start for sl in slicer)
        design = _local_coords(block_shape)
        values = design @ _dequantize_coeffs(coeffs.values[k])
        pred[slicer] = np.rint(values).astype(np.int64).reshape(block_shape)
    return pred


def _to_blocks(x: np.ndarray, chunks: tuple[int, ...]) -> np.ndarray:
    """(grid..., chunk...) gather for chunk-aligned shapes -> (n_chunks, n_points)."""
    d = x.ndim
    shape = []
    for s, c in zip(x.shape, chunks):
        shape += [s // c, c]
    y = x.reshape(shape)
    order = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
    n_chunks = int(np.prod([s // c for s, c in zip(x.shape, chunks)]))
    return y.transpose(order).reshape(n_chunks, -1)


def _from_blocks(
    blocks: np.ndarray, shape: tuple[int, ...], chunks: tuple[int, ...]
) -> np.ndarray:
    d = len(shape)
    grid = [s // c for s, c in zip(shape, chunks)]
    y = blocks.reshape(grid + list(chunks))
    order = []
    for i in range(d):
        order += [i, d + i]
    return y.transpose(order).reshape(shape)
