"""Compressibility-aware workflow selection (Section III).

Given the quant-code histogram (cheap to compute on GPU; cuSZ already needs
it for Huffman), the selector estimates the average Huffman bit-length ⟨b⟩
*without building the tree* using the Johnsen/Gallager redundancy bounds,
estimates RLE's bits-per-symbol from the run-break rate, and applies the
paper's practical rule:

    use Workflow-RLE when the estimated ⟨b⟩ is no greater than 1.09.

The secondary criterion ⟨b⟩_RLE <= ⟨b⟩ ("we expect to use RLE when its
bit-length wins") is also checked; either test firing selects RLE.  When RLE
is chosen, the default is RLE followed by VLE over the run values -- the
paper reports a steady 2-3x additional gain from that stage -- while the run
*lengths* (metadata) stay raw by default.
"""

from __future__ import annotations

import numpy as np

from .. import telemetry as tel
from ..analysis.entropy import bitlen_bounds
from ..analysis.variogram import adjacent_roughness
from ..telemetry import instruments as ins
from .config import CompressorConfig, SelectorDiagnostics

__all__ = ["select_workflow", "estimate_rle_bits_per_symbol"]


def estimate_rle_bits_per_symbol(
    quant: np.ndarray, value_bits: int, length_bits: int
) -> float:
    """⟨b⟩_RLE: raw RLE output bits per input symbol.

    One (value, count) tuple per run; the run-break rate (adjacent
    roughness) gives runs-per-symbol directly, so
    ``⟨b⟩_RLE = break_rate * (value_bits + length_bits)`` up to the one
    extra run at the stream head.
    """
    flat = np.asarray(quant).reshape(-1)
    n = flat.size
    if n == 0:
        return float("inf")
    n_runs = adjacent_roughness(flat) * max(n - 1, 1) + 1
    return n_runs * (value_bits + length_bits) / n


def select_workflow(
    quant: np.ndarray,
    freqs: np.ndarray,
    config: CompressorConfig,
) -> SelectorDiagnostics:
    """Decide between Workflow-Huffman and Workflow-RLE.

    Returns full diagnostics; ``decision`` is one of ``"huffman"``,
    ``"rle"``, ``"rle+vle"``.  A forced workflow in the config short-circuits
    the two O(n) estimation passes (RLE bits-per-symbol and the lag-1
    roughness): the histogram-derived signals are still reported, but
    ``rle_bitlen_estimate`` is NaN and ``smoothness`` is None on that path.
    """
    entropy, p1, lower, upper = bitlen_bounds(freqs)

    if config.workflow != "auto":
        if tel.enabled():
            ins.SELECTOR_FASTPATH.inc(workflow=config.workflow)
        return SelectorDiagnostics(
            p1=p1, entropy=entropy, bitlen_lower=lower, bitlen_upper=upper,
            rle_bitlen_estimate=float("nan"), smoothness=None,
            decision=config.workflow, reason="forced by configuration",
        )

    value_bits = int(quant.dtype.itemsize) * 8
    length_bits = int(np.dtype(config.rle_length_dtype).itemsize) * 8
    rle_bits = estimate_rle_bits_per_symbol(quant, value_bits, length_bits)
    # Distance-1 smoothness (Section III-B.2's madogram signal at lag 1);
    # one vectorized pass, reported alongside the histogram signals.
    smooth = 1.0 - adjacent_roughness(np.asarray(quant).reshape(-1))

    # The paper's practical rule uses the optimistic ("likely achievable")
    # estimate of ⟨b⟩, i.e. the lower bound H + R-(p1) floored at 1 bit.
    threshold_hit = lower <= config.rle_bitlen_threshold
    rle_wins = rle_bits <= lower
    if threshold_hit or rle_wins:
        decision = "rle+vle"
        reason = (
            f"⟨b⟩ estimate {lower:.3f} <= {config.rle_bitlen_threshold}"
            if threshold_hit
            else f"⟨b⟩_RLE {rle_bits:.3f} <= ⟨b⟩ estimate {lower:.3f}"
        )
    else:
        decision = "huffman"
        reason = (
            f"⟨b⟩ estimate {lower:.3f} > {config.rle_bitlen_threshold} "
            f"and ⟨b⟩_RLE {rle_bits:.3f} loses"
        )
    return SelectorDiagnostics(
        p1=p1, entropy=entropy, bitlen_lower=lower, bitlen_upper=upper,
        rle_bitlen_estimate=rle_bits, smoothness=smooth,
        decision=decision, reason=reason,
    )
