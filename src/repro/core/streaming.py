"""Block-wise compression for fields larger than device memory.

Paper, Section V-A.3: "when the field is too large to fit in a single GPU's
memory, cuSZ+ divides it into blocks and then compresses by block"; and the
Step-1 chunk split "favors coarse-grained decompression".  This module
implements both properties:

* :func:`compress_blocks` splits a field along its slowest axis into blocks
  of bounded size and compresses each independently into one multi-block
  container;
* :func:`decompress_blocks` restores the whole field;
* :func:`decompress_block` / :func:`decompress_range` decode only the
  requested blocks -- coarse-grained random access without touching the
  rest of the archive;
* :class:`StreamingCompressor` consumes blocks incrementally (e.g. straight
  from a simulation loop or an out-of-core reader) and emits the same
  container.

The error-bound contract is global: in relative mode the bound is resolved
against the *whole field's* value range before splitting (a two-pass
scheme).  The incremental path cannot see the full range up front, so it
requires an absolute bound -- the honest choice, and what in-situ users have
anyway.
"""

from __future__ import annotations

import struct
import warnings
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .archive import ArchiveBuilder, ArchiveReader
from .compressor import compress, decompress
from .config import CompressorConfig
from .errors import ArchiveError, ConfigError

__all__ = [
    "compress_blocks",
    "decompress_blocks",
    "decompress_block",
    "decompress_range",
    "block_manifest",
    "StreamingCompressor",
]

#: Multi-block container manifest: ndim u8, pad 3x u8, n_blocks u32,
#: trailing shape 4*u64 (full field shape), then per-block extents (u64 each)
_BMETA_HEAD = struct.Struct("<B3xI4Q")


@dataclass(frozen=True)
class BlockManifest:
    """Geometry of a multi-block archive."""

    shape: tuple[int, ...]
    extents: tuple[int, ...]  # per-block size along axis 0

    @property
    def n_blocks(self) -> int:
        return len(self.extents)

    @property
    def offsets(self) -> tuple[int, ...]:
        out = [0]
        for e in self.extents[:-1]:
            out.append(out[-1] + e)
        return tuple(out)

    def block_for_index(self, index: int) -> int:
        """Which block holds axis-0 position ``index``."""
        if not 0 <= index < self.shape[0]:
            raise IndexError(f"index {index} out of range 0..{self.shape[0] - 1}")
        acc = 0
        for k, e in enumerate(self.extents):
            acc += e
            if index < acc:
                return k
        raise AssertionError("unreachable")


def _pack_manifest(m: BlockManifest) -> bytes:
    shape4 = list(m.shape) + [0] * (4 - len(m.shape))
    head = _BMETA_HEAD.pack(len(m.shape), m.n_blocks, *shape4)
    return head + np.asarray(m.extents, dtype=np.uint64).tobytes()


def _unpack_manifest(raw: bytes) -> BlockManifest:
    if len(raw) < _BMETA_HEAD.size:
        raise ArchiveError("block manifest truncated")
    ndim, n_blocks, *shape4 = _BMETA_HEAD.unpack_from(raw, 0)
    if not 1 <= ndim <= 4:
        raise ArchiveError(f"block manifest has invalid ndim {ndim}")
    try:
        extents = np.frombuffer(raw, dtype=np.uint64, offset=_BMETA_HEAD.size)
    except ValueError as exc:  # trailing bytes not a multiple of 8
        raise ArchiveError(f"block manifest extents malformed: {exc}") from None
    if extents.size != n_blocks:
        raise ArchiveError(
            f"block manifest lists {extents.size} extents, header says {n_blocks}"
        )
    if extents.size == 0 or np.any(extents == 0):
        raise ArchiveError("block manifest has empty or zero-sized blocks")
    shape = tuple(int(s) for s in shape4[:ndim])
    if sum(int(e) for e in extents) != shape[0]:
        raise ArchiveError("block extents do not tile the field")
    return BlockManifest(shape=shape, extents=tuple(int(e) for e in extents))


def _block_count_extents(n0: int, block_rows: int) -> list[int]:
    if block_rows < 1:
        raise ConfigError(f"block size must be >= 1 row, got {block_rows}")
    extents = []
    remaining = n0
    while remaining > 0:
        take = min(block_rows, remaining)
        extents.append(take)
        remaining -= take
    return extents


def compress_blocks(
    data: np.ndarray,
    config: CompressorConfig | None = None,
    max_block_bytes: int = 64 << 20,
    **kwargs,
) -> bytes:
    """Compress a large field block-by-block into one container blob.

    The field is split along axis 0 so each uncompressed block stays under
    ``max_block_bytes``.  Relative bounds are resolved against the full
    field's range so every block honors the same absolute bound.
    """
    if config is None:
        config = CompressorConfig(**kwargs)
    elif kwargs:
        config = config.with_(**kwargs)
    data = np.asarray(data)
    if data.ndim < 1 or data.size == 0:
        raise ConfigError("cannot block-compress an empty array")
    row_bytes = int(data.nbytes // data.shape[0]) or 1
    block_rows = max(int(max_block_bytes // row_bytes), 1)
    extents = _block_count_extents(data.shape[0], block_rows)
    eb_abs = _resolve_global_bound(data, config)
    block_config = config.with_(eb=eb_abs, eb_mode="abs")
    blocks = (
        data[off : off + ext]
        for off, ext in zip(BlockManifest(data.shape, tuple(extents)).offsets, extents)
    )
    return _build_container(blocks, data.shape, extents, block_config)


def _resolve_global_bound(data: np.ndarray, config: CompressorConfig) -> float:
    """Absolute bound for the whole field, safe on NaN-masked and constant data.

    NaN-masked fields resolve the relative bound on the finite range.  An
    all-NaN field has no range to resolve against (and no finite values to
    bound), so it is rejected outright; a constant field degenerates to a
    tiny bound scaled to the field's magnitude so the quantization step
    stays positive and finite instead of poisoning every block downstream.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN slice
        vmin = float(np.nanmin(data))
        vmax = float(np.nanmax(data))
    if np.isnan(vmin) or np.isnan(vmax):
        raise ConfigError("cannot block-compress an all-NaN field: no finite values")
    if not (np.isfinite(vmin) and np.isfinite(vmax)):
        raise ConfigError("cannot block-compress a field containing infinities")
    eb_abs = config.absolute_bound(vmax - vmin)
    if not (eb_abs > 0.0 and np.isfinite(eb_abs)):
        # Constant field under a relative bound: any tiny positive step
        # reproduces it exactly; scale to the value magnitude.
        scale = max(abs(vmin), abs(vmax), 1.0)
        eb_abs = scale * float(np.finfo(np.float32).eps)
    return eb_abs


def _build_container(
    blocks: Iterable[np.ndarray],
    shape: tuple[int, ...],
    extents: list[int],
    block_config: CompressorConfig,
) -> bytes:
    builder = ArchiveBuilder()
    count = 0
    for k, block in enumerate(blocks):
        result = compress(block, block_config)
        builder.add_bytes(f"blk{k}", result.archive)
        count += 1
    if count != len(extents):
        raise ConfigError(f"got {count} blocks, manifest expected {len(extents)}")
    builder.add_bytes("bmeta", _pack_manifest(BlockManifest(shape, tuple(extents))))
    return builder.to_bytes()


def block_manifest(blob: bytes) -> BlockManifest:
    """Read a container's geometry without decompressing anything."""
    return _unpack_manifest(ArchiveReader(blob).get_bytes("bmeta"))


def decompress_block(blob: bytes, index: int) -> np.ndarray:
    """Decode exactly one block (coarse-grained random access)."""
    reader = ArchiveReader(blob)
    manifest = _unpack_manifest(reader.get_bytes("bmeta"))
    if not 0 <= index < manifest.n_blocks:
        raise IndexError(f"block {index} out of range 0..{manifest.n_blocks - 1}")
    return decompress(reader.get_bytes(f"blk{index}"))


def decompress_range(blob: bytes, start: int, stop: int) -> np.ndarray:
    """Decode only the blocks covering axis-0 rows ``[start, stop)``.

    Returns exactly those rows; untouched blocks are never decoded.
    """
    manifest = block_manifest(blob)
    if not 0 <= start < stop <= manifest.shape[0]:
        raise IndexError(f"row range [{start}, {stop}) outside field of {manifest.shape[0]}")
    first = manifest.block_for_index(start)
    last = manifest.block_for_index(stop - 1)
    reader = ArchiveReader(blob)
    pieces = [decompress(reader.get_bytes(f"blk{k}")) for k in range(first, last + 1)]
    stacked = np.concatenate(pieces, axis=0)
    base = manifest.offsets[first]
    return stacked[start - base : stop - base]


def decompress_blocks(blob: bytes) -> np.ndarray:
    """Restore the full field from a multi-block container."""
    manifest = block_manifest(blob)
    reader = ArchiveReader(blob)
    pieces = [decompress(reader.get_bytes(f"blk{k}")) for k in range(manifest.n_blocks)]
    out = np.concatenate(pieces, axis=0)
    if out.shape != manifest.shape:
        raise ArchiveError(f"blocks reassemble to {out.shape}, manifest says {manifest.shape}")
    return out


class StreamingCompressor:
    """Incremental block-by-block compression (in-situ / out-of-core).

    Feed blocks with :meth:`append`; call :meth:`finish` for the container.
    Requires an absolute error bound -- the global value range is unknowable
    mid-stream, so a relative bound could not be honored.

    >>> sc = StreamingCompressor(CompressorConfig(eb=1e-3, eb_mode="abs"))
    >>> for block in simulation_steps():
    ...     sc.append(block)
    >>> blob = sc.finish()
    """

    def __init__(self, config: CompressorConfig) -> None:
        if config.eb_mode != "abs":
            raise ConfigError(
                "streaming compression requires an absolute error bound "
                "(the full value range is not known up front)"
            )
        self.config = config
        self._builder = ArchiveBuilder()
        self._extents: list[int] = []
        self._tail_shape: tuple[int, ...] | None = None
        self._finished = False

    def append(self, block: np.ndarray) -> None:
        """Compress and append one block (all blocks must share trailing dims)."""
        if self._finished:
            raise ConfigError("streaming compressor already finished")
        block = np.asarray(block)
        if block.ndim < 1 or block.size == 0:
            raise ConfigError("blocks must be non-empty arrays")
        tail = tuple(block.shape[1:])
        if self._tail_shape is None:
            self._tail_shape = tail
        elif tail != self._tail_shape:
            raise ConfigError(
                f"block trailing shape {tail} != first block's {self._tail_shape}"
            )
        result = compress(block, self.config)
        self._builder.add_bytes(f"blk{len(self._extents)}", result.archive)
        self._extents.append(int(block.shape[0]))

    @property
    def n_blocks(self) -> int:
        return len(self._extents)

    def finish(self) -> bytes:
        """Seal the container and return the blob."""
        if not self._extents:
            raise ConfigError("no blocks were appended")
        self._finished = True
        shape = (sum(self._extents), *(self._tail_shape or ()))
        self._builder.add_bytes(
            "bmeta", _pack_manifest(BlockManifest(shape, tuple(self._extents)))
        )
        return self._builder.to_bytes()
