"""Block-wise compression for fields larger than device memory.

Paper, Section V-A.3: "when the field is too large to fit in a single GPU's
memory, cuSZ+ divides it into blocks and then compresses by block"; and the
Step-1 chunk split "favors coarse-grained decompression".  This module
implements both properties:

* :func:`compress_blocks` splits a field along its slowest axis into blocks
  of bounded size and compresses each independently into one multi-block
  container -- serially, or concurrently across a
  :class:`~repro.engine.CompressionEngine` worker pool (``jobs=N``), with
  the parallel container byte-identical to the serial one;
* :func:`decompress_blocks` restores the whole field;
* :func:`decompress_block` / :func:`decompress_range` decode only the
  requested blocks -- coarse-grained random access without touching the
  rest of the archive;
* :class:`StreamingCompressor` consumes blocks incrementally (e.g. straight
  from a simulation loop or an out-of-core reader) and emits the same
  container; with an engine attached, appended blocks compress in the
  background while the producer keeps feeding.

The error-bound contract is global: in relative mode the bound is resolved
against the *whole field's* value range before splitting (a two-pass
scheme).  The incremental path cannot see the full range up front, so it
requires a bound that is meaningful per block: absolute, or point-wise
relative (which needs no range at all).
"""

from __future__ import annotations

import struct
import warnings
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .. import telemetry as tel
from ..telemetry import instruments as ins
from ..telemetry import ledger as ledger_mod
from .archive import ArchiveBuilder, ArchiveReader
from .compressor import DecompressionResult, compress, decompress, decompress_with_stats
from .config import CompressorConfig
from .errors import ArchiveError, ConfigError

__all__ = [
    "compress_blocks",
    "decompress_blocks",
    "decompress_blocks_with_stats",
    "decompress_block",
    "decompress_range",
    "block_manifest",
    "StreamingCompressor",
]

#: Multi-block container manifest: ndim u8, pad 3x u8, n_blocks u32,
#: trailing shape 4*u64 (full field shape), then per-block extents (u64 each)
_BMETA_HEAD = struct.Struct("<B3xI4Q")


@dataclass(frozen=True)
class BlockManifest:
    """Geometry of a multi-block archive."""

    shape: tuple[int, ...]
    extents: tuple[int, ...]  # per-block size along axis 0

    @property
    def n_blocks(self) -> int:
        return len(self.extents)

    @property
    def offsets(self) -> tuple[int, ...]:
        out = [0]
        for e in self.extents[:-1]:
            out.append(out[-1] + e)
        return tuple(out)

    def block_for_index(self, index: int) -> int:
        """Which block holds axis-0 position ``index``."""
        if not 0 <= index < self.shape[0]:
            raise IndexError(f"index {index} out of range 0..{self.shape[0] - 1}")
        acc = 0
        for k, e in enumerate(self.extents):
            acc += e
            if index < acc:
                return k
        raise AssertionError("unreachable")


def _pack_manifest(m: BlockManifest) -> bytes:
    shape4 = list(m.shape) + [0] * (4 - len(m.shape))
    head = _BMETA_HEAD.pack(len(m.shape), m.n_blocks, *shape4)
    return head + np.asarray(m.extents, dtype=np.uint64).tobytes()


def _unpack_manifest(raw: bytes) -> BlockManifest:
    if len(raw) < _BMETA_HEAD.size:
        raise ArchiveError("block manifest truncated")
    ndim, n_blocks, *shape4 = _BMETA_HEAD.unpack_from(raw, 0)
    if not 1 <= ndim <= 4:
        raise ArchiveError(f"block manifest has invalid ndim {ndim}")
    try:
        extents = np.frombuffer(raw, dtype=np.uint64, offset=_BMETA_HEAD.size)
    except ValueError as exc:  # trailing bytes not a multiple of 8
        raise ArchiveError(f"block manifest extents malformed: {exc}") from None
    if extents.size != n_blocks:
        raise ArchiveError(
            f"block manifest lists {extents.size} extents, header says {n_blocks}"
        )
    if extents.size == 0 or np.any(extents == 0):
        raise ArchiveError("block manifest has empty or zero-sized blocks")
    shape = tuple(int(s) for s in shape4[:ndim])
    if sum(int(e) for e in extents) != shape[0]:
        raise ArchiveError("block extents do not tile the field")
    return BlockManifest(shape=shape, extents=tuple(int(e) for e in extents))


def _block_count_extents(n0: int, block_rows: int) -> list[int]:
    if block_rows < 1:
        raise ConfigError(f"block size must be >= 1 row, got {block_rows}")
    extents = []
    remaining = n0
    while remaining > 0:
        take = min(block_rows, remaining)
        extents.append(take)
        remaining -= take
    return extents


def compress_blocks(
    data: np.ndarray,
    config: CompressorConfig | None = None,
    max_block_bytes: int = 64 << 20,
    jobs: int | None = None,
    backend=None,
    engine=None,
    **kwargs,
) -> bytes:
    """Compress a large field block-by-block into one container blob.

    The field is split along axis 0 so each uncompressed block stays under
    ``max_block_bytes``.  Relative bounds are resolved against the full
    field's range so every block honors the same absolute bound; point-wise
    relative bounds need no range and pass through unchanged.

    ``jobs=N`` compresses blocks concurrently on a transient
    :class:`~repro.engine.CompressionEngine`; ``backend=`` picks its
    executor (``"serial"``/``"thread"``/``"process"``, default resolved via
    the config then ``REPRO_ENGINE_BACKEND``), or pass a caller-owned
    engine as ``backend=`` to reuse its pool and codebook cache.  Blocks
    are reassembled in submission order, so the container is
    **byte-identical** regardless of backend and worker count.

    .. deprecated:: the ``engine=`` keyword; pass the engine as ``backend=``.
    """
    from ..engine.backends import deprecate_engine_kwarg, resolve_execution

    if engine is not None and backend is None:
        backend = deprecate_engine_kwarg("compress_blocks", engine)
    if config is None:
        config = CompressorConfig(**kwargs)
    elif kwargs:
        config = config.with_(**kwargs)
    data = np.asarray(data)
    if data.ndim < 1 or data.size == 0:
        raise ConfigError("cannot block-compress an empty array")
    row_bytes = int(data.nbytes // data.shape[0]) or 1
    block_rows = max(int(max_block_bytes // row_bytes), 1)
    extents = _block_count_extents(data.shape[0], block_rows)
    if config.eb_mode == "pwrel":
        # Point-wise bounds are local by construction: no global range pass.
        block_config = config
    else:
        eb_abs = _resolve_global_bound(data, config)
        block_config = config.with_(eb=eb_abs, eb_mode="abs")
    manifest = BlockManifest(data.shape, tuple(extents))
    blocks = (
        data[off : off + ext] for off, ext in zip(manifest.offsets, extents)
    )
    eng, own_engine = resolve_execution(backend, jobs, block_config)
    effective_jobs = eng.jobs if eng is not None else 1
    engine_snap: dict | None = None
    with tel.span(
        "compress_blocks", bytes_in=int(data.nbytes),
        n_blocks=manifest.n_blocks, jobs=effective_jobs,
    ) as root:
        if eng is not None:
            archives, engine_snap = _compress_blocks_parallel(
                blocks, block_config, eng, own_engine
            )
        else:
            archives = [compress(block, block_config).archive for block in blocks]
        blob = _assemble_container(archives, manifest)
        root.set(bytes_out=len(blob))
    led = ledger_mod.ledger_for(config)
    if led is not None:
        record: dict = {
            "fingerprint": ledger_mod.config_fingerprint(config),
            "jobs": effective_jobs,
            "n_blocks": manifest.n_blocks,
            "shape": [int(s) for s in data.shape],
            "dtype": str(data.dtype),
            "stages": ledger_mod.span_self_times(root),
            "sizes": {
                "original_bytes": int(data.nbytes),
                "compressed_bytes": len(blob),
                "ratio": int(data.nbytes) / len(blob) if blob else 0.0,
            },
        }
        if engine_snap is not None:
            record["engine"] = {
                "backend": engine_snap["backend"],
                "queue_depth_max": engine_snap["queue_depth_max"],
                "submit_wait_seconds": engine_snap["submit_wait_seconds"],
                "worker_wall_seconds": engine_snap["worker_wall_seconds"],
                "worker_cpu_seconds": engine_snap["worker_cpu_seconds"],
                "n_worker_threads": engine_snap["n_worker_threads"],
                "cache": engine_snap["cache"],
            }
        led.record("engine_batch", **record)
    return blob


def _compress_blocks_parallel(
    blocks: Iterable[np.ndarray],
    block_config: CompressorConfig,
    eng,
    own: bool,
) -> tuple[list[bytes], dict]:
    """Fan blocks out over an engine; results return in submission order.

    Also returns the engine's diagnostics snapshot (taken after the batch
    drains) so the caller can ledger queue-depth/wait accounting.  For a
    caller-owned engine the snapshot is cumulative over the engine's life,
    not just this batch.
    """
    try:
        futures = [eng.submit(block, block_config) for block in blocks]
        archives = [f.result().archive for f in futures]
        return archives, eng.diagnostics_snapshot()
    finally:
        if own:
            eng.shutdown(wait=True)


def _assemble_container(archives: list[bytes], manifest: BlockManifest) -> bytes:
    """Deterministic container assembly: ``blk<k>`` sections in block order."""
    if len(archives) != manifest.n_blocks:
        raise ConfigError(
            f"got {len(archives)} blocks, manifest expected {manifest.n_blocks}"
        )
    builder = ArchiveBuilder()
    for k, archive in enumerate(archives):
        builder.add_bytes(f"blk{k}", archive)
    builder.add_bytes("bmeta", _pack_manifest(manifest))
    return builder.to_bytes()


def _resolve_global_bound(data: np.ndarray, config: CompressorConfig) -> float:
    """Absolute bound for the whole field, safe on NaN-masked and constant data.

    NaN-masked fields resolve the relative bound on the finite range.  An
    all-NaN field has no range to resolve a *relative* bound against, so it
    is rejected under ``rel`` mode -- but an absolute bound needs no range,
    and the NaN mask reproduces such a field exactly, so ``abs`` mode passes
    the configured bound through.  A constant field degenerates to a tiny
    bound scaled to the field's magnitude so the quantization step stays
    positive and finite instead of poisoning every block downstream.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN slice
        vmin = float(np.nanmin(data))
        vmax = float(np.nanmax(data))
    if np.isnan(vmin) or np.isnan(vmax):
        if config.eb_mode == "abs":
            return float(config.eb)
        raise ConfigError(
            "cannot block-compress an all-NaN field under a relative "
            "bound: no finite values to resolve the range; use an "
            "absolute bound"
        )
    if not (np.isfinite(vmin) and np.isfinite(vmax)):
        raise ConfigError("cannot block-compress a field containing infinities")
    eb_abs = config.absolute_bound(vmax - vmin)
    if not (eb_abs > 0.0 and np.isfinite(eb_abs)):
        # Constant field under a relative bound: any tiny positive step
        # reproduces it exactly; scale to the value magnitude.
        scale = max(abs(vmin), abs(vmax), 1.0)
        eb_abs = scale * float(np.finfo(np.float32).eps)
    return eb_abs


def block_manifest(blob: bytes) -> BlockManifest:
    """Read a container's geometry without decompressing anything."""
    return _unpack_manifest(ArchiveReader(blob).get_bytes("bmeta"))


def decompress_block(blob: bytes, index: int) -> np.ndarray:
    """Decode exactly one block (coarse-grained random access)."""
    reader = ArchiveReader(blob)
    manifest = _unpack_manifest(reader.get_bytes("bmeta"))
    if not 0 <= index < manifest.n_blocks:
        raise IndexError(f"block {index} out of range 0..{manifest.n_blocks - 1}")
    return decompress(reader.get_bytes(f"blk{index}"))


def decompress_range(blob: bytes, start: int, stop: int) -> np.ndarray:
    """Decode only the blocks covering axis-0 rows ``[start, stop)``.

    Returns exactly those rows; untouched blocks are never decoded.
    """
    manifest = block_manifest(blob)
    if not 0 <= start < stop <= manifest.shape[0]:
        raise IndexError(f"row range [{start}, {stop}) outside field of {manifest.shape[0]}")
    first = manifest.block_for_index(start)
    last = manifest.block_for_index(stop - 1)
    reader = ArchiveReader(blob)
    pieces = [decompress(reader.get_bytes(f"blk{k}")) for k in range(first, last + 1)]
    stacked = np.concatenate(pieces, axis=0)
    base = manifest.offsets[first]
    return stacked[start - base : stop - base]


def decompress_blocks(
    blob: bytes, jobs: int | None = None, backend=None, engine=None
) -> np.ndarray:
    """Restore the full field from a multi-block container.

    ``jobs=N`` decodes blocks concurrently on a transient
    :class:`~repro.engine.CompressionEngine`; ``backend=`` picks its
    executor, or reuses a caller-owned engine passed in its place.  Blocks
    are gathered in manifest order, so the output is identical to the
    serial decode.

    .. deprecated:: the ``engine=`` keyword; pass the engine as ``backend=``.
    """
    from ..engine.backends import deprecate_engine_kwarg

    if engine is not None and backend is None:
        backend = deprecate_engine_kwarg("decompress_blocks", engine)
    return decompress_blocks_with_stats(blob, jobs=jobs, backend=backend).data


def decompress_blocks_with_stats(
    blob: bytes, jobs: int | None = None, backend=None, engine=None
) -> DecompressionResult:
    """Restore the full field plus aggregated per-block reporting.

    ``workflow``/``predictor`` report the blocks' common value, or
    ``"mixed"`` when the selector chose differently per block; outlier
    counts are summed and ``eb_abs`` is the largest per-block bound (they
    are identical for containers built by :func:`compress_blocks`, which
    resolves the bound globally).  ``jobs``/``backend`` parallelize across
    blocks (see :func:`decompress_blocks`).

    .. deprecated:: the ``engine=`` keyword; pass the engine as ``backend=``.
    """
    from ..engine.backends import deprecate_engine_kwarg, resolve_execution

    if engine is not None and backend is None:
        backend = deprecate_engine_kwarg("decompress_blocks_with_stats", engine)
    eng, own_engine = resolve_execution(backend, jobs, None)
    try:
        return _decompress_blocks_impl(blob, eng)
    finally:
        if own_engine:
            eng.shutdown(wait=True)


def _decompress_blocks_impl(blob: bytes, engine) -> DecompressionResult:
    manifest = block_manifest(blob)
    reader = ArchiveReader(blob)
    with tel.span(
        "decompress_blocks", bytes_in=len(blob), n_blocks=manifest.n_blocks
    ) as root:
        if engine is not None and getattr(engine, "jobs", 1) > 1 and manifest.n_blocks > 1:
            # One engine job per block, gathered in manifest order.  Workers
            # decode their block serially (chunk-group fan-out from inside a
            # worker would deadlock a saturated pool), which is the right
            # granularity anyway: blocks outnumber cores long before chunk
            # groups do.
            futures = [
                engine.run(decompress_with_stats, reader.get_bytes(f"blk{k}"))
                for k in range(manifest.n_blocks)
            ]
            results = [f.result() for f in futures]
        else:
            results = [
                decompress_with_stats(reader.get_bytes(f"blk{k}"), backend=engine)
                for k in range(manifest.n_blocks)
            ]
        out = np.concatenate([r.data for r in results], axis=0)
        if out.shape != manifest.shape:
            raise ArchiveError(
                f"blocks reassemble to {out.shape}, manifest says {manifest.shape}"
            )
        root.set(bytes_out=int(out.nbytes))
    workflows = {r.workflow for r in results}
    predictors = {r.predictor for r in results}
    return DecompressionResult(
        data=out,
        workflow=workflows.pop() if len(workflows) == 1 else "mixed",
        predictor=predictors.pop() if len(predictors) == 1 else "mixed",
        eb_abs=max(r.eb_abs for r in results),
        n_outliers=sum(r.n_outliers for r in results),
        section_sizes=reader.section_sizes(),
        stage_stats=ins.stage_stats_from_span(root),
    )


class StreamingCompressor:
    """Incremental block-by-block compression (in-situ / out-of-core).

    Feed blocks with :meth:`append`; call :meth:`finish` for the container,
    or use it as a context manager and read :attr:`container` afterwards.
    Requires a bound that is meaningful per block -- absolute, or point-wise
    relative -- because the global value range is unknowable mid-stream.

    >>> sc = StreamingCompressor(CompressorConfig(eb=1e-3, eb_mode="abs"))
    >>> for block in simulation_steps():
    ...     sc.append(block)
    >>> blob = sc.finish()

    With an engine attached (``jobs=N`` or a ``backend=`` selection),
    :meth:`append` only *schedules* the block; compression proceeds on the
    worker pool while the producer keeps feeding, and :meth:`finish`
    gathers results in append order -- the container stays byte-identical
    to the serial one.  Worker-side failures surface at :meth:`finish`.

    .. deprecated:: the ``engine=`` keyword; pass the engine as ``backend=``.
    """

    def __init__(
        self,
        config: CompressorConfig,
        jobs: int | None = None,
        backend=None,
        engine=None,
    ) -> None:
        from ..engine.backends import deprecate_engine_kwarg, resolve_execution

        if engine is not None and backend is None:
            backend = deprecate_engine_kwarg("StreamingCompressor", engine)
        if config.eb_mode == "rel":
            raise ConfigError(
                "streaming compression requires an absolute or point-wise "
                "relative error bound (the full value range is not known "
                "up front)"
            )
        self.config = config
        self._engine, self._own_engine = resolve_execution(backend, jobs, config)
        self._pending: list = []  # archive bytes, or futures when engined
        self._extents: list[int] = []
        self._tail_shape: tuple[int, ...] | None = None
        self._finished = False
        self._container: bytes | None = None

    def append(self, block: np.ndarray) -> None:
        """Compress (or schedule) one block; all blocks share trailing dims."""
        if self._finished:
            raise ConfigError("streaming compressor already finished")
        block = np.asarray(block)
        if block.ndim < 1 or block.size == 0:
            raise ConfigError("blocks must be non-empty arrays")
        tail = tuple(block.shape[1:])
        if self._tail_shape is None:
            self._tail_shape = tail
        elif tail != self._tail_shape:
            raise ConfigError(
                f"block trailing shape {tail} != first block's {self._tail_shape}"
            )
        if self._engine is not None:
            self._pending.append(self._engine.submit(block, self.config))
        else:
            self._pending.append(compress(block, self.config).archive)
        self._extents.append(int(block.shape[0]))

    @property
    def n_blocks(self) -> int:
        return len(self._extents)

    @property
    def container(self) -> bytes:
        """The sealed container blob (only after :meth:`finish`)."""
        if self._container is None:
            raise ConfigError("stream not finished yet; call finish() first")
        return self._container

    def finish(self) -> bytes:
        """Seal the container and return the blob (idempotent)."""
        if self._finished:
            return self.container
        if not self._extents:
            raise ConfigError("no blocks were appended")
        self._finished = True
        try:
            archives = [
                p if isinstance(p, bytes) else p.result().archive
                for p in self._pending
            ]
        finally:
            self._release_engine()
        shape = (sum(self._extents), *(self._tail_shape or ()))
        self._container = _assemble_container(
            archives, BlockManifest(shape, tuple(self._extents))
        )
        self._pending.clear()
        return self._container

    def _release_engine(self) -> None:
        if self._own_engine and self._engine is not None:
            self._engine.shutdown(wait=True)
            self._engine = None
            self._own_engine = False

    def __enter__(self) -> "StreamingCompressor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.finish()
        else:
            self._finished = True
            self._release_engine()
        return False
