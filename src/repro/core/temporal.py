"""Temporal compression: exploit inter-snapshot redundancy.

The in-situ scenario (paper introduction: instruments and simulations
emitting snapshot streams) has a fourth dimension the spatial pipeline
ignores: consecutive snapshots are usually closer to each other than to
zero.  :class:`TemporalCompressor` compresses each frame as its difference
from the *previous reconstruction*:

    residual_t = frame_t - reconstruction_{t-1}

The residual of a slowly-evolving field is near-zero everywhere --
quant-codes collapse and Workflow-RLE fires.  Using the previous
*reconstruction* (not the previous original) keeps the error bound exact:
the decompressor adds back exactly what the compressor subtracted, so

    |frame_t - restored_t| = |residual_t - restored_residual_t| <= eb.

Error does **not** accumulate across frames.  Each frame's archive records
whether it is a keyframe or a delta frame; the compressor falls back to a
keyframe whenever the delta does not actually compress better (scene
changes, restarts) or on a fixed cadence (bounding the decode chain for
random access).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from .compressor import compress, decompress
from .config import CompressorConfig
from .errors import ArchiveError, ConfigError

__all__ = ["TemporalCompressor", "TemporalDecompressor", "FrameInfo"]

_FRAME_HEAD = struct.Struct("<4sBxxxQ")
_MAGIC = b"RPTF"


@dataclass(frozen=True)
class FrameInfo:
    """What :meth:`TemporalCompressor.push` reports about one frame."""

    index: int
    is_keyframe: bool
    compressed_bytes: int
    ratio: float


class TemporalCompressor:
    """Streaming snapshot compressor with keyframe/delta framing.

    Requires an absolute bound (like :class:`~repro.core.streaming.
    StreamingCompressor`, the global range is unknowable mid-stream).

    >>> tc = TemporalCompressor(CompressorConfig(eb=1e-3, eb_mode="abs"))
    >>> blob0 = tc.push(frame0)          # keyframe
    >>> blob1 = tc.push(frame1)          # delta (if it pays off)
    """

    def __init__(self, config: CompressorConfig, keyframe_interval: int = 16) -> None:
        if config.eb_mode != "abs":
            raise ConfigError("temporal compression requires an absolute error bound")
        if keyframe_interval < 1:
            raise ConfigError("keyframe_interval must be >= 1")
        self.config = config
        self.keyframe_interval = keyframe_interval
        self._prev_recon: np.ndarray | None = None
        self._index = 0
        self.last_info: FrameInfo | None = None

    def push(self, frame: np.ndarray) -> bytes:
        """Compress the next snapshot; returns a framed blob."""
        frame = np.asarray(frame)
        if self._prev_recon is not None and frame.shape != self._prev_recon.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != stream shape {self._prev_recon.shape}"
            )
        force_key = (
            self._prev_recon is None or self._index % self.keyframe_interval == 0
        )
        key_res = compress(frame, self.config)
        chosen = key_res
        is_key = True
        if not force_key:
            residual = frame.astype(np.float64) - self._prev_recon.astype(np.float64)
            # Casting the residual to the frame dtype and summing back each
            # add up to one ulp at frame magnitude; shave the residual's
            # bound by that margin so the *frame* bound holds strictly.
            eps = 2.0 ** (-21 if frame.dtype == np.float32 else -50)
            margin = float(np.max(np.abs(frame))) * eps
            eb_resid = self.config.eb - margin
            if eb_resid > 0:
                delta_res = compress(
                    residual.astype(frame.dtype), self.config.with_(eb=eb_resid)
                )
                if delta_res.compressed_bytes < key_res.compressed_bytes:
                    chosen, is_key = delta_res, False
        # Reconstruct exactly as the decompressor will, to carry forward.
        restored = decompress(chosen.archive)
        if is_key:
            recon = restored
        else:
            recon = (
                self._prev_recon.astype(np.float64) + restored.astype(np.float64)
            ).astype(frame.dtype)
        self._prev_recon = recon
        head = _FRAME_HEAD.pack(_MAGIC, 1 if is_key else 0, self._index)
        blob = head + chosen.archive
        self.last_info = FrameInfo(
            index=self._index,
            is_keyframe=is_key,
            compressed_bytes=len(blob),
            ratio=frame.nbytes / len(blob),
        )
        self._index += 1
        return blob


class TemporalDecompressor:
    """Mirror of :class:`TemporalCompressor`: feed frames in stream order."""

    def __init__(self) -> None:
        self._prev: np.ndarray | None = None
        self._expected = 0

    def pull(self, blob: bytes) -> np.ndarray:
        """Decode the next framed blob into the full snapshot."""
        if len(blob) < _FRAME_HEAD.size:
            raise ArchiveError("temporal frame truncated")
        magic, is_key, index = _FRAME_HEAD.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise ArchiveError("not a temporal frame")
        if index != self._expected:
            raise ArchiveError(
                f"frame {index} out of order (expected {self._expected}); "
                "delta frames must be decoded in sequence from a keyframe"
            )
        payload = decompress(blob[_FRAME_HEAD.size :])
        if is_key:
            out = payload
        else:
            if self._prev is None:
                raise ArchiveError("delta frame before any keyframe")
            out = (
                self._prev.astype(np.float64) + payload.astype(np.float64)
            ).astype(payload.dtype)
        self._prev = out
        self._expected += 1
        return out
