"""Lossless-stage pipelines: Workflow-Huffman and Workflow-RLE (Fig. 1).

Both workflows consume the quant-code array produced by dual-quantization
and emit archive sections; decompression mirrors them.  Section naming uses
a prefix so the same Huffman plumbing serves both the main quant stream and
the RLE value stream (the "+VLE" stage).

Workflow-Huffman (the cuSZ default, path "a"):
    histogram -> canonical codebook -> chunked Huffman encode -> deflate.

Workflow-RLE (the cuSZ+ addition, path "b"):
    reduce_by_key RLE -> (optional) Huffman over run values; run lengths
    stored raw by default (the paper disables metadata compression on GPU).
"""

from __future__ import annotations

import numpy as np

from .. import telemetry as tel
from ..encoding.huffman import CanonicalCodebook
from ..encoding.huffman_codec import (
    HuffmanEncoded,
    decode as huff_decode,
    encode as huff_encode,
    split_chunk_groups,
)
from ..engine.cache import cached_codebook, cached_decode_table, cached_histogram
from ..encoding.rle import RunLengthEncoded, rle_decode, rle_encode
from .archive import ArchiveBuilder, ArchiveReader
from .config import CompressorConfig
from .errors import ArchiveError

#: Fewest chunks per decode group worth a worker dispatch: below this the
#: submit/context-copy overhead outweighs the parallel decode win.
_MIN_CHUNKS_PER_GROUP = 4

__all__ = [
    "emit_huffman_sections",
    "read_huffman_sections",
    "emit_rle_sections",
    "read_rle_sections",
]


def _huffman_encode_stream(
    symbols: np.ndarray, alphabet_size: int, chunk_size: int, aligned: bool = False
) -> tuple[CanonicalCodebook, HuffmanEncoded, float]:
    """Histogram -> codebook -> chunked encode; returns (book, stream, ⟨b⟩).

    Both the histogram and the codebook go through the engine cache hooks:
    inside an engine worker (:func:`repro.engine.cache.cache_scope`) blocks
    with a previously-seen quant-code distribution skip tree construction;
    outside an engine the hooks fall through to direct computation.

    ``aligned`` emits the format-v3 indexed payload (byte-aligned chunks
    with recorded sync points).
    """
    with tel.span("huffman.histogram", bytes_in=int(symbols.nbytes)):
        freqs = cached_histogram(symbols, alphabet_size)
    with tel.span("huffman.codebook"):
        book = cached_codebook(freqs)
    with tel.span("huffman.encode", bytes_in=int(symbols.nbytes)) as sp:
        encoded = huff_encode(symbols, book, chunk_size, aligned=aligned)
        sp.set(bytes_out=int(encoded.payload_bytes))
    return book, encoded, book.average_bit_length(freqs)


def _add_huffman_group(
    builder: ArchiveBuilder,
    prefix: str,
    book: CanonicalCodebook,
    encoded: HuffmanEncoded,
    sparse_codebook: bool = False,
) -> None:
    raw_book = book.serialized_sparse() if sparse_codebook else book.serialized()
    builder.add_bytes(f"{prefix}.cb", raw_book)
    builder.add_array(f"{prefix}.bits", encoded.payload)
    builder.add_array(f"{prefix}.cbits", encoded.chunk_bits)
    if encoded.chunk_offsets is not None:
        builder.add_array(f"{prefix}.idx", encoded.chunk_offsets)


def _huffman_group_bytes(book_bytes: bytes, encoded: HuffmanEncoded) -> int:
    return len(book_bytes) + encoded.payload_bytes + encoded.metadata_bytes


def emit_huffman_sections(
    symbols: np.ndarray,
    alphabet_size: int,
    chunk_size: int,
    builder: ArchiveBuilder,
    prefix: str = "q",
    lz_stage: bool = False,
) -> dict[str, float]:
    """Huffman-encode ``symbols`` and add codebook/payload/metadata sections.

    ``lz_stage`` appends the CPU-side dictionary pass (cuSZ Step-9): the
    deflated Huffman bitstream is LZ77-compressed into ``<prefix>.lz``
    (replacing ``<prefix>.bits``) when that actually shrinks it.  Returns
    stage statistics used by the compression info report.
    """
    from ..encoding.lz77 import lz_compress

    book, encoded, avg_bitlen = _huffman_encode_stream(
        symbols, alphabet_size, chunk_size, aligned=builder.version >= 3
    )
    stats = {
        "avg_bitlen": avg_bitlen,
        "payload_bytes": float(encoded.payload_bytes),
        "metadata_bytes": float(encoded.metadata_bytes),
    }
    if lz_stage:
        with tel.span("huffman.lz", bytes_in=int(encoded.payload_bytes)) as sp:
            packed = lz_compress(encoded.payload.tobytes())
            sp.set(bytes_out=len(packed))
        if len(packed) < encoded.payload_bytes:
            builder.add_bytes(f"{prefix}.cb", book.serialized())
            builder.add_bytes(f"{prefix}.lz", packed)
            builder.add_array(f"{prefix}.cbits", encoded.chunk_bits)
            if encoded.chunk_offsets is not None:
                builder.add_array(f"{prefix}.idx", encoded.chunk_offsets)
            stats["lz_bytes"] = float(len(packed))
            return stats
        stats["lz_skipped"] = 1.0
    _add_huffman_group(builder, prefix, book, encoded)
    return stats


def read_huffman_sections(
    reader: ArchiveReader,
    n_symbols: int,
    chunk_size: int,
    prefix: str = "q",
    out_dtype=np.uint16,
    sparse_codebook: bool = False,
    engine=None,
) -> np.ndarray:
    """Decode a Huffman section group written by :func:`emit_huffman_sections`.

    ``engine`` (a :class:`~repro.engine.core.CompressionEngine`) fans the
    decode out across workers when the stream carries sync points
    (``<prefix>.idx``, format v3): chunk groups are self-contained, decode
    concurrently, and are concatenated in submission order -- the output is
    byte-identical to the serial decode.
    """
    raw_book = reader.get_bytes(f"{prefix}.cb")
    if sparse_codebook:
        book = CanonicalCodebook.deserialized_sparse(raw_book)
    else:
        book = CanonicalCodebook.deserialized(raw_book)
    if reader.has(f"{prefix}.lz"):
        from ..encoding.lz77 import lz_decompress

        with tel.span("huffman.lz_decode") as sp:
            payload = np.frombuffer(
                lz_decompress(reader.get_bytes(f"{prefix}.lz")), dtype=np.uint8
            )
            sp.set(bytes_out=int(payload.nbytes))
    else:
        payload = reader.get_array(f"{prefix}.bits")
    chunk_bits = reader.get_array(f"{prefix}.cbits")
    chunk_offsets = None
    if reader.has(f"{prefix}.idx"):
        chunk_offsets = reader.get_array(f"{prefix}.idx")
        # Sync points are derivable from the chunk bit lengths; cross-check
        # them so a corrupted offset fails loudly instead of desynchronizing
        # a chunk group.
        byte_lens = (chunk_bits.astype(np.int64) + 7) >> 3
        expected = np.concatenate(([0], np.cumsum(byte_lens)[:-1]))
        if chunk_offsets.size != chunk_bits.size or not np.array_equal(
            chunk_offsets.astype(np.int64), expected
        ):
            raise ArchiveError(
                f"section {prefix}.idx: sync points disagree with chunk bit lengths"
            )
    encoded = HuffmanEncoded(
        payload=payload,
        chunk_bits=chunk_bits,
        n_symbols=n_symbols,
        chunk_size=chunk_size,
        chunk_offsets=chunk_offsets,
    )
    table = cached_decode_table(book)
    with tel.span("huffman.decode", bytes_in=int(payload.nbytes)) as sp:
        out = _decode_stream(encoded, book, out_dtype, table, engine)
        sp.set(bytes_out=int(out.nbytes))
    return out


def _decode_stream(encoded, book, out_dtype, table, engine):
    """Serial decode, or sync-point-parallel decode when an engine is given."""
    n_chunks = int(encoded.chunk_bits.size)
    if (
        engine is None
        or encoded.chunk_offsets is None
        or n_chunks < 2 * _MIN_CHUNKS_PER_GROUP
        or getattr(engine, "jobs", 1) < 2
    ):
        return huff_decode(encoded, book, out_dtype=out_dtype, table=table)
    n_groups = min(engine.jobs, n_chunks // _MIN_CHUNKS_PER_GROUP)
    groups = split_chunk_groups(encoded, n_groups)
    if getattr(engine, "backend", None) == "process":
        # A decode LUT is big and rebuildable; let each worker process build
        # (and cache) its own from the codebook instead of pickling ours.
        table = None
    futures = [
        engine.run(huff_decode, g, book, out_dtype=out_dtype, table=table)
        for g in groups
    ]
    return np.concatenate([f.result() for f in futures])


def emit_rle_sections(
    quant: np.ndarray,
    config: CompressorConfig,
    builder: ArchiveBuilder,
    with_vle: bool,
) -> dict[str, float]:
    """RLE-encode the quant stream; optionally VLE the run values.

    Sections: ``r.len`` (raw run lengths), and either ``r.val`` (raw run
    values) or the ``rv.*`` Huffman group over run values.
    """
    with tel.span("rle.encode", bytes_in=int(quant.nbytes)) as sp:
        rle = rle_encode(quant.reshape(-1), length_dtype=np.dtype(config.rle_length_dtype))
        sp.set(bytes_out=int(rle.values.nbytes + rle.lengths.nbytes), n_runs=rle.n_runs)
    stats: dict[str, float] = {
        "n_runs": float(rle.n_runs),
        "mean_run_length": rle.mean_run_length,
    }
    if with_vle:
        # VLE over run values (dense 1024-symbol codebook).  The codebook is
        # a fixed cost; for short run streams it can exceed the raw values
        # outright, so VLE only replaces raw when it actually shrinks.
        with tel.span("rle.vle_values", bytes_in=int(rle.values.nbytes)):
            book, encoded, avg_bitlen = _huffman_encode_stream(
                rle.values, config.dict_size, config.huffman_chunk,
                aligned=builder.version >= 3,
            )
        if _huffman_group_bytes(book.serialized(), encoded) < rle.values.nbytes:
            _add_huffman_group(builder, "rv", book, encoded)
            stats["vle_avg_bitlen"] = avg_bitlen
            stats["vle_payload_bytes"] = float(encoded.payload_bytes)
        else:
            builder.add_array("r.val", rle.values)
            stats["vle_skipped"] = 1.0
        # VLE over run lengths (sparse codebook -- the 16-bit length alphabet
        # is huge but only a few dozen distinct lengths occur).  Run lengths
        # are heavily skewed, so this typically roughly halves the metadata,
        # which is where Table IV's >2x RLE+VLE gains come from.
        length_alphabet = int(np.iinfo(rle.lengths.dtype).max) + 1
        with tel.span("rle.vle_lengths", bytes_in=int(rle.lengths.nbytes)):
            lbook, lencoded, lavg = _huffman_encode_stream(
                rle.lengths.astype(np.uint32), length_alphabet, config.huffman_chunk,
                aligned=builder.version >= 3,
            )
        if _huffman_group_bytes(lbook.serialized_sparse(), lencoded) < rle.lengths.nbytes:
            _add_huffman_group(builder, "rl", lbook, lencoded, sparse_codebook=True)
            stats["vle_len_avg_bitlen"] = lavg
        else:
            builder.add_array("r.len", rle.lengths)
    else:
        builder.add_array("r.val", rle.values)
        builder.add_array("r.len", rle.lengths)
    return stats


def read_rle_sections(
    reader: ArchiveReader,
    n_symbols: int,
    n_runs: int,
    config: CompressorConfig,
    quant_dtype=np.uint16,
    engine=None,
) -> np.ndarray:
    """Invert :func:`emit_rle_sections` back to the flat quant stream."""
    if reader.has("r.len"):
        lengths = reader.get_array("r.len")
    else:
        lengths = read_huffman_sections(
            reader, n_runs, config.huffman_chunk, prefix="rl",
            out_dtype=np.dtype(config.rle_length_dtype), sparse_codebook=True,
            engine=engine,
        )
    if lengths.size != n_runs:
        raise ArchiveError(
            f"run-length metadata has {lengths.size} runs, header says {n_runs}"
        )
    if reader.has("r.val"):
        values = reader.get_array("r.val")
    else:
        values = read_huffman_sections(
            reader, n_runs, config.huffman_chunk, prefix="rv", out_dtype=quant_dtype,
            engine=engine,
        )
    rle = RunLengthEncoded(values=values, lengths=lengths, n_symbols=n_symbols)
    with tel.span("rle.decode", bytes_in=int(values.nbytes + lengths.nbytes)) as sp:
        out = rle_decode(rle, out_dtype=quant_dtype)
        sp.set(bytes_out=int(out.nbytes))
    return out
