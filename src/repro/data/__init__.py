"""Datasets: synthetic SDRBench stand-ins, field containers, flat binary I/O."""

from .datasets import DATASETS, DatasetSpec, get_dataset
from .fields import Field
from .io import load_binary, save_binary

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "get_dataset",
    "Field",
    "load_binary",
    "save_binary",
]
