"""Registry of the seven evaluation datasets (paper Table III), synthetic.

Each dataset mirrors its SDRBench counterpart's dimensionality and paper
shape; the materialized arrays are scaled down to laptop size (MBs), while
:attr:`Field.paper_shape` carries the full size for the simulated kernel
timings.  Field generators are parametrized so their quant-code statistics
land in the paper's compressibility regimes -- for the CESM fields of
Table IV, the plume density is derived from each field's published RLE
compression ratio via the empirically measured density->ratio map (see
``_plume_params``); the correspondence is regime-level, not cell-exact
(EXPERIMENTS.md discusses fidelity per table).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field as dc_field
from typing import Callable

import numpy as np

from ..core.errors import ConfigError
from . import synthetic as syn
from .fields import Field

__all__ = ["DatasetSpec", "DATASETS", "get_dataset", "TABLE4_CESM_TARGETS"]


def _seed(dataset: str, name: str) -> int:
    """Stable per-field seed (crc32 of the qualified name)."""
    return zlib.crc32(f"{dataset}/{name}".encode()) & 0x7FFFFFFF


@dataclass
class DatasetSpec:
    """One evaluation dataset: shapes, description, and field makers."""

    name: str
    description: str
    paper_shape: tuple[int, ...]
    scaled_shape: tuple[int, ...]
    paper_size_mb: float
    makers: dict[str, Callable[[tuple[int, ...], np.random.Generator], np.ndarray]]
    example: str | None = None
    _cache: dict[str, Field] = dc_field(default_factory=dict, repr=False)

    @property
    def ndim(self) -> int:
        return len(self.paper_shape)

    @property
    def field_names(self) -> list[str]:
        return list(self.makers)

    def field(self, name: str) -> Field:
        """Materialize (and cache) one field."""
        if name not in self.makers:
            raise ConfigError(f"dataset {self.name!r} has no field {name!r}")
        if name not in self._cache:
            rng = np.random.default_rng(_seed(self.name, name))
            data = self.makers[name](self.scaled_shape, rng)
            assert data.shape == self.scaled_shape, (self.name, name)
            self._cache[name] = Field(
                name=name, dataset=self.name, data=data, paper_shape=self.paper_shape
            )
        return self._cache[name]

    def fields(self, limit: int | None = None) -> list[Field]:
        names = self.field_names[:limit] if limit else self.field_names
        return [self.field(n) for n in names]

    def example_field(self) -> Field:
        """The field the paper uses for single-field demonstrations."""
        return self.field(self.example or self.field_names[0])


# ---------------------------------------------------------------------------
# CESM-ATM: Table IV's 35 fields, parametrized from their published RLE CRs.
# ---------------------------------------------------------------------------

#: Paper Table IV at eb=1e-2: field -> (qhg ref, qh VLE, RLE, RLE+VLE).
TABLE4_CESM_TARGETS: dict[str, tuple[float, float, float, float]] = {
    "AEROD_v": (94.27, 25.06, 10.46, 30.33),
    "FLNTC": (56.95, 23.66, 8.87, 25.35),
    "FLUTC": (57.06, 23.66, 8.91, 25.46),
    "FSDSC": (58.30, 23.88, 26.10, 71.35),
    "FSDTOA": (430.61, 26.10, 43.65, 119.17),
    "FSNSC": (51.73, 23.44, 10.11, 29.46),
    "FSNTC": (60.35, 23.88, 12.33, 35.50),
    "FSNTOAC": (111.63, 25.06, 12.46, 35.84),
    "ICEFRAC": (159.18, 25.31, 16.57, 50.39),
    "LANDFRAC": (97.15, 23.66, 13.98, 40.50),
    "OCNFRAC": (89.55, 23.88, 11.23, 32.55),
    "ODV_bcar1": (189.28, 25.83, 37.28, 110.51),
    "ODV_bcar2": (197.32, 25.83, 30.71, 89.98),
    "ODV_dust1": (242.89, 26.10, 22.91, 67.72),
    "ODV_dust2": (319.55, 26.37, 24.02, 70.98),
    "ODV_dust3": (270.50, 26.10, 33.29, 98.22),
    "ODV_dust4": (230.40, 26.10, 46.81, 139.27),
    "ODV_ocar1": (65.81, 24.11, 41.17, 121.59),
    "ODV_ocar2": (64.92, 24.11, 33.79, 98.63),
    "PHIS": (98.86, 25.06, 9.51, 28.87),
    "PRECSC": (176.21, 25.83, 19.50, 58.92),
    "PRECSL": (142.23, 25.57, 15.39, 45.69),
    "PSL": (83.13, 24.34, 12.43, 36.32),
    "PS": (98.59, 21.09, 7.45, 22.27),
    "SNOWHICE": (144.74, 25.31, 15.14, 45.53),
    "SNOWHLND": (184.39, 25.57, 21.18, 63.33),
    "SOLIN": (430.62, 26.10, 43.65, 119.17),
    "TAUX": (100.30, 25.06, 11.30, 33.28),
    "TAUY": (106.55, 25.31, 12.40, 36.45),
    "TREFHT": (82.50, 24.58, 8.75, 25.12),
    "TREFMXAV": (87.39, 24.58, 9.60, 27.33),
    "TROP_P": (93.78, 24.82, 11.19, 31.40),
    "TROP_T": (92.94, 24.82, 11.10, 30.64),
    "TROP_Z": (84.81, 24.58, 9.48, 27.07),
    "TSMX": (64.95, 23.88, 8.55, 24.69),
}


def _plume_params(target_rle_cr: float) -> tuple[int, float]:
    """Invert the measured plume-coverage -> RLE-CR map.

    Sweeping ``plume_field`` on the scaled CESM grid shows the RLE ratio
    tracks the total plume *coverage* ``n * scale^2`` as
    ``CR ~= 4050 * coverage^-0.737``; solve for the coverage and split it
    into at least two plumes (a single plume leaves whole-row runs that
    overshoot the target badly).
    """
    coverage = (4050.0 / target_rle_cr) ** (1.0 / 0.737)
    n = max(2, int(round(coverage / 400.0)))
    scale = float(np.clip(np.sqrt(coverage / n), 4.0, 26.0))
    return n, scale


def _measured_rle_cr(f: np.ndarray) -> float:
    """Quick estimate of the field's Workflow-RLE ratio at rel eb=1e-2.

    Mean quant-code run length equals the RLE ratio when one (value, count)
    tuple costs the same 32 bits as one float32 element.
    """
    from ..core.config import CompressorConfig
    from ..core.dual_quant import quantize_field

    bundle, _ = quantize_field(f, CompressorConfig(eb=1e-2))
    flat = bundle.quant.reshape(-1)
    runs = int(np.count_nonzero(flat[1:] != flat[:-1])) + 1
    return flat.size / runs


#: The remaining CESM-ATM fields of the paper's 77 (Table I averages over
#: all of them; Table IV lists only the 35 where RLE wins or nearly wins).
#: Each is assigned an archetype: plume (optical depths, condensates),
#: smooth (state variables), or windy (smooth + fine turbulence).
EXTRA_CESM_FIELDS: dict[str, tuple[str, float]] = {
    # name: (archetype, knob) -- plume: target run length; smooth: feature
    # scale in pixels; windy: feature scale (detail fixed).
    "CLDHGH": ("plume", 9.0),
    "CLDLOW": ("plume", 7.0),
    "CLDMED": ("plume", 8.0),
    "CLDTOT": ("plume", 6.0),
    "FLDS": ("smooth", 35.0),
    "FLNS": ("smooth", 25.0),
    "FLNSC": ("smooth", 30.0),
    "FLNT": ("smooth", 28.0),
    "FLUT": ("smooth", 26.0),
    "FSDS": ("plume", 12.0),
    "FSNS": ("plume", 10.0),
    "FSNT": ("smooth", 24.0),
    "FSNTOA": ("smooth", 26.0),
    "LHFLX": ("windy", 12.0),
    "OMEGA500": ("windy", 10.0),
    "PBLH": ("windy", 14.0),
    "PRECC": ("plume", 16.0),
    "PRECL": ("plume", 13.0),
    "PRECT": ("plume", 12.0),
    "Q200": ("smooth", 40.0),
    "Q500": ("smooth", 30.0),
    "Q850": ("smooth", 22.0),
    "QREFHT": ("smooth", 20.0),
    "RELHUM500": ("windy", 16.0),
    "SHFLX": ("windy", 12.0),
    "SNOWH": ("plume", 15.0),
    "SOLL": ("plume", 11.0),
    "SOLS": ("plume", 11.0),
    "T200": ("smooth", 45.0),
    "T500": ("smooth", 38.0),
    "T850": ("smooth", 30.0),
    "TGCLDIWP": ("plume", 8.0),
    "TGCLDLWP": ("plume", 7.0),
    "TMQ": ("smooth", 24.0),
    "TS": ("smooth", 20.0),
    "U10": ("windy", 14.0),
    "U200": ("windy", 22.0),
    "U850": ("windy", 16.0),
    "UBOT": ("windy", 12.0),
    "V200": ("windy", 22.0),
    "V850": ("windy", 16.0),
    "VBOT": ("windy", 12.0),
}


def _extra_cesm_maker(archetype: str, knob: float):
    def make(shape, rng):
        if archetype == "plume":
            coverage = (4050.0 / knob) ** (1.0 / 0.737)
            n = max(2, int(round(coverage / 400.0)))
            scale = float(np.clip(np.sqrt(coverage / n), 4.0, 26.0))
            f = syn.plume_field(shape, n, scale, rng)
        elif archetype == "smooth":
            f = syn.smooth_field(shape, feature_scale=knob, rng=rng)
        else:  # windy: smooth flow + fine-scale turbulence
            f = syn.smooth_field(shape, feature_scale=knob, rng=rng, detail_amp=0.04)
        return (f + rng.normal(0, 3.5e-4, shape)).astype(np.float32)

    return make


def _cesm_maker(field_name: str):
    target = TABLE4_CESM_TARGETS[field_name][2]

    def make(shape, rng):
        # Closed-loop shaping: plume placement is random enough that the
        # open-loop coverage fit scatters ~2x, so adjust coverage against
        # the measured run length a few times (each pass is ~30 ms).
        coverage = (4050.0 / target) ** (1.0 / 0.737)
        f = None
        for attempt in range(4):
            n = max(2, int(round(coverage / 400.0)))
            scale = float(np.clip(np.sqrt(coverage / n), 4.0, 26.0))
            f = syn.plume_field(shape, n, scale, np.random.default_rng(rng.integers(2**31)))
            measured = _measured_rle_cr(f)
            ratio = measured / target
            if 0.8 < ratio < 1.25:
                break
            coverage *= ratio ** (1.0 / 0.737)
        # Fine-scale texture well below the 1e-2 quantization step (so the
        # Table IV RLE regime is untouched) but visible at 1e-3/1e-4, where
        # it sets realistic quant-code entropy (Table I's tight-bound rows).
        return (f + rng.normal(0, 3.5e-4, shape)).astype(np.float32)

    return make


# ---------------------------------------------------------------------------
# Other datasets
# ---------------------------------------------------------------------------


def _hacc_position(shape, rng):
    return syn.particle_positions(shape[0], rng)


def _hacc_velocity(shape, rng):
    return syn.particle_velocities(shape[0], rng)


def _nyx_density(shape, rng):
    # Log-normal density: huge dynamic range, vast near-zero voids -- the
    # reason Nyx baryon_density hits CR > 100 with Workflow-RLE (Table V).
    # Closed-loop on the log-density amplitude: a larger exponent deepens
    # the voids below the quantization step, lengthening zero runs; tuned
    # until the quant-run statistics match Table V's 122.7x (the 128^3 grid
    # has relatively 4x thicker void boundaries than the paper's 512^3).
    # The additive noise floor is ~8e-5 of the range: sub-step at eb=1e-2
    # (voids stay exact zero runs), visible at 1e-4.
    target = 122.7
    base = syn.smooth_field(shape, feature_scale=6.0, rng=rng)
    k = 2.5
    f = None
    for _ in range(5):
        f = np.exp(k * base)
        measured = _measured_rle_cr(f.astype(np.float32))
        ratio = measured / target
        if 0.8 < ratio < 1.25:
            break
        # ln(CR) grows ~1.76 per unit exponent (measured on this grid).
        k = float(np.clip(k - np.log(ratio) / 1.76, 1.0, 8.0))
    return (f + rng.normal(0, 8e-5 * float(f.max()), shape)).astype(np.float32)


def _nyx_temperature(shape, rng):
    base = syn.smooth_field(shape, feature_scale=5.0, rng=rng)
    f = 1e4 * np.exp(1.5 * base)
    return (f + rng.normal(0, 8e-5 * float(f.max()), shape)).astype(np.float32)


def _nyx_velocity(shape, rng):
    return (syn.smooth_field(shape, feature_scale=4.0, rng=rng, detail_amp=0.02) * 3e7).astype(
        np.float32
    )


def _hurricane_smooth(scale, amp=1.0, detail=0.0):
    def make(shape, rng):
        return (syn.smooth_field(shape, scale, rng, detail_amp=detail) * amp).astype(
            np.float32
        )

    return make


def _hurricane_cloud(shape, rng):
    f = syn.plume_field(shape, n_plumes=30, plume_scale=6.0, rng=rng, amplitude=0.002)
    return np.maximum(f - 3e-4, 0.0).astype(np.float32)


def _hurricane_condensate(n_plumes):
    """Hydrometeor mixing ratios: sparse 3-D condensate shells."""

    def make(shape, rng):
        f = syn.plume_field(shape, n_plumes=n_plumes, plume_scale=5.0, rng=rng,
                            amplitude=1e-3)
        return np.maximum(f - 1e-4, 0.0).astype(np.float32)

    return make


def _rtm_snapshot(wavelength, target_rle_cr=76.0):
    def make(shape, rng):
        # Closed-loop on the beam angle: the active wavefront fraction sets
        # the quant-code run length, targeted at Table V's RTM ratio.
        cone = 0.6
        f = None
        for _ in range(5):
            f = syn.wave_snapshot(
                shape, wavelength, np.random.default_rng(rng.integers(2**31)),
                shell_radius=0.35, shell_width=0.015, cone_halfangle=cone,
            )
            measured = _measured_rle_cr(f)
            ratio = measured / target_rle_cr
            if 0.8 < ratio < 1.25:
                break
            cone = float(np.clip(cone * np.sqrt(ratio), 0.08, 2.5))
        return (f + rng.normal(0, 4e-4, shape)).astype(np.float32)

    return make


def _miranda_shock(sharpness, scale=8.0):
    def make(shape, rng):
        f = syn.shock_field(shape, feature_scale=scale, shock_sharpness=sharpness, rng=rng)
        return (f + rng.normal(0, 4e-4, shape)).astype(np.float32)

    return make


def _qmc_orbital(n_plumes):
    def make(shape, rng):
        f = syn.plume_field(shape, n_plumes=n_plumes, plume_scale=5.0, rng=rng)
        return (f + rng.normal(0, 5e-4, shape)).astype(np.float32)

    return make


DATASETS: dict[str, DatasetSpec] = {
    "HACC": DatasetSpec(
        name="HACC",
        description="1D cosmology particle simulation (positions + velocities)",
        paper_shape=(280_953_867,),
        scaled_shape=(2_097_152,),
        paper_size_mb=1071.75,
        example="vx",
        makers={
            "x": _hacc_position,
            "y": _hacc_position,
            "z": _hacc_position,
            "vx": _hacc_velocity,
            "vy": _hacc_velocity,
            "vz": _hacc_velocity,
        },
    ),
    "CESM": DatasetSpec(
        name="CESM",
        description="2D CESM-ATM climate simulation (Table IV's 35 fields)",
        paper_shape=(1800, 3600),
        scaled_shape=(450, 900),
        paper_size_mb=24.72,
        example="FSDSC",
        makers={
            **{name: _cesm_maker(name) for name in TABLE4_CESM_TARGETS},
            **{
                name: _extra_cesm_maker(arch, knob)
                for name, (arch, knob) in EXTRA_CESM_FIELDS.items()
            },
        },
    ),
    "Hurricane": DatasetSpec(
        name="Hurricane",
        description="3D Hurricane ISABEL simulation",
        paper_shape=(100, 500, 500),
        scaled_shape=(50, 125, 125),
        paper_size_mb=95.37,
        example="Uf48",
        makers={
            "CLOUDf48": _hurricane_cloud,
            "Uf48": _hurricane_smooth(4.0, amp=30.0, detail=0.01),
            "Vf48": _hurricane_smooth(4.0, amp=30.0, detail=0.01),
            "Wf48": _hurricane_smooth(3.0, amp=5.0, detail=0.02),
            "TCf48": _hurricane_smooth(6.0, amp=20.0),
            "Pf48": _hurricane_smooth(8.0, amp=500.0),
            "PRECIPf48": lambda shape, rng: syn.plume_field(
                shape, n_plumes=40, plume_scale=5.0, rng=rng, amplitude=0.01
            ),
            "QVAPORf48": _hurricane_smooth(5.0, amp=0.02),
            "QCLOUDf48": _hurricane_condensate(28),
            "QICEf48": _hurricane_condensate(18),
            "QRAINf48": _hurricane_condensate(36),
            "QSNOWf48": _hurricane_condensate(22),
            "QGRAUPf48": _hurricane_condensate(12),
        },
    ),
    "Nyx": DatasetSpec(
        name="Nyx",
        description="3D Nyx cosmology simulation",
        paper_shape=(512, 512, 512),
        scaled_shape=(128, 128, 128),
        paper_size_mb=512.0,
        example="baryon_density",
        makers={
            "baryon_density": _nyx_density,
            "dark_matter_density": _nyx_density,
            "temperature": _nyx_temperature,
            "velocity_x": _nyx_velocity,
            "velocity_y": _nyx_velocity,
            "velocity_z": _nyx_velocity,
        },
    ),
    "RTM": DatasetSpec(
        name="RTM",
        description="3D seismic-wave reverse-time-migration snapshots",
        paper_shape=(449, 449, 235),
        scaled_shape=(112, 112, 59),
        paper_size_mb=180.72,
        example="snapshot2800",
        makers={
            "snapshot2800": _rtm_snapshot(18.0),
            "snapshot2850": _rtm_snapshot(16.0),
            "snapshot2900": _rtm_snapshot(14.0),
        },
    ),
    "Miranda": DatasetSpec(
        name="Miranda",
        description="3D Miranda radiation hydrodynamics (double converted to float)",
        paper_shape=(256, 384, 384),
        scaled_shape=(64, 96, 96),
        paper_size_mb=144.0,
        example="density",
        makers={
            "density": _miranda_shock(2.0),
            "pressure": _miranda_shock(1.5),
            "diffusivity": _miranda_shock(3.0, scale=6.0),
            "viscocity": _miranda_shock(3.5, scale=6.0),
            "velocityx": _miranda_shock(1.0),
            "velocityy": _miranda_shock(1.0),
            "velocityz": _miranda_shock(1.0),
        },
    ),
    "QMCPACK": DatasetSpec(
        name="QMCPACK",
        description="Quantum Monte Carlo orbitals (4D reinterpreted as 3D)",
        paper_shape=(288 * 115, 69, 69),
        scaled_shape=(414, 69, 69),
        paper_size_mb=601.52,
        example="preconditioned",
        makers={
            "preconditioned": _qmc_orbital(160),
            "raw": _qmc_orbital(320),
        },
    ),
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec (case-insensitive prefix match allowed)."""
    for key, ds in DATASETS.items():
        if key.lower() == name.lower():
            return ds
    matches = [ds for key, ds in DATASETS.items() if key.lower().startswith(name.lower())]
    if len(matches) == 1:
        return matches[0]
    raise ConfigError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
