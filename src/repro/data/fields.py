"""Field container binding data to its dataset context.

A :class:`Field` couples the actually-materialized (scaled-down) array with
the *paper-scale* shape it stands in for.  Simulated kernel timings profile
at ``paper_elements`` (see :mod:`repro.kernels.common`); compression-ratio
measurements use the materialized data directly, since ratios are
size-intensive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Field"]


@dataclass
class Field:
    """One named field of a dataset."""

    name: str
    dataset: str
    data: np.ndarray
    paper_shape: tuple[int, ...]

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def paper_elements(self) -> int:
        return int(np.prod(self.paper_shape))

    @property
    def paper_bytes(self) -> int:
        return self.paper_elements * self.data.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Field({self.dataset}/{self.name}, shape={self.shape}, "
            f"paper_shape={self.paper_shape})"
        )
