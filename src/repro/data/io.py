"""SDRBench-style flat binary I/O.

SDRBench distributes fields as headerless little-endian binaries (``.f32`` /
``.f64``) with dimensions documented out of band.  These helpers read/write
that format so real SDRBench downloads drop straight into the pipeline in
place of the synthetic stand-ins.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..core.errors import ConfigError

__all__ = ["load_binary", "save_binary", "infer_dtype"]

_SUFFIX_DTYPES = {".f32": np.float32, ".f64": np.float64, ".d64": np.float64}


def infer_dtype(path: str | os.PathLike) -> np.dtype:
    """Guess the element dtype from the SDRBench file suffix."""
    suffix = Path(path).suffix.lower()
    try:
        return np.dtype(_SUFFIX_DTYPES[suffix])
    except KeyError:
        raise ConfigError(
            f"cannot infer dtype from suffix {suffix!r}; pass dtype explicitly"
        ) from None


def load_binary(
    path: str | os.PathLike,
    shape: tuple[int, ...],
    dtype=None,
) -> np.ndarray:
    """Load a headerless binary field and reshape to ``shape`` (C order)."""
    dtype = np.dtype(dtype) if dtype is not None else infer_dtype(path)
    raw = np.fromfile(path, dtype=dtype.newbyteorder("<"))
    expected = int(np.prod(shape))
    if raw.size != expected:
        raise ConfigError(
            f"{path}: file has {raw.size} elements, shape {shape} needs {expected}"
        )
    return raw.reshape(shape).astype(dtype)


def save_binary(path: str | os.PathLike, data: np.ndarray) -> None:
    """Write a field as a headerless little-endian binary (C order)."""
    arr = np.ascontiguousarray(data)
    arr.astype(arr.dtype.newbyteorder("<")).tofile(path)
