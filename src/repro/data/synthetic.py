"""Synthetic scientific-field generators.

These stand in for the SDRBench datasets (see DESIGN.md Section 2).  Each
generator controls the statistics that drive compressibility under the
Lorenzo + quantization pipeline:

* **feature scale** (``smooth_field``'s correlation length) sets the local
  gradient magnitude, hence the quant-code zero fraction / run lengths;
* **plateaus** (``plateau_field``) create the exactly-constant regions of
  mask-like climate fields (LANDFRAC, ICEFRAC) that make RLE win;
* **sparse plumes** (``plume_field``) mimic aerosol/optical-depth fields
  (ODV_*) that are near-zero almost everywhere;
* **particles** (``particle_positions``/``particle_velocities``) mimic HACC's
  1-D coordinate/velocity streams;
* **shock fronts** (``shock_field``) add the sharp features of hydrodynamics
  and cosmology fields (Nyx, Miranda, RTM) that generate outliers.

All generators take an explicit :class:`numpy.random.Generator` and are
deterministic given its state.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "smooth_field",
    "plateau_field",
    "plume_field",
    "shock_field",
    "particle_positions",
    "particle_velocities",
    "wave_snapshot",
]


def smooth_field(
    shape: tuple[int, ...],
    feature_scale: float,
    rng: np.random.Generator,
    detail_amp: float = 0.0,
) -> np.ndarray:
    """Gaussian-process-like field with a given correlation length.

    White noise smoothed by a Gaussian kernel of width ``feature_scale``
    (pixels), normalized to zero mean / unit std, plus optional fine-grained
    ``detail_amp`` white noise (sub-quantization texture).
    """
    noise = rng.standard_normal(shape)
    base = ndimage.gaussian_filter(noise, sigma=feature_scale, mode="wrap")
    std = base.std()
    if std > 0:
        base /= std
    if detail_amp > 0.0:
        base = base + detail_amp * rng.standard_normal(shape)
    return base.astype(np.float32)


def plateau_field(
    shape: tuple[int, ...],
    n_regions: int,
    levels: int,
    rng: np.random.Generator,
    background: float = 0.0,
    detail_amp: float = 0.0,
) -> np.ndarray:
    """Piecewise-constant rectangles over a flat background.

    Mimics categorical/mask-like climate fields: large exactly-constant
    regions whose quant-codes are long zero runs.
    """
    out = np.full(shape, background, dtype=np.float32)
    sizes = np.asarray(shape)
    for _ in range(n_regions):
        lo = [rng.integers(0, max(s - 1, 1)) for s in sizes]
        extent = [max(int(s * rng.uniform(0.05, 0.5)), 1) for s in sizes]
        slicer = tuple(slice(l, min(l + e, s)) for l, e, s in zip(lo, extent, sizes))
        out[slicer] = float(rng.integers(0, levels)) / max(levels - 1, 1)
    if detail_amp > 0.0:
        out = out + detail_amp * rng.standard_normal(shape).astype(np.float32)
    return out


def plume_field(
    shape: tuple[int, ...],
    n_plumes: int,
    plume_scale: float,
    rng: np.random.Generator,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Sparse localized bumps on a zero background (aerosol/ODV-like).

    Almost everywhere exactly zero after quantization -- the fields where
    Workflow-RLE shines (Table IV's ODV rows).
    """
    out = np.zeros(shape, dtype=np.float64)
    sizes = np.asarray(shape)
    grids = np.meshgrid(*[np.arange(s, dtype=np.float64) for s in shape], indexing="ij")
    for _ in range(n_plumes):
        center = [rng.uniform(0, s) for s in sizes]
        width = plume_scale * rng.uniform(0.5, 1.5)
        d2 = sum((g - c) ** 2 for g, c in zip(grids, center))
        out += amplitude * rng.uniform(0.2, 1.0) * np.exp(-d2 / (2 * width**2))
    return out.astype(np.float32)


def shock_field(
    shape: tuple[int, ...],
    feature_scale: float,
    shock_sharpness: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Smooth field passed through tanh to create front-like jumps.

    Mimics hydrodynamics densities (Miranda, Nyx): mostly smooth with sharp
    interfaces that become quantization outliers at tight bounds.
    """
    base = smooth_field(shape, feature_scale, rng)
    return np.tanh(shock_sharpness * base).astype(np.float32)


def particle_positions(n: int, rng: np.random.Generator, box: float = 256.0) -> np.ndarray:
    """HACC-like particle coordinates: clustered positions in a periodic box.

    Particles are laid out in the code's memory order, which follows spatial
    locality (nearby particles adjacent), so the 1-D Lorenzo predictor sees
    small increments -- matching why HACC position fields compress at all.
    """
    n_clusters = max(n // 4096, 1)
    centers = rng.uniform(0, box, n_clusters)
    sizes = rng.multinomial(n, np.full(n_clusters, 1.0 / n_clusters))
    chunks = [
        np.sort(c + rng.normal(0, box / 64, s)) % box
        for c, s in zip(centers, sizes)
        if s > 0
    ]
    out = np.concatenate(chunks)[:n]
    # Sub-percent positional jitter: invisible at coarse bounds, it provides
    # the fine-scale texture that keeps tight-bound (1e-3/1e-4) entropy
    # realistic (Table I's qg/qh columns).
    out = out + rng.uniform(-1.0, 1.0, out.shape) * (0.005 * box)
    return out.astype(np.float32)


def particle_velocities(n: int, rng: np.random.Generator, sigma: float = 300.0) -> np.ndarray:
    """HACC-like velocities: correlated bulk flow + thermal dispersion.

    The bulk component is smooth along memory order (cluster-coherent), the
    dispersion is white -- together they give the moderately-compressible
    statistics of vx/vy/vz.
    """
    bulk = smooth_field((n,), feature_scale=2048.0, rng=rng) * sigma
    thermal = rng.normal(0, sigma / 60, n)
    return (bulk + thermal).astype(np.float32)


def wave_snapshot(
    shape: tuple[int, ...],
    wavelength: float,
    rng: np.random.Generator,
    shell_radius: float = 0.45,
    shell_width: float = 0.07,
    cone_halfangle: float | None = None,
) -> np.ndarray:
    """RTM-like seismic wavefield: an expanding oscillatory wavefront shell.

    A reverse-time-migration snapshot at a given timestep is a propagating
    shell of oscillation around the source; the bulk of the volume is still
    (near-)quiescent, which is why RTM snapshots are strongly RLE-friendly
    at coarse bounds (Table V's 76x).  ``shell_radius``/``shell_width`` are
    fractions of the domain diagonal.  ``cone_halfangle`` (radians)
    restricts radiation to a directional beam -- at laptop-scale grids the
    shell's surface/volume ratio is ~4x the paper's full grid, so a beam is
    needed to reach the same quiescent fraction.
    """
    grids = np.meshgrid(*[np.arange(s, dtype=np.float64) for s in shape], indexing="ij")
    center = [rng.uniform(0.35 * s, 0.65 * s) for s in shape]
    offsets = [g - c for g, c in zip(grids, center)]
    r = np.sqrt(sum(o**2 for o in offsets))
    rmax = max(float(r.max()), 1.0)
    envelope = np.exp(-(((r - shell_radius * rmax) / (shell_width * rmax)) ** 2))
    if cone_halfangle is not None:
        direction = rng.standard_normal(len(shape))
        direction /= np.linalg.norm(direction)
        safe_r = np.maximum(r, 1e-9)
        cos_angle = sum(o * d for o, d in zip(offsets, direction)) / safe_r
        angle = np.arccos(np.clip(cos_angle, -1.0, 1.0))
        envelope = envelope * np.exp(-((angle / cone_halfangle) ** 2))
    wave = np.sin(2 * np.pi * r / wavelength) * envelope
    return wave.astype(np.float32)
