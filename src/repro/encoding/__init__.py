"""Lossless encodings: canonical Huffman, RLE, bit I/O, DEFLATE reference."""

from .histogram import histogram
from .huffman import CanonicalCodebook, build_codebook
from .huffman_codec import HuffmanEncoded, decode, encode
from .lz77 import lz_compress, lz_decompress
from .parallel_huffman import build_codebook_parallel
from .rle import RunLengthEncoded, rle_decode, rle_encode

__all__ = [
    "histogram",
    "CanonicalCodebook",
    "build_codebook",
    "build_codebook_parallel",
    "HuffmanEncoded",
    "encode",
    "decode",
    "RunLengthEncoded",
    "rle_encode",
    "rle_decode",
    "lz_compress",
    "lz_decompress",
]
