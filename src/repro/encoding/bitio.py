"""Vectorized variable-length bit packing and unpacking.

GPU Huffman encoders write each symbol's codeword at a data-dependent bit
offset computed with a prefix sum over the code lengths; this module does the
same with NumPy.  Packing expands every codeword into its individual bits
(``np.repeat`` over lengths gives each bit its owning symbol, a second prefix
sum gives its position inside the codeword) and then ``np.packbits`` the
result -- no Python-level loop over symbols.

Bit order is MSB-first within each codeword and within each byte, matching
the canonical-Huffman decode tables in :mod:`repro.encoding.huffman`.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import EncodingError

__all__ = [
    "pack_codes",
    "pack_codes_at",
    "unpack_to_bits",
    "peek_bits",
    "bits_to_bytes",
]


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, int]:
    """Concatenate variable-length codewords into a dense bitstream.

    Parameters
    ----------
    codes:
        Per-symbol codewords, right-aligned in a ``uint64`` (the codeword's
        most significant bit is bit ``length - 1``).
    lengths:
        Per-symbol codeword bit lengths (1..64).

    Returns
    -------
    (packed, total_bits):
        ``packed`` is a ``uint8`` array (MSB-first; final byte zero-padded),
        ``total_bits`` the exact number of meaningful bits.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise EncodingError("codes and lengths must have identical shapes")
    if codes.size == 0:
        return np.zeros(0, dtype=np.uint8), 0
    if lengths.min() < 1 or lengths.max() > 64:
        raise EncodingError("code lengths must be in 1..64")
    ends = np.cumsum(lengths)
    total_bits = int(ends[-1])
    starts = ends - lengths
    # Each output bit knows its owning symbol and its index inside the code.
    owner = np.repeat(np.arange(codes.size, dtype=np.int64), lengths)
    pos_in_code = np.arange(total_bits, dtype=np.int64) - np.repeat(starts, lengths)
    shift = (lengths[owner] - 1 - pos_in_code).astype(np.uint64)
    bits = ((codes[owner] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits), total_bits


def pack_codes_at(
    codes: np.ndarray, lengths: np.ndarray, starts: np.ndarray, total_bits: int
) -> np.ndarray:
    """Scatter variable-length codewords at explicit bit offsets.

    Like :func:`pack_codes` but each codeword lands at its own ``starts[i]``
    bit position instead of being densely concatenated; unwritten gaps stay
    zero.  This is how the format-v3 indexed payload byte-aligns every
    chunk: the caller computes per-chunk byte offsets and passes absolute
    per-symbol bit positions.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    if not (codes.shape == lengths.shape == starts.shape):
        raise EncodingError("codes, lengths and starts must have identical shapes")
    if total_bits < 0:
        raise EncodingError(f"total_bits must be >= 0, got {total_bits}")
    if codes.size == 0:
        return np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    if lengths.min() < 1 or lengths.max() > 64:
        raise EncodingError("code lengths must be in 1..64")
    if starts.min() < 0 or int((starts + lengths).max()) > total_bits:
        raise EncodingError("codeword bit span falls outside total_bits")
    code_bits = int(lengths.sum())
    owner = np.repeat(np.arange(codes.size, dtype=np.int64), lengths)
    code_starts = np.cumsum(lengths) - lengths
    pos_in_code = np.arange(code_bits, dtype=np.int64) - np.repeat(code_starts, lengths)
    shift = (lengths[owner] - 1 - pos_in_code).astype(np.uint64)
    bits = np.zeros(total_bits, dtype=np.uint8)
    bits[np.repeat(starts, lengths) + pos_in_code] = (
        (codes[owner] >> shift) & np.uint64(1)
    ).astype(np.uint8)
    return np.packbits(bits)


def unpack_to_bits(packed: np.ndarray, total_bits: int) -> np.ndarray:
    """Expand a packed byte stream back to a 0/1 ``uint8`` bit array."""
    packed = np.asarray(packed, dtype=np.uint8)
    if total_bits < 0 or total_bits > packed.size * 8:
        raise EncodingError(
            f"total_bits {total_bits} inconsistent with {packed.size} packed bytes"
        )
    return np.unpackbits(packed, count=total_bits)


def peek_bits(bits: np.ndarray, positions: np.ndarray, width: int) -> np.ndarray:
    """Read ``width`` bits starting at each of ``positions``, as integers.

    Reads past the end of the stream are zero-padded, mirroring how a GPU
    decoder over-fetches its last word.  Vectorized over positions -- this is
    the primitive behind the lockstep (one-cursor-per-chunk) decoder.
    """
    if not 1 <= width <= 63:
        raise EncodingError(f"peek width must be 1..63, got {width}")
    positions = np.asarray(positions, dtype=np.int64)
    n = bits.shape[0]
    if n == 0:
        # An empty stream is all padding: every window reads as zero.
        return np.zeros(positions.shape, dtype=np.int64)
    idx = positions[:, None] + np.arange(width, dtype=np.int64)[None, :]
    valid = idx < n
    window = np.where(valid, bits[np.minimum(idx, n - 1)], 0).astype(np.int64)
    weights = (np.int64(1) << np.arange(width - 1, -1, -1, dtype=np.int64))
    return window @ weights


def peek_bits_packed(packed: np.ndarray, positions: np.ndarray, width: int) -> np.ndarray:
    """Read ``width`` bits at each bit ``position`` straight from packed bytes.

    Faster than :func:`peek_bits` for repeated peeks: instead of gathering
    ``width`` individual bits it gathers the 8 bytes covering the window and
    shifts -- exactly the word-at-a-time read a GPU decoder performs.  Width
    is limited to 56 so the window always fits the 64-bit accumulator
    regardless of the position's bit phase.
    """
    if not 1 <= width <= 56:
        raise EncodingError(f"packed peek width must be 1..56, got {width}")
    padded = np.concatenate([np.asarray(packed, dtype=np.uint8),
                             np.zeros(8, dtype=np.uint8)])
    return peek_bits_prepadded(padded, positions, width)


def peek_bits_prepadded(padded: np.ndarray, positions: np.ndarray, width: int) -> np.ndarray:
    """:func:`peek_bits_packed` over a stream already padded with >= 8 zero
    bytes -- the repeated-peek fast path (no per-call copy).

    Gathers only the bytes the window can actually touch: a ``width``-bit
    read at any bit phase spans at most ``ceil((width + 7) / 8)`` bytes, so
    narrow peeks (the decode table's fast level) cost 2-3 gathers instead
    of 8.
    """
    positions = np.asarray(positions, dtype=np.int64)
    byte_idx = positions >> 3
    nbytes = (width + 14) // 8  # covers width bits at any of the 8 phases
    acc = np.zeros(positions.shape, dtype=np.uint64)
    for k in range(nbytes):
        acc = (acc << np.uint64(8)) | padded[byte_idx + k].astype(np.uint64)
    phase = (positions & 7).astype(np.uint64)
    shift = np.uint64(nbytes * 8 - width) - phase
    mask = np.uint64((1 << width) - 1)
    return ((acc >> shift) & mask).astype(np.int64)


def bits_to_bytes(total_bits: int) -> int:
    """Number of bytes needed to hold ``total_bits`` bits."""
    return (int(total_bits) + 7) // 8
