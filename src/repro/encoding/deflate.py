"""DEFLATE (gzip-equivalent) stage via the standard library's zlib.

Only the *reference* compression paths use this: the paper's ``qg`` and
``qhg`` columns (Table I, Table IV) append gzip on the host to show the
compression ratio attainable with pattern-finding.  zlib implements the same
DEFLATE algorithm as gzip minus the file header, so ratios are equivalent.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["deflate_bytes", "inflate_bytes", "deflate_array", "deflated_size"]

#: gzip's default compression level, used by CPU-SZ.
DEFAULT_LEVEL = 6


def deflate_bytes(raw: bytes, level: int = DEFAULT_LEVEL) -> bytes:
    """Compress raw bytes with DEFLATE."""
    return zlib.compress(raw, level)


def inflate_bytes(compressed: bytes) -> bytes:
    """Invert :func:`deflate_bytes`."""
    return zlib.decompress(compressed)


def deflate_array(arr: np.ndarray, level: int = DEFAULT_LEVEL) -> bytes:
    """Compress an array's underlying bytes (C order)."""
    return zlib.compress(np.ascontiguousarray(arr).tobytes(), level)


def deflated_size(arr: np.ndarray, level: int = DEFAULT_LEVEL) -> int:
    """Size in bytes of the DEFLATE-compressed array (for ratio accounting)."""
    return len(deflate_array(arr, level))
