"""Histogram of quant-codes (cuSZ compression Step-5).

The GPU kernel uses the replication-based shared-memory histogram of
Gomez-Luna et al. [34]; functionally it is a plain frequency count, which is
what :func:`histogram` computes.  :func:`chunked_histogram` reproduces the
kernel's decomposition -- per-block private histograms followed by a
reduction -- which is useful for validating the kernel cost model and as an
illustration of the GPU algorithm.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import EncodingError

__all__ = ["histogram", "chunked_histogram", "probabilities", "most_likely_probability"]


def histogram(quant: np.ndarray, dict_size: int) -> np.ndarray:
    """Frequencies of each quant-code symbol; shape ``(dict_size,)``."""
    flat = np.asarray(quant).reshape(-1)
    if flat.size and (int(flat.min()) < 0 or int(flat.max()) >= dict_size):
        raise EncodingError("quant-codes outside [0, dict_size)")
    return np.bincount(flat, minlength=dict_size).astype(np.int64)


def chunked_histogram(quant: np.ndarray, dict_size: int, chunk: int = 1 << 15) -> np.ndarray:
    """Histogram via per-chunk private counts + reduction (GPU decomposition).

    Equal to :func:`histogram`; exists to mirror the replication-based GPU
    kernel where each thread block accumulates into a private shared-memory
    copy before a global reduction.
    """
    flat = np.asarray(quant).reshape(-1)
    if flat.size == 0:
        return np.zeros(dict_size, dtype=np.int64)
    n_chunks = (flat.size + chunk - 1) // chunk
    partial = np.zeros((n_chunks, dict_size), dtype=np.int64)
    for b in range(n_chunks):
        seg = flat[b * chunk : (b + 1) * chunk]
        partial[b] = np.bincount(seg, minlength=dict_size)
    return partial.sum(axis=0)


def probabilities(freqs: np.ndarray) -> np.ndarray:
    """Normalize a frequency vector to probabilities (empty-safe)."""
    freqs = np.asarray(freqs, dtype=np.float64)
    total = freqs.sum()
    if total <= 0:
        raise EncodingError("cannot normalize an all-zero histogram")
    return freqs / total


def most_likely_probability(freqs: np.ndarray) -> float:
    """``p1``: probability of the most likely symbol (drives the RLE rule)."""
    return float(probabilities(freqs).max())
