"""Canonical Huffman codebooks over multi-byte quant-code symbols.

cuSZ builds a *canonical* Huffman codebook (compression Step-6) so that the
decoder needs only the code-length sequence, not the tree: canonical codes
of the same length are consecutive integers, assigned in symbol order.  That
property is what makes the GPU decoder a table lookup (and our vectorized
decoder a ``searchsorted``): reading ``max_length`` bits ahead, the numeric
value alone determines both the code length and the symbol index.

The alphabet is the quant-code dictionary (typically 1024 symbols, i.e.
"multi-byte symbols" -- wider than one byte), which is the paper's ``h``
stage as opposed to byte-oriented gzip (``g``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..core.errors import CodebookOverflowError, EncodingError

__all__ = [
    "CanonicalCodebook",
    "DecodeTable",
    "build_code_lengths",
    "build_codebook",
    "build_decode_table",
]


def build_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths from symbol frequencies.

    Standard two-queue/heap construction.  Symbols with zero frequency get
    length 0 (absent from the codebook).  A degenerate one-symbol alphabet
    gets length 1.  Ties are broken deterministically by symbol order so the
    codebook is reproducible across runs.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    nonzero = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if nonzero.size == 0:
        raise EncodingError("cannot build a codebook from an all-zero histogram")
    if nonzero.size == 1:
        lengths[nonzero[0]] = 1
        return lengths
    # Heap of (frequency, tiebreak, node).  Leaves are symbol ids; internal
    # nodes are lists of their leaf symbols.
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in nonzero
    ]
    heapq.heapify(heap)
    tiebreak = int(freqs.size)
    depth = np.zeros(freqs.size, dtype=np.int64)
    while len(heap) > 1:
        fa, _, leaves_a = heapq.heappop(heap)
        fb, _, leaves_b = heapq.heappop(heap)
        merged = leaves_a + leaves_b
        depth[merged] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, merged))
        tiebreak += 1
    if depth.max() > 63:
        # Astronomically skewed inputs could exceed the 64-bit codeword; the
        # practical alphabets here (<= 64k symbols) cannot, but guard anyway.
        raise EncodingError("Huffman code length exceeds 63 bits")
    lengths[nonzero] = depth[nonzero]
    return lengths


@dataclass
class CanonicalCodebook:
    """A canonical Huffman codebook over a fixed-size alphabet.

    Attributes
    ----------
    lengths:
        Per-symbol code length (0 = symbol absent).  This array alone fully
        determines the codebook and is what the archive serializes.
    codes:
        Per-symbol canonical codeword, right-aligned ``uint64``.
    max_length:
        Longest code length.
    sorted_symbols:
        Symbols sorted by (length, symbol) -- the canonical order; decoding
        maps a codeword index straight into this array.
    first_code:
        ``first_code[L]`` = numeric value of the first (smallest) codeword of
        length ``L``.
    first_index:
        ``first_index[L]`` = position in ``sorted_symbols`` of that codeword.
    """

    lengths: np.ndarray
    codes: np.ndarray
    max_length: int
    sorted_symbols: np.ndarray
    first_code: np.ndarray
    first_index: np.ndarray

    @property
    def alphabet_size(self) -> int:
        return int(self.lengths.size)

    def average_bit_length(self, freqs: np.ndarray) -> float:
        """Frequency-weighted mean codeword length ⟨b⟩ for this book."""
        freqs = np.asarray(freqs, dtype=np.float64)
        total = freqs.sum()
        if total <= 0:
            raise EncodingError("empty frequency vector")
        return float((freqs * self.lengths).sum() / total)

    def encoded_bits(self, freqs: np.ndarray) -> int:
        """Exact payload size in bits for data with these frequencies."""
        return int((np.asarray(freqs, dtype=np.int64) * self.lengths).sum())

    def serialized(self) -> bytes:
        """Serialize (just the length table -- canonical codes are implied)."""
        return self.lengths.astype(np.uint8).tobytes()

    @classmethod
    def deserialized(cls, raw: bytes) -> "CanonicalCodebook":
        lengths = np.frombuffer(raw, dtype=np.uint8)
        return _from_lengths(lengths.copy())

    def serialized_sparse(self) -> bytes:
        """Sparse serialization: (alphabet u32, count u32, [symbol u32,
        length u8] pairs).  Wins when few symbols of a large alphabet are
        present -- e.g. Huffman over 16-bit RLE run lengths, where a dense
        64 KiB table would dwarf the payload."""
        symbols = np.flatnonzero(self.lengths > 0).astype(np.uint32)
        header = np.array([self.alphabet_size, symbols.size], dtype=np.uint32)
        return (
            header.tobytes()
            + symbols.tobytes()
            + self.lengths[symbols].astype(np.uint8).tobytes()
        )

    @classmethod
    def deserialized_sparse(cls, raw: bytes) -> "CanonicalCodebook":
        if len(raw) < 8:
            raise EncodingError("sparse codebook truncated")
        alphabet, count = np.frombuffer(raw[:8], dtype=np.uint32)
        expected = 8 + 4 * int(count) + int(count)
        if len(raw) != expected:
            raise EncodingError(
                f"sparse codebook has {len(raw)} bytes, expected {expected}"
            )
        symbols = np.frombuffer(raw[8 : 8 + 4 * int(count)], dtype=np.uint32)
        lens = np.frombuffer(raw[8 + 4 * int(count) :], dtype=np.uint8)
        if int(alphabet) < 1 or int(alphabet) > 1 << 24:
            raise EncodingError(f"sparse codebook: implausible alphabet {alphabet}")
        if symbols.size and int(symbols.max()) >= int(alphabet):
            raise EncodingError("sparse codebook: symbol outside its alphabet")
        if np.unique(symbols).size != symbols.size:
            # Last-write-wins scatter would silently drop entries, yielding a
            # codebook whose length table no longer matches the serialized
            # bytes -- a crafted archive must fail loudly instead.
            raise EncodingError("sparse codebook: duplicate symbol entries")
        lengths = np.zeros(int(alphabet), dtype=np.uint8)
        lengths[symbols.astype(np.int64)] = lens
        return _from_lengths(lengths)

    # -- decode-side helpers -------------------------------------------------

    def decode_boundaries(self, peek_width: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Precomputed tables for value-based decoding at ``peek_width`` bits.

        Returns ``(boundaries, lengths_per_bucket, index_bias)`` where a
        peeked value ``v`` falls in bucket
        ``searchsorted(boundaries, v, 'right') - 1``; the bucket gives the
        code length ``L`` and ``sorted_symbols[(v >> (peek_width - L)) -
        first_code[L] + first_index[L]]`` is the symbol.
        """
        if peek_width < self.max_length:
            raise EncodingError("peek width shorter than the longest code")
        present = np.flatnonzero(
            np.bincount(self.lengths[self.lengths > 0], minlength=self.max_length + 1)
        )
        shifted = [int(self.first_code[L]) << (peek_width - int(L)) for L in present]
        if any(b >= 1 << 63 for b in shifted):
            # Cannot happen for a per-level-valid table (first_code[L] <
            # 2**L and peek_width <= 63), but a guard beats an int64
            # overflow for pathological near-63-bit codebooks.
            raise EncodingError(
                f"codebook too deep for a {peek_width}-bit decode boundary table"
            )
        boundaries = np.array(shifted, dtype=np.int64)
        return boundaries, present.astype(np.int64), self.first_index[present].astype(np.int64)


def _from_lengths(lengths: np.ndarray) -> CanonicalCodebook:
    """Materialize canonical codes from a length table."""
    lengths = np.asarray(lengths, dtype=np.uint8)
    used = lengths > 0
    if not used.any():
        raise EncodingError("length table has no symbols")
    max_len = int(lengths.max())
    if max_len > 63:
        raise EncodingError(f"invalid length table: {max_len}-bit codes exceed 63")
    # Canonical order: by (length, symbol id).
    symbols = np.flatnonzero(used)
    order = np.lexsort((symbols, lengths[symbols]))
    sorted_symbols = symbols[order].astype(np.int64)
    sorted_lengths = lengths[sorted_symbols].astype(np.int64)
    # first_code per length via the standard canonical recurrence:
    #   code(L) starts at (code(L-1) + count(L-1)) << 1
    counts = np.bincount(sorted_lengths, minlength=max_len + 1)
    first_code = np.zeros(max_len + 1, dtype=np.int64)
    first_index = np.zeros(max_len + 1, dtype=np.int64)
    code = 0
    index = 0
    for L in range(1, max_len + 1):
        # Per-level Kraft check *before* the int64 store: a table that is
        # over-full at an intermediate level (e.g. three 1-bit codes plus a
        # deep tail) would otherwise push ``code`` past 2**63 and crash with
        # an uncaught OverflowError instead of a typed error.
        if code + int(counts[L]) > (1 << L):
            raise EncodingError("invalid (over-full) canonical length table")
        first_code[L] = code
        first_index[L] = index
        code = (code + int(counts[L])) << 1
        index += int(counts[L])
    # Assign per-symbol codes.
    codes = np.zeros(lengths.size, dtype=np.uint64)
    within = np.arange(sorted_symbols.size, dtype=np.int64) - first_index[sorted_lengths]
    codes[sorted_symbols] = (first_code[sorted_lengths] + within).astype(np.uint64)
    return CanonicalCodebook(
        lengths=lengths,
        codes=codes,
        max_length=max_len,
        sorted_symbols=sorted_symbols,
        first_code=first_code,
        first_index=first_index,
    )


def build_codebook(freqs: np.ndarray) -> CanonicalCodebook:
    """Build a canonical codebook straight from a frequency histogram."""
    return _from_lengths(build_code_lengths(freqs))


#: Fast-level index width bounds: at least 12 bits so highly-compressible
#: streams pack many short codes per window, at most 14 to bound the dense
#: table at 16 Ki entries.  Books whose longest code fits the window get no
#: slow level at all.
_FAST_BITS_MIN = 12
_FAST_BITS_MAX = 14

#: Max symbols resolved by a single fast-table hit.
_MAX_PACK = 8


@dataclass
class DecodeTable:
    """Two-level lookup table for canonical-Huffman decoding.

    The *fast* level is a dense table indexed by the top ``fast_bits`` of
    the peeked window.  Canonical codes of the same length are consecutive,
    so left-aligned at ``fast_bits`` they tile a prefix of the table; each
    entry resolves every whole codeword inside the window -- up to
    ``max_pack`` symbols with their cumulative bit lengths -- in one gather.
    Entries whose window starts a code longer than ``fast_bits`` carry
    ``nsym == 0`` and fall through to the *slow* level, a compact
    ``searchsorted`` boundary table restricted to the long code lengths
    (the pre-existing lockstep decode path, now only for rare codes).

    Attributes
    ----------
    fast_bits:
        Fast-level index width F (bits peeked per fast step).
    max_pack:
        Symbol capacity K of one fast entry.
    nsym:
        ``(2**F,)`` whole codewords resolved by each entry (0 = slow path).
    syms:
        ``(2**F, K)`` decoded symbols (columns past ``nsym`` are padding).
    cumlen:
        ``(2**F, K)`` bits consumed after the first ``k + 1`` symbols.
    slow_boundaries / slow_lengths / slow_bias:
        ``decode_boundaries``-style tables covering only lengths > F,
        left-aligned at ``max_length`` (all empty when every code fits).
    """

    fast_bits: int
    max_pack: int
    nsym: np.ndarray
    syms: np.ndarray
    cumlen: np.ndarray
    slow_boundaries: np.ndarray
    slow_lengths: np.ndarray
    slow_bias: np.ndarray

    @property
    def has_slow_level(self) -> bool:
        return bool(self.slow_boundaries.size)


def build_decode_table(book: CanonicalCodebook, fast_bits: int | None = None) -> DecodeTable:
    """Build the two-level decode table for ``book``.

    Built once per codebook (and cached through the engine's
    :class:`~repro.engine.cache.QuantCache` by the archive read path); the
    construction is fully vectorized over the table.
    """
    if fast_bits is None:
        fast_bits = min(max(book.max_length, _FAST_BITS_MIN), _FAST_BITS_MAX)
    if not 1 <= fast_bits <= 24:
        raise EncodingError(f"fast table width must be 1..24, got {fast_bits}")
    F = int(fast_bits)
    size = 1 << F
    sorted_lengths = book.lengths[book.sorted_symbols].astype(np.int64)

    # Fast level, one symbol deep: canonical codes of length L <= F,
    # left-aligned at F bits, tile [0, S) contiguously in canonical order.
    short = sorted_lengths <= F
    ssym = book.sorted_symbols[short].astype(np.int32)
    slen = sorted_lengths[short]
    spans = (np.int64(1) << (F - slen)).astype(np.int64)
    coverage = int(spans.sum())
    sym1 = np.zeros(size, dtype=np.int32)
    len1 = np.zeros(size, dtype=np.uint8)
    sym1[:coverage] = np.repeat(ssym, spans)
    len1[:coverage] = np.repeat(slen, spans)

    # Pack follow-on symbols: a window's remaining bits (zero-extended) are
    # themselves a fast-table index, and a candidate continuation is real
    # exactly when its code length fits the bits actually peeked.
    K = _MAX_PACK
    nsym = (len1 > 0).astype(np.uint8)
    syms = np.zeros((size, K), dtype=np.int32)
    cumlen = np.zeros((size, K), dtype=np.uint8)
    syms[:, 0] = sym1
    cumlen[:, 0] = len1
    tot = len1.astype(np.int64)
    v = np.arange(size, dtype=np.int64)
    for k in range(1, K):
        alive = nsym == k
        if not alive.any():
            break
        rem = (v << tot) & (size - 1)
        ln2 = len1[rem].astype(np.int64)
        can = alive & (ln2 > 0) & (tot + ln2 <= F)
        if not can.any():
            break
        syms[can, k] = sym1[rem[can]]
        tot[can] += ln2[can]
        cumlen[can, k] = tot[can]
        nsym[can] += 1

    if book.max_length > F:
        boundaries, lengths_per_bucket, bias = book.decode_boundaries(book.max_length)
        deep = lengths_per_bucket > F
        slow_boundaries = boundaries[deep]
        slow_lengths = lengths_per_bucket[deep]
        slow_bias = bias[deep]
    else:
        slow_boundaries = np.zeros(0, dtype=np.int64)
        slow_lengths = np.zeros(0, dtype=np.int64)
        slow_bias = np.zeros(0, dtype=np.int64)
    return DecodeTable(
        fast_bits=F,
        max_pack=K,
        nsym=nsym,
        syms=syms,
        cumlen=cumlen,
        slow_boundaries=slow_boundaries,
        slow_lengths=slow_lengths,
        slow_bias=slow_bias,
    )


def lookup_codes(book: CanonicalCodebook, symbols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map a symbol stream to (codes, lengths); raises if a symbol is absent."""
    symbols = np.asarray(symbols)
    if symbols.size and (int(symbols.min()) < 0 or int(symbols.max()) >= book.alphabet_size):
        raise CodebookOverflowError("symbol outside the codebook alphabet")
    lengths = book.lengths[symbols]
    if symbols.size and int(lengths.min()) == 0:
        raise CodebookOverflowError("symbol with no assigned code in the stream")
    return book.codes[symbols], lengths
