"""Canonical Huffman codebooks over multi-byte quant-code symbols.

cuSZ builds a *canonical* Huffman codebook (compression Step-6) so that the
decoder needs only the code-length sequence, not the tree: canonical codes
of the same length are consecutive integers, assigned in symbol order.  That
property is what makes the GPU decoder a table lookup (and our vectorized
decoder a ``searchsorted``): reading ``max_length`` bits ahead, the numeric
value alone determines both the code length and the symbol index.

The alphabet is the quant-code dictionary (typically 1024 symbols, i.e.
"multi-byte symbols" -- wider than one byte), which is the paper's ``h``
stage as opposed to byte-oriented gzip (``g``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..core.errors import CodebookOverflowError, EncodingError

__all__ = ["CanonicalCodebook", "build_code_lengths", "build_codebook"]


def build_code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths from symbol frequencies.

    Standard two-queue/heap construction.  Symbols with zero frequency get
    length 0 (absent from the codebook).  A degenerate one-symbol alphabet
    gets length 1.  Ties are broken deterministically by symbol order so the
    codebook is reproducible across runs.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    nonzero = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if nonzero.size == 0:
        raise EncodingError("cannot build a codebook from an all-zero histogram")
    if nonzero.size == 1:
        lengths[nonzero[0]] = 1
        return lengths
    # Heap of (frequency, tiebreak, node).  Leaves are symbol ids; internal
    # nodes are lists of their leaf symbols.
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in nonzero
    ]
    heapq.heapify(heap)
    tiebreak = int(freqs.size)
    depth = np.zeros(freqs.size, dtype=np.int64)
    while len(heap) > 1:
        fa, _, leaves_a = heapq.heappop(heap)
        fb, _, leaves_b = heapq.heappop(heap)
        merged = leaves_a + leaves_b
        depth[merged] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, merged))
        tiebreak += 1
    if depth.max() > 63:
        # Astronomically skewed inputs could exceed the 64-bit codeword; the
        # practical alphabets here (<= 64k symbols) cannot, but guard anyway.
        raise EncodingError("Huffman code length exceeds 63 bits")
    lengths[nonzero] = depth[nonzero]
    return lengths


@dataclass
class CanonicalCodebook:
    """A canonical Huffman codebook over a fixed-size alphabet.

    Attributes
    ----------
    lengths:
        Per-symbol code length (0 = symbol absent).  This array alone fully
        determines the codebook and is what the archive serializes.
    codes:
        Per-symbol canonical codeword, right-aligned ``uint64``.
    max_length:
        Longest code length.
    sorted_symbols:
        Symbols sorted by (length, symbol) -- the canonical order; decoding
        maps a codeword index straight into this array.
    first_code:
        ``first_code[L]`` = numeric value of the first (smallest) codeword of
        length ``L``.
    first_index:
        ``first_index[L]`` = position in ``sorted_symbols`` of that codeword.
    """

    lengths: np.ndarray
    codes: np.ndarray
    max_length: int
    sorted_symbols: np.ndarray
    first_code: np.ndarray
    first_index: np.ndarray

    @property
    def alphabet_size(self) -> int:
        return int(self.lengths.size)

    def average_bit_length(self, freqs: np.ndarray) -> float:
        """Frequency-weighted mean codeword length ⟨b⟩ for this book."""
        freqs = np.asarray(freqs, dtype=np.float64)
        total = freqs.sum()
        if total <= 0:
            raise EncodingError("empty frequency vector")
        return float((freqs * self.lengths).sum() / total)

    def encoded_bits(self, freqs: np.ndarray) -> int:
        """Exact payload size in bits for data with these frequencies."""
        return int((np.asarray(freqs, dtype=np.int64) * self.lengths).sum())

    def serialized(self) -> bytes:
        """Serialize (just the length table -- canonical codes are implied)."""
        return self.lengths.astype(np.uint8).tobytes()

    @classmethod
    def deserialized(cls, raw: bytes) -> "CanonicalCodebook":
        lengths = np.frombuffer(raw, dtype=np.uint8)
        return _from_lengths(lengths.copy())

    def serialized_sparse(self) -> bytes:
        """Sparse serialization: (alphabet u32, count u32, [symbol u32,
        length u8] pairs).  Wins when few symbols of a large alphabet are
        present -- e.g. Huffman over 16-bit RLE run lengths, where a dense
        64 KiB table would dwarf the payload."""
        symbols = np.flatnonzero(self.lengths > 0).astype(np.uint32)
        header = np.array([self.alphabet_size, symbols.size], dtype=np.uint32)
        return (
            header.tobytes()
            + symbols.tobytes()
            + self.lengths[symbols].astype(np.uint8).tobytes()
        )

    @classmethod
    def deserialized_sparse(cls, raw: bytes) -> "CanonicalCodebook":
        if len(raw) < 8:
            raise EncodingError("sparse codebook truncated")
        alphabet, count = np.frombuffer(raw[:8], dtype=np.uint32)
        expected = 8 + 4 * int(count) + int(count)
        if len(raw) != expected:
            raise EncodingError(
                f"sparse codebook has {len(raw)} bytes, expected {expected}"
            )
        symbols = np.frombuffer(raw[8 : 8 + 4 * int(count)], dtype=np.uint32)
        lens = np.frombuffer(raw[8 + 4 * int(count) :], dtype=np.uint8)
        if int(alphabet) < 1 or int(alphabet) > 1 << 24:
            raise EncodingError(f"sparse codebook: implausible alphabet {alphabet}")
        if symbols.size and int(symbols.max()) >= int(alphabet):
            raise EncodingError("sparse codebook: symbol outside its alphabet")
        lengths = np.zeros(int(alphabet), dtype=np.uint8)
        lengths[symbols.astype(np.int64)] = lens
        return _from_lengths(lengths)

    # -- decode-side helpers -------------------------------------------------

    def decode_boundaries(self, peek_width: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Precomputed tables for value-based decoding at ``peek_width`` bits.

        Returns ``(boundaries, lengths_per_bucket, index_bias)`` where a
        peeked value ``v`` falls in bucket
        ``searchsorted(boundaries, v, 'right') - 1``; the bucket gives the
        code length ``L`` and ``sorted_symbols[(v >> (peek_width - L)) -
        first_code[L] + first_index[L]]`` is the symbol.
        """
        if peek_width < self.max_length:
            raise EncodingError("peek width shorter than the longest code")
        present = np.flatnonzero(
            np.bincount(self.lengths[self.lengths > 0], minlength=self.max_length + 1)
        )
        boundaries = np.array(
            [int(self.first_code[L]) << (peek_width - int(L)) for L in present],
            dtype=np.int64,
        )
        return boundaries, present.astype(np.int64), self.first_index[present].astype(np.int64)


def _from_lengths(lengths: np.ndarray) -> CanonicalCodebook:
    """Materialize canonical codes from a length table."""
    lengths = np.asarray(lengths, dtype=np.uint8)
    used = lengths > 0
    if not used.any():
        raise EncodingError("length table has no symbols")
    max_len = int(lengths.max())
    if max_len > 63:
        raise EncodingError(f"invalid length table: {max_len}-bit codes exceed 63")
    # Canonical order: by (length, symbol id).
    symbols = np.flatnonzero(used)
    order = np.lexsort((symbols, lengths[symbols]))
    sorted_symbols = symbols[order].astype(np.int64)
    sorted_lengths = lengths[sorted_symbols].astype(np.int64)
    # first_code per length via the standard canonical recurrence:
    #   code(L) starts at (code(L-1) + count(L-1)) << 1
    counts = np.bincount(sorted_lengths, minlength=max_len + 1)
    first_code = np.zeros(max_len + 1, dtype=np.int64)
    first_index = np.zeros(max_len + 1, dtype=np.int64)
    code = 0
    index = 0
    for L in range(1, max_len + 1):
        first_code[L] = code
        first_index[L] = index
        code = (code + int(counts[L])) << 1
        index += int(counts[L])
    if (first_code[max_len] + counts[max_len]) > (1 << max_len):
        raise EncodingError("invalid (over-full) canonical length table")
    # Assign per-symbol codes.
    codes = np.zeros(lengths.size, dtype=np.uint64)
    within = np.arange(sorted_symbols.size, dtype=np.int64) - first_index[sorted_lengths]
    codes[sorted_symbols] = (first_code[sorted_lengths] + within).astype(np.uint64)
    return CanonicalCodebook(
        lengths=lengths,
        codes=codes,
        max_length=max_len,
        sorted_symbols=sorted_symbols,
        first_code=first_code,
        first_index=first_index,
    )


def build_codebook(freqs: np.ndarray) -> CanonicalCodebook:
    """Build a canonical codebook straight from a frequency histogram."""
    return _from_lengths(build_code_lengths(freqs))


def lookup_codes(book: CanonicalCodebook, symbols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map a symbol stream to (codes, lengths); raises if a symbol is absent."""
    symbols = np.asarray(symbols)
    if symbols.size and (int(symbols.min()) < 0 or int(symbols.max()) >= book.alphabet_size):
        raise CodebookOverflowError("symbol outside the codebook alphabet")
    lengths = book.lengths[symbols]
    if symbols.size and int(lengths.min()) == 0:
        raise CodebookOverflowError("symbol with no assigned code in the stream")
    return book.codes[symbols], lengths
