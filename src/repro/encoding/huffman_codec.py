"""Chunked Huffman encoding/decoding (cuSZ Steps 7-8 and their inverse).

cuSZ Huffman-encodes quant-codes in fixed-size chunks and then "deflates"
(densely concatenates) the per-chunk bitstreams, recording each chunk's bit
length.  The chunk structure is not an implementation detail -- it is what
makes GPU decoding parallel: each thread decodes one chunk independently.

The decoder here mirrors that execution model exactly.  Instead of looping
over symbols within a chunk, it runs *lockstep across chunks*: every chunk
keeps a bit cursor, and at step ``k`` all active chunks decode their ``k``-th
symbol simultaneously with vectorized peeks + ``searchsorted`` over the
canonical code boundaries.  The number of Python-level iterations equals the
chunk size, not the stream length -- the same work-depth as the GPU kernel.

A plain sequential decoder is provided as the correctness reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import EncodingError
from .bitio import pack_codes, peek_bits, peek_bits_prepadded, unpack_to_bits
from .huffman import CanonicalCodebook, lookup_codes

__all__ = ["HuffmanEncoded", "encode", "decode", "decode_sequential"]


@dataclass
class HuffmanEncoded:
    """A deflated chunked Huffman stream.

    Attributes
    ----------
    payload:
        Dense bitstream bytes (chunks concatenated with no padding).
    chunk_bits:
        Bit length of each chunk's sub-stream (the deflate metadata).
    n_symbols:
        Total number of encoded symbols.
    chunk_size:
        Symbols per chunk (last chunk may be short).
    """

    payload: np.ndarray
    chunk_bits: np.ndarray
    n_symbols: int
    chunk_size: int

    @property
    def total_bits(self) -> int:
        return int(self.chunk_bits.sum())

    @property
    def payload_bytes(self) -> int:
        return int(self.payload.size)

    @property
    def metadata_bytes(self) -> int:
        """Bytes of deflate metadata (per-chunk bit lengths as uint32)."""
        return int(self.chunk_bits.size) * 4


def encode(symbols: np.ndarray, book: CanonicalCodebook, chunk_size: int) -> HuffmanEncoded:
    """Encode a symbol stream into a deflated chunked Huffman bitstream."""
    symbols = np.asarray(symbols).reshape(-1)
    if symbols.size == 0:
        raise EncodingError("cannot Huffman-encode an empty stream")
    if chunk_size < 1:
        raise EncodingError(f"chunk_size must be >= 1, got {chunk_size}")
    codes, lengths = lookup_codes(book, symbols)
    packed, total_bits = pack_codes(codes, lengths)
    # Per-chunk bit lengths: sum of code lengths within each chunk.
    n_chunks = (symbols.size + chunk_size - 1) // chunk_size
    ends = np.cumsum(lengths.astype(np.int64))
    chunk_last = np.minimum(np.arange(1, n_chunks + 1) * chunk_size, symbols.size) - 1
    chunk_end_bits = ends[chunk_last]
    chunk_bits = np.diff(np.concatenate(([0], chunk_end_bits))).astype(np.uint32)
    assert int(chunk_bits.sum()) == total_bits
    return HuffmanEncoded(
        payload=packed,
        chunk_bits=chunk_bits,
        n_symbols=int(symbols.size),
        chunk_size=int(chunk_size),
    )


def decode(encoded: HuffmanEncoded, book: CanonicalCodebook, out_dtype=np.uint16) -> np.ndarray:
    """Decode lockstep-across-chunks (the GPU execution model, vectorized).

    Every chunk is an independent decode thread; step ``k`` advances all
    cursors by one symbol using a single peek + ``searchsorted`` over the
    canonical boundaries.
    """
    n = encoded.n_symbols
    if n == 0:
        return np.zeros(0, dtype=out_dtype)
    width = book.max_length
    # Word-at-a-time peeks straight from the packed stream when the longest
    # code fits the 64-bit window; pathological (>56-bit) books fall back to
    # the bit-array path.
    if width <= 56:
        padded = np.concatenate(
            [np.asarray(encoded.payload, dtype=np.uint8), np.zeros(8, dtype=np.uint8)]
        )

        def peek(pos):
            return peek_bits_prepadded(padded, pos, width)
    else:
        bits = unpack_to_bits(encoded.payload, encoded.total_bits)

        def peek(pos):
            return peek_bits(bits, pos, width)
    boundaries, bucket_lengths, bucket_bias = book.decode_boundaries(width)
    first_code = book.first_code
    sorted_symbols = book.sorted_symbols

    chunk_bits = encoded.chunk_bits.astype(np.int64)
    cursors = np.concatenate(([0], np.cumsum(chunk_bits)[:-1]))
    n_chunks = cursors.size
    # Symbols each chunk must produce.
    per_chunk = np.full(n_chunks, encoded.chunk_size, dtype=np.int64)
    per_chunk[-1] = n - encoded.chunk_size * (n_chunks - 1)
    out = np.empty(n, dtype=out_dtype)
    out_base = np.arange(n_chunks, dtype=np.int64) * encoded.chunk_size

    active = np.arange(n_chunks, dtype=np.int64)
    step = 0
    max_steps = int(per_chunk.max())
    while step < max_steps:
        if step > 0:
            active = active[per_chunk[active] > step]
        pos = cursors[active]
        v = peek(pos)
        bucket = np.searchsorted(boundaries, v, side="right") - 1
        if bucket.size and int(bucket.min()) < 0:
            raise EncodingError("corrupt Huffman stream: value below first code")
        lens = bucket_lengths[bucket]
        idx = (v >> (width - lens)) - first_code[lens] + bucket_bias[bucket]
        if idx.size and (int(idx.max()) >= sorted_symbols.size or int(idx.min()) < 0):
            raise EncodingError("corrupt Huffman stream: symbol index out of range")
        out[out_base[active] + step] = sorted_symbols[idx].astype(out_dtype)
        cursors[active] = pos + lens
        step += 1
    # Every cursor must land exactly on its chunk's end bit.
    expected_ends = np.cumsum(chunk_bits)
    if not np.array_equal(cursors, expected_ends):
        raise EncodingError("corrupt Huffman stream: chunk length mismatch")
    return out


def decode_sequential(
    encoded: HuffmanEncoded, book: CanonicalCodebook, out_dtype=np.uint16
) -> np.ndarray:
    """Bit-by-bit reference decoder (slow; for validation only)."""
    bits = unpack_to_bits(encoded.payload, encoded.total_bits)
    out = np.empty(encoded.n_symbols, dtype=out_dtype)
    lengths = book.lengths
    codes = book.codes
    # Invert (code, length) -> symbol into a dict for the reference path.
    table = {
        (int(lengths[s]), int(codes[s])): int(s)
        for s in np.flatnonzero(lengths > 0)
    }
    pos = 0
    for i in range(encoded.n_symbols):
        acc = 0
        ln = 0
        while True:
            acc = (acc << 1) | int(bits[pos])
            pos += 1
            ln += 1
            sym = table.get((ln, acc))
            if sym is not None:
                out[i] = sym
                break
            if ln > book.max_length:
                raise EncodingError("corrupt Huffman stream (sequential decode)")
    return out
