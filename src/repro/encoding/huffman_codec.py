"""Chunked Huffman encoding/decoding (cuSZ Steps 7-8 and their inverse).

cuSZ Huffman-encodes quant-codes in fixed-size chunks and then "deflates"
(densely concatenates) the per-chunk bitstreams, recording each chunk's bit
length.  The chunk structure is not an implementation detail -- it is what
makes GPU decoding parallel: each thread decodes one chunk independently.

The primary decoder (:func:`decode`) runs *lockstep across chunks* like the
GPU kernel, but resolves symbols through a two-level canonical lookup table
(:class:`~repro.encoding.huffman.DecodeTable`): one gather of the dense
fast level yields up to ``max_pack`` whole symbols and their cumulative bit
lengths, so the number of Python-level steps is the chunk size divided by
the per-window packing factor.  Codes longer than the fast index fall back
to a compact ``searchsorted`` over the long-code boundaries -- the same
value-based rule the previous per-step decoder (:func:`decode_lockstep`,
kept as a reference) applies to every symbol.

Format v3 archives byte-align every chunk ("indexed payload"): the encoder
pads each chunk to a byte boundary and records per-chunk byte offsets
(``chunk_offsets``), the gap-array sync points of arXiv:2201.09118.  Chunks
then decode independently -- :func:`split_chunk_groups` partitions a stream
into self-contained sub-streams for parallel workers.

A plain sequential decoder is provided as the correctness reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import EncodingError
from .bitio import (
    pack_codes,
    pack_codes_at,
    peek_bits,
    peek_bits_prepadded,
    unpack_to_bits,
)
from .huffman import CanonicalCodebook, DecodeTable, build_decode_table, lookup_codes

__all__ = [
    "HuffmanEncoded",
    "encode",
    "decode",
    "decode_lockstep",
    "decode_sequential",
    "split_chunk_groups",
]

#: Longest code the packed word-at-a-time peek can read; deeper books use
#: the bit-array fallback inside :func:`decode_lockstep`.
_PACKED_PEEK_MAX = 56


@dataclass
class HuffmanEncoded:
    """A deflated chunked Huffman stream.

    Attributes
    ----------
    payload:
        Dense bitstream bytes.  Without ``chunk_offsets`` the chunks are
        concatenated with no padding; with them every chunk starts at a
        byte boundary (format v3's indexed payload).
    chunk_bits:
        Bit length of each chunk's sub-stream (the deflate metadata).
    n_symbols:
        Total number of encoded symbols.
    chunk_size:
        Symbols per chunk (last chunk may be short).
    chunk_offsets:
        Per-chunk byte offsets into ``payload`` (``uint64``), or ``None``
        for the dense v1/v2 layout.  These are the sync points that let
        chunks decode independently.
    """

    payload: np.ndarray
    chunk_bits: np.ndarray
    n_symbols: int
    chunk_size: int
    chunk_offsets: np.ndarray | None = None

    @property
    def total_bits(self) -> int:
        return int(self.chunk_bits.sum())

    @property
    def payload_bytes(self) -> int:
        return int(self.payload.size)

    @property
    def metadata_bytes(self) -> int:
        """Bytes of deflate metadata (per-chunk bit lengths as uint32, plus
        the sync-point offsets as uint64 for the indexed layout)."""
        n_chunks = int(self.chunk_bits.size)
        return n_chunks * 4 + (n_chunks * 8 if self.chunk_offsets is not None else 0)


def encode(
    symbols: np.ndarray,
    book: CanonicalCodebook,
    chunk_size: int,
    aligned: bool = False,
) -> HuffmanEncoded:
    """Encode a symbol stream into a deflated chunked Huffman bitstream.

    ``aligned`` pads every chunk to a byte boundary and records the
    per-chunk byte offsets (the format-v3 indexed payload); the default
    dense layout concatenates chunks with no padding.
    """
    symbols = np.asarray(symbols).reshape(-1)
    if symbols.size == 0:
        raise EncodingError("cannot Huffman-encode an empty stream")
    if chunk_size < 1:
        raise EncodingError(f"chunk_size must be >= 1, got {chunk_size}")
    codes, lengths = lookup_codes(book, symbols)
    # Per-chunk bit lengths: sum of code lengths within each chunk.
    n_chunks = (symbols.size + chunk_size - 1) // chunk_size
    ends = np.cumsum(lengths.astype(np.int64))
    chunk_last = np.minimum(np.arange(1, n_chunks + 1) * chunk_size, symbols.size) - 1
    chunk_end_bits = ends[chunk_last]
    chunk_bits = np.diff(np.concatenate(([0], chunk_end_bits))).astype(np.uint32)
    if aligned:
        byte_lens = (chunk_bits.astype(np.int64) + 7) >> 3
        offsets = np.concatenate(([0], np.cumsum(byte_lens)[:-1]))
        chunk_of = np.arange(symbols.size, dtype=np.int64) // chunk_size
        within = (ends - lengths) - np.concatenate(([0], chunk_end_bits[:-1]))[chunk_of]
        starts = offsets[chunk_of] * 8 + within
        packed = pack_codes_at(codes, lengths, starts, int(byte_lens.sum()) * 8)
        return HuffmanEncoded(
            payload=packed,
            chunk_bits=chunk_bits,
            n_symbols=int(symbols.size),
            chunk_size=int(chunk_size),
            chunk_offsets=offsets.astype(np.uint64),
        )
    packed, total_bits = pack_codes(codes, lengths)
    assert int(chunk_bits.sum()) == total_bits
    return HuffmanEncoded(
        payload=packed,
        chunk_bits=chunk_bits,
        n_symbols=int(symbols.size),
        chunk_size=int(chunk_size),
    )


def _chunk_layout(encoded: HuffmanEncoded) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validated (start_bits, chunk_bits, per_chunk_symbols) for a stream."""
    chunk_bits = encoded.chunk_bits.astype(np.int64)
    n_chunks = int(chunk_bits.size)
    expected_chunks = -(-encoded.n_symbols // encoded.chunk_size)
    if n_chunks != expected_chunks:
        raise EncodingError(
            f"corrupt Huffman stream: {n_chunks} chunks recorded, "
            f"{expected_chunks} expected"
        )
    if encoded.chunk_offsets is not None:
        offsets = np.asarray(encoded.chunk_offsets, dtype=np.int64)
        if offsets.size != n_chunks:
            raise EncodingError(
                "corrupt Huffman stream: sync-point count mismatch"
            )
        if offsets.size and (int(offsets[0]) != 0 or np.any(np.diff(offsets) < 0)):
            raise EncodingError("corrupt Huffman stream: unordered sync points")
        starts = offsets * 8
    else:
        starts = np.concatenate(([0], np.cumsum(chunk_bits)[:-1]))
    bit_limit = encoded.payload_bytes * 8
    if n_chunks and int((starts + chunk_bits).max()) > bit_limit:
        raise EncodingError("corrupt Huffman stream: chunk span outside payload")
    per_chunk = np.full(n_chunks, encoded.chunk_size, dtype=np.int64)
    if n_chunks:
        per_chunk[-1] = encoded.n_symbols - encoded.chunk_size * (n_chunks - 1)
    return starts, chunk_bits, per_chunk


def decode(
    encoded: HuffmanEncoded,
    book: CanonicalCodebook,
    out_dtype=np.uint16,
    table: DecodeTable | None = None,
) -> np.ndarray:
    """Decode via the two-level lookup table (the fast path).

    Every chunk is an independent decode thread advancing in lockstep; one
    fast-table gather resolves up to ``table.max_pack`` symbols per chunk
    per step.  ``table`` is built from ``book`` when not supplied (the
    archive read path passes a cached one).
    """
    n = encoded.n_symbols
    if n == 0:
        return np.zeros(0, dtype=out_dtype)
    if book.max_length > _PACKED_PEEK_MAX:
        # Pathological (>56-bit) books: the fast window cannot hold a whole
        # long code; use the reference lockstep decoder's bit-array path.
        return decode_lockstep(encoded, book, out_dtype=out_dtype)
    if table is None:
        table = build_decode_table(book)
    starts, chunk_bits, per_chunk = _chunk_layout(encoded)
    n_chunks = starts.size
    payload = np.asarray(encoded.payload, dtype=np.uint8)
    bit_limit = payload.size * 8
    padded = np.concatenate([payload, np.zeros(8, dtype=np.uint8)])
    # Big-endian 32-bit window at every byte offset: one gather + one shift
    # peeks the fast index at any bit phase (fast_bits <= 24).
    pb = padded.astype(np.uint32)
    win = (
        (pb[:-3] << np.uint32(24))
        | (pb[1:-2] << np.uint32(16))
        | (pb[2:-1] << np.uint32(8))
        | pb[3:]
    )
    F = table.fast_bits
    K = table.max_pack
    W = book.max_length
    fast_shift = np.int64(32 - F)
    fast_mask = np.int64((1 << F) - 1)
    koff = np.arange(K, dtype=np.int64)
    nsym_tab, syms_tab, cumlen_tab = table.nsym, table.syms, table.cumlen
    first_code, sorted_symbols = book.first_code, book.sorted_symbols

    # Per-chunk scratch rows padded by K: a fast hit writes all K candidate
    # symbols unconditionally; columns past the accepted count are junk that
    # the next step (or the final trim) overwrites.
    row_w = encoded.chunk_size + K
    scratch = np.empty(n_chunks * row_w, dtype=out_dtype)
    cursors = starts.copy()
    exp_end = starts + chunk_bits
    budget = per_chunk.copy()
    dst = np.arange(n_chunks, dtype=np.int64) * row_w

    while cursors.size:
        v = (win[cursors >> 3] >> (fast_shift - (cursors & 7))) & fast_mask
        ns = nsym_tab[v].astype(np.int64)
        slow = ns == 0
        any_slow = bool(slow.any())
        scratch[dst[:, None] + koff] = syms_tab[v]
        allowed = np.minimum(np.maximum(ns, 1), budget)
        consumed = cumlen_tab[v, allowed - 1].astype(np.int64)
        if any_slow:
            # Rare long codes (or corrupt windows): value-based decode at
            # full peek width, restricted to the lengths > fast_bits.
            if not table.has_slow_level:
                raise EncodingError(
                    "corrupt Huffman stream: value below first code"
                )
            pos = cursors[slow]
            vw = peek_bits_prepadded(padded, np.minimum(pos, bit_limit), W)
            bucket = np.searchsorted(table.slow_boundaries, vw, side="right") - 1
            if bucket.size and int(bucket.min()) < 0:
                raise EncodingError(
                    "corrupt Huffman stream: value below first code"
                )
            lens = table.slow_lengths[bucket]
            idx = (vw >> (W - lens)) - first_code[lens] + table.slow_bias[bucket]
            if idx.size and (
                int(idx.max()) >= sorted_symbols.size or int(idx.min()) < 0
            ):
                raise EncodingError(
                    "corrupt Huffman stream: symbol index out of range"
                )
            scratch[dst[slow]] = sorted_symbols[idx].astype(out_dtype)
            consumed[slow] = lens
        cursors = np.minimum(cursors + consumed, bit_limit)
        dst += allowed
        budget -= allowed
        if int(budget.min()) == 0:
            done = budget == 0
            if not np.array_equal(cursors[done], exp_end[done]):
                raise EncodingError(
                    "corrupt Huffman stream: chunk length mismatch"
                )
            keep = ~done
            cursors = cursors[keep]
            exp_end = exp_end[keep]
            budget = budget[keep]
            dst = dst[keep]

    return scratch.reshape(n_chunks, row_w)[:, : encoded.chunk_size].reshape(-1)[:n]


def decode_lockstep(
    encoded: HuffmanEncoded, book: CanonicalCodebook, out_dtype=np.uint16
) -> np.ndarray:
    """Decode one symbol per chunk per step (the previous primary decoder).

    Kept as the table-free reference: every step advances all cursors by
    one symbol with a single peek + ``searchsorted`` over the canonical
    boundaries.  The metamorphic suite pins :func:`decode` against it.
    """
    n = encoded.n_symbols
    if n == 0:
        return np.zeros(0, dtype=out_dtype)
    width = book.max_length
    # Word-at-a-time peeks straight from the packed stream when the longest
    # code fits the 64-bit window; pathological (>56-bit) books fall back to
    # the bit-array path.
    if width <= _PACKED_PEEK_MAX:
        padded = np.concatenate(
            [np.asarray(encoded.payload, dtype=np.uint8), np.zeros(8, dtype=np.uint8)]
        )

        def peek(pos):
            return peek_bits_prepadded(padded, pos, width)
    else:
        bits = unpack_to_bits(
            encoded.payload, encoded.payload_bytes * 8
        )

        def peek(pos):
            return peek_bits(bits, pos, width)
    boundaries, bucket_lengths, bucket_bias = book.decode_boundaries(width)
    first_code = book.first_code
    sorted_symbols = book.sorted_symbols

    starts, chunk_bits, per_chunk = _chunk_layout(encoded)
    cursors = starts.copy()
    n_chunks = cursors.size
    out = np.empty(n, dtype=out_dtype)
    out_base = np.arange(n_chunks, dtype=np.int64) * encoded.chunk_size

    active = np.arange(n_chunks, dtype=np.int64)
    step = 0
    max_steps = int(per_chunk.max())
    while step < max_steps:
        if step > 0:
            active = active[per_chunk[active] > step]
        pos = cursors[active]
        v = peek(pos)
        bucket = np.searchsorted(boundaries, v, side="right") - 1
        if bucket.size and int(bucket.min()) < 0:
            raise EncodingError("corrupt Huffman stream: value below first code")
        lens = bucket_lengths[bucket]
        idx = (v >> (width - lens)) - first_code[lens] + bucket_bias[bucket]
        if idx.size and (int(idx.max()) >= sorted_symbols.size or int(idx.min()) < 0):
            raise EncodingError("corrupt Huffman stream: symbol index out of range")
        out[out_base[active] + step] = sorted_symbols[idx].astype(out_dtype)
        cursors[active] = pos + lens
        step += 1
    # Every cursor must land exactly on its chunk's end bit.
    if not np.array_equal(cursors, starts + chunk_bits):
        raise EncodingError("corrupt Huffman stream: chunk length mismatch")
    return out


def decode_sequential(
    encoded: HuffmanEncoded, book: CanonicalCodebook, out_dtype=np.uint16
) -> np.ndarray:
    """Bit-by-bit reference decoder (slow; for validation only)."""
    bits = unpack_to_bits(encoded.payload, encoded.payload_bytes * 8)
    starts, _, per_chunk = _chunk_layout(encoded)
    out = np.empty(encoded.n_symbols, dtype=out_dtype)
    lengths = book.lengths
    codes = book.codes
    # Invert (code, length) -> symbol into a dict for the reference path.
    table = {
        (int(lengths[s]), int(codes[s])): int(s)
        for s in np.flatnonzero(lengths > 0)
    }
    i = 0
    for c in range(starts.size):
        pos = int(starts[c])
        for _ in range(int(per_chunk[c])):
            acc = 0
            ln = 0
            while True:
                acc = (acc << 1) | int(bits[pos])
                pos += 1
                ln += 1
                sym = table.get((ln, acc))
                if sym is not None:
                    out[i] = sym
                    i += 1
                    break
                if ln > book.max_length:
                    raise EncodingError("corrupt Huffman stream (sequential decode)")
    return out


def split_chunk_groups(encoded: HuffmanEncoded, n_groups: int) -> list[HuffmanEncoded]:
    """Partition an indexed stream into independent contiguous sub-streams.

    Requires ``chunk_offsets`` (the format-v3 sync points): each group's
    payload slice starts at its first chunk's byte offset, so every group
    is a fully self-contained :class:`HuffmanEncoded` that decodes on its
    own worker.  Concatenating the groups' outputs in order reproduces the
    serial decode exactly.
    """
    if encoded.chunk_offsets is None:
        raise EncodingError("cannot split a stream without sync points")
    offsets = np.asarray(encoded.chunk_offsets, dtype=np.int64)
    n_chunks = int(offsets.size)
    n_groups = max(1, min(int(n_groups), n_chunks))
    edges = np.linspace(0, n_chunks, n_groups + 1, dtype=np.int64)
    payload = np.asarray(encoded.payload, dtype=np.uint8)
    groups = []
    for g in range(n_groups):
        a, b = int(edges[g]), int(edges[g + 1])
        if a == b:
            continue
        byte0 = int(offsets[a])
        byte1 = int(offsets[b]) if b < n_chunks else payload.size
        if b < n_chunks:
            n_sub = (b - a) * encoded.chunk_size
        else:
            n_sub = encoded.n_symbols - a * encoded.chunk_size
        groups.append(
            HuffmanEncoded(
                payload=payload[byte0:byte1],
                chunk_bits=encoded.chunk_bits[a:b],
                n_symbols=int(n_sub),
                chunk_size=encoded.chunk_size,
                chunk_offsets=(offsets[a:b] - byte0).astype(np.uint64),
            )
        )
    return groups
