"""From-scratch LZ77/LZSS dictionary coder.

The paper repeatedly leans on dictionary coding -- gzip's LZ77 in the qg/qhg
reference columns, Zstd as cuSZ's Step-9 -- while arguing it is *hard to
parallelize on GPUs* because of "the intrinsic dependency in its repeated
sequence search".  This module implements the algorithm from scratch so that
substrate is real rather than delegated to zlib, and its structure makes the
paper's argument concrete:

* match *candidates* are found fully vectorized (hash all 4-grams, group by
  hash with a stable argsort, take each position's previous same-hash
  occurrence) -- the data-parallel part a GPU could do;
* match *lengths* are extended in lockstep across all positions (one
  vectorized comparison per length step) -- also data-parallel;
* the greedy *parse* -- deciding which tokens actually happen -- is the
  irreducibly sequential step (each token's start depends on the previous
  token's length), executed as a compact scalar walk.

Token format: a flag bitstream (literal/match), raw literal bytes, and
(offset, length) pairs with a 64 KiB window and 3..258-byte matches, i.e.
DEFLATE-like economics.  The serialized container optionally Huffman-codes
the literal stream when that wins.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..core.errors import EncodingError
from .bitio import pack_codes, unpack_to_bits
from .huffman import build_codebook
from .huffman_codec import HuffmanEncoded, decode as huff_decode, encode as huff_encode

__all__ = ["LZTokens", "lz_parse", "lz_expand", "lz_compress", "lz_decompress"]

#: Minimum profitable match (a match token costs ~3.1 bytes).
MIN_MATCH = 4
#: Maximum match length (fits length - MIN_MATCH in a byte).
MAX_MATCH = MIN_MATCH + 255
#: Search window (offset fits in u16).
WINDOW = 1 << 16


@dataclass
class LZTokens:
    """Parsed token streams."""

    flags: np.ndarray  # uint8 0/1 per token: 0 = literal, 1 = match
    literals: np.ndarray  # uint8, one per literal token
    offsets: np.ndarray  # uint16, one per match token
    lengths: np.ndarray  # uint8, (true length - MIN_MATCH) per match token
    n_bytes: int  # decoded size

    @property
    def n_tokens(self) -> int:
        return int(self.flags.size)

    @property
    def n_matches(self) -> int:
        return int(self.offsets.size)


def _hash_grams(data: np.ndarray) -> np.ndarray:
    """32-bit mixing hash of every 4-byte window (positions 0..n-4)."""
    a = data.astype(np.uint32)
    grams = a[:-3] | (a[1:-2] << np.uint32(8)) | (a[2:-1] << np.uint32(16)) | (
        a[3:] << np.uint32(24)
    )
    return (grams * np.uint32(2654435761)) >> np.uint32(8)


def _previous_same_hash(hashes: np.ndarray) -> np.ndarray:
    """For each position, the nearest earlier position with the same hash
    (or -1).  Stable argsort groups equal hashes in position order, so each
    element's predecessor within its group is exactly what we want."""
    order = np.argsort(hashes, kind="stable")
    prev = np.full(hashes.size, -1, dtype=np.int64)
    same = hashes[order][1:] == hashes[order][:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _match_lengths(data: np.ndarray, cand: np.ndarray) -> np.ndarray:
    """Lockstep match-length extension for every position with a candidate.

    One vectorized comparison per length step; stops when every active pair
    diverges or hits MAX_MATCH / the end of the data.
    """
    n = data.size
    lengths = np.zeros(n, dtype=np.int64)
    pos = np.flatnonzero(cand >= 0)
    if pos.size == 0:
        return lengths
    src = cand[pos]
    active = np.ones(pos.size, dtype=bool)
    l = 0
    while l < MAX_MATCH and active.any():
        idx = np.flatnonzero(active)
        p = pos[idx] + l
        ok = p < n
        ok[ok] = data[p[ok]] == data[src[idx[ok]] + l]
        lengths[pos[idx[ok]]] += 1
        active[idx[~ok]] = False
        l += 1
    return lengths


def lz_parse(raw: bytes | np.ndarray) -> LZTokens:
    """Greedy LZSS parse of a byte stream."""
    data = np.frombuffer(raw, dtype=np.uint8) if isinstance(raw, (bytes, bytearray)) else np.asarray(raw, dtype=np.uint8)
    n = int(data.size)
    if n == 0:
        return LZTokens(
            flags=np.zeros(0, np.uint8), literals=np.zeros(0, np.uint8),
            offsets=np.zeros(0, np.uint16), lengths=np.zeros(0, np.uint8), n_bytes=0,
        )
    if n < MIN_MATCH:
        return LZTokens(
            flags=np.zeros(n, np.uint8), literals=data.copy(),
            offsets=np.zeros(0, np.uint16), lengths=np.zeros(0, np.uint8), n_bytes=n,
        )
    hashes = _hash_grams(data)
    cand = _previous_same_hash(hashes)
    # Window constraint + hash-collision verification happen on the measured
    # lengths: collisions yield length < MIN_MATCH and are rejected below.
    out_of_window = (np.arange(cand.size) - cand) > WINDOW - 1
    cand[out_of_window] = -1
    # Pad candidates to full length (tail positions cannot start a match).
    cand = np.concatenate([cand, np.full(n - cand.size, -1, dtype=np.int64)])

    # Periodicity shortcut: where the stream repeats with a small period p
    # (byte runs p=1, constant uint16/uint32/float64 regions p=2/4/8), the
    # offset-p match length is the length of the agreement run
    # ``data[i+k] == data[i+k-p]`` -- computable analytically.  Resolving
    # these up front keeps the lockstep extension off the pathological
    # highly-repetitive case that dominates quant-code byte streams.
    idx = np.arange(n)
    shortcut = np.zeros(n, dtype=bool)
    direct_len = np.zeros(n, dtype=np.int64)
    direct_off = np.zeros(n, dtype=np.int64)
    for p in (1, 2, 4, 8):
        if n <= p:
            break
        agree = np.zeros(n, dtype=bool)
        agree[p:] = data[p:] == data[:-p]
        # Length of the True-run starting at each position.
        boundaries = np.concatenate(([0], np.flatnonzero(agree[1:] != agree[:-1]) + 1))
        seg_lengths = np.diff(np.append(boundaries, n))
        seg_end = np.repeat(boundaries + seg_lengths, seg_lengths)
        run_from_here = np.where(agree, seg_end - idx, 0)
        hit = ~shortcut & (run_from_here >= MIN_MATCH)
        shortcut |= hit
        direct_len[hit] = np.minimum(run_from_here[hit], MAX_MATCH)
        direct_off[hit] = p
    cand[shortcut] = -1  # exclude from lockstep extension
    match_len = _match_lengths(data, cand)
    match_len[shortcut] = direct_len[shortcut]
    cand[shortcut] = idx[shortcut] - direct_off[shortcut]
    usable = match_len >= MIN_MATCH

    # Sequential greedy parse (the inherently serial step).
    flags: list[int] = []
    lit_idx: list[int] = []
    match_off: list[int] = []
    match_len_out: list[int] = []
    i = 0
    while i < n:
        if usable[i]:
            flags.append(1)
            match_off.append(i - int(cand[i]))
            length = int(match_len[i])
            match_len_out.append(length - MIN_MATCH)
            i += length
        else:
            flags.append(0)
            lit_idx.append(i)
            i += 1
    return LZTokens(
        flags=np.array(flags, dtype=np.uint8),
        literals=data[np.array(lit_idx, dtype=np.int64)] if lit_idx else np.zeros(0, np.uint8),
        offsets=np.array(match_off, dtype=np.uint16),
        lengths=np.array(match_len_out, dtype=np.uint8),
        n_bytes=n,
    )


def lz_expand(tokens: LZTokens) -> np.ndarray:
    """Invert :func:`lz_parse` (sequential over tokens; overlap-safe)."""
    out = np.empty(tokens.n_bytes, dtype=np.uint8)
    pos = 0
    li = 0
    mi = 0
    for flag in tokens.flags:
        if flag:
            off = int(tokens.offsets[mi])
            length = int(tokens.lengths[mi]) + MIN_MATCH
            mi += 1
            if off <= 0 or off > pos:
                raise EncodingError(f"corrupt LZ stream: offset {off} at {pos}")
            src = pos - off
            if off >= length:
                out[pos : pos + length] = out[src : src + length]
            else:
                # Overlapping match = periodic pattern with period `off`.
                pattern = out[src:pos]
                reps = -(-length // off)
                out[pos : pos + length] = np.tile(pattern, reps)[:length]
            pos += length
        else:
            out[pos] = tokens.literals[li]
            li += 1
            pos += 1
    if pos != tokens.n_bytes:
        raise EncodingError(f"LZ stream expanded to {pos} bytes, expected {tokens.n_bytes}")
    return out


# -- serialized container -----------------------------------------------------

_HEAD = struct.Struct("<QQQQBBB")  # n_bytes, n_tokens, n_lits, n_matches, 3 modes
_HUFF_CHUNK = 1 << 14


def _pack_stream(values: np.ndarray, alphabet: int, sparse: bool) -> tuple[int, bytes]:
    """Entropy-code one token stream; falls back to raw when Huffman loses.

    Returns (mode, payload): mode 0 = raw native bytes, 1 = Huffman (dense
    or sparse codebook per ``sparse``).  Small streams stay raw -- the
    codebook would dominate.
    """
    raw_payload = values.tobytes()
    if values.size < 512:
        return 0, raw_payload
    freqs = np.bincount(values.astype(np.int64), minlength=alphabet)
    book = build_codebook(freqs)
    encoded = huff_encode(values.astype(np.uint32), book, _HUFF_CHUNK)
    raw_book = book.serialized_sparse() if sparse else book.serialized()
    packed = (
        struct.pack("<IQI", len(raw_book), encoded.total_bits, encoded.chunk_bits.size)
        + raw_book
        + encoded.chunk_bits.tobytes()
        + encoded.payload.tobytes()
    )
    if len(packed) < len(raw_payload):
        return 1, packed
    return 0, raw_payload


def _unpack_stream(
    blob: bytes, off: int, mode: int, count: int, dtype, sparse: bool
) -> tuple[np.ndarray, int]:
    """Invert :func:`_pack_stream`; returns (values, new offset)."""
    from .huffman import CanonicalCodebook

    itemsize = np.dtype(dtype).itemsize
    if mode == 0:
        values = np.frombuffer(blob, dtype=dtype, count=count, offset=off)
        return values, off + count * itemsize
    if mode != 1:
        raise EncodingError(f"unknown LZ stream mode {mode}")
    if off + 16 > len(blob):
        raise EncodingError("LZ stream header truncated")
    book_len, total_bits, n_chunks = struct.unpack_from("<IQI", blob, off)
    off += 16
    raw_book = blob[off : off + book_len]
    off += book_len
    book = (
        CanonicalCodebook.deserialized_sparse(raw_book)
        if sparse
        else CanonicalCodebook.deserialized(raw_book)
    )
    chunk_bits = np.frombuffer(blob, dtype=np.uint32, count=n_chunks, offset=off)
    off += n_chunks * 4
    payload_bytes = (int(chunk_bits.astype(np.int64).sum()) + 7) // 8
    payload = np.frombuffer(blob, dtype=np.uint8, count=payload_bytes, offset=off)
    off += payload_bytes
    encoded = HuffmanEncoded(
        payload=payload, chunk_bits=chunk_bits, n_symbols=count, chunk_size=_HUFF_CHUNK
    )
    return huff_decode(encoded, book).astype(dtype), off


def lz_compress(raw: bytes | np.ndarray) -> bytes:
    """Serialize an LZSS parse with entropy-coded token streams.

    Literals, match lengths, and match offsets are each canonical-Huffman
    coded when that shrinks them (offsets use the sparse codebook -- the
    alphabet is 64Ki but few distinct offsets occur), which is what closes
    most of the gap to DEFLATE-class coders.
    """
    tokens = lz_parse(raw)
    flag_bits, _ = (
        pack_codes(tokens.flags.astype(np.uint64), np.ones(tokens.n_tokens, dtype=np.int64))
        if tokens.n_tokens
        else (np.zeros(0, np.uint8), 0)
    )
    lit_mode, lit_payload = _pack_stream(tokens.literals, 256, sparse=False)
    len_mode, len_payload = _pack_stream(tokens.lengths, 256, sparse=False)
    off_mode, off_payload = _pack_stream(tokens.offsets, 1 << 16, sparse=True)
    head = _HEAD.pack(
        tokens.n_bytes, tokens.n_tokens, tokens.literals.size, tokens.n_matches,
        lit_mode, len_mode, off_mode,
    )
    return (
        head
        + struct.pack("<I", flag_bits.size)
        + flag_bits.tobytes()
        + off_payload
        + len_payload
        + lit_payload
    )


def lz_decompress(blob: bytes) -> bytes:
    """Invert :func:`lz_compress`."""
    if len(blob) < _HEAD.size + 4:
        raise EncodingError("LZ container truncated")
    (n_bytes, n_tokens, n_literals, n_matches,
     lit_mode, len_mode, off_mode) = _HEAD.unpack_from(blob, 0)
    off = _HEAD.size
    (flag_byte_count,) = struct.unpack_from("<I", blob, off)
    off += 4
    if off + flag_byte_count > len(blob):
        raise EncodingError("LZ flag stream truncated")
    flag_bytes = np.frombuffer(blob, dtype=np.uint8, count=flag_byte_count, offset=off)
    off += flag_byte_count
    flags = unpack_to_bits(flag_bytes, int(n_tokens))
    offsets, off = _unpack_stream(blob, off, off_mode, int(n_matches), np.uint16, True)
    lengths, off = _unpack_stream(blob, off, len_mode, int(n_matches), np.uint8, False)
    literals, off = _unpack_stream(blob, off, lit_mode, int(n_literals), np.uint8, False)
    tokens = LZTokens(
        flags=flags.astype(np.uint8),
        literals=literals.copy(),
        offsets=offsets.copy(),
        lengths=lengths.copy(),
        n_bytes=int(n_bytes),
    )
    return lz_expand(tokens).tobytes()
