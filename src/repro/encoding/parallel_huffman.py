"""Codebook construction without a heap: the GPU-friendly path.

cuSZ builds its Huffman tree "sequentially with a single GPU thread"
(Section II-A) -- the paper names this a compression bottleneck, fixed in
the authors' follow-up work [15] by generating codeword *lengths* directly
from the sorted frequency array.  This module implements that scheme:

1. sort the nonzero frequencies (data-parallel on a GPU);
2. run the **Moffat-Katajainen in-place algorithm** over the sorted array --
   O(alphabet) work with no tree and no heap, the only sequential step, and
   it touches the (tiny) alphabet rather than the data;
3. assign canonical codes with prefix sums (data-parallel again).

The produced lengths are *optimal* (same weighted cost as true Huffman) but
may differ from the heap construction in tie-breaking; since the decoder
only ever sees canonical lengths, the two constructions interoperate.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import EncodingError
from .huffman import CanonicalCodebook, _from_lengths

__all__ = ["mk_code_lengths_sorted", "build_codebook_parallel"]


def mk_code_lengths_sorted(sorted_freqs: np.ndarray) -> np.ndarray:
    """Optimal codeword lengths for frequencies sorted ascending.

    The three-phase in-place Moffat-Katajainen algorithm: (1) pair merging
    with parent pointers stored over the frequency array, (2) parent
    pointers to depths, (3) depths to per-leaf lengths.  Returns lengths
    aligned with the (ascending) input order, i.e. non-increasing.
    """
    a = np.asarray(sorted_freqs, dtype=np.int64).copy()
    n = int(a.size)
    if n == 0:
        raise EncodingError("no symbols")
    if np.any(a <= 0):
        raise EncodingError("sorted_freqs must be strictly positive")
    if np.any(a[1:] < a[:-1]):
        raise EncodingError("frequencies must be sorted ascending")
    if n == 1:
        return np.array([1], dtype=np.int64)
    if n == 2:
        return np.array([1, 1], dtype=np.int64)

    # Phase 1: merge; a[j] becomes the parent index for merged nodes.
    a[0] += a[1]
    root, leaf = 0, 2
    for nxt in range(1, n - 1):
        # first child
        if leaf >= n or a[root] < a[leaf]:
            a[nxt] = a[root]
            a[root] = nxt
            root += 1
        else:
            a[nxt] = a[leaf]
            leaf += 1
        # second child
        if leaf >= n or (root < nxt and a[root] < a[leaf]):
            a[nxt] += a[root]
            a[root] = nxt
            root += 1
        else:
            a[nxt] += a[leaf]
            leaf += 1

    # Phase 2: parent pointers -> internal node depths.
    a[n - 2] = 0
    for j in range(n - 3, -1, -1):
        a[j] = a[a[j]] + 1

    # Phase 3: internal depths -> leaf counts -> per-leaf depths.
    avail, used, depth = 1, 0, 0
    root = n - 2
    nxt = n - 1
    while avail > 0:
        while root >= 0 and a[root] == depth:
            used += 1
            root -= 1
        while avail > used:
            a[nxt] = depth
            nxt -= 1
            avail -= 1
        avail = 2 * used
        used = 0
        depth += 1

    # a[0..n-1] now holds leaf depths, non-increasing: a[i] is the length of
    # the i-th smallest frequency (smallest frequency -> longest code).
    return a.copy()


def build_codebook_parallel(freqs: np.ndarray) -> CanonicalCodebook:
    """Canonical codebook via sort + Moffat-Katajainen (no heap, no tree).

    Produces the same interface as :func:`repro.encoding.huffman.
    build_codebook`; lengths are optimal (equal weighted cost) though
    tie-broken differently, and the canonical materialization is shared.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    symbols = np.flatnonzero(freqs)
    if symbols.size == 0:
        raise EncodingError("cannot build a codebook from an all-zero histogram")
    order = np.argsort(freqs[symbols], kind="stable")
    sorted_syms = symbols[order]
    lengths_sorted = mk_code_lengths_sorted(freqs[sorted_syms])
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    # MK emits lengths aligned to ascending frequency: smallest freq gets
    # the longest code.
    lengths[sorted_syms] = lengths_sorted
    if lengths.max() > 63:
        raise EncodingError("code length exceeds 63 bits")
    return _from_lengths(lengths)
