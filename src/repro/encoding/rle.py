"""Run-length encoding of quant-codes (the Workflow-RLE stage).

The paper implements RLE with ``thrust::reduce_by_key``: consecutive equal
values collapse into (value, count) pairs.  The vectorized equivalent finds
run boundaries with one comparison against the shifted stream and recovers
lengths from the boundary indices -- the same change-point decomposition a
segmented GPU reduce performs.

Run lengths are stored in a fixed-width integer ("the metadata of RLE
output"); runs longer than the dtype maximum are split so any stream fits.
By default the metadata is kept raw (the paper disables metadata compression
in GPU processing); the workflow layer may optionally Huffman-encode the
values and/or lengths afterwards (the "+VLE" stage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import EncodingError

__all__ = ["RunLengthEncoded", "rle_encode", "rle_decode", "expected_rle_bits"]


@dataclass
class RunLengthEncoded:
    """(value, count) representation of a symbol stream."""

    values: np.ndarray
    lengths: np.ndarray
    n_symbols: int

    @property
    def n_runs(self) -> int:
        return int(self.values.size)

    @property
    def mean_run_length(self) -> float:
        return self.n_symbols / self.n_runs if self.n_runs else 0.0

    def payload_bytes(self) -> int:
        """Raw storage footprint: values + lengths at their native widths."""
        return int(self.values.nbytes + self.lengths.nbytes)


def rle_encode(symbols: np.ndarray, length_dtype=np.uint16) -> RunLengthEncoded:
    """Collapse a stream into maximal runs, splitting overlong ones.

    ``length_dtype`` bounds a single run's count; longer runs become several
    back-to-back runs of the same value (decode concatenates them back, so
    round-trip is exact even though such runs are no longer maximal).
    """
    symbols = np.asarray(symbols).reshape(-1)
    if symbols.size == 0:
        raise EncodingError("cannot RLE-encode an empty stream")
    change = np.flatnonzero(symbols[1:] != symbols[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [symbols.size]))
    values = symbols[starts]
    lengths = (ends - starts).astype(np.int64)

    max_len = int(np.iinfo(length_dtype).max)
    if int(lengths.max()) > max_len:
        pieces = (lengths + max_len - 1) // max_len
        values = np.repeat(values, pieces)
        split_lengths = np.full(int(pieces.sum()), max_len, dtype=np.int64)
        # The last piece of each original run carries the remainder.
        last_piece = np.cumsum(pieces) - 1
        remainder = lengths - (pieces - 1) * max_len
        split_lengths[last_piece] = remainder
        lengths = split_lengths
    return RunLengthEncoded(
        values=values.copy(),
        lengths=lengths.astype(length_dtype),
        n_symbols=int(symbols.size),
    )


def rle_decode(encoded: RunLengthEncoded, out_dtype=None) -> np.ndarray:
    """Expand (value, count) pairs back into the symbol stream."""
    if encoded.values.size != encoded.lengths.size:
        raise EncodingError("values/lengths size mismatch")
    out = np.repeat(encoded.values, encoded.lengths.astype(np.int64))
    if out.size != encoded.n_symbols:
        raise EncodingError(
            f"RLE stream expands to {out.size} symbols, expected {encoded.n_symbols}"
        )
    return out.astype(out_dtype) if out_dtype is not None else out


def expected_rle_bits(symbols: np.ndarray, value_bits: int, length_bits: int) -> int:
    """Exact RLE output size in bits without materializing the encoding.

    Used by the workflow selector to compare ⟨b⟩_RLE against the Huffman
    bit-length estimate (Section III-B.1).  Mirrors :func:`rle_encode`'s
    run-splitting: a run longer than the ``length_bits``-wide maximum costs
    one (value, count) pair per split piece, so the count here matches what
    the encoder actually emits on long-run data.
    """
    symbols = np.asarray(symbols).reshape(-1)
    if symbols.size == 0:
        return 0
    change = np.flatnonzero(symbols[1:] != symbols[:-1]) + 1
    max_len = (1 << min(length_bits, 62)) - 1
    if max_len >= symbols.size:  # no run can need splitting
        n_runs = change.size + 1
    else:
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [symbols.size]))
        lengths = ends - starts
        n_runs = int(np.sum((lengths + max_len - 1) // max_len))
    return n_runs * (value_bits + length_bits)
