"""Parallel batch/block compression engine (worker pool + shared cache).

Public surface:

* :class:`CompressionEngine` -- submit/result futures over a thread pool
  with bounded in-flight backpressure and deterministic ordering;
* :class:`QuantCache` / :func:`cache_scope` -- the cross-block
  codebook/histogram cache keyed by quant-code distribution fingerprint;
* :func:`default_jobs` -- the worker count used when none is requested;
* :func:`run_scaling_sweep` / :class:`ScalingReport` -- worker-count sweep
  with a per-point CPU-vs-lock-wait breakdown (``repro obs scaling``).

``repro.engine.core`` is imported lazily: :mod:`repro.core.workflow` pulls
in the cache hooks at import time, and an eager import here would close a
cycle back through :mod:`repro.core.compressor`.
"""

from __future__ import annotations

from .cache import QuantCache, active_cache, cache_scope, cached_codebook, cached_histogram

__all__ = [
    "CompressionEngine",
    "default_jobs",
    "QuantCache",
    "active_cache",
    "cache_scope",
    "cached_codebook",
    "cached_histogram",
    "ScalingPoint",
    "ScalingReport",
    "run_scaling_sweep",
]

_LAZY = {"CompressionEngine", "default_jobs"}
_LAZY_DIAG = {"ScalingPoint", "ScalingReport", "run_scaling_sweep"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import core

        return getattr(core, name)
    if name in _LAZY_DIAG:
        from . import diagnostics

        return getattr(diagnostics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
