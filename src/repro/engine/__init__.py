"""Parallel batch/block compression engine (executor backends + shared cache).

Public surface:

* :class:`CompressionEngine` -- submit/result futures with bounded in-flight
  backpressure and deterministic ordering, over a pluggable executor backend
  (``serial`` / ``thread`` / ``process``);
* :func:`get_executor` -- the single backend-resolution path (explicit arg >
  config ``backend`` field > ``REPRO_ENGINE_BACKEND`` env > ``thread``);
* :class:`ExecutorBackend` / :data:`BACKEND_NAMES` -- the backend protocol
  and the valid names;
* :class:`QuantCache` / :func:`cache_scope` -- the cross-block
  codebook/histogram cache keyed by quant-code distribution fingerprint;
* :func:`default_jobs` -- the worker count used when none is requested;
* :func:`run_scaling_sweep` / :func:`compare_backends` /
  :class:`ScalingReport` -- worker-count sweeps with per-point
  CPU-vs-lock-wait-vs-IPC breakdowns (``repro obs scaling``).

``repro.engine.core`` is imported lazily: :mod:`repro.core.workflow` pulls
in the cache hooks at import time, and an eager import here would close a
cycle back through :mod:`repro.core.compressor`.
"""

from __future__ import annotations

from .cache import QuantCache, active_cache, cache_scope, cached_codebook, cached_histogram

__all__ = [
    "CompressionEngine",
    "default_jobs",
    "QuantCache",
    "active_cache",
    "cache_scope",
    "cached_codebook",
    "cached_histogram",
    "BACKEND_NAMES",
    "ExecutorBackend",
    "get_executor",
    "resolve_backend_name",
    "ScalingPoint",
    "ScalingReport",
    "compare_backends",
    "run_scaling_sweep",
]

_LAZY = {"CompressionEngine", "default_jobs"}
_LAZY_BACKENDS = {"BACKEND_NAMES", "ExecutorBackend", "get_executor", "resolve_backend_name"}
_LAZY_DIAG = {"ScalingPoint", "ScalingReport", "compare_backends", "run_scaling_sweep"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import core

        return getattr(core, name)
    if name in _LAZY_BACKENDS:
        from . import backends

        return getattr(backends, name)
    if name in _LAZY_DIAG:
        from . import diagnostics

        return getattr(diagnostics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
