"""Pluggable executor backends behind :class:`~repro.engine.CompressionEngine`.

The engine's scheduling contract (bounded in-flight backpressure, ordered
gathering, per-worker accounting) lives in :mod:`repro.engine.core`; *how*
jobs actually execute is delegated to one of three backends:

* ``serial`` -- jobs run inline in the submitting thread (already-resolved
  futures).  Zero scheduling overhead; the reference for byte-identity.
* ``thread`` -- the historical ``concurrent.futures`` thread pool.  Hot
  numpy kernels release the GIL, but the pure-Python stages between them
  serialize, which is why the committed baselines show jobs=4 no faster
  than jobs=1.
* ``process`` -- a ``ProcessPoolExecutor`` fed through a shared-memory
  arena.  Block payloads cross the process boundary as pickle-free
  ``memoryview`` slices over a :class:`multiprocessing.shared_memory`
  segment: the parent copies the field into the segment once, the worker
  maps it as a numpy view, compresses, writes the archive bytes back into
  the segment's output region, and returns a compact result frame (lengths
  + metadata only).  True multi-core scaling at the price of worker spawn
  and dispatch latency.

Backend resolution (:func:`resolve_backend_name`) is one path for the whole
library: an explicit argument wins, then the config's ``backend`` field,
then the ``REPRO_ENGINE_BACKEND`` environment variable, then ``thread``.
:func:`get_executor` turns that resolution into a ready engine, and
:func:`resolve_execution` is the internal front-door helper that decides
between inline-serial execution and a (possibly caller-owned) engine.

Worker-state re-initialization rules for the process backend: workers do
not inherit the parent's context variables, so each job ships a captured
``(pinned archive format, effective telemetry switch)`` pair and re-applies
it around the job body; each worker process keeps its own
:class:`~repro.engine.cache.QuantCache` (hit/miss deltas travel back in the
result frame), and ledger writes inside workers follow the job config's
``ledger`` path (the ledger format is append-only JSONL and tolerant of
concurrent writers).
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.errors import ConfigError, EngineError
from .cache import QuantCache, cache_scope

__all__ = [
    "BACKEND_NAMES",
    "ENV_BACKEND",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ShmArena",
    "get_executor",
    "resolve_backend_name",
    "resolve_execution",
]

#: Every valid backend name, in documentation order.
BACKEND_NAMES = ("serial", "thread", "process")

#: Environment variable consulted when neither the call nor the config
#: names a backend.
ENV_BACKEND = "REPRO_ENGINE_BACKEND"

#: Shared-memory segment name prefix; tests assert that no ``/dev/shm``
#: entry with this prefix survives an engine's shutdown.
SHM_PREFIX = "repro-eng"


def resolve_backend_name(backend=None, config=None) -> str:
    """One resolution path: explicit arg > config field > env var > thread."""
    name = backend
    if name is None and config is not None:
        name = getattr(config, "backend", None)
    if name is None:
        name = os.environ.get(ENV_BACKEND) or None
    if name is None:
        return "thread"
    if name not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown engine backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return name


def get_executor(
    backend=None,
    jobs: int | None = None,
    config=None,
    max_inflight: int | None = None,
    cache_entries: int = 256,
):
    """Resolve to a ready :class:`~repro.engine.CompressionEngine`.

    ``backend`` may be a backend name, ``None`` (resolve via the config's
    ``backend`` field, then ``REPRO_ENGINE_BACKEND``, then ``thread``), or
    an existing engine -- which is returned unchanged, so callers can thread
    one pool through a whole pipeline.
    """
    from .core import CompressionEngine

    if isinstance(backend, CompressionEngine):
        return backend
    return CompressionEngine(
        config, jobs=jobs, max_inflight=max_inflight,
        cache_entries=cache_entries, backend=backend,
    )


def resolve_execution(backend=None, jobs: int | None = None, config=None):
    """Front-door execution resolution: ``(engine | None, own_engine)``.

    ``None`` means "run inline, serially" -- the historical default when no
    parallelism was requested.  An engine is created (``own=True``) when the
    caller names a pool backend or asks for ``jobs>1``; a passed-in engine
    is reused (``own=False``).  A configured/environment backend only picks
    *which* pool serves a parallel request; it never turns a plain serial
    call into a pool dispatch on its own.
    """
    from .core import CompressionEngine

    if isinstance(backend, CompressionEngine):
        return backend, False
    explicit = backend is not None
    name = backend
    if name is None and config is not None:
        name = getattr(config, "backend", None)
    if name is None:
        name = os.environ.get(ENV_BACKEND) or None
    if name is not None and name not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown engine backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    parallel = jobs is not None and int(jobs) != 1
    if name == "serial":
        if parallel and explicit:
            raise ConfigError(
                "backend='serial' is single-worker; drop jobs or pick thread/process"
            )
        return None, False
    if not parallel and not explicit:
        # Config/env backends are advisory: they pick *which* pool serves a
        # parallel request, they never promote a plain serial call.
        return None, False
    return CompressionEngine(config, jobs=jobs, backend=name or "thread"), True


_DEPRECATED_WARNED: set[str] = set()


def deprecate_engine_kwarg(func_name: str, engine):
    """Shim for the legacy scattered ``engine=`` kwargs (warn once per site).

    Returns the engine unchanged so call sites read
    ``backend = deprecate_engine_kwarg("compress_blocks", engine)``.
    """
    if func_name not in _DEPRECATED_WARNED:
        _DEPRECATED_WARNED.add(func_name)
        warnings.warn(
            f"{func_name}(engine=...) is deprecated; pass backend= instead "
            "(a backend name or a CompressionEngine)",
            DeprecationWarning,
            stacklevel=3,
        )
    return engine


@runtime_checkable
class ExecutorBackend(Protocol):
    """What :class:`~repro.engine.CompressionEngine` needs from a backend.

    ``schedule`` receives the job *after* the engine has taken a
    backpressure slot; the backend must guarantee that exactly one of the
    engine's completion hooks runs per scheduled job (the thread/serial
    backends do this via :meth:`CompressionEngine._call_in_ctx`, the process
    backend via its done-callbacks), or the slot leaks.
    """

    name: str

    def schedule(self, fn, args: tuple, kwargs: dict) -> Future: ...

    def shutdown(self, wait: bool = True) -> None: ...


class SerialBackend:
    """Inline execution: jobs run in the submitting thread, futures arrive
    already resolved.  Byte-for-byte the reference the pool backends must
    reproduce."""

    name = "serial"

    def __init__(self, engine) -> None:
        self._engine = engine

    def schedule(self, fn, args, kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(self._engine._call_in_ctx(fn, args, kwargs))
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:
        pass


class ThreadBackend:
    """The historical thread pool: shared-memory cheap, GIL-bound on the
    pure-Python stages between numpy kernels."""

    name = "thread"

    def __init__(self, engine, jobs: int) -> None:
        self._engine = engine
        self._pool = ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="repro-engine"
        )

    def schedule(self, fn, args, kwargs) -> Future:
        ctx = contextvars.copy_context()
        return self._pool.submit(ctx.run, self._engine._call_in_ctx, fn, args, kwargs)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


# ---------------------------------------------------------------------------
# Process backend: shared-memory arena + compact result frames
# ---------------------------------------------------------------------------


def _round_up(nbytes: int, granule: int = 1 << 20) -> int:
    return max(((int(nbytes) + granule - 1) // granule) * granule, granule)


def _out_capacity(in_nbytes: int) -> int:
    """Output-region budget per job: archives are normally far smaller than
    the input, but an incompressible field plus section framing can exceed
    it, so budget input-size plus headroom (overflow falls back to an
    in-frame copy -- correct, just not zero-copy)."""
    return int(in_nbytes) + (int(in_nbytes) >> 3) + (64 << 10)


class ShmArena:
    """Parent-owned pool of reusable shared-memory segments.

    Every segment is created (and therefore unlinked) by the parent, named
    ``repro-eng-<pid>-<token>-<seq>``; :meth:`close` unconditionally unlinks
    every segment ever created, so an engine shutdown -- clean or via
    ``__exit__`` on an exception -- leaves no ``/dev/shm`` entries behind.
    Segments are leased per job and recycled through a free list (first fit
    by capacity) to amortize creation across a batch.
    """

    def __init__(self) -> None:
        self._prefix = f"{SHM_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self._lock = threading.Lock()
        self._free: list = []
        self._all: list = []
        self._seq = 0
        self._closed = False

    def lease(self, nbytes: int):
        from multiprocessing import shared_memory

        size = _round_up(nbytes)
        with self._lock:
            if self._closed:
                raise EngineError("shared-memory arena is closed")
            for i, shm in enumerate(self._free):
                if shm.size >= size:
                    return self._free.pop(i)
            self._seq += 1
            name = f"{self._prefix}-{self._seq}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        with self._lock:
            if self._closed:
                _destroy_segment(shm)
                raise EngineError("shared-memory arena is closed")
            self._all.append(shm)
        return shm

    def release(self, shm) -> None:
        with self._lock:
            if not self._closed:
                self._free.append(shm)
                return
        # Arena already closed (shutdown raced an in-flight completion):
        # close() unlinked the name; just drop the parent mapping.
        try:
            shm.close()
        except Exception:
            pass

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._all)
            self._all.clear()
            self._free.clear()
        for shm in segments:
            _destroy_segment(shm)


def _destroy_segment(shm) -> None:
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass


def _mp_context():
    """Start method for worker processes: ``forkserver`` where available.

    Plain ``fork`` from a multi-threaded parent is deprecated (and
    deadlock-prone); ``forkserver`` forks from a single-threaded server
    process instead, and preloading the compressor there makes every
    subsequent worker spawn a cheap warm fork.  ``spawn`` is the portable
    fallback; ``REPRO_ENGINE_MP_START`` overrides for debugging.
    """
    import multiprocessing as mp

    method = os.environ.get("REPRO_ENGINE_MP_START")
    if method is None:
        method = "forkserver" if "forkserver" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    if method == "forkserver":
        try:
            ctx.set_forkserver_preload(["repro.core.compressor"])
        except Exception:  # pragma: no cover - preload is an optimization
            pass
    return ctx


class ProcessBackend:
    """``ProcessPoolExecutor`` over a shared-memory block arena.

    Compression jobs take the zero-copy path: the parent leases a segment,
    copies the block in (the only copy on the way out), and the worker maps
    a ``memoryview``-backed numpy view -- nothing about the payload is ever
    pickled.  The worker writes the archive into the segment's output region
    and returns a frame of offsets plus metadata; the parent reassembles the
    :class:`~repro.core.compressor.CompressionResult`.  Arbitrary
    :meth:`~repro.engine.CompressionEngine.run` callables use plain pickling
    (decode fan-out payloads are compressed bytes -- already small).

    A worker death (``BrokenProcessPool``) marks the backend broken: every
    in-flight future fails with :class:`EngineError`, backpressure slots are
    released (no hang), and subsequent submissions fail fast.
    """

    name = "process"

    def __init__(self, engine, jobs: int) -> None:
        self._engine = engine
        self._pool = ProcessPoolExecutor(max_workers=jobs, mp_context=_mp_context())
        self._arena = ShmArena()
        self._broken = False

    def schedule(self, fn, args, kwargs) -> Future:
        if self._broken:
            raise EngineError(
                "engine worker process died; the process pool is broken "
                "(create a new CompressionEngine)"
            )
        from ..core.compressor import compress

        wctx = _capture_worker_ctx()
        tel_on = wctx["tel"] if wctx["tel"] is not None else False
        if fn is compress and not kwargs and len(args) == 2:
            data = np.asarray(args[0])
            if data.size > 0 and np.issubdtype(data.dtype, np.floating):
                return self._schedule_compress(data, args[1], wctx, tel_on)
        return self._schedule_pickled(fn, args, kwargs, tel_on)

    def _schedule_compress(self, data, config, wctx, tel_on) -> Future:
        data = np.ascontiguousarray(data)
        out_off = _round_up(data.nbytes, 64)
        lease = self._arena.lease(out_off + _out_capacity(data.nbytes))
        try:
            view = np.frombuffer(lease.buf, dtype=data.dtype, count=data.size)
            np.copyto(view.reshape(data.shape), data)
            desc = {
                "shm": lease.name,
                "dtype": data.dtype.str,
                "shape": data.shape,
                "count": int(data.size),
                "out_off": out_off,
                "out_cap": lease.size - out_off,
                "config": config,
            }
            inner = self._pool.submit(_process_compress_job, desc, wctx)
        except BaseException:
            self._arena.release(lease)
            raise
        outer: Future = Future()

        def finalize(frame):
            result = frame["result"]
            if frame["inline"] is not None:
                result.archive = frame["inline"]
            else:
                result.archive = bytes(
                    lease.buf[out_off : out_off + frame["alen"]]
                )
            return result

        inner.add_done_callback(
            lambda f: self._complete(f, outer, lease, tel_on, finalize)
        )
        return outer

    def _schedule_pickled(self, fn, args, kwargs, tel_on) -> Future:
        wctx = _capture_worker_ctx()
        inner = self._pool.submit(_process_run_job, fn, args, kwargs, wctx)
        outer: Future = Future()
        inner.add_done_callback(
            lambda f: self._complete(f, outer, None, tel_on, lambda fr: fr["result"])
        )
        return outer

    def _complete(self, inner: Future, outer: Future, lease, tel_on, finalize) -> None:
        """Runs on the pool's result thread: settle the outer future, return
        the lease, and release the engine's backpressure slot exactly once."""
        frame = None
        try:
            try:
                frame = inner.result()
            except BrokenProcessPool as exc:
                self._broken = True
                err = EngineError(
                    "engine worker process died mid-batch (killed or crashed); "
                    "in-flight jobs are lost and the engine must be recreated"
                )
                err.__cause__ = exc
                outer.set_exception(err)
                return
            except BaseException as exc:
                outer.set_exception(exc)
                return
            try:
                outer.set_result(finalize(frame))
            except BaseException as exc:
                outer.set_exception(exc)
        finally:
            if lease is not None:
                self._arena.release(lease)
            if frame is not None:
                self._engine._finish_remote_job(
                    frame["pid"], frame["wall"], frame["cpu"],
                    cache_delta=frame["cache"], tel_on=tel_on,
                )
            else:
                self._engine._finish_remote_job(None, 0.0, 0.0, tel_on=False)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        self._arena.close()


def make_backend(name: str, engine, jobs: int):
    if name == "serial":
        return SerialBackend(engine)
    if name == "thread":
        return ThreadBackend(engine, jobs)
    if name == "process":
        return ProcessBackend(engine, jobs)
    raise ConfigError(
        f"unknown engine backend {name!r}; expected one of {BACKEND_NAMES}"
    )


# ---------------------------------------------------------------------------
# Worker-side plumbing (runs in the worker processes)
# ---------------------------------------------------------------------------


def _capture_worker_ctx() -> dict:
    """Snapshot the submit-side context a worker must re-apply.

    Workers get none of the parent's context variables, so the pinned
    archive format (conformance builds) and the *effective* telemetry
    switch are captured per job and re-established around the job body.
    """
    from ..core.archive import current_pinned_format
    from ..telemetry.context import enabled as tel_enabled

    return {"pin": current_pinned_format(), "tel": bool(tel_enabled())}


@contextmanager
def _worker_state(wctx: dict):
    from ..core.archive import pinned_format
    from ..telemetry.context import scope as tel_scope

    with tel_scope(wctx["tel"]), pinned_format(*wctx["pin"]):
        yield


_WORKER_CACHE: QuantCache | None = None
_ATTACHED: dict = {}


def _worker_cache() -> QuantCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = QuantCache(256)
    return _WORKER_CACHE


def _attach_shm(name: str):
    """Attach to a parent-owned segment without registering ownership.

    Attach-side resource-tracker registration (fixed by ``track=False`` in
    newer Pythons) would have the worker's tracker unlink segments the
    parent still owns; unregister right after attaching on interpreters
    that lack the parameter.  Attachments are cached per worker process --
    the arena recycles segment names across jobs.
    """
    shm = _ATTACHED.get(name)
    if shm is not None:
        return shm
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Older interpreters lack track= and register on *attach* too; under
        # forkserver the worker shares the parent's tracker process, so that
        # duplicate registration (and any compensating unregister) corrupts
        # the parent's bookkeeping.  Silence registration for the attach.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    _ATTACHED[name] = shm
    return shm


def _process_compress_job(desc: dict, wctx: dict) -> dict:
    """Worker body for the zero-copy compress path: map, compress, write
    the archive into the segment's output region, frame the metadata."""
    from ..core.compressor import compress

    wall0 = time.perf_counter()
    cpu0 = time.thread_time()
    shm = _attach_shm(desc["shm"])
    view = np.frombuffer(
        shm.buf, dtype=np.dtype(desc["dtype"]), count=desc["count"]
    ).reshape(desc["shape"])
    cache = _worker_cache()
    hits0, misses0 = cache.stats.hits, cache.stats.misses
    with _worker_state(wctx), cache_scope(cache):
        result = compress(view, desc["config"])
    alen = len(result.archive)
    inline = None
    if alen <= desc["out_cap"]:
        out_off = desc["out_off"]
        shm.buf[out_off : out_off + alen] = result.archive
    else:  # pragma: no cover - output region is sized input+headroom
        inline = result.archive
    result.archive = b""
    return {
        "result": result,
        "alen": alen,
        "inline": inline,
        "wall": time.perf_counter() - wall0,
        "cpu": time.thread_time() - cpu0,
        "pid": os.getpid(),
        "cache": (cache.stats.hits - hits0, cache.stats.misses - misses0),
    }


def _process_run_job(fn, args: tuple, kwargs: dict, wctx: dict) -> dict:
    """Worker body for arbitrary ``engine.run`` callables (pickled args)."""
    wall0 = time.perf_counter()
    cpu0 = time.thread_time()
    cache = _worker_cache()
    hits0, misses0 = cache.stats.hits, cache.stats.misses
    with _worker_state(wctx), cache_scope(cache):
        value = fn(*args, **kwargs)
    return {
        "result": value,
        "wall": time.perf_counter() - wall0,
        "cpu": time.thread_time() - cpu0,
        "pid": os.getpid(),
        "cache": (cache.stats.hits - hits0, cache.stats.misses - misses0),
    }


def _hard_exit(code: int = 3) -> None:  # pragma: no cover - dies in the worker
    """Worker-crash test hook: kills the worker process without cleanup."""
    os._exit(code)
