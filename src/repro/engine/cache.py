"""Cross-block codebook/histogram cache keyed by distribution fingerprint.

The coarse-grained block scheme (paper Section V-A.3) compresses many
independent blocks with the same configuration, and neighbouring blocks of
a smooth field frequently produce *identical* quant-code distributions
(plateau regions, repeated fields in a batch, timesteps of a slowly-varying
simulation).  Building the canonical Huffman tree is the one super-linear
stage of the lossless path, and it depends only on the histogram -- so the
engine shares one :class:`QuantCache` across its workers and skips tree
construction whenever a block's distribution fingerprint has been seen
before.

Correctness: codebook construction is deterministic in the frequency
vector (ties broken by symbol order), so keying on the *exact* histogram
bytes guarantees a cache hit returns the byte-identical codebook the miss
path would have built.  Parallel archives therefore stay byte-identical to
serial ones, cache or no cache.

The cache is activated per-thread through a ``contextvars.ContextVar``
(:func:`cache_scope`); code outside an engine worker sees no cache and
builds directly, keeping the single-shot :func:`repro.compress` path
allocation-free.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar

import numpy as np

from ..encoding.histogram import histogram as _histogram
from ..encoding.huffman import (
    CanonicalCodebook,
    DecodeTable,
    build_codebook,
    build_decode_table,
)

__all__ = [
    "QuantCache",
    "CacheStats",
    "active_cache",
    "cache_scope",
    "cached_histogram",
    "cached_codebook",
    "cached_decode_table",
]

#: The cache visible to the current context (engine workers), if any.
_ACTIVE: ContextVar["QuantCache | None"] = ContextVar("repro_engine_cache", default=None)


def _fingerprint(payload: bytes, *tags: int) -> bytes:
    """Digest of a byte payload plus integer discriminator tags."""
    h = hashlib.sha1(payload)
    for tag in tags:
        h.update(int(tag).to_bytes(8, "little", signed=True))
    return h.digest()


class CacheStats:
    """Monotonic hit/miss totals for one :class:`QuantCache`."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheStats(hits={self.hits}, misses={self.misses})"


class QuantCache:
    """Bounded LRU over (histogram fingerprint -> codebook) and
    (quant-stream fingerprint -> histogram).

    Thread-safe: lookups and insertions take the cache lock, but builds run
    outside it -- two workers racing on the same fresh fingerprint may both
    build, which is harmless (the constructions are deterministic and the
    second insert is a no-op overwrite of an identical value).
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"cache needs at least one entry, got {max_entries}")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._books: OrderedDict[bytes, CanonicalCodebook] = OrderedDict()
        self._hists: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._tables: OrderedDict[bytes, DecodeTable] = OrderedDict()
        self.stats = CacheStats()

    # -- internal LRU plumbing ---------------------------------------------

    def _get(self, store: OrderedDict, key: bytes):
        with self._lock:
            value = store.get(key)
            if value is not None:
                store.move_to_end(key)
                self.stats.hits += 1
            else:
                self.stats.misses += 1
            return value

    def _put(self, store: OrderedDict, key: bytes, value) -> None:
        with self._lock:
            store[key] = value
            store.move_to_end(key)
            while len(store) > self.max_entries:
                store.popitem(last=False)

    # -- public lookups ----------------------------------------------------

    def codebook_for(self, freqs: np.ndarray) -> CanonicalCodebook:
        """The canonical codebook for a frequency vector, built at most once."""
        freqs = np.ascontiguousarray(freqs, dtype=np.int64)
        key = _fingerprint(freqs.tobytes(), freqs.size)
        book = self._get(self._books, key)
        if book is None:
            book = build_codebook(freqs)
            self._put(self._books, key, book)
            self._record(hit=False)
        else:
            self._record(hit=True)
        return book

    def histogram_for(self, symbols: np.ndarray, dict_size: int) -> np.ndarray:
        """The quant-code histogram for a symbol stream, computed at most once.

        The returned array is marked read-only: it is shared between blocks,
        and a caller mutating it would silently poison every later hit.
        """
        flat = np.ascontiguousarray(np.asarray(symbols).reshape(-1))
        key = _fingerprint(flat.tobytes(), flat.size, int(dict_size), flat.dtype.num)
        freqs = self._get(self._hists, key)
        if freqs is None:
            freqs = _histogram(flat, dict_size)
            freqs.setflags(write=False)
            self._put(self._hists, key, freqs)
            self._record(hit=False)
        else:
            self._record(hit=True)
        return freqs

    def decode_table_for(self, book: CanonicalCodebook) -> DecodeTable:
        """The two-level decode table for a codebook, built at most once.

        Keyed on the length table alone -- it fully determines the canonical
        codes, hence the decode table.  Decoding many blocks (or chunk
        groups) of one archive reuses a single table.
        """
        lengths = np.ascontiguousarray(book.lengths, dtype=np.uint8)
        key = _fingerprint(lengths.tobytes(), lengths.size)
        table = self._get(self._tables, key)
        if table is None:
            table = build_decode_table(book)
            self._put(self._tables, key, table)
            self._record(hit=False)
        else:
            self._record(hit=True)
        return table

    @staticmethod
    def _record(hit: bool) -> None:
        from ..telemetry import instruments as ins
        from ..telemetry.context import enabled

        if not enabled():
            return
        if hit:
            ins.ENGINE_CACHE_HITS.inc()
        else:
            ins.ENGINE_CACHE_MISSES.inc()

    def clear(self) -> None:
        with self._lock:
            self._books.clear()
            self._hists.clear()
            self._tables.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._books) + len(self._hists) + len(self._tables)


def active_cache() -> QuantCache | None:
    """The cache installed for the current context, or None."""
    return _ACTIVE.get()


@contextmanager
def cache_scope(cache: QuantCache | None):
    """Install ``cache`` for the duration of the block (engine workers)."""
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)


def cached_histogram(symbols: np.ndarray, dict_size: int) -> np.ndarray:
    """Histogram via the active cache, or a direct computation without one."""
    cache = _ACTIVE.get()
    if cache is None:
        return _histogram(symbols, dict_size)
    return cache.histogram_for(symbols, dict_size)


def cached_codebook(freqs: np.ndarray) -> CanonicalCodebook:
    """Codebook via the active cache, or a direct build without one."""
    cache = _ACTIVE.get()
    if cache is None:
        return build_codebook(freqs)
    return cache.codebook_for(freqs)


def cached_decode_table(book: CanonicalCodebook) -> DecodeTable:
    """Decode table via the active cache, or a direct build without one."""
    cache = _ACTIVE.get()
    if cache is None:
        return build_decode_table(book)
    return cache.decode_table_for(book)
