"""The parallel batch/block compression engine.

The paper's coarse-grained block scheme exists so independent blocks can be
processed concurrently; :class:`CompressionEngine` is the scheduler that
finally exploits it.  *How* jobs execute is pluggable
(:mod:`repro.engine.backends`): ``serial`` runs them inline, ``thread`` uses
a ``concurrent.futures`` thread pool (the hot numpy kernels release the GIL,
but the Python glue between them serializes), and ``process`` runs them in
worker processes fed through a shared-memory arena for true multi-core
scaling.

Guarantees (identical across backends):

* **submit/result future semantics** -- :meth:`submit` returns a
  ``concurrent.futures.Future`` resolving to a
  :class:`~repro.core.compressor.CompressionResult`;
* **bounded in-flight backpressure** -- at most ``max_inflight`` jobs are
  queued or running; further submits block the producer instead of buffering
  an unbounded batch in memory;
* **deterministic output ordering** -- :meth:`map`/:meth:`batch` return
  results in submission order, so a parallel multi-block container is
  byte-identical to the serial one;
* **cross-block codebook/histogram cache** -- thread workers share a
  :class:`~repro.engine.cache.QuantCache`; process workers keep a
  per-process cache whose hit/miss deltas fold back into the engine's
  counters;
* **telemetry continuity** -- thread jobs run in a ``contextvars`` copy of
  the submitting context; process jobs re-apply the captured telemetry
  switch and pinned archive format in the worker.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from ..core.compressor import CompressionResult, compress
from ..core.config import CompressorConfig
from ..core.errors import ConfigError
from ..telemetry import instruments as ins
from ..telemetry.context import enabled as _tel_enabled
from .backends import make_backend, resolve_backend_name
from .cache import QuantCache, cache_scope

__all__ = ["CompressionEngine", "default_jobs"]


def default_jobs() -> int:
    """Worker count used when none is requested (the machine's core count)."""
    return max(int(os.cpu_count() or 1), 1)


class CompressionEngine:
    """Schedules independent fields and blocks across a worker pool.

    >>> with CompressionEngine(jobs=4, backend="process") as eng:
    ...     futures = [eng.submit(block) for block in blocks]
    ...     results = [f.result() for f in futures]

    Parameters
    ----------
    config:
        Default :class:`CompressorConfig` bound to jobs that do not bring
        their own.
    jobs:
        Worker count; defaults to the machine's core count (``1`` for the
        serial backend).
    max_inflight:
        Backpressure bound on queued-plus-running jobs; defaults to
        ``2 * jobs``.  :meth:`submit` blocks once the bound is reached.
    cache_entries:
        LRU capacity of the shared codebook/histogram cache.
    backend:
        ``"serial"``, ``"thread"``, or ``"process"``; ``None`` resolves via
        the config's ``backend`` field, then the ``REPRO_ENGINE_BACKEND``
        environment variable, then ``"thread"``.
    """

    def __init__(
        self,
        config: CompressorConfig | None = None,
        jobs: int | None = None,
        max_inflight: int | None = None,
        cache_entries: int = 256,
        backend: str | None = None,
    ) -> None:
        self.config = config or CompressorConfig()
        self.backend = resolve_backend_name(backend, self.config)
        if self.backend == "serial":
            if jobs is not None and int(jobs) > 1:
                raise ConfigError(
                    f"backend='serial' is single-worker; got jobs={jobs} "
                    "(pick 'thread' or 'process' for parallelism)"
                )
            self.jobs = 1
        else:
            self.jobs = int(jobs) if jobs else default_jobs()
        if self.jobs < 1:
            raise ConfigError(f"engine needs at least one worker, got {jobs}")
        self.max_inflight = int(max_inflight) if max_inflight else 2 * self.jobs
        if self.max_inflight < self.jobs:
            raise ConfigError(
                f"max_inflight ({self.max_inflight}) must be >= jobs ({self.jobs}); "
                "a smaller bound would idle workers permanently"
            )
        self.cache = QuantCache(cache_entries)
        self._slots = threading.BoundedSemaphore(self.max_inflight)
        self._depth_lock = threading.Lock()
        self._depth = 0
        self._depth_max = 0
        self._submit_wait = 0.0
        # Per-worker accounting: worker id -> [wall_seconds, cpu_seconds,
        # jobs].  For the thread/serial backends the id is a thread ident and
        # CPU comes from the submitting process's time.thread_time; for the
        # process backend the id is the worker's pid and both numbers are
        # measured inside that worker (thread_time is per-process there).
        # The wall-vs-CPU gap is lock/GIL wait inside jobs -- the quantity
        # the scaling diagnostics exist to measure.
        self._worker_lock = threading.Lock()
        self._workers: dict[int, list] = {}
        self._remote_cache = [0, 0]  # (hits, misses) folded in from workers
        # Queue-depth timeline: (perf_counter, depth) at every transition,
        # bounded so a long-lived engine cannot grow it without limit.
        self._depth_samples: deque[tuple[float, int]] = deque(maxlen=4096)
        self._closed = False
        self._backend = make_backend(self.backend, self, self.jobs)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "CompressionEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown(wait=exc == (None, None, None))
        return False

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) wait for in-flight ones.

        Always releases backend resources: the process backend's
        shared-memory segments are unlinked here, clean exit or not.
        """
        self._closed = True
        self._backend.shutdown(wait=wait)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queue_depth(self) -> int:
        """Jobs currently queued or running (bounded by ``max_inflight``)."""
        with self._depth_lock:
            return self._depth

    def spare_capacity(self) -> int:
        """``max_inflight`` headroom right now (0 means :meth:`submit` would
        block).  The server's admission layer consults this so saturation
        becomes a 429 instead of a blocked event loop."""
        with self._depth_lock:
            return self.max_inflight - self._depth

    @property
    def queue_depth_max(self) -> int:
        """High-water mark of :attr:`queue_depth` over this engine's life."""
        with self._depth_lock:
            return self._depth_max

    @property
    def submit_wait_seconds(self) -> float:
        """Total producer time blocked on the ``max_inflight`` semaphore."""
        with self._depth_lock:
            return self._submit_wait

    def worker_stats(self) -> dict[int, dict]:
        """Per-worker accounting: wall/CPU seconds and job count.

        Keys are thread idents (serial/thread backends) or worker pids
        (process backend).
        """
        with self._worker_lock:
            return {
                tid: {"wall_seconds": w, "cpu_seconds": c, "jobs": n}
                for tid, (w, c, n) in self._workers.items()
            }

    def depth_timeline(self) -> list[tuple[float, int]]:
        """Recent (perf_counter, depth) transition samples, oldest first."""
        with self._depth_lock:
            return list(self._depth_samples)

    def diagnostics_snapshot(self) -> dict:
        """One JSON-serializable view of everything the engine measured.

        The scaling report (:mod:`repro.engine.diagnostics`) and the run
        ledger both consume this; keys are additive, never renamed.
        """
        workers = self.worker_stats()
        wall = sum(w["wall_seconds"] for w in workers.values())
        cpu = sum(w["cpu_seconds"] for w in workers.values())
        with self._worker_lock:
            remote_hits, remote_misses = self._remote_cache
        return {
            "backend": self.backend,
            "jobs": self.jobs,
            "max_inflight": self.max_inflight,
            "queue_depth": self.queue_depth,
            "queue_depth_max": self.queue_depth_max,
            "submit_wait_seconds": self.submit_wait_seconds,
            "worker_wall_seconds": wall,
            "worker_cpu_seconds": cpu,
            "worker_wait_seconds": max(wall - cpu, 0.0),
            "n_worker_threads": len(workers),
            "jobs_completed": sum(w["jobs"] for w in workers.values()),
            "workers": [
                {"tid": tid, **stats} for tid, stats in sorted(workers.items())
            ],
            "cache": {
                "hits": self.cache.stats.hits + remote_hits,
                "misses": self.cache.stats.misses + remote_misses,
            },
        }

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        data: np.ndarray,
        config: CompressorConfig | None = None,
        **overrides,
    ) -> "Future[CompressionResult]":
        """Schedule one compression job; blocks when the pool is saturated.

        The job runs :func:`repro.compress` on a worker under the engine's
        cache.  Thread workers execute in a copy of the submitting context
        (so an open telemetry span in the caller becomes the parent of the
        worker's ``compress`` span, and ``telemetry.scope`` overrides
        propagate); process workers re-apply the captured telemetry switch
        and pinned archive format instead, and take the zero-copy
        shared-memory path for the field payload.
        """
        cfg = config or self.config
        if overrides:
            cfg = cfg.with_(**overrides)
        return self._schedule(compress, data, cfg)

    def run(self, fn, *args, **kwargs) -> "Future":
        """Schedule an arbitrary callable on the worker pool.

        The decode-side counterpart of :meth:`submit`: the callable runs
        under the engine's cache (so decode tables built for one chunk
        group or block are reused by the next), with the same backpressure,
        ordering, and accounting guarantees.  ``decompress(jobs=...)`` uses
        this to fan chunk groups and blocks out across workers.  On the
        process backend the callable and its arguments must be picklable.
        """
        return self._schedule(fn, *args, **kwargs)

    def _schedule(self, fn, *args, **kwargs) -> "Future":
        if self._closed:
            raise ConfigError("engine is shut down; create a new CompressionEngine")
        # Backpressure: block the producer, not memory -- and account for
        # how long it blocked, the saturation signal the scaling report
        # and ledger surface.
        t0 = time.perf_counter()
        self._slots.acquire()
        waited = time.perf_counter() - t0
        with self._depth_lock:
            self._submit_wait += waited
        if _tel_enabled():
            ins.ENGINE_SUBMIT_WAIT.observe(waited)
        self._note_depth(+1)
        try:
            return self._backend.schedule(fn, args, kwargs)
        except BaseException:
            self._slots.release()
            self._note_depth(-1)
            raise

    def batch(
        self,
        fields,
        config: CompressorConfig | None = None,
        **overrides,
    ) -> "list[Future[CompressionResult]]":
        """Submit every field; futures are returned in submission order."""
        return [self.submit(field, config, **overrides) for field in fields]

    def map(
        self,
        fields,
        config: CompressorConfig | None = None,
        **overrides,
    ) -> list[CompressionResult]:
        """Compress every field, returning results in input order."""
        return [f.result() for f in self.batch(fields, config, **overrides)]

    # -- worker side --------------------------------------------------------

    def _call_in_ctx(self, fn, args, kwargs):
        # In-process job body (serial/thread backends).  The whole job --
        # including the completion accounting -- runs in the submit-time
        # context copy, so a caller's telemetry scope override governs the
        # engine counters too, not just the inner spans.
        wall0 = time.perf_counter()
        cpu0 = time.thread_time()
        try:
            with cache_scope(self.cache):
                return fn(*args, **kwargs)
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.thread_time() - cpu0
            self._record_worker(threading.get_ident(), wall, cpu)
            self._slots.release()
            self._note_depth(-1)
            if _tel_enabled():
                ins.ENGINE_JOBS.inc()
                ins.ENGINE_WORKER_SECONDS.inc(wall, kind="wall")
                ins.ENGINE_WORKER_SECONDS.inc(cpu, kind="cpu")

    def _finish_remote_job(
        self,
        worker_id: int | None,
        wall: float,
        cpu: float,
        cache_delta: tuple[int, int] | None = None,
        tel_on: bool = False,
    ) -> None:
        # Process-backend completion hook (runs on the pool's result
        # thread, which has no submit-time context -- telemetry intent was
        # captured at submit as ``tel_on``).  A failed job has no worker
        # frame: still release the slot so the batch cannot hang, but skip
        # the stats.
        if worker_id is not None:
            self._record_worker(worker_id, wall, cpu)
            if cache_delta is not None:
                with self._worker_lock:
                    self._remote_cache[0] += int(cache_delta[0])
                    self._remote_cache[1] += int(cache_delta[1])
        self._slots.release()
        self._note_depth(-1)
        if tel_on and worker_id is not None:
            ins.ENGINE_JOBS.inc()
            ins.ENGINE_WORKER_SECONDS.inc(wall, kind="wall")
            ins.ENGINE_WORKER_SECONDS.inc(cpu, kind="cpu")

    def _record_worker(self, worker_id: int, wall: float, cpu: float) -> None:
        with self._worker_lock:
            slot = self._workers.setdefault(worker_id, [0.0, 0.0, 0])
            slot[0] += wall
            slot[1] += cpu
            slot[2] += 1

    def _note_depth(self, delta: int) -> None:
        with self._depth_lock:
            self._depth += delta
            depth = self._depth
            if depth > self._depth_max:
                self._depth_max = depth
            depth_max = self._depth_max
            self._depth_samples.append((time.perf_counter(), depth))
        if _tel_enabled():
            ins.ENGINE_QUEUE_DEPTH.set_value(depth)
            ins.ENGINE_QUEUE_DEPTH_MAX.set_value(depth_max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressionEngine(backend={self.backend!r}, jobs={self.jobs}, "
            f"max_inflight={self.max_inflight}, depth={self.queue_depth}, "
            f"cache={self.cache.stats!r})"
        )
