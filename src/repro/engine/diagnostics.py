"""Engine scaling diagnostics: where does parallel time actually go?

The committed thread-pool baselines show ``jobs=4`` no faster than
``jobs=1`` -- a GIL-bound thread pool over pure-Python/NumPy stages.  This
module quantifies that ceiling per executor backend so the choice has data
behind it:

* :func:`run_scaling_sweep` runs an identical batch workload at each
  requested worker count on a fresh :class:`CompressionEngine` (any
  backend) and folds the engine's per-worker accounting (``perf_counter``
  wall vs ``time.thread_time`` CPU, semaphore wait, queue-depth high-water)
  into a :class:`ScalingReport`;
* the report's speedup curve comes with a per-point breakdown that tells
  the two failure stories apart: ``worker_cpu_seconds`` is real compute,
  ``lock_wait_seconds`` (worker wall minus worker CPU) is GIL/lock stall --
  the *thread* backend's signature -- and ``ipc_overhead_seconds`` (parent
  wall beyond the workers' amortized share) is dispatch, shared-memory
  copy-in, and result-frame cost -- the *process* backend's tax;
* :func:`compare_backends` sweeps several backends over the same workload
  and :func:`recommend_backend` turns the curves into a one-word answer.

``repro obs scaling --jobs 1,2,4 --backends thread,process`` is the CLI
front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import CompressorConfig
from ..telemetry.log import get_logger
from .core import CompressionEngine

__all__ = [
    "ScalingPoint",
    "ScalingReport",
    "compare_backends",
    "make_sweep_fields",
    "recommend_backend",
    "run_scaling_sweep",
]

_log = get_logger("repro.engine.diagnostics")


@dataclass(frozen=True)
class ScalingPoint:
    """One worker-count measurement of the sweep workload."""

    jobs: int
    wall_seconds: float
    worker_wall_seconds: float
    worker_cpu_seconds: float
    lock_wait_seconds: float
    submit_wait_seconds: float
    queue_depth_max: int
    n_worker_threads: int
    jobs_completed: int
    speedup: float
    efficiency: float
    ipc_overhead_seconds: float = 0.0
    backend: str = "thread"

    @property
    def cpu_fraction(self) -> float:
        """Fraction of in-job worker time that was real CPU work."""
        if self.worker_wall_seconds <= 0.0:
            return 0.0
        return self.worker_cpu_seconds / self.worker_wall_seconds

    def to_json(self) -> dict:
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "worker_wall_seconds": self.worker_wall_seconds,
            "worker_cpu_seconds": self.worker_cpu_seconds,
            "lock_wait_seconds": self.lock_wait_seconds,
            "submit_wait_seconds": self.submit_wait_seconds,
            "queue_depth_max": self.queue_depth_max,
            "n_worker_threads": self.n_worker_threads,
            "jobs_completed": self.jobs_completed,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "cpu_fraction": self.cpu_fraction,
            "ipc_overhead_seconds": self.ipc_overhead_seconds,
            "backend": self.backend,
        }


@dataclass
class ScalingReport:
    """Speedup curve plus the per-point CPU-vs-wait breakdown."""

    n_fields: int
    field_shape: tuple[int, ...]
    field_bytes: int
    repeats: int
    points: list[ScalingPoint] = field(default_factory=list)
    backend: str = "thread"

    def to_json(self) -> dict:
        return {
            "workload": {
                "n_fields": self.n_fields,
                "field_shape": list(self.field_shape),
                "field_bytes": self.field_bytes,
                "repeats": self.repeats,
                "backend": self.backend,
            },
            "points": [p.to_json() for p in self.points],
            "verdict": self.verdict(),
        }

    def verdict(self) -> str:
        """One-line reading of the curve, naming the *backend-specific* wall.

        A thread backend that stalls is GIL/lock-bound (waiting inside
        jobs); a process backend that stalls pays IPC overhead (dispatch +
        shared-memory traffic outside the jobs).  Reporting them under one
        label would point the user at the wrong fix, so the verdict keys on
        the backend.
        """
        if len(self.points) < 2:
            return "single point; no curve to judge"
        last = self.points[-1]
        if last.efficiency >= 0.7:
            return f"scales: {last.speedup:.2f}x at jobs={last.jobs}"
        if self.backend == "process":
            if last.ipc_overhead_seconds > 0.5 * last.wall_seconds:
                return (
                    f"process backend pays IPC overhead: jobs={last.jobs} spends "
                    f"{last.ipc_overhead_seconds:.3f} s of {last.wall_seconds:.3f} s "
                    "on dispatch/shared-memory traffic; use bigger blocks or "
                    "fewer, larger jobs"
                )
        elif last.lock_wait_seconds > last.worker_cpu_seconds:
            return (
                f"thread backend is GIL-bound: jobs={last.jobs} spends "
                f"{last.lock_wait_seconds:.3f} s waiting vs "
                f"{last.worker_cpu_seconds:.3f} s computing; "
                "try backend='process'"
            )
        return (
            f"sub-linear: {last.speedup:.2f}x at jobs={last.jobs} "
            f"(efficiency {last.efficiency:.0%})"
        )

    def render(self) -> str:
        """Speedup curve (ASCII) plus the breakdown table and verdict."""
        from ..bench.harness import ascii_series, format_table

        rows = [
            [p.jobs, f"{p.wall_seconds * 1e3:.1f}", f"{p.speedup:.2f}",
             f"{p.efficiency:.0%}", f"{p.worker_cpu_seconds * 1e3:.1f}",
             f"{p.lock_wait_seconds * 1e3:.1f}",
             f"{p.ipc_overhead_seconds * 1e3:.1f}",
             f"{p.submit_wait_seconds * 1e3:.1f}", p.queue_depth_max]
            for p in self.points
        ]
        table = format_table(
            ["jobs", "wall ms", "speedup", "eff", "cpu ms",
             "lock-wait ms", "ipc ms", "submit-wait ms", "depth max"],
            rows,
            title=(
                f"engine scaling · backend={self.backend} · {self.n_fields} "
                f"fields of {self.field_shape} ({self.field_bytes} B each), "
                f"best of {self.repeats}"
            ),
        )
        x = [float(p.jobs) for p in self.points]
        curve = ascii_series(
            x,
            {
                "speedup": [p.speedup for p in self.points],
                "ideal": [p.jobs / self.points[0].jobs for p in self.points],
            },
            width=48,
            height=10,
            title="speedup vs jobs",
        )
        return f"{table}\n\n{curve}\n\nverdict: {self.verdict()}"


def make_sweep_fields(
    n_fields: int, shape: tuple[int, ...], seed: int = 0
) -> list[np.ndarray]:
    """Deterministic, mutually distinct smooth fields for the sweep.

    Each field gets its own seed so the engine's histogram/codebook cache
    cannot short-circuit the workload into a cache-hit microbenchmark.
    """
    fields = []
    x = np.linspace(0.0, 8.0, shape[-1], dtype=np.float32)
    for k in range(n_fields):
        rng = np.random.default_rng(seed + k)
        base = rng.normal(0.0, 0.05, shape).astype(np.float32)
        base += np.sin(x + k).astype(np.float32)  # broadcast along last axis
        fields.append(base)
    return fields


def run_scaling_sweep(
    jobs_list: tuple[int, ...] = (1, 2, 4, 8),
    n_fields: int = 8,
    shape: tuple[int, ...] = (256, 256),
    eb: float = 1e-3,
    repeats: int = 3,
    config: CompressorConfig | None = None,
    backend: str = "thread",
) -> ScalingReport:
    """Run the identical batch at each worker count; best-of-``repeats``.

    Every point uses a fresh engine (fresh cache, fresh accounting, fresh
    worker pool -- process-backend spawn cost is part of what's measured)
    so the breakdown attributes to that worker count alone.  The baseline
    for speedup is the first entry of ``jobs_list`` (conventionally 1).
    """
    import time

    if not jobs_list:
        raise ValueError("jobs_list must name at least one worker count")
    cfg = config or CompressorConfig(eb=eb)
    fields = make_sweep_fields(n_fields, tuple(shape))
    field_bytes = int(fields[0].nbytes)
    report = ScalingReport(
        n_fields=n_fields, field_shape=tuple(shape),
        field_bytes=field_bytes, repeats=int(repeats), backend=backend,
    )
    baseline_wall: float | None = None
    for jobs in jobs_list:
        eng_jobs = 1 if backend == "serial" else jobs
        best_wall = float("inf")
        best_snap: dict = {}
        for _ in range(max(int(repeats), 1)):
            with CompressionEngine(cfg, jobs=eng_jobs, backend=backend) as engine:
                t0 = time.perf_counter()
                engine.map(fields)
                wall = time.perf_counter() - t0
                snap = engine.diagnostics_snapshot()
            if wall < best_wall:
                best_wall, best_snap = wall, snap
        if baseline_wall is None:
            baseline_wall = best_wall
        speedup = baseline_wall / best_wall if best_wall > 0 else 0.0
        rel_jobs = jobs / jobs_list[0]
        # Parent wall the workers' amortized busy time cannot explain:
        # dispatch, pickling, shared-memory copies, result frames.  ~0 for
        # in-process backends; the process backend's honest overhead line.
        ipc = max(best_wall - best_snap["worker_wall_seconds"] / max(jobs, 1), 0.0)
        point = ScalingPoint(
            jobs=jobs,
            wall_seconds=best_wall,
            worker_wall_seconds=best_snap["worker_wall_seconds"],
            worker_cpu_seconds=best_snap["worker_cpu_seconds"],
            lock_wait_seconds=best_snap["worker_wait_seconds"],
            submit_wait_seconds=best_snap["submit_wait_seconds"],
            queue_depth_max=best_snap["queue_depth_max"],
            n_worker_threads=best_snap["n_worker_threads"],
            jobs_completed=best_snap["jobs_completed"],
            speedup=speedup,
            efficiency=speedup / rel_jobs if rel_jobs > 0 else 0.0,
            ipc_overhead_seconds=ipc,
            backend=backend,
        )
        report.points.append(point)
        _log.event(
            "scaling.point", backend=backend, jobs=jobs, wall_seconds=best_wall,
            speedup=speedup, lock_wait_seconds=point.lock_wait_seconds,
            ipc_overhead_seconds=ipc,
        )
    return report


def compare_backends(
    jobs_list: tuple[int, ...] = (1, 2, 4, 8),
    backends: tuple[str, ...] = ("thread", "process"),
    n_fields: int = 8,
    shape: tuple[int, ...] = (256, 256),
    eb: float = 1e-3,
    repeats: int = 3,
    config: CompressorConfig | None = None,
) -> dict[str, ScalingReport]:
    """One :func:`run_scaling_sweep` per backend over the same workload."""
    return {
        backend: run_scaling_sweep(
            jobs_list, n_fields=n_fields, shape=shape, eb=eb,
            repeats=repeats, config=config, backend=backend,
        )
        for backend in backends
    }


def recommend_backend(reports: dict[str, ScalingReport]) -> str:
    """Pick the backend whose last sweep point ran the workload fastest.

    Ties (within 5%) go to ``thread`` -- same speed without process-spawn
    latency or pickling constraints is the simpler deal.
    """
    if not reports:
        return "thread"
    walls = {
        name: rep.points[-1].wall_seconds
        for name, rep in reports.items() if rep.points
    }
    if not walls:
        return "thread"
    best = min(walls, key=walls.get)
    if best != "thread" and "thread" in walls:
        if walls[best] >= walls["thread"] * 0.95:
            return "thread"
    return best
