"""Engine scaling diagnostics: where does parallel time actually go?

The committed baselines show ``jobs=4`` no faster than ``jobs=1`` -- the
engine is a GIL-bound thread pool over pure-Python/NumPy stages.  Before
the process-based engine lands, this module quantifies that ceiling so
the refactor has a before/after gate:

* :func:`run_scaling_sweep` runs an identical batch workload at each
  requested worker count on a fresh :class:`CompressionEngine` and folds
  the engine's per-worker accounting (``perf_counter`` wall vs
  ``time.thread_time`` CPU, semaphore wait, queue-depth high-water) into
  a :class:`ScalingReport`;
* the report's speedup curve comes with a CPU-bound-vs-wait breakdown
  per point: ``worker_cpu_seconds`` is real compute, ``lock_wait_seconds``
  (worker wall minus worker CPU) is GIL/lock stall, ``submit_wait_seconds``
  is producer backpressure.  A flat speedup curve with ballooning
  ``lock_wait_seconds`` is the GIL signature; a flat curve with growing
  ``submit_wait_seconds`` means ``max_inflight`` is the bottleneck.

``repro obs scaling --jobs 1,2,4`` is the CLI front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import CompressorConfig
from ..telemetry.log import get_logger
from .core import CompressionEngine

__all__ = ["ScalingPoint", "ScalingReport", "make_sweep_fields", "run_scaling_sweep"]

_log = get_logger("repro.engine.diagnostics")


@dataclass(frozen=True)
class ScalingPoint:
    """One worker-count measurement of the sweep workload."""

    jobs: int
    wall_seconds: float
    worker_wall_seconds: float
    worker_cpu_seconds: float
    lock_wait_seconds: float
    submit_wait_seconds: float
    queue_depth_max: int
    n_worker_threads: int
    jobs_completed: int
    speedup: float
    efficiency: float

    @property
    def cpu_fraction(self) -> float:
        """Fraction of in-job worker time that was real CPU work."""
        if self.worker_wall_seconds <= 0.0:
            return 0.0
        return self.worker_cpu_seconds / self.worker_wall_seconds

    def to_json(self) -> dict:
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "worker_wall_seconds": self.worker_wall_seconds,
            "worker_cpu_seconds": self.worker_cpu_seconds,
            "lock_wait_seconds": self.lock_wait_seconds,
            "submit_wait_seconds": self.submit_wait_seconds,
            "queue_depth_max": self.queue_depth_max,
            "n_worker_threads": self.n_worker_threads,
            "jobs_completed": self.jobs_completed,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "cpu_fraction": self.cpu_fraction,
        }


@dataclass
class ScalingReport:
    """Speedup curve plus the per-point CPU-vs-wait breakdown."""

    n_fields: int
    field_shape: tuple[int, ...]
    field_bytes: int
    repeats: int
    points: list[ScalingPoint] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "workload": {
                "n_fields": self.n_fields,
                "field_shape": list(self.field_shape),
                "field_bytes": self.field_bytes,
                "repeats": self.repeats,
            },
            "points": [p.to_json() for p in self.points],
            "verdict": self.verdict(),
        }

    def verdict(self) -> str:
        """One-line reading of the curve: scaling, GIL-bound, or saturated."""
        if len(self.points) < 2:
            return "single point; no curve to judge"
        last = self.points[-1]
        if last.efficiency >= 0.7:
            return f"scales: {last.speedup:.2f}x at jobs={last.jobs}"
        if last.lock_wait_seconds > last.worker_cpu_seconds:
            return (
                f"GIL/lock-bound: jobs={last.jobs} spends "
                f"{last.lock_wait_seconds:.3f} s waiting vs "
                f"{last.worker_cpu_seconds:.3f} s computing"
            )
        return (
            f"sub-linear: {last.speedup:.2f}x at jobs={last.jobs} "
            f"(efficiency {last.efficiency:.0%})"
        )

    def render(self) -> str:
        """Speedup curve (ASCII) plus the breakdown table and verdict."""
        from ..bench.harness import ascii_series, format_table

        rows = [
            [p.jobs, f"{p.wall_seconds * 1e3:.1f}", f"{p.speedup:.2f}",
             f"{p.efficiency:.0%}", f"{p.worker_cpu_seconds * 1e3:.1f}",
             f"{p.lock_wait_seconds * 1e3:.1f}",
             f"{p.submit_wait_seconds * 1e3:.1f}", p.queue_depth_max]
            for p in self.points
        ]
        table = format_table(
            ["jobs", "wall ms", "speedup", "eff", "cpu ms",
             "lock-wait ms", "submit-wait ms", "depth max"],
            rows,
            title=(
                f"engine scaling · {self.n_fields} fields of "
                f"{self.field_shape} ({self.field_bytes} B each), "
                f"best of {self.repeats}"
            ),
        )
        x = [float(p.jobs) for p in self.points]
        curve = ascii_series(
            x,
            {
                "speedup": [p.speedup for p in self.points],
                "ideal": [p.jobs / self.points[0].jobs for p in self.points],
            },
            width=48,
            height=10,
            title="speedup vs jobs",
        )
        return f"{table}\n\n{curve}\n\nverdict: {self.verdict()}"


def make_sweep_fields(
    n_fields: int, shape: tuple[int, ...], seed: int = 0
) -> list[np.ndarray]:
    """Deterministic, mutually distinct smooth fields for the sweep.

    Each field gets its own seed so the engine's histogram/codebook cache
    cannot short-circuit the workload into a cache-hit microbenchmark.
    """
    fields = []
    x = np.linspace(0.0, 8.0, shape[-1], dtype=np.float32)
    for k in range(n_fields):
        rng = np.random.default_rng(seed + k)
        base = rng.normal(0.0, 0.05, shape).astype(np.float32)
        base += np.sin(x + k).astype(np.float32)  # broadcast along last axis
        fields.append(base)
    return fields


def run_scaling_sweep(
    jobs_list: tuple[int, ...] = (1, 2, 4, 8),
    n_fields: int = 8,
    shape: tuple[int, ...] = (256, 256),
    eb: float = 1e-3,
    repeats: int = 3,
    config: CompressorConfig | None = None,
) -> ScalingReport:
    """Run the identical batch at each worker count; best-of-``repeats``.

    Every point uses a fresh engine (fresh cache, fresh accounting) so the
    breakdown attributes to that worker count alone.  The baseline for
    speedup is the first entry of ``jobs_list`` (conventionally 1).
    """
    import time

    if not jobs_list:
        raise ValueError("jobs_list must name at least one worker count")
    cfg = config or CompressorConfig(eb=eb)
    fields = make_sweep_fields(n_fields, tuple(shape))
    field_bytes = int(fields[0].nbytes)
    report = ScalingReport(
        n_fields=n_fields, field_shape=tuple(shape),
        field_bytes=field_bytes, repeats=int(repeats),
    )
    baseline_wall: float | None = None
    for jobs in jobs_list:
        best_wall = float("inf")
        best_snap: dict = {}
        for _ in range(max(int(repeats), 1)):
            with CompressionEngine(cfg, jobs=jobs) as engine:
                t0 = time.perf_counter()
                engine.map(fields)
                wall = time.perf_counter() - t0
                snap = engine.diagnostics_snapshot()
            if wall < best_wall:
                best_wall, best_snap = wall, snap
        if baseline_wall is None:
            baseline_wall = best_wall
        speedup = baseline_wall / best_wall if best_wall > 0 else 0.0
        rel_jobs = jobs / jobs_list[0]
        point = ScalingPoint(
            jobs=jobs,
            wall_seconds=best_wall,
            worker_wall_seconds=best_snap["worker_wall_seconds"],
            worker_cpu_seconds=best_snap["worker_cpu_seconds"],
            lock_wait_seconds=best_snap["worker_wait_seconds"],
            submit_wait_seconds=best_snap["submit_wait_seconds"],
            queue_depth_max=best_snap["queue_depth_max"],
            n_worker_threads=best_snap["n_worker_threads"],
            jobs_completed=best_snap["jobs_completed"],
            speedup=speedup,
            efficiency=speedup / rel_jobs if rel_jobs > 0 else 0.0,
        )
        report.points.append(point)
        _log.event(
            "scaling.point", jobs=jobs, wall_seconds=best_wall,
            speedup=speedup, lock_wait_seconds=point.lock_wait_seconds,
        )
    return report
