"""Simulated GPU substrate: devices, cost model, primitives, pipeline runtime."""

from .costmodel import CostModel, KernelTiming
from .device import A100, V100, DeviceSpec, get_device
from .kernel import KernelProfile, LaunchConfig, occupancy
from .runtime import PipelineReport, run_compression, run_decompression

__all__ = [
    "DeviceSpec",
    "V100",
    "A100",
    "get_device",
    "CostModel",
    "KernelTiming",
    "KernelProfile",
    "LaunchConfig",
    "occupancy",
    "PipelineReport",
    "run_compression",
    "run_decompression",
]
