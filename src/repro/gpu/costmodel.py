"""Roofline-with-latency cost model for simulated kernels.

Time of one kernel invocation on a device:

    time = launch_overhead + max(T_mem, T_compute, T_serial)

* ``T_mem``     = effective DRAM traffic / (BW x mem_efficiency x occupancy'
                  x saturation(payload)) -- the streaming roofline.  The
                  saturation term models the small-field penalty the paper
                  observes on CESM/RTM (Section V-C.2): a kernel needs
                  enough in-flight data to fill the memory pipeline, and the
                  A100 needs *more* (its ``ramp_bytes`` is larger), which is
                  why small fields can run *slower* on the faster part.
* ``T_compute`` = flops / peak FLOPS (rarely binding here; every cuSZ+
                  kernel is O(n) with trivial arithmetic).
* ``T_serial``  = dependent-chain time: ``waves x chain x cycles / clock``
                  where ``waves`` is how many times the grid must be cycled
                  through the device's resident-thread capacity.  This is
                  what bounds Huffman decoding and the coarse-grained
                  Lorenzo reconstruction, and it scales with ``SM x clock``
                  (1.24x V100->A100) rather than bandwidth (1.73x) --
                  reproducing the paper's "Huffman decode stagnates"
                  scaling observation.

Throughput is reported as ``payload_bytes / time`` (GB/s of field data),
matching how the paper's tables are normalized.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .kernel import KernelProfile, occupancy

__all__ = ["KernelTiming", "CostModel"]


@dataclass(frozen=True)
class KernelTiming:
    """Cost-model output for one kernel invocation."""

    name: str
    seconds: float
    payload_bytes: int
    bound: str  # "memory" | "compute" | "serial" | "overhead"

    @property
    def throughput(self) -> float:
        """Field-data throughput in bytes/second."""
        return self.payload_bytes / self.seconds if self.seconds > 0 else float("inf")

    @property
    def gbps(self) -> float:
        """Field-data throughput in GB/s (decimal, as the paper reports)."""
        return self.throughput / 1e9


class CostModel:
    """Convert kernel profiles to simulated times on one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    def saturation(self, payload_bytes: int) -> float:
        """Bandwidth ramp: fraction of peak BW reachable at this size."""
        r = self.device.ramp_bytes
        return payload_bytes / (payload_bytes + r) if payload_bytes > 0 else 0.0

    def time(self, profile: KernelProfile) -> KernelTiming:
        dev = self.device
        occ = occupancy(dev, profile.launch)
        # Memory term.  Occupancy below ~50% starts to starve the memory
        # pipeline; above that, enough warps are in flight to saturate.
        occ_factor = min(1.0, occ / 0.5) if occ > 0 else 1e-6
        bw = dev.mem_bw * profile.mem_efficiency * occ_factor
        bw *= self.saturation(profile.payload_bytes)
        contention = 1.0 + profile.atomic_contention
        t_mem = profile.effective_traffic * contention / bw if bw > 0 else float("inf")
        # Compute term.
        t_compute = profile.flops / dev.fp32_flops if profile.flops else 0.0
        # Serial (latency) term.
        t_serial = 0.0
        if profile.serial_chain > 0 and profile.cycles_per_step > 0:
            chains = max(profile.launch.total_threads // max(profile.concurrency_per_chain, 1), 1)
            capacity = dev.max_resident_threads
            waves = max(-(-chains * profile.concurrency_per_chain // capacity), 1)
            t_serial = (
                waves * profile.serial_chain * profile.cycles_per_step / dev.clock_hz
            )
        body = max(t_mem, t_compute, t_serial)
        if body == t_serial and t_serial > 0 and t_serial >= t_mem:
            bound = "serial"
        elif body == t_mem and t_mem >= t_compute:
            bound = "memory"
        else:
            bound = "compute"
        total = dev.launch_overhead + body
        if body < dev.launch_overhead:
            bound = "overhead"
        return KernelTiming(
            name=profile.name,
            seconds=total,
            payload_bytes=profile.payload_bytes,
            bound=bound,
        )

    def throughput_gbps(self, profile: KernelProfile) -> float:
        """Convenience: simulated field throughput in GB/s."""
        return self.time(profile).gbps
