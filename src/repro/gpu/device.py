"""Simulated GPU device specifications.

The evaluation platforms of the paper (Section V-A.1):

* **V100** (TACC Longhorn, SXM2): 16 GB HBM2 at 900 GB/s, 14.13 FP32 TFLOPS,
  80 SMs, 1.53 GHz boost;
* **A100** (ALCF ThetaGPU, SXM4): 40 GB HBM2e at 1555 GB/s, 19.5 FP32
  TFLOPS, 108 SMs, 1.41 GHz boost.

The paper's headline scaling observation -- cuSZ+ benefits more from memory
bandwidth than from peak FLOPS -- falls directly out of these numbers: the
bandwidth ratio is 1.73x while the clock*SM (latency/issue) ratio is only
1.24x, and Table VII's per-kernel speedups cluster around one or the other
depending on what bounds each kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import DeviceError

__all__ = ["DeviceSpec", "V100", "A100", "get_device", "DEVICES"]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a simulated GPU.

    Attributes
    ----------
    name:
        Marketing name ("V100", "A100").
    mem_bw:
        DRAM bandwidth in bytes/second.
    fp32_flops:
        Peak single-precision FLOP/s.
    sm_count:
        Number of streaming multiprocessors.
    max_threads_per_sm:
        Resident thread limit per SM.
    max_warps_per_sm:
        Resident warp limit per SM.
    shared_mem_per_sm:
        Shared memory per SM in bytes.
    clock_hz:
        Boost clock in Hz (drives latency-bound kernel time).
    warp_size:
        Threads per warp (32 on every NVIDIA part).
    launch_overhead:
        Fixed kernel launch cost in seconds.
    saturation_latency:
        Time scale over which a streaming kernel ramps to full bandwidth;
        ``ramp_bytes = mem_bw * saturation_latency`` is the field size at
        which a kernel reaches half its peak (small-field penalty).
    """

    name: str
    mem_bw: float
    fp32_flops: float
    sm_count: int
    max_threads_per_sm: int
    max_warps_per_sm: int
    shared_mem_per_sm: int
    clock_hz: float
    warp_size: int = 32
    launch_overhead: float = 4e-6
    saturation_latency: float = 8e-6

    @property
    def max_resident_threads(self) -> int:
        """Device-wide resident thread capacity (one 'wave')."""
        return self.sm_count * self.max_threads_per_sm

    @property
    def ramp_bytes(self) -> float:
        """Field size at which streaming kernels reach half of peak BW."""
        return self.mem_bw * self.saturation_latency

    @property
    def issue_rate(self) -> float:
        """Aggregate serial-issue capability (SM count x clock), the scaling
        axis for latency-bound kernels."""
        return self.sm_count * self.clock_hz


V100 = DeviceSpec(
    name="V100",
    mem_bw=900e9,
    fp32_flops=14.13e12,
    sm_count=80,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    shared_mem_per_sm=96 * 1024,
    clock_hz=1.53e9,
)

A100 = DeviceSpec(
    name="A100",
    mem_bw=1555e9,
    fp32_flops=19.5e12,
    sm_count=108,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    shared_mem_per_sm=164 * 1024,
    clock_hz=1.41e9,
)

#: A post-paper device for the conclusion's extrapolation ("cuSZ+ can
#: benefit more from the improvement of memory bandwidth"): H100-SXM5.
H100 = DeviceSpec(
    name="H100",
    mem_bw=3350e9,
    fp32_flops=67e12,
    sm_count=132,
    max_threads_per_sm=2048,
    max_warps_per_sm=64,
    shared_mem_per_sm=228 * 1024,
    clock_hz=1.83e9,
)

DEVICES = {"V100": V100, "A100": A100, "H100": H100}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by name (case-insensitive)."""
    try:
        return DEVICES[name.upper()]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from None
