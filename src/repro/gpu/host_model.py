"""Host-side stage costs: PCIe transfers and CPU dictionary coding.

The paper's Section III-A.3 rejects appending gzip to the GPU pipeline
because "it affects the throughput severely since gzip takes place on
host": the payload must cross PCIe and then crawl through a ~100 MB/s
single-core DEFLATE.  These models price that decision so the
``ablation_host_stage`` experiment can show the collapse quantitatively.

Numbers: PCIe 3.0 x16 sustains ~12 GB/s (V100 systems); PCIe 4.0 x16
~24 GB/s (A100 systems).  zlib-class DEFLATE compresses at roughly
60-120 MB/s per core; Zstd at ~400-700 MB/s.  All are per-stream host
costs that do not scale with the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ["HostLink", "PCIE3_HOST", "PCIE4_HOST", "host_stage_time"]


@dataclass(frozen=True)
class HostLink:
    """Interconnect + host codec speeds for one platform."""

    name: str
    pcie_bw: float  # bytes/s, device -> host
    gzip_bw: float  # bytes/s of *input* through the host DEFLATE stage
    zstd_bw: float  # bytes/s through Zstd (cuSZ Step-9's actual codec)


#: V100-era platform (PCIe 3.0 x16).
PCIE3_HOST = HostLink(name="pcie3", pcie_bw=12e9, gzip_bw=90e6, zstd_bw=500e6)
#: A100-era platform (PCIe 4.0 x16).
PCIE4_HOST = HostLink(name="pcie4", pcie_bw=24e9, gzip_bw=90e6, zstd_bw=500e6)


def host_link_for(device: DeviceSpec) -> HostLink:
    """Platform link matching the device generation."""
    return PCIE3_HOST if device.name == "V100" else PCIE4_HOST


def host_stage_time(
    payload_bytes: int, link: HostLink, codec: str = "zstd"
) -> tuple[float, float]:
    """(transfer_seconds, codec_seconds) for shipping a compressed payload
    to the host and running the dictionary stage there."""
    if payload_bytes < 0:
        raise ValueError("negative payload")
    bw = {"zstd": link.zstd_bw, "gzip": link.gzip_bw}[codec]
    return payload_bytes / link.pcie_bw, payload_bytes / bw
