"""Kernel launch geometry and per-invocation cost profiles.

A :class:`KernelProfile` is what every simulated kernel emits alongside its
(numerically real) result: the memory traffic it actually generated, its
launch geometry, its access-pattern efficiencies, and -- for kernels with
dependent per-thread work -- the length of the serial chain each thread
executes.  The cost model (:mod:`repro.gpu.costmodel`) converts a profile
plus a :class:`~repro.gpu.device.DeviceSpec` into time and throughput.

The profile's efficiency knobs are interpretable GPU quantities:

* ``coalescing_read/write`` -- fraction of DRAM transaction bytes that are
  useful (1.0 = perfectly coalesced; 1/32 = one float per 128-byte line,
  the coarse-grained reconstruction's pathology);
* ``serial_chain`` x ``cycles_per_step`` -- the dependent-instruction chain
  each thread traverses (Huffman decode bit loop, coarse Lorenzo recursion);
* occupancy -- resident-warp limit from block size and shared memory use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import DeviceError
from .device import DeviceSpec

__all__ = ["LaunchConfig", "KernelProfile", "occupancy"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry of a kernel launch."""

    grid_blocks: int
    threads_per_block: int
    shared_per_block: int = 0

    def __post_init__(self) -> None:
        if self.grid_blocks < 1 or self.threads_per_block < 1:
            raise DeviceError("launch must have at least one block and one thread")
        if self.threads_per_block > 1024:
            raise DeviceError("threads_per_block exceeds the 1024 hardware limit")
        if self.shared_per_block < 0:
            raise DeviceError("negative shared memory request")

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block


def occupancy(device: DeviceSpec, launch: LaunchConfig) -> float:
    """Fraction of the SM's resident-thread capacity this launch can fill.

    Classic occupancy calculation limited by (a) resident threads, (b)
    resident warps, and (c) shared memory per block.  Register pressure is
    folded into the per-kernel efficiency constants instead of modeled
    explicitly.
    """
    if launch.shared_per_block > device.shared_mem_per_sm:
        raise DeviceError(
            f"block requests {launch.shared_per_block} B shared memory; "
            f"SM has {device.shared_mem_per_sm} B"
        )
    warps_per_block = -(-launch.threads_per_block // device.warp_size)
    blocks_by_threads = device.max_threads_per_sm // launch.threads_per_block
    blocks_by_warps = device.max_warps_per_sm // warps_per_block
    if launch.shared_per_block > 0:
        blocks_by_shared = device.shared_mem_per_sm // launch.shared_per_block
    else:
        blocks_by_shared = blocks_by_threads
    resident_blocks = max(min(blocks_by_threads, blocks_by_warps, blocks_by_shared), 0)
    if resident_blocks == 0:
        return 0.0
    resident_threads = resident_blocks * launch.threads_per_block
    return min(resident_threads / device.max_threads_per_sm, 1.0)


@dataclass
class KernelProfile:
    """Cost-relevant summary of one kernel invocation.

    ``payload_bytes`` is the figure-of-merit denominator: reported
    throughputs are ``payload_bytes / time`` (the paper reports GB/s of
    *input field data*, not of raw DRAM traffic).
    """

    name: str
    payload_bytes: int
    bytes_read: int
    bytes_written: int
    launch: LaunchConfig
    flops: int = 0
    coalescing_read: float = 1.0
    coalescing_write: float = 1.0
    mem_efficiency: float = 1.0
    serial_chain: int = 0
    cycles_per_step: float = 0.0
    concurrency_per_chain: int = 1
    atomic_contention: float = 0.0
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for knob in ("coalescing_read", "coalescing_write", "mem_efficiency"):
            v = getattr(self, knob)
            if not 0.0 < v <= 1.0:
                raise DeviceError(f"{knob} must be in (0, 1], got {v}")
        if self.payload_bytes < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise DeviceError("byte counts must be non-negative")

    @property
    def effective_traffic(self) -> float:
        """DRAM bytes after coalescing inflation."""
        return (
            self.bytes_read / self.coalescing_read
            + self.bytes_written / self.coalescing_write
        )
