"""cub/thrust-style parallel primitives (functional equivalents).

These mirror the CUDA primitives cuSZ+ builds on -- ``cub::BlockScan``,
``thrust::reduce_by_key``, the cuSPARSE dense/sparse converters -- with the
same semantics, expressed over NumPy.  The decomposition (per-block scans
composed via block aggregates) is exactly how the segmented operations in
:mod:`repro.core.lorenzo` are implemented; these wrappers give them the
primitive-level names and contracts for direct use and testing.
"""

from __future__ import annotations

import numpy as np

from ..core.lorenzo import chunked_cumsum

__all__ = [
    "block_inclusive_scan",
    "block_exclusive_scan",
    "reduce_by_key",
    "dense_to_sparse",
    "sparse_to_dense",
    "warp_shuffle_up",
]


def block_inclusive_scan(x: np.ndarray, block: int) -> np.ndarray:
    """``cub::BlockScan::InclusiveSum`` over independent blocks of a 1-D array."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("block scans operate on 1-D arrays")
    return chunked_cumsum(x, axis=0, chunk=block)


def block_exclusive_scan(x: np.ndarray, block: int) -> np.ndarray:
    """``cub::BlockScan::ExclusiveSum``: inclusive scan shifted right by one
    within each block, with 0 at block heads."""
    inc = block_inclusive_scan(x, block)
    out = np.empty_like(inc)
    out[0] = 0
    out[1:] = inc[:-1]
    starts = np.arange(0, x.shape[0], block)
    out[starts] = 0
    return out


def reduce_by_key(keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``thrust::reduce_by_key`` with sum-reduction over consecutive equal keys.

    Returns (unique consecutive keys, per-run value sums).
    """
    keys = np.asarray(keys).reshape(-1)
    values = np.asarray(values).reshape(-1)
    if keys.shape != values.shape:
        raise ValueError("keys and values must have the same length")
    if keys.size == 0:
        return keys[:0].copy(), values[:0].copy()
    heads = np.concatenate(([0], np.flatnonzero(keys[1:] != keys[:-1]) + 1))
    sums = np.add.reduceat(values, heads)
    return keys[heads].copy(), sums


def dense_to_sparse(dense: np.ndarray, fill=0) -> tuple[np.ndarray, np.ndarray]:
    """cuSPARSE-style gather: (flat indices, values) of entries != fill."""
    flat = np.asarray(dense).reshape(-1)
    idx = np.flatnonzero(flat != fill)
    return idx.astype(np.int64), flat[idx].copy()


def sparse_to_dense(indices: np.ndarray, values: np.ndarray, n: int, fill=0,
                    dtype=None) -> np.ndarray:
    """Scatter sparse entries into a dense 1-D array of length ``n``."""
    indices = np.asarray(indices)
    values = np.asarray(values)
    if indices.shape != values.shape:
        raise ValueError("indices and values must have the same length")
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise IndexError("sparse index out of range")
    out = np.full(n, fill, dtype=dtype or values.dtype)
    out[indices] = values
    return out


def warp_shuffle_up(x: np.ndarray, delta: int, warp: int = 32) -> np.ndarray:
    """``__shfl_up_sync``: lane i of each warp reads lane i - delta.

    Lanes with no source (i < delta) keep their own value, matching the
    CUDA intrinsic's behaviour of returning the caller's value unchanged.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("warp shuffles operate on 1-D arrays")
    if not 0 <= delta < warp:
        raise ValueError(f"delta must be in [0, warp), got {delta}")
    out = x.copy()
    n = x.shape[0]
    lanes = np.arange(n) % warp
    src = np.arange(n) - delta
    movable = (lanes >= delta) & (src >= 0)
    out[movable] = x[src[movable]]
    return out
