"""Simulated pipeline runtime: compose kernels into full (de)compression runs.

This is the machinery behind the paper's Table V/VI/VII rows: run the real
computation kernel by kernel, feed each kernel's cost profile through the
device cost model, and collect a per-stage throughput breakdown plus the
"overall" aggregate (total payload / total time).

Two implementations are runnable:

* ``cuszplus`` -- optimized construction, store-reduced Huffman encoder,
  fine-grained partial-sum reconstruction (and optionally Workflow-RLE);
* ``cusz``     -- the original baseline: unoptimized kernels and the
  coarse-grained sequential-per-chunk reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry as tel
from ..core.config import CompressorConfig
from ..core.dual_quant import Quantized
from ..telemetry import instruments as ins
from .costmodel import CostModel
from .device import DeviceSpec


def _kernels():
    """Deferred kernel imports (repro.kernels modules import repro.gpu)."""
    from ..kernels import (
        gather_outlier_kernel,
        histogram_kernel,
        huffman_decode_kernel,
        huffman_encode_kernel,
        lorenzo_construct_kernel,
        lorenzo_reconstruct_kernel,
        rle_decode_kernel,
        rle_kernel,
        scatter_outlier_kernel,
    )

    return {
        "gather_outlier_kernel": gather_outlier_kernel,
        "histogram_kernel": histogram_kernel,
        "huffman_decode_kernel": huffman_decode_kernel,
        "huffman_encode_kernel": huffman_encode_kernel,
        "lorenzo_construct_kernel": lorenzo_construct_kernel,
        "lorenzo_reconstruct_kernel": lorenzo_reconstruct_kernel,
        "rle_decode_kernel": rle_decode_kernel,
        "rle_kernel": rle_kernel,
        "scatter_outlier_kernel": scatter_outlier_kernel,
    }

__all__ = [
    "StageTiming",
    "PipelineReport",
    "CompressionArtifacts",
    "run_compression",
    "run_decompression",
]


@dataclass(frozen=True)
class StageTiming:
    """One kernel's simulated timing within a pipeline."""

    name: str
    seconds: float
    gbps: float
    bound: str


@dataclass
class PipelineReport:
    """Per-stage breakdown + overall aggregate for one pipeline run."""

    device: str
    impl: str
    workflow: str
    payload_bytes: int
    stages: list[StageTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages)

    @property
    def overall_gbps(self) -> float:
        t = self.total_seconds
        return self.payload_bytes / t / 1e9 if t > 0 else float("inf")

    def stage(self, name: str) -> StageTiming:
        for s in self.stages:
            if s.name == name or s.name.startswith(f"{name}["):
                return s
        raise KeyError(f"pipeline has no stage {name!r}; stages: {[s.name for s in self.stages]}")


@dataclass
class CompressionArtifacts:
    """Everything decompression needs, passed between simulated pipelines."""

    bundle: Quantized
    eb_abs: float
    workflow: str
    book: object | None = None
    encoded: object | None = None
    rle: object | None = None
    data_dtype: np.dtype = np.dtype(np.float32)


def _time(model: CostModel, report: PipelineReport, profile) -> None:
    timing = model.time(profile)
    report.stages.append(
        StageTiming(name=profile.name, seconds=timing.seconds, gbps=timing.gbps,
                    bound=timing.bound)
    )
    if tel.enabled():
        # Attach the cost-model verdict to the enclosing kernel span and
        # histogram the *simulated* device time (wall time measures only the
        # host-side emulation).
        sp = tel.current_span()
        if sp is not None:
            sp.set(simulated_seconds=timing.seconds, simulated_gbps=round(timing.gbps, 3),
                   bound=timing.bound)
        ins.KERNEL_SIM_SECONDS.observe(timing.seconds, kernel=profile.name)
        ins.record_kernel_profile(profile)


def run_compression(
    data: np.ndarray,
    config: CompressorConfig,
    device: DeviceSpec,
    impl: str = "cuszplus",
    workflow: str = "huffman",
    n_sim: int | None = None,
) -> tuple[CompressionArtifacts, PipelineReport]:
    """Run the full simulated compression pipeline on one field.

    ``workflow`` is ``"huffman"`` (default path "a") or ``"rle"`` /
    ``"rle+vle"`` (path "b"; only valid for ``impl="cuszplus"``).
    ``n_sim`` sets the element count profiled (the paper-scale field size);
    the actual ``data`` may be a scaled-down stand-in.
    """
    if impl == "cusz" and workflow != "huffman":
        raise ValueError("original cuSZ supports only the Huffman workflow")
    k = _kernels()
    data = np.asarray(data)
    n_sim = n_sim or int(data.size)
    model = CostModel(device)
    report = PipelineReport(
        device=device.name, impl=impl, workflow=workflow,
        payload_bytes=n_sim * data.dtype.itemsize,
    )

    with tel.span("gpu.run_compression", bytes_in=int(data.nbytes),
                  device=device.name, impl=impl, workflow=workflow):
        with tel.span("kernel.lorenzo_construct"):
            bundle, eb_abs, prof = k["lorenzo_construct_kernel"](
                data, config, impl=impl, n_sim=n_sim
            )
            _time(model, report, prof)

        with tel.span("kernel.gather_outlier"):
            _, prof = k["gather_outlier_kernel"](bundle, n_sim=n_sim)
            _time(model, report, prof)

        art = CompressionArtifacts(
            bundle=bundle, eb_abs=eb_abs, workflow=workflow, data_dtype=data.dtype
        )
        if workflow == "huffman":
            with tel.span("kernel.histogram"):
                freqs, prof = k["histogram_kernel"](bundle.quant, config.dict_size, n_sim=n_sim)
                _time(model, report, prof)
            with tel.span("kernel.huffman_encode"):
                book, encoded, prof = k["huffman_encode_kernel"](
                    bundle.quant, config, impl=impl, n_sim=n_sim
                )
                _time(model, report, prof)
            art.book, art.encoded = book, encoded
        else:
            with tel.span("kernel.rle"):
                rle, prof = k["rle_kernel"](bundle.quant, config, n_sim=n_sim)
                _time(model, report, prof)
            art.rle = rle
            if workflow == "rle+vle":
                # VLE over run values: a much smaller stream (n_runs symbols).
                runs_sim = max(int(rle.n_runs * (n_sim / data.size)), 1)
                with tel.span("kernel.histogram"):
                    _, prof = k["histogram_kernel"](rle.values, config.dict_size, n_sim=runs_sim)
                    _time(model, report, prof)
                with tel.span("kernel.huffman_encode"):
                    book, encoded, prof = k["huffman_encode_kernel"](
                        rle.values, config, impl=impl, n_sim=runs_sim
                    )
                    _time(model, report, prof)
                art.book, art.encoded = book, encoded
    return art, report


def run_decompression(
    art: CompressionArtifacts,
    config: CompressorConfig,
    device: DeviceSpec,
    impl: str = "cuszplus",
    reconstruct_variant: str | None = None,
    n_sim: int | None = None,
) -> tuple[np.ndarray, PipelineReport]:
    """Run the full simulated decompression pipeline.

    ``reconstruct_variant`` defaults to ``"optimized"`` for cuSZ+ and
    ``"coarse"`` for cuSZ (Table II's comparison points).
    """
    k = _kernels()
    bundle = art.bundle
    n = int(np.prod(bundle.shape))
    n_sim = n_sim or n
    if reconstruct_variant is None:
        reconstruct_variant = "coarse" if impl == "cusz" else "optimized"
    model = CostModel(device)
    report = PipelineReport(
        device=device.name, impl=impl, workflow=art.workflow,
        payload_bytes=n_sim * art.data_dtype.itemsize,
    )

    with tel.span("gpu.run_decompression", device=device.name, impl=impl,
                  workflow=art.workflow):
        if art.workflow == "huffman":
            with tel.span("kernel.huffman_decode"):
                quant, prof = k["huffman_decode_kernel"](
                    art.encoded, art.book, out_dtype=bundle.quant.dtype, n_sim=n_sim
                )
                _time(model, report, prof)
        else:
            if art.workflow == "rle+vle":
                runs_sim = max(int(art.rle.n_runs * (n_sim / n)), 1)
                with tel.span("kernel.huffman_decode"):
                    values, prof = k["huffman_decode_kernel"](
                        art.encoded, art.book, out_dtype=bundle.quant.dtype, n_sim=runs_sim
                    )
                    _time(model, report, prof)
                art.rle.values = values
            with tel.span("kernel.rle_decode"):
                quant, prof = k["rle_decode_kernel"](
                    art.rle, out_dtype=bundle.quant.dtype, n_sim=n_sim
                )
                _time(model, report, prof)

        with tel.span("kernel.scatter_outlier"):
            fused, prof = k["scatter_outlier_kernel"](
                quant, bundle.outlier_indices, bundle.outlier_values, bundle.radius,
                n_sim=n_sim,
            )
            _time(model, report, prof)

        fused_bundle = Quantized(
            quant=quant.reshape(bundle.shape),
            outlier_indices=bundle.outlier_indices,
            outlier_values=bundle.outlier_values,
            shape=bundle.shape,
            chunks=bundle.chunks,
            radius=bundle.radius,
            eb_twice=bundle.eb_twice,
        )
        with tel.span("kernel.lorenzo_reconstruct"):
            out, prof = k["lorenzo_reconstruct_kernel"](
                fused_bundle, variant=reconstruct_variant,
                out_dtype=art.data_dtype, n_sim=n_sim,
            )
            _time(model, report, prof)
    return out, report
