"""Simulated cuSZ/cuSZ+ kernels: real computation + GPU cost profiles."""

from .codebook_kernel import codebook_kernel
from .histogram_kernel import histogram_kernel
from .huffman_kernels import huffman_decode_kernel, huffman_encode_kernel
from .lorenzo_kernels import lorenzo_construct_kernel, lorenzo_reconstruct_kernel
from .outlier_kernels import gather_outlier_kernel, scatter_outlier_kernel
from .rle_kernel import rle_decode_kernel, rle_kernel

__all__ = [
    "codebook_kernel",
    "lorenzo_construct_kernel",
    "lorenzo_reconstruct_kernel",
    "huffman_encode_kernel",
    "huffman_decode_kernel",
    "gather_outlier_kernel",
    "scatter_outlier_kernel",
    "histogram_kernel",
    "rle_kernel",
    "rle_decode_kernel",
]
