"""Calibration constants for the simulated kernel cost profiles.

Every constant here is an *interpretable* GPU quantity (memory-pipeline
efficiency, coalescing fraction, dependent cycles per element) fitted once
against the paper's published **V100** numbers (Tables II, VI, VII).  The
A100 columns, every cuSZ-vs-cuSZ+ ratio, and all cross-dataset variation are
then *predictions* of the model -- that separation is what makes the
reproduction meaningful (see DESIGN.md Section 2 and EXPERIMENTS.md).

Fitting notes (V100, payload = 4 bytes/element fp32):

* ``lorenzo_construct`` moves 6 B/element (read f32, write u16 quant), so
  field throughput = (4/6) x 900 GB/s x eff; eff 0.50-0.55 reproduces the
  paper's 270-330 GB/s.
* cuSZ's *unoptimized* Huffman encoder performs one word-store per symbol
  (uncoalesced, ~32 B of traffic each), which makes it flat at ~55-60 GB/s
  regardless of data -- exactly Table VI's cuSZ column.  The cuSZ+ encoder
  stores only when an output word fills (paper: store transactions inversely
  proportional to CR), so its write traffic is the *payload* (avg-bitlength
  dependent), inflated by sector-granularity coalescing.
* Huffman decode is a dependent bit-walk per symbol: serial-bound with
  cycles/symbol = c0 + c1 x avg_bitlen; it therefore scales with SM x clock
  (1.24x on A100), reproducing the paper's "decode stagnates" observation.
* The coarse-grained Lorenzo reconstruction (original cuSZ) is one thread
  per chunk with stride-(chunk) accesses: coalescing collapses to a few
  percent, which is the whole 16.8 -> 313 GB/s story of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCalibration", "CALIBRATION"]


@dataclass(frozen=True)
class KernelCalibration:
    """Tunable constants for one kernel variant.

    ``mem_efficiency`` -- fraction of peak DRAM bandwidth reachable.
    ``coalescing_read/write`` -- useful fraction of each DRAM transaction.
    ``serial_cycles`` -- dependent cycles per serial step (0 = none);
    occupancy shortfalls of the real kernel are folded in here.
    """

    mem_efficiency: float = 0.5
    coalescing_read: float = 1.0
    coalescing_write: float = 1.0
    serial_cycles: float = 0.0


#: (kernel name, implementation, dimensionality-or-None) -> constants.
CALIBRATION: dict[tuple[str, str, int | None], KernelCalibration] = {
    # --- Lorenzo construction (compression) --------------------------------
    ("lorenzo_construct", "cuszplus", 1): KernelCalibration(mem_efficiency=0.55),
    ("lorenzo_construct", "cuszplus", 2): KernelCalibration(mem_efficiency=0.55),
    ("lorenzo_construct", "cuszplus", 3): KernelCalibration(mem_efficiency=0.50),
    ("lorenzo_construct", "cuszplus", 4): KernelCalibration(mem_efficiency=0.50),
    # cuSZ lacks thread coarsening and in-warp shuffle (Section IV-A.2):
    # lower sustained efficiency, dimension-dependent.
    ("lorenzo_construct", "cusz", 1): KernelCalibration(mem_efficiency=0.35),
    ("lorenzo_construct", "cusz", 2): KernelCalibration(mem_efficiency=0.50),
    ("lorenzo_construct", "cusz", 3): KernelCalibration(mem_efficiency=0.34),
    ("lorenzo_construct", "cusz", 4): KernelCalibration(mem_efficiency=0.34),
    # --- outlier gather / scatter ------------------------------------------
    # cuSPARSE dense2sparse: streaming read of the dense delta array plus a
    # compaction scan; partially latency-bound (serial_cycles) which caps
    # the A100 advantage at ~1.45x as observed.
    ("gather_outlier", "any", None): KernelCalibration(
        mem_efficiency=0.25, serial_cycles=3800.0
    ),
    ("scatter_outlier", "any", None): KernelCalibration(
        mem_efficiency=0.75, coalescing_write=1.0 / 16.0
    ),
    # --- histogram -----------------------------------------------------------
    # Replication-based shared-memory histogram; atomic pressure grows with
    # the most-likely-symbol probability p1 (handled by the kernel).
    ("histogram", "any", None): KernelCalibration(mem_efficiency=0.40),
    # --- Huffman encode ------------------------------------------------------
    # cuSZ: one ~32-byte store transaction per symbol (word-per-symbol,
    # uncoalesced) -> write coalescing 1/8 on 4 B/symbol.
    ("huffman_encode", "cusz", None): KernelCalibration(
        mem_efficiency=0.55, coalescing_write=1.0 / 8.0, serial_cycles=9000.0
    ),
    # cuSZ+: stores only completed output words; traffic equals payload bits
    # at sector granularity (1/32 coalescing), plus a serial floor from the
    # variable-length bit stitching.
    ("huffman_encode", "cuszplus", None): KernelCalibration(
        mem_efficiency=0.55, coalescing_write=1.0 / 32.0, serial_cycles=9000.0
    ),
    # --- Huffman decode ------------------------------------------------------
    # Dependent bit-walk; cycles/symbol = c0 + c1 * avg_bitlen set by the
    # kernel from these two constants (serial_cycles = c0; c1 fixed at 1200).
    ("huffman_decode", "any", None): KernelCalibration(
        mem_efficiency=0.40, serial_cycles=12000.0
    ),
    # --- Lorenzo reconstruction (decompression) -----------------------------
    # Original cuSZ: coarse-grained, one thread per chunk, stride-chunk
    # accesses -> catastrophic coalescing (per dimensionality).
    ("lorenzo_reconstruct_coarse", "cusz", 1): KernelCalibration(
        mem_efficiency=0.30, coalescing_read=0.113, coalescing_write=0.113
    ),
    ("lorenzo_reconstruct_coarse", "cusz", 2): KernelCalibration(
        mem_efficiency=0.30, coalescing_read=0.32, coalescing_write=0.32
    ),
    ("lorenzo_reconstruct_coarse", "cusz", 3): KernelCalibration(
        mem_efficiency=0.30, coalescing_read=0.165, coalescing_write=0.165
    ),
    ("lorenzo_reconstruct_coarse", "cusz", 4): KernelCalibration(
        mem_efficiency=0.30, coalescing_read=0.125, coalescing_write=0.125
    ),
    # Proof-of-concept fine-grained kernel (Table II "naive"): shared-memory
    # scan, 1 item per thread, block-sync bound -> clock-limited serial term.
    ("lorenzo_reconstruct_naive", "cuszplus", 1): KernelCalibration(
        mem_efficiency=0.45, serial_cycles=7.4
    ),
    ("lorenzo_reconstruct_naive", "cuszplus", 2): KernelCalibration(
        mem_efficiency=0.45, serial_cycles=49.0
    ),
    ("lorenzo_reconstruct_naive", "cuszplus", 3): KernelCalibration(
        mem_efficiency=0.45, serial_cycles=45.0
    ),
    # Optimized partial-sum kernels (Section IV-B.3): register-resident
    # sequentiality-8, warp shuffles -- near-streaming.
    ("lorenzo_reconstruct", "cuszplus", 1): KernelCalibration(mem_efficiency=0.52),
    ("lorenzo_reconstruct", "cuszplus", 2): KernelCalibration(mem_efficiency=0.51),
    ("lorenzo_reconstruct", "cuszplus", 3): KernelCalibration(mem_efficiency=0.40),
    ("lorenzo_reconstruct", "cuszplus", 4): KernelCalibration(mem_efficiency=0.40),
    # --- RLE (thrust::reduce_by_key) ----------------------------------------
    # Multi-pass (flag, scan, scatter): ~3 passes over the stream; partially
    # latency-bound so the A100 gain is "slightly higher", not 1.7x.
    ("rle", "any", None): KernelCalibration(mem_efficiency=0.28, serial_cycles=1400.0),
}

#: Extra dependent cycles per symbol per codeword *bit* during decode.
HUFFMAN_DECODE_CYCLES_PER_BIT = 1200.0

#: Atomic-contention coefficient for the histogram kernel: effective slowdown
#: factor is (1 + coeff * p1), p1 = probability of the most likely symbol.
HISTOGRAM_CONTENTION_COEFF = 0.6


def get_calibration(kernel: str, impl: str, ndim: int | None) -> KernelCalibration:
    """Look up constants, falling back to impl='any' and ndim=None."""
    for key in (
        (kernel, impl, ndim),
        (kernel, impl, None),
        (kernel, "any", ndim),
        (kernel, "any", None),
    ):
        if key in CALIBRATION:
            return CALIBRATION[key]
    raise KeyError(f"no calibration for kernel {kernel!r} (impl={impl!r}, ndim={ndim})")
