"""Simulated codebook-construction kernel (cuSZ compression Step-6).

cuSZ executes the Huffman-tree build "sequentially with a single GPU
thread" -- a pure clock-bound serial chain over the alphabet.  The
cuSZ+-era replacement ([15], implemented in
:mod:`repro.encoding.parallel_huffman`) sorts the histogram in parallel and
runs only the O(alphabet) Moffat-Katajainen pass serially.

Both profiles are tiny next to the data kernels (alphabet=1024 vs 10^8
elements), which is why Table VII omits the stage; the kernel exists to
quantify exactly that claim (see tests).
"""

from __future__ import annotations

import numpy as np

from ..encoding.huffman import CanonicalCodebook, build_codebook
from ..encoding.parallel_huffman import build_codebook_parallel
from ..gpu.kernel import KernelProfile
from .common import standard_launch

__all__ = ["codebook_kernel"]

#: Dependent cycles per heap operation of the single-thread build
#: (log-depth sift + global memory traffic per node).
_SERIAL_CYCLES_PER_SYMBOL = 4500.0
#: Cycles per symbol of the MK pass (register-resident linear scan).
_MK_CYCLES_PER_SYMBOL = 220.0


def codebook_kernel(
    freqs: np.ndarray,
    impl: str = "cuszplus",
    payload_elements: int | None = None,
) -> tuple[CanonicalCodebook, KernelProfile]:
    """Build the canonical codebook and profile the construction.

    ``payload_elements`` only normalizes the reported throughput (the field
    the codebook serves); the cost itself depends on the alphabet.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    n_symbols = int(np.count_nonzero(freqs))
    payload = (payload_elements or int(freqs.sum())) * 4
    if impl == "cusz":
        book = build_codebook(freqs)
        # One thread, heap of n_symbols entries, ~n log n dependent steps.
        chain = max(int(n_symbols * max(np.log2(max(n_symbols, 2)), 1)), 1)
        profile = KernelProfile(
            name="build_codebook[cusz]",
            payload_bytes=payload,
            bytes_read=int(freqs.nbytes),
            bytes_written=int(freqs.size),
            launch=standard_launch(1, threads_per_block=1),
            serial_chain=chain,
            cycles_per_step=_SERIAL_CYCLES_PER_SYMBOL,
            concurrency_per_chain=1,
            tags={"impl": impl, "alphabet": n_symbols},
        )
    else:
        book = build_codebook_parallel(freqs)
        # Parallel sort is absorbed by the device; the serial MK pass walks
        # the alphabet once.
        profile = KernelProfile(
            name="build_codebook[cuszplus]",
            payload_bytes=payload,
            bytes_read=int(freqs.nbytes) * 2,  # sort passes
            bytes_written=int(freqs.size),
            launch=standard_launch(max(n_symbols, 1)),
            serial_chain=max(n_symbols, 1),
            cycles_per_step=_MK_CYCLES_PER_SYMBOL,
            concurrency_per_chain=1,
            tags={"impl": impl, "alphabet": n_symbols},
        )
    return book, profile
