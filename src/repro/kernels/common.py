"""Shared helpers for simulated kernels.

Kernels in this package do two things at once:

1. run the *real* computation (vectorized NumPy, reusing :mod:`repro.core`
   and :mod:`repro.encoding`) on the data they are given, and
2. emit a :class:`~repro.gpu.kernel.KernelProfile` describing the memory
   traffic and serial work that computation would generate on a GPU.

Because the paper's fields are GBs while this repo executes on MB-scale
synthetic stand-ins, every kernel accepts ``n_sim``: the element count to
*profile at* (the paper's full field size).  Per-element statistics --
bytes moved, average bit length, outlier fraction -- are measured on the
real data and scaled to ``n_sim``, which is sound because they are
size-intensive quantities.
"""

from __future__ import annotations

from ..gpu.kernel import LaunchConfig

__all__ = ["standard_launch", "scale_count", "tag_elements"]

#: Default thread-block size used by all cuSZ/cuSZ+ kernels.
BLOCK_THREADS = 256


def standard_launch(n_threads: int, threads_per_block: int = BLOCK_THREADS,
                    shared_per_block: int = 0) -> LaunchConfig:
    """One thread per work item, 256-thread blocks."""
    n_threads = max(int(n_threads), 1)
    blocks = -(-n_threads // threads_per_block)
    return LaunchConfig(
        grid_blocks=blocks,
        threads_per_block=threads_per_block,
        shared_per_block=shared_per_block,
    )


def scale_count(count: int, n_actual: int, n_sim: int) -> int:
    """Scale a measured count from the executed size to the simulated size."""
    if n_actual <= 0:
        return 0
    return int(round(count * (n_sim / n_actual)))


def tag_elements(profile, n_elements: int):
    """Record the profile-scale element count on a kernel profile.

    The runtime feeds this tag into ``repro_kernel_elements_total`` so the
    profiler can derive per-kernel elements/s and GB/s without re-parsing
    launch geometry.
    """
    profile.tags["elements"] = int(n_elements)
    return profile
