"""Simulated histogram kernel (cuSZ compression Step-5).

Replication-based shared-memory histogram (Gomez-Luna et al. [34]): each
block accumulates into private copies, reducing global atomics.  Remaining
atomic contention grows with the concentration of the distribution --
modeled as a slowdown proportional to p1, the probability of the most
likely symbol (all threads hammering the same bin).
"""

from __future__ import annotations

import numpy as np

from ..encoding.histogram import histogram, most_likely_probability
from ..gpu.kernel import KernelProfile
from .calibration import HISTOGRAM_CONTENTION_COEFF, get_calibration
from .common import standard_launch, tag_elements

__all__ = ["histogram_kernel"]


def histogram_kernel(
    quant: np.ndarray, dict_size: int, n_sim: int | None = None
) -> tuple[np.ndarray, KernelProfile]:
    """Frequency count of quant-codes with an atomic-contention-aware profile."""
    flat = np.asarray(quant).reshape(-1)
    freqs = histogram(flat, dict_size)
    p1 = most_likely_probability(freqs)
    n = int(flat.size)
    n_sim = n_sim or n
    cal = get_calibration("histogram", "any", None)
    profile = KernelProfile(
        name="histogram",
        payload_bytes=n_sim * 4,
        bytes_read=n_sim * flat.dtype.itemsize,
        bytes_written=dict_size * 8,
        launch=standard_launch(n_sim, shared_per_block=dict_size * 4),
        mem_efficiency=cal.mem_efficiency,
        atomic_contention=HISTOGRAM_CONTENTION_COEFF * p1,
        tags={"p1": p1},
    )
    return freqs, tag_elements(profile, n_sim)
