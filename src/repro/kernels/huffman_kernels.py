"""Simulated Huffman encode/decode kernels.

Encode: cuSZ's unoptimized encoder issues one (uncoalesced) word store per
symbol, making its write traffic independent of how well the data compresses
-- which is why Table VI's cuSZ column is flat at ~55-60 GB/s.  cuSZ+
"performs a DRAM store only when a new data unit needs to be written back",
so its store traffic is proportional to the *payload* (i.e. inversely
proportional to the compression ratio), plus a serial floor from the
variable-length bit stitching.

Decode: a dependent bit-walk per symbol (canonical table lookups), hence
serial-bound: time scales with SM x clock across devices, reproducing the
paper's observation that multi-byte Huffman decoding "exhibits a stagnation
in scaling up" from V100 to A100.
"""

from __future__ import annotations

import numpy as np

from ..core.config import CompressorConfig
from ..encoding.histogram import histogram
from ..encoding.huffman import CanonicalCodebook, build_codebook
from ..encoding.huffman_codec import HuffmanEncoded, decode as huff_decode, encode as huff_encode
from ..gpu.kernel import KernelProfile
from .calibration import HUFFMAN_DECODE_CYCLES_PER_BIT, get_calibration
from .common import standard_launch, tag_elements

__all__ = ["huffman_encode_kernel", "huffman_decode_kernel"]


def huffman_encode_kernel(
    quant: np.ndarray,
    config: CompressorConfig,
    impl: str = "cuszplus",
    n_sim: int | None = None,
    book: CanonicalCodebook | None = None,
) -> tuple[CanonicalCodebook, HuffmanEncoded, KernelProfile]:
    """Chunked Huffman encode (cuSZ compression Steps 7-8) with cost profile."""
    flat = np.asarray(quant).reshape(-1)
    if book is None:
        freqs = histogram(flat, config.dict_size)
        book = build_codebook(freqs)
    encoded = huff_encode(flat, book, config.huffman_chunk)
    n = int(flat.size)
    n_sim = n_sim or n
    avg_bits = encoded.total_bits / n
    cal = get_calibration("huffman_encode", impl, None)
    # Field payload normalization uses fp32 element size (paper convention).
    payload = n_sim * 4
    if impl == "cusz":
        # One 4-byte store per symbol; coalescing (from calibration) inflates
        # it to a ~32-byte transaction.
        write_bytes = n_sim * 4
    else:
        # Store-on-word-completion: write bytes equal the encoded payload.
        write_bytes = int(n_sim * avg_bits / 8)
    profile = KernelProfile(
        name=f"huffman_encode[{impl}]",
        payload_bytes=payload,
        bytes_read=n_sim * flat.dtype.itemsize,
        bytes_written=max(write_bytes, 1),
        launch=standard_launch(n_sim),
        coalescing_write=cal.coalescing_write,
        mem_efficiency=cal.mem_efficiency,
        serial_chain=1,
        cycles_per_step=cal.serial_cycles,
        tags={"impl": impl, "avg_bits": avg_bits},
    )
    return book, encoded, tag_elements(profile, n_sim)


def huffman_decode_kernel(
    encoded: HuffmanEncoded,
    book: CanonicalCodebook,
    out_dtype=np.uint16,
    n_sim: int | None = None,
) -> tuple[np.ndarray, KernelProfile]:
    """Chunk-parallel Huffman decode with a serial-bound cost profile."""
    out = huff_decode(encoded, book, out_dtype=out_dtype)
    n = encoded.n_symbols
    n_sim = n_sim or n
    avg_bits = encoded.total_bits / max(n, 1)
    cal = get_calibration("huffman_decode", "any", None)
    payload = n_sim * 4
    profile = KernelProfile(
        name="huffman_decode",
        payload_bytes=payload,
        bytes_read=int(n_sim * avg_bits / 8) + 4 * (n_sim // encoded.chunk_size + 1),
        bytes_written=n_sim * np.dtype(out_dtype).itemsize,
        launch=standard_launch(n_sim),
        mem_efficiency=cal.mem_efficiency,
        serial_chain=1,
        # Dependent cycles per symbol grow with the codeword length walked.
        cycles_per_step=cal.serial_cycles + HUFFMAN_DECODE_CYCLES_PER_BIT * avg_bits,
        tags={"avg_bits": avg_bits},
    )
    return out, tag_elements(profile, n_sim)
