"""Simulated Lorenzo construction/reconstruction kernels.

Construction (compression side) is the fused prequant+predict+postquant
kernel; cuSZ+ improves it with thread coarsening and in-warp shuffles
(Section IV-A.2), modeled as a higher sustained memory efficiency.

Reconstruction (decompression side) comes in the paper's three variants:

* ``coarse``     -- original cuSZ: one thread sequentially reconstructs one
                    whole chunk; stride-(chunk) accesses destroy coalescing.
                    This is the 16.8 GB/s row of Table II.
* ``naive``      -- proof-of-concept fine-grained partial-sum in shared
                    memory, 1 item per thread (Table II "naive").
* ``optimized``  -- cuSZ+'s register-resident partial-sum with sequentiality
                    8 and warp shuffles (Table II "ours"); streaming-bound.

All three produce numerically identical outputs (proved in
tests/test_lorenzo.py); only their cost profiles differ.
"""

from __future__ import annotations

import numpy as np

from ..core.config import CompressorConfig
from ..core.dual_quant import Quantized, fuse_quant_and_outliers, quantize_field
from ..core.lorenzo import lorenzo_reconstruct
from ..gpu.kernel import KernelProfile
from .calibration import get_calibration
from .common import scale_count, standard_launch, tag_elements

__all__ = ["lorenzo_construct_kernel", "lorenzo_reconstruct_kernel"]

#: Per-block synchronization-step counts of the naive shared-memory kernel
#: (scan passes + barriers), per dimensionality.
_NAIVE_BLOCK_STEPS = {1: 512, 2: 96, 3: 120, 4: 140}

#: Outlier storage cost per entry: 4-byte index + 4-byte value (the sparse
#: stream the gather/scatter kernels move).
OUTLIER_ENTRY_BYTES = 8


def lorenzo_construct_kernel(
    data: np.ndarray,
    config: CompressorConfig,
    impl: str = "cuszplus",
    n_sim: int | None = None,
) -> tuple[Quantized, float, KernelProfile]:
    """Fused dual-quantization + Lorenzo prediction kernel.

    Returns the quantized bundle, the resolved absolute error bound, and the
    kernel's cost profile (at ``n_sim`` elements).
    """
    bundle, eb_abs = quantize_field(data, config)
    n = int(data.size)
    n_sim = n_sim or n
    cal = get_calibration("lorenzo_construct", impl, data.ndim)
    payload = n_sim * data.dtype.itemsize
    profile = KernelProfile(
        name=f"lorenzo_construct[{impl}]",
        payload_bytes=payload,
        bytes_read=payload,
        bytes_written=n_sim * bundle.quant.dtype.itemsize
        + scale_count(bundle.n_outliers, n, n_sim) * OUTLIER_ENTRY_BYTES,
        launch=standard_launch(n_sim),
        coalescing_read=cal.coalescing_read,
        coalescing_write=cal.coalescing_write,
        mem_efficiency=cal.mem_efficiency,
        tags={"impl": impl, "ndim": data.ndim},
    )
    return bundle, eb_abs, tag_elements(profile, n_sim)


def lorenzo_reconstruct_kernel(
    bundle: Quantized,
    variant: str = "optimized",
    out_dtype=np.float32,
    n_sim: int | None = None,
) -> tuple[np.ndarray, KernelProfile]:
    """Partial-sum Lorenzo reconstruction (or its baselines).

    ``variant`` is ``"coarse"`` (original cuSZ), ``"naive"`` (shared-memory
    proof of concept) or ``"optimized"`` (cuSZ+).  Outputs are identical;
    profiles differ.
    """
    fused = fuse_quant_and_outliers(
        bundle.quant, bundle.outlier_indices, bundle.outlier_values, bundle.radius
    )
    dq = lorenzo_reconstruct(fused.reshape(bundle.shape), bundle.chunks)
    out = (dq.astype(np.float64) * bundle.eb_twice).astype(out_dtype)

    n = int(np.prod(bundle.shape))
    n_sim = n_sim or n
    ndim = len(bundle.shape)
    payload = n_sim * np.dtype(out_dtype).itemsize
    common = dict(
        payload_bytes=payload,
        bytes_read=n_sim * bundle.quant.dtype.itemsize,
        bytes_written=payload,
    )

    if variant == "coarse":
        cal = get_calibration("lorenzo_reconstruct_coarse", "cusz", ndim)
        chunk_elems = int(np.prod(bundle.chunks))
        n_chunks = -(-n_sim // chunk_elems)
        profile = KernelProfile(
            name="lorenzo_reconstruct[coarse]",
            launch=standard_launch(n_chunks),
            coalescing_read=cal.coalescing_read,
            coalescing_write=cal.coalescing_write,
            mem_efficiency=cal.mem_efficiency,
            tags={"impl": "cusz", "ndim": ndim},
            **common,
        )
    elif variant == "naive":
        cal = get_calibration("lorenzo_reconstruct_naive", "cuszplus", ndim)
        chunk_elems = int(np.prod(bundle.chunks))
        block_threads = min(max(chunk_elems, 32), 1024)
        profile = KernelProfile(
            name="lorenzo_reconstruct[naive]",
            launch=standard_launch(
                n_sim, threads_per_block=block_threads,
                shared_per_block=chunk_elems * 8,
            ),
            mem_efficiency=cal.mem_efficiency,
            serial_chain=_NAIVE_BLOCK_STEPS.get(ndim, 120),
            cycles_per_step=cal.serial_cycles,
            concurrency_per_chain=block_threads,
            tags={"impl": "cuszplus", "ndim": ndim},
            **common,
        )
    elif variant == "optimized":
        cal = get_calibration("lorenzo_reconstruct", "cuszplus", ndim)
        # Sequentiality 8: each thread owns 8 items (Section IV-B.3b).
        profile = KernelProfile(
            name="lorenzo_reconstruct[optimized]",
            launch=standard_launch(-(-n_sim // 8)),
            mem_efficiency=cal.mem_efficiency,
            tags={"impl": "cuszplus", "ndim": ndim},
            **common,
        )
    else:
        raise ValueError(f"unknown reconstruction variant {variant!r}")
    return out, tag_elements(profile, n_sim)
