"""Simulated outlier gather (dense->sparse) and scatter (sparse->dense).

cuSZ+ uses cuSPARSE's dense-to-sparse conversion for the gather during
compression (Section V-C.2) and a trivial scatter during decompression.
The gather streams the whole dense delta array; the scatter touches only
the sparse entries (uncoalesced writes into the dense quant field).
"""

from __future__ import annotations

import numpy as np

from ..core.dual_quant import Quantized
from ..gpu.kernel import KernelProfile
from .calibration import get_calibration
from .common import scale_count, standard_launch, tag_elements
from .lorenzo_kernels import OUTLIER_ENTRY_BYTES

__all__ = ["gather_outlier_kernel", "scatter_outlier_kernel"]


def gather_outlier_kernel(
    bundle: Quantized, n_sim: int | None = None
) -> tuple[tuple[np.ndarray, np.ndarray], KernelProfile]:
    """Compact the sparse outliers out of the dense delta field.

    The numerical work already happened inside postquantization (the bundle
    carries the indices/values); this kernel accounts for the dense scan the
    cuSPARSE conversion performs.
    """
    n = int(np.prod(bundle.shape))
    n_sim = n_sim or n
    k_sim = scale_count(bundle.n_outliers, n, n_sim)
    cal = get_calibration("gather_outlier", "any", None)
    payload = n_sim * 4
    profile = KernelProfile(
        name="gather_outlier",
        payload_bytes=payload,
        bytes_read=payload,  # streams the dense fp delta array
        bytes_written=k_sim * OUTLIER_ENTRY_BYTES,
        launch=standard_launch(n_sim),
        mem_efficiency=cal.mem_efficiency,
        serial_chain=1,
        cycles_per_step=cal.serial_cycles,
        tags={"outliers": bundle.n_outliers},
    )
    return (bundle.outlier_indices, bundle.outlier_values), tag_elements(profile, n_sim)


def scatter_outlier_kernel(
    quant: np.ndarray,
    outlier_indices: np.ndarray,
    outlier_values: np.ndarray,
    radius: int,
    n_sim: int | None = None,
) -> tuple[np.ndarray, KernelProfile]:
    """Fuse quant-codes and outliers into the dense delta array (line 9).

    Returns the fused int64 delta stream ready for partial-sum
    reconstruction, plus the scatter's cost profile (sparse reads, scattered
    writes at sector granularity).
    """
    fused = quant.astype(np.int64).reshape(-1) - radius
    if outlier_indices.size:
        fused[outlier_indices] = outlier_values
    n = int(quant.size)
    n_sim = n_sim or n
    k_sim = scale_count(int(outlier_indices.size), n, n_sim)
    cal = get_calibration("scatter_outlier", "any", None)
    payload = n_sim * 4
    # The cuSZ+ scatter is really the *fusion* q' = (q (+) outlier) - r: it
    # streams the dense quant array once (read + write) and additionally
    # performs the uncoalesced sparse writes.  Sparse traffic is modeled on
    # the write side where the coalescing penalty applies.
    dense_bytes = n_sim * quant.dtype.itemsize
    sparse_bytes = k_sim * OUTLIER_ENTRY_BYTES
    profile = KernelProfile(
        name="scatter_outlier",
        payload_bytes=payload,
        bytes_read=dense_bytes + sparse_bytes,
        # Fold the coalescing penalty into the byte count so the dense
        # streaming part keeps its unit coalescing.
        bytes_written=dense_bytes + int(sparse_bytes / cal.coalescing_write),
        launch=standard_launch(n_sim),
        mem_efficiency=cal.mem_efficiency,
        tags={"outliers": int(outlier_indices.size)},
    )
    return fused, tag_elements(profile, n_sim)
