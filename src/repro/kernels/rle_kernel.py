"""Simulated run-length encoding kernel (thrust::reduce_by_key).

The reduce_by_key decomposition is multi-pass: flag run heads, exclusive-scan
the flags, scatter values/counts.  Roughly three streaming passes over the
quant stream plus the run output -- partially latency-bound, which is why the
paper reports only "slightly higher" throughput on A100 (Table IV text) while
purely memory-bound kernels gain 1.7x.
"""

from __future__ import annotations

import numpy as np

from ..core.config import CompressorConfig
from ..encoding.rle import RunLengthEncoded, rle_encode
from ..gpu.kernel import KernelProfile
from .calibration import get_calibration
from .common import scale_count, standard_launch, tag_elements

__all__ = ["rle_kernel", "rle_decode_kernel"]

#: Streaming passes of the reduce_by_key decomposition.
_RLE_PASSES = 3


def rle_kernel(
    quant: np.ndarray,
    config: CompressorConfig,
    n_sim: int | None = None,
) -> tuple[RunLengthEncoded, KernelProfile]:
    """Run-length encode the quant stream with a reduce_by_key cost profile."""
    flat = np.asarray(quant).reshape(-1)
    rle = rle_encode(flat, length_dtype=np.dtype(config.rle_length_dtype))
    n = int(flat.size)
    n_sim = n_sim or n
    runs_sim = scale_count(rle.n_runs, n, n_sim)
    tuple_bytes = rle.values.dtype.itemsize + rle.lengths.dtype.itemsize
    cal = get_calibration("rle", "any", None)
    profile = KernelProfile(
        name="rle",
        payload_bytes=n_sim * 4,
        bytes_read=_RLE_PASSES * n_sim * flat.dtype.itemsize,
        bytes_written=max(runs_sim * tuple_bytes, 1),
        launch=standard_launch(n_sim),
        mem_efficiency=cal.mem_efficiency,
        serial_chain=1,
        cycles_per_step=cal.serial_cycles,
        tags={"n_runs": rle.n_runs, "mean_run": rle.mean_run_length},
    )
    return rle, tag_elements(profile, n_sim)


def rle_decode_kernel(
    rle: RunLengthEncoded,
    out_dtype=np.uint16,
    n_sim: int | None = None,
) -> tuple[np.ndarray, KernelProfile]:
    """Expand runs back to the stream (scan over lengths + gather)."""
    from ..encoding.rle import rle_decode

    out = rle_decode(rle, out_dtype=out_dtype)
    n = rle.n_symbols
    n_sim = n_sim or n
    runs_sim = scale_count(rle.n_runs, n, n_sim)
    tuple_bytes = rle.values.dtype.itemsize + rle.lengths.dtype.itemsize
    cal = get_calibration("rle", "any", None)
    profile = KernelProfile(
        name="rle_decode",
        payload_bytes=n_sim * 4,
        bytes_read=max(runs_sim * tuple_bytes, 1),
        bytes_written=n_sim * np.dtype(out_dtype).itemsize,
        launch=standard_launch(n_sim),
        mem_efficiency=cal.mem_efficiency,
        serial_chain=1,
        cycles_per_step=cal.serial_cycles,
        tags={"n_runs": rle.n_runs},
    )
    return out, tag_elements(profile, n_sim)
