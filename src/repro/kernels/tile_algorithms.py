"""The partial-sum kernels of Section IV-B.3, transcribed step by step.

:mod:`repro.core.lorenzo` computes the same results with whole-array
``cumsum`` calls; this module instead walks the *exact* intra-tile procedure
the paper describes, using the warp/shared-memory primitives, so each
design decision is executable and testable:

* **1D** (B.3.a): chunkwise ``cub::BlockScan`` with warp-striped sequential
  items per thread -- ``block_scan_1d`` processes a 256-element chunk as
  8 threads x 32 items? No: as cuSZ+ does, `seq` items per thread, a
  warp-level Kogge-Stone scan of the per-thread totals, then a downsweep.
* **2D** (B.3.b): a 16x16 tile; the x-direction runs as an in-warp shuffle
  scan; the y-direction gives each thread a thread-private array of
  ``seq = 8`` elements scanned trivially in registers, with the previous
  fragment's last value propagated through shared memory.
* **3D** (B.3.c): the 2D procedure followed by an x-z transposition and a
  repeat of the x-direction pass.

Every function returns bit-identical results to the corresponding
``cumsum`` composition (asserted in tests) -- that is the point: the
paper's kernel is *just* a partial sum, however exotic its data movement.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import DimensionalityError
from ..gpu.primitives import warp_shuffle_up

__all__ = [
    "warp_inclusive_scan",
    "block_scan_1d",
    "tile_partial_sum_2d",
    "tile_partial_sum_3d",
]


def warp_inclusive_scan(lane_values: np.ndarray, warp: int = 32) -> np.ndarray:
    """Kogge-Stone inclusive scan across warp lanes via ``__shfl_up_sync``.

    ``lane_values`` is a 1-D array whose length is a multiple of ``warp``;
    each ``warp``-sized group scans independently, exactly like the
    intra-warp phase of ``cub::WarpScan``.
    """
    x = np.asarray(lane_values)
    if x.ndim != 1 or x.size % warp:
        raise DimensionalityError("lane_values must be 1-D with length % warp == 0")
    acc = x.copy()
    lanes = np.arange(x.size) % warp
    delta = 1
    while delta < warp:
        shifted = warp_shuffle_up(acc, delta, warp=warp)
        acc = np.where(lanes >= delta, acc + shifted, acc)
        delta *= 2
    return acc


def block_scan_1d(chunk: np.ndarray, seq: int = 8, warp: int = 32) -> np.ndarray:
    """One 1-D chunk's inclusive scan, cuSZ+-style (B.3.a).

    Work decomposition: ``seq`` consecutive items per thread, scanned in
    registers; a warp scan over per-thread totals; then each thread adds its
    exclusive prefix.  ``chunk`` length must equal ``seq * warp * k`` with
    whole warps cooperating through a final cross-warp pass (mimicking
    ``cub::BlockScan``'s two-level structure).
    """
    x = np.asarray(chunk)
    if x.ndim != 1 or x.size % (seq * warp):
        raise DimensionalityError(
            f"chunk of {x.size} is not a multiple of seq*warp = {seq * warp}"
        )
    n_threads = x.size // seq
    # Phase 1: per-thread sequential scan in the register file.
    frags = x.reshape(n_threads, seq).copy()
    np.cumsum(frags, axis=1, out=frags)
    totals = frags[:, -1].copy()
    # Phase 2: warp scan of the per-thread totals.
    scanned_totals = warp_inclusive_scan(totals, warp=warp)
    # Phase 3: cross-warp aggregate (one value per warp, scanned serially --
    # the tiny step cub runs on a single warp).
    n_warps = n_threads // warp
    warp_aggregate = scanned_totals.reshape(n_warps, warp)[:, -1]
    warp_prefix = np.concatenate(([0], np.cumsum(warp_aggregate)[:-1]))
    # Phase 4: downsweep -- per-thread exclusive prefix added to fragments.
    thread_exclusive = scanned_totals - totals + np.repeat(warp_prefix, warp)
    return (frags + thread_exclusive[:, None]).reshape(-1)


def tile_partial_sum_2d(tile: np.ndarray, seq: int = 8) -> np.ndarray:
    """The handcrafted 16x16 2-D kernel (B.3.b), one tile.

    x-direction: each row is scanned with in-warp shuffles (rows of 16 fit
    two-per-warp; we scan each row's 16 lanes).  y-direction: each thread
    owns a ``seq``-tall thread-private fragment per column, scans it in
    registers, and the previous fragment's last element is propagated to
    the next fragment "using shared memory to exchange".
    """
    t = np.asarray(tile)
    if t.ndim != 2 or t.shape[0] % seq:
        raise DimensionalityError(
            f"tile {t.shape} needs 2-D with rows divisible by seq={seq}"
        )
    rows, cols = t.shape
    # --- x-direction: warp-shuffle scan along each row -----------------------
    # Lay rows out on warp lanes (pad lane groups to the warp width).
    out = np.empty_like(t)
    for r in range(rows):
        padded = np.zeros(32, dtype=t.dtype)
        padded[:cols] = t[r]
        out[r] = warp_inclusive_scan(padded)[:cols]
    # --- y-direction: register fragments + shared-memory propagation ---------
    n_frags = rows // seq
    shared_exchange = np.zeros(cols, dtype=t.dtype)  # "shared memory"
    for f in range(n_frags):
        frag = out[f * seq : (f + 1) * seq]
        np.cumsum(frag, axis=0, out=frag)
        frag += shared_exchange[None, :]
        shared_exchange = frag[-1].copy()  # propagate to the next fragment
    return out


def tile_partial_sum_3d(tile: np.ndarray, seq: int = 8) -> np.ndarray:
    """The 3-D kernel (B.3.c): 2-D procedure, x-z transpose, repeat x pass.

    Matches ``cumsum`` along all three axes of an (z, y, x) tile.
    """
    t = np.asarray(tile)
    if t.ndim != 3:
        raise DimensionalityError("tile must be 3-D (z, y, x)")
    nz, ny, nx = t.shape
    out = t.copy()
    # 2-D pass (x then y) on every z-slice.
    for z in range(nz):
        out[z] = tile_partial_sum_2d(out[z], seq=min(seq, ny))
    # "append an x-z transposition ... and repeat the previous x-direction
    # partial-sum (with z-direction data)".
    out = out.transpose(2, 1, 0).copy()  # x <-> z
    for z in range(out.shape[0]):
        for y in range(out.shape[1]):
            padded = np.zeros(32, dtype=t.dtype)
            padded[: out.shape[2]] = out[z, y]
            out[z, y] = warp_inclusive_scan(padded)[: out.shape[2]]
    return out.transpose(2, 1, 0).copy()
