"""Parallel substrate: SPMD cluster, decomposition, PFS model, checkpoints."""

from .checkpoint import read_checkpoint, read_rank_slab, write_checkpoint
from .communicator import Comm, LocalCluster, run_spmd
from .decomposition import slab_bounds, slab_for_rank
from .io_model import MIRA_CLASS_PFS, MODERN_PFS, ParallelFileSystem

__all__ = [
    "Comm",
    "LocalCluster",
    "run_spmd",
    "slab_bounds",
    "slab_for_rank",
    "ParallelFileSystem",
    "MIRA_CLASS_PFS",
    "MODERN_PFS",
    "write_checkpoint",
    "read_checkpoint",
    "read_rank_slab",
]
