"""Compressed parallel checkpointing.

Each rank compresses its slab independently (exactly how a per-GPU cuSZ+
deployment works); rank archives are gathered to root, which writes a
single self-describing checkpoint container.  Reading reverses the scheme,
optionally restoring only one rank's slab (restart-on-different-layout is
then a reshard of slab reads).

The container reuses the sectioned archive: ``r<k>`` sections hold rank
archives, ``cmeta`` the global geometry, mirroring the multi-block
single-node container in :mod:`repro.core.streaming`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from .. import telemetry as tel
from ..core.archive import ArchiveBuilder, ArchiveReader
from ..core.compressor import compress, decompress
from ..core.config import CompressorConfig
from ..core.errors import ArchiveError, ConfigError
from .communicator import Comm
from .decomposition import slab_bounds
from .io_model import DumpCost, ParallelFileSystem

__all__ = ["write_checkpoint", "read_checkpoint", "read_rank_slab", "estimate_dump_cost"]

_CMETA = struct.Struct("<B3xI4Q")


@dataclass(frozen=True)
class _CheckpointMeta:
    shape: tuple[int, ...]
    n_ranks: int


def _pack_cmeta(shape: tuple[int, ...], n_ranks: int) -> bytes:
    shape4 = list(shape) + [0] * (4 - len(shape))
    return _CMETA.pack(len(shape), n_ranks, *shape4)


def _unpack_cmeta(raw: bytes) -> _CheckpointMeta:
    if len(raw) != _CMETA.size:
        raise ArchiveError("checkpoint metadata malformed")
    ndim, n_ranks, *shape4 = _CMETA.unpack(raw)
    if not 1 <= ndim <= 4:
        raise ArchiveError(f"checkpoint metadata has invalid ndim {ndim}")
    if n_ranks < 1:
        raise ArchiveError(f"checkpoint metadata has invalid rank count {n_ranks}")
    return _CheckpointMeta(shape=tuple(int(s) for s in shape4[:ndim]), n_ranks=n_ranks)


def write_checkpoint(
    comm: Comm,
    local_slab: np.ndarray,
    config: CompressorConfig,
    global_rows: int | None = None,
) -> bytes | None:
    """Collectively compress and assemble a checkpoint.

    Every rank passes its slab; root (rank 0) returns the container blob,
    other ranks return None.  In relative-bound mode the value range is
    allreduced first so all ranks honor one global absolute bound.
    """
    local_slab = np.asarray(local_slab)
    if local_slab.size == 0:
        raise ConfigError("rank slab must be non-empty")
    # Each rank runs on its own thread with a fresh trace context, so this
    # span roots that rank's compress tree (distinguished by tid in exports).
    with tel.span("checkpoint.write", bytes_in=int(local_slab.nbytes),
                  rank=comm.rank, size=comm.size) as root:
        # Global bound resolution (one allreduce, like a real code would do).
        # nanmin/nanmax so NaN-masked slabs resolve on their finite range.
        if config.eb_mode == "rel":
            with tel.span("checkpoint.bound_allreduce"):
                lo = comm.allreduce(float(np.nanmin(local_slab)), op=min)
                hi = comm.allreduce(float(np.nanmax(local_slab)), op=max)
                eb_abs = config.absolute_bound(hi - lo)
                config = config.with_(eb=eb_abs, eb_mode="abs")
        result = compress(local_slab, config)
        with tel.span("checkpoint.gather"):
            gathered = comm.gather(result.archive, root=0)
            rows = comm.gather(int(local_slab.shape[0]), root=0)
        if comm.rank != 0:
            return None
        total_rows = sum(rows)
        if global_rows is not None and total_rows != global_rows:
            raise ConfigError(f"slabs cover {total_rows} rows, expected {global_rows}")
        shape = (total_rows, *local_slab.shape[1:])
        with tel.span("checkpoint.assemble") as sp:
            builder = ArchiveBuilder()
            for k, blob in enumerate(gathered):
                builder.add_bytes(f"r{k}", blob)
            builder.add_bytes("cmeta", _pack_cmeta(shape, comm.size))
            container = builder.to_bytes()
            sp.set(bytes_out=len(container))
        root.set(bytes_out=len(container))
    return container


def read_checkpoint(blob: bytes) -> np.ndarray:
    """Restore the full global field from a checkpoint container."""
    with tel.span("checkpoint.read", bytes_in=len(blob)) as root:
        reader = ArchiveReader(blob)
        meta = _unpack_cmeta(reader.get_bytes("cmeta"))
        slabs = [decompress(reader.get_bytes(f"r{k}")) for k in range(meta.n_ranks)]
        out = np.concatenate(slabs, axis=0)
        if out.shape != meta.shape:
            raise ArchiveError(f"slabs reassemble to {out.shape}, metadata says {meta.shape}")
        root.set(bytes_out=int(out.nbytes), n_ranks=meta.n_ranks)
    return out


def read_rank_slab(blob: bytes, rank: int) -> np.ndarray:
    """Restore only one rank's slab (restart without touching the rest)."""
    reader = ArchiveReader(blob)
    meta = _unpack_cmeta(reader.get_bytes("cmeta"))
    if not 0 <= rank < meta.n_ranks:
        raise ConfigError(f"rank {rank} outside checkpoint's 0..{meta.n_ranks - 1}")
    return decompress(reader.get_bytes(f"r{rank}"))


def estimate_dump_cost(
    per_rank_raw_bytes: list[int],
    per_rank_stored_bytes: list[int],
    pfs: ParallelFileSystem,
    compress_gbps_per_rank: float,
) -> tuple[DumpCost, DumpCost]:
    """(raw dump, compressed dump) cost on a PFS model.

    ``compress_gbps_per_rank`` is the per-rank compression throughput (e.g.
    the device model's overall-compress figure); ranks compress in parallel
    so the compression phase costs the slowest rank's time.
    """
    raw = DumpCost(
        raw_bytes=sum(per_rank_raw_bytes),
        stored_bytes=sum(per_rank_raw_bytes),
        compress_seconds=0.0,
        write_seconds=pfs.write_time(per_rank_raw_bytes),
    )
    compress_s = max(per_rank_raw_bytes) / (compress_gbps_per_rank * 1e9)
    packed = DumpCost(
        raw_bytes=sum(per_rank_raw_bytes),
        stored_bytes=sum(per_rank_stored_bytes),
        compress_seconds=compress_s,
        write_seconds=pfs.write_time(per_rank_stored_bytes),
    )
    return raw, packed
