"""In-process SPMD cluster with an mpi4py-like communicator.

The paper's motivating workload is a 16,384-node HACC run dumping ~3 GB per
node; reproducing the I/O arithmetic needs a rank abstraction but not a real
MPI installation.  :class:`LocalCluster` runs one Python thread per rank
(NumPy releases the GIL, so numeric work overlaps) and gives each rank a
:class:`Comm` with the familiar verbs: ``send/recv``, ``bcast``, ``gather``,
``allgather``, ``allreduce``, ``barrier``.

Semantics follow mpi4py's lowercase (object) API: values are passed by
reference within the process -- callers must not mutate received objects
(documented, as with mpi4py's pickled objects the hazard does not arise;
here it would).  Collectives synchronize all ranks like their MPI
counterparts.  Swapping in real mpi4py requires only constructing the same
calls on ``MPI.COMM_WORLD``.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

from ..core.errors import ConfigError

__all__ = ["Comm", "LocalCluster", "run_spmd"]


class _Shared:
    """State shared by all ranks of one cluster run."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.mailboxes = [
            {src: queue.Queue() for src in range(size)} for _ in range(size)
        ]
        self.slots: list[Any] = [None] * size
        self.lock = threading.Lock()


class Comm:
    """Per-rank communicator handle (mpi4py-flavoured)."""

    def __init__(self, rank: int, shared: _Shared) -> None:
        self._rank = rank
        self._shared = shared

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._shared.size

    # mpi4py spellings
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._shared.size

    # -- point to point -------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send an object to ``dest`` (buffered, non-blocking here)."""
        self._check_rank(dest)
        self._shared.mailboxes[dest][self._rank].put((tag, obj))

    def recv(self, source: int, tag: int = 0, timeout: float = 30.0) -> Any:
        """Receive the next object from ``source`` with matching tag."""
        self._check_rank(source)
        got_tag, obj = self._shared.mailboxes[self._rank][source].get(timeout=timeout)
        if got_tag != tag:
            raise ConfigError(
                f"rank {self._rank}: expected tag {tag} from {source}, got {got_tag}"
            )
        return obj

    # -- collectives ----------------------------------------------------------

    def barrier(self) -> None:
        self._shared.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; everyone returns it."""
        self._check_rank(root)
        if self._rank == root:
            self._shared.slots[root] = obj
        self.barrier()
        out = self._shared.slots[root]
        self.barrier()
        return out

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather everyone's object at ``root`` (None elsewhere)."""
        self._check_rank(root)
        self._shared.slots[self._rank] = obj
        self.barrier()
        out = list(self._shared.slots) if self._rank == root else None
        self.barrier()
        return out

    def allgather(self, obj: Any) -> list[Any]:
        self._shared.slots[self._rank] = obj
        self.barrier()
        out = list(self._shared.slots)
        self.barrier()
        return out

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce with ``op`` (default: sum) and return to everyone."""
        values = self.allgather(value)
        if op is None:
            total = values[0]
            for v in values[1:]:
                total = total + v
            return total
        total = values[0]
        for v in values[1:]:
            total = op(total, v)
        return total

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self._shared.size:
            raise ConfigError(f"rank {r} outside communicator of size {self._shared.size}")


class LocalCluster:
    """Run an SPMD function across ``n_ranks`` in-process threads."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ConfigError(f"cluster needs at least one rank, got {n_ranks}")
        self.n_ranks = n_ranks

    def run(self, fn: Callable[..., Any], *args, **kwargs) -> list[Any]:
        """Execute ``fn(comm, *args, **kwargs)`` on every rank; return the
        per-rank results in rank order.  Any rank's exception is re-raised
        (after all threads stop) with its rank attached."""
        shared = _Shared(self.n_ranks)
        results: list[Any] = [None] * self.n_ranks
        errors: list[tuple[int, BaseException]] = []

        def work(rank: int) -> None:
            comm = Comm(rank, shared)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors.append((rank, exc))
                shared.barrier.abort()

        threads = [
            threading.Thread(target=work, args=(r,), name=f"rank{r}")
            for r in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return results


def run_spmd(n_ranks: int, fn: Callable[..., Any], *args, **kwargs) -> list[Any]:
    """One-shot convenience wrapper around :class:`LocalCluster`."""
    return LocalCluster(n_ranks).run(fn, *args, **kwargs)
