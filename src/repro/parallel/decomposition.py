"""Domain decomposition: slab/block partitioning and halo exchange.

Science codes dump per-rank sub-domains; these helpers carve a global field
into per-rank pieces (contiguous slabs along axis 0, or near-cubic blocks on
a process grid) and exchange one-deep halos between slab neighbours -- the
communication skeleton a real simulation would already have, used here by
the checkpoint example and tests.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigError
from .communicator import Comm

__all__ = ["slab_bounds", "slab_for_rank", "process_grid", "block_bounds", "exchange_slab_halos"]


def slab_bounds(n: int, size: int, rank: int) -> tuple[int, int]:
    """Rows ``[start, stop)`` of axis 0 owned by ``rank`` (balanced split)."""
    if not 0 <= rank < size:
        raise ConfigError(f"rank {rank} outside 0..{size - 1}")
    if size > n:
        raise ConfigError(f"cannot split {n} rows across {size} ranks")
    base, extra = divmod(n, size)
    start = rank * base + min(rank, extra)
    stop = start + base + (1 if rank < extra else 0)
    return start, stop


def slab_for_rank(global_field: np.ndarray, size: int, rank: int) -> np.ndarray:
    """The slab of ``global_field`` owned by ``rank`` (a view)."""
    start, stop = slab_bounds(global_field.shape[0], size, rank)
    return global_field[start:stop]


def process_grid(size: int, ndim: int) -> tuple[int, ...]:
    """Near-balanced factorization of ``size`` into an ``ndim``-D grid."""
    if size < 1 or not 1 <= ndim <= 4:
        raise ConfigError("need size >= 1 and 1 <= ndim <= 4")
    grid = [1] * ndim
    remaining = size
    # Greedy: repeatedly give the smallest axis the largest prime factor.
    for p in _prime_factors(remaining)[::-1]:
        axis = int(np.argmin(grid))
        grid[axis] *= p
    return tuple(sorted(grid, reverse=True))


def _prime_factors(n: int) -> list[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return sorted(out)


def block_bounds(
    shape: tuple[int, ...], grid: tuple[int, ...], coords: tuple[int, ...]
) -> tuple[slice, ...]:
    """The sub-block of a global ``shape`` at grid position ``coords``."""
    if len(shape) != len(grid) or len(grid) != len(coords):
        raise ConfigError("shape, grid and coords must have the same rank")
    slices = []
    for n, g, c in zip(shape, grid, coords):
        if not 0 <= c < g:
            raise ConfigError(f"grid coordinate {c} outside 0..{g - 1}")
        start, stop = slab_bounds(n, g, c)
        slices.append(slice(start, stop))
    return tuple(slices)


def exchange_slab_halos(comm: Comm, local: np.ndarray) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Exchange one-deep axis-0 halos with slab neighbours.

    Returns ``(lower_halo, upper_halo)``: the neighbouring rank's boundary
    row below/above this slab (None at the domain edges).  Demonstrates the
    point-to-point layer; compression itself never needs halos (chunks are
    independent by design).
    """
    rank, size = comm.rank, comm.size
    if rank + 1 < size:
        comm.send(np.ascontiguousarray(local[-1]), dest=rank + 1, tag=1)
    if rank > 0:
        comm.send(np.ascontiguousarray(local[0]), dest=rank - 1, tag=2)
    lower = comm.recv(source=rank - 1, tag=1) if rank > 0 else None
    upper = comm.recv(source=rank + 1, tag=2) if rank + 1 < size else None
    return lower, upper
