"""Parallel file system cost model.

The paper's introduction motivates compression by PFS pressure: petabyte
dumps against limited aggregate bandwidth.  This model prices a collective
write the standard way:

    time = latency + max(total_bytes / aggregate_bw,
                         max_rank_bytes / per_node_bw)

i.e. the dump is bound either by the shared PFS backend or by the slowest
node's injection link.  Presets approximate the paper's systems' Lustre/GPFS
class storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.errors import ConfigError

__all__ = ["ParallelFileSystem", "MIRA_CLASS_PFS", "MODERN_PFS", "DumpCost"]


@dataclass(frozen=True)
class ParallelFileSystem:
    """Aggregate + per-node bandwidth model of a PFS."""

    name: str
    aggregate_bw: float  # bytes/s across all ranks
    per_node_bw: float  # bytes/s one rank can inject
    latency: float = 1e-3  # seconds per collective open/commit

    def write_time(self, per_rank_bytes: Sequence[int]) -> float:
        """Seconds to collectively write the given per-rank byte counts."""
        if any(b < 0 for b in per_rank_bytes):
            raise ConfigError("negative byte count")
        total = float(sum(per_rank_bytes))
        worst = float(max(per_rank_bytes, default=0))
        return self.latency + max(total / self.aggregate_bw, worst / self.per_node_bw)

    def read_time(self, per_rank_bytes: Sequence[int]) -> float:
        """Reads are modeled symmetrically."""
        return self.write_time(per_rank_bytes)


#: Mira/Theta-class PFS (the paper cites ALCF's I/O figures [2]): ~240 GB/s
#: aggregate, a few GB/s per node.
MIRA_CLASS_PFS = ParallelFileSystem(
    name="mira-class", aggregate_bw=240e9, per_node_bw=2e9
)

#: A modern flash-heavy PFS.
MODERN_PFS = ParallelFileSystem(
    name="modern-flash", aggregate_bw=1.2e12, per_node_bw=10e9
)


@dataclass(frozen=True)
class DumpCost:
    """Cost breakdown of one checkpoint dump."""

    raw_bytes: int
    stored_bytes: int
    compress_seconds: float
    write_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compress_seconds + self.write_seconds

    @property
    def compression_ratio(self) -> float:
        return self.raw_bytes / self.stored_bytes if self.stored_bytes else float("inf")
