"""Compression-as-a-service: the asyncio HTTP front door and its load
replayer.

* :class:`~repro.server.app.CompressionServer` -- the server itself
  (``repro serve`` on the CLI); see :mod:`repro.server.app` for the
  endpoint and admission-control contract.
* :mod:`repro.server.scheduler` -- per-tenant token-bucket quotas and
  priority-class admission.
* :func:`~repro.server.replay.replay_profile` -- drive a live server from
  a recorded JSONL traffic profile (``repro replay``) and emit a
  ``repro.bench/v1`` latency record.
"""

from .app import CompressionServer, ServerConfig, serve_forever
from .replay import load_profile, replay_profile, synthesize_field
from .scheduler import (
    PRIORITIES,
    AdmissionError,
    QuotaExceeded,
    RequestScheduler,
    Saturated,
    TokenBucket,
    parse_quota,
)

__all__ = [
    "PRIORITIES",
    "AdmissionError",
    "CompressionServer",
    "QuotaExceeded",
    "RequestScheduler",
    "Saturated",
    "ServerConfig",
    "TokenBucket",
    "load_profile",
    "parse_quota",
    "replay_profile",
    "serve_forever",
    "synthesize_field",
]
