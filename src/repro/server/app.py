"""The compression-as-a-service front door.

:class:`CompressionServer` is an asyncio HTTP server (stdlib only) that
exposes the library's compress/decompress/verify pipeline to concurrent
network clients, executing every job on a
:class:`~repro.engine.CompressionEngine` so the thread/process backends do
the heavy lifting while the event loop only shuttles bytes.

Endpoints
---------
``POST /v1/compress``
    Raw little-endian array bytes in, archive bytes out.  The field's
    geometry and codec come from query parameters (``dims=160,200``,
    ``dtype=f32|f64``, ``eb=1e-3``, ``mode=rel|abs|pwrel``, ``workflow``,
    ``predictor``, ``dict_size``, ``block_bytes=N`` for the blocks
    container).
``POST /v1/decompress``
    Archive bytes (any container kind) in, raw array bytes out, with
    ``X-Repro-Dims``/``X-Repro-Dtype`` response headers.
``POST /v1/verify``
    Archive bytes in, JSON integrity report out.  A *corrupt* archive is a
    successful verification with ``ok: false`` (200), not an error.
``GET /v1/info``
    Server, scheduler, and engine diagnostics as JSON.
``GET /metrics`` / ``GET /metrics.json``
    The process-global metrics registry (same instruments the ``obs
    serve`` exporter renders -- one registry, never double-registered).
``GET /healthz``
    Liveness: 200 while the process serves, including during drain.

Admission control
-----------------
Every ``POST /v1/*`` request passes the
:class:`~repro.server.scheduler.RequestScheduler` first: per-tenant token
buckets (``X-Repro-Tenant``), priority classes (``X-Repro-Priority:
interactive|batch``), and a hard in-flight cap mirroring the engine's
``max_inflight``.  Rejections are ``429`` + ``Retry-After`` -- the event
loop never blocks on the engine's backpressure semaphore.

Fault tolerance
---------------
A process-backend worker dying mid-request fails *that* request with a
``500`` carrying the ``EngineError`` detail; the server swaps in a fresh
engine (the broken pool cannot accept further work) and keeps serving.

Lifecycle
---------
``start()``/``stop()`` run the event loop on a dedicated thread so tests
and the CLI can drive the server synchronously; ``begin_drain()`` (or
SIGTERM via :func:`serve_forever`) flips the server into drain mode --
new ``POST /v1/*`` work gets ``503`` while in-flight requests finish --
before the listener closes.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import __version__
from ..core.compressor import compress, decompress_with_stats, sniff_container
from ..core.config import CompressorConfig
from ..core.errors import ArchiveError, ConfigError, EngineError, ReproError
from ..core.integrity import verify_archive
from ..core.streaming import compress_blocks
from ..engine import CompressionEngine
from ..telemetry import instruments as ins
from ..telemetry import ledger as ledger_mod
from ..telemetry.metrics import render_json, render_prometheus
from .http import (
    ProtocolError,
    Request,
    Response,
    error_response,
    json_response,
    read_request,
)
from .scheduler import PRIORITIES, AdmissionError, RequestScheduler

__all__ = ["CompressionServer", "ServerConfig", "serve_forever"]

_DTYPES = {"f32": np.dtype(np.float32), "f64": np.dtype(np.float64)}
_DTYPE_NAMES = {np.dtype(np.float32): "f32", np.dtype(np.float64): "f64"}

_JOB_ENDPOINTS = {"/v1/compress", "/v1/decompress", "/v1/verify"}


# ---------------------------------------------------------------------------
# Job functions -- module level so the process backend can pickle them.
# ---------------------------------------------------------------------------


def _warmup_job() -> int:
    """Touch the worker's import graph (this module pulls in the whole
    pipeline) so the first real request never pays process spin-up."""
    import os

    return os.getpid()


def _compress_job(body: bytes, spec: dict) -> tuple[bytes, dict]:
    """Compress raw field bytes according to a parsed request spec."""
    arr = np.frombuffer(body, dtype=spec["dtype"]).reshape(spec["dims"])
    cfg = CompressorConfig(
        eb=spec["eb"],
        mode=spec["mode"],
        workflow=spec["workflow"],
        predictor=spec["predictor"],
        dict_size=spec["dict_size"],
    )
    if spec["block_bytes"]:
        blob = compress_blocks(arr, cfg, max_block_bytes=spec["block_bytes"])
        workflow = "blocks"
        ratio = arr.nbytes / max(len(blob), 1)
    else:
        result = compress(arr, cfg)
        blob = result.archive
        workflow = result.workflow
        ratio = result.compression_ratio
    return blob, {
        "container": sniff_container(blob),
        "workflow": workflow,
        "ratio": round(float(ratio), 4),
    }


def _decompress_job(blob: bytes) -> tuple[bytes, dict]:
    """Decompress any container kind back to raw array bytes."""
    result = decompress_with_stats(blob)
    arr = np.ascontiguousarray(result.data)
    return arr.tobytes(), {
        "dims": list(arr.shape),
        "dtype": _DTYPE_NAMES.get(arr.dtype, str(arr.dtype)),
    }


def _verify_job(blob: bytes) -> dict:
    """Deep-verify an archive; corruption is a *finding*, not a failure."""
    try:
        report = verify_archive(blob, deep=True)
    except ArchiveError as exc:
        return {
            "ok": False,
            "error": {"type": type(exc).__name__, "detail": str(exc)},
        }
    return {
        "ok": True,
        "version": report.version,
        "checksum_algo": report.checksum_algo,
        "kind": report.kind,
        "sections_checked": report.total_sections_checked,
        "nested_archives": len(report.nested),
    }


# ---------------------------------------------------------------------------
# Request-spec parsing
# ---------------------------------------------------------------------------


def _parse_compress_spec(query: dict[str, str], body_len: int) -> dict:
    """Validate ``/v1/compress`` query parameters against the body size."""
    dims_raw = query.get("dims", "")
    if not dims_raw:
        raise ConfigError(
            "compress needs a dims query parameter, e.g. dims=160,200"
        )
    try:
        dims = tuple(int(d) for d in dims_raw.split(","))
    except ValueError:
        raise ConfigError(f"dims must be comma-separated integers, got {dims_raw!r}") from None
    if not 1 <= len(dims) <= 4 or any(d < 1 for d in dims):
        raise ConfigError(f"dims must be 1..4 positive axes, got {dims}")
    dtype_name = query.get("dtype", "f32")
    dtype = _DTYPES.get(dtype_name)
    if dtype is None:
        raise ConfigError(
            f"unsupported dtype {dtype_name!r}; expected one of {sorted(_DTYPES)}"
        )
    expected = int(np.prod(dims)) * dtype.itemsize
    if body_len != expected:
        raise ConfigError(
            f"body size mismatch: dims={dims} dtype={dtype_name} needs "
            f"{expected} bytes but the request carried {body_len}"
        )
    mode = query.get("mode", "rel")
    if mode not in ("rel", "abs", "pwrel"):
        raise ConfigError(f"mode must be rel|abs|pwrel, got {mode!r}")
    try:
        eb = float(query.get("eb", "1e-4"))
        dict_size = int(query.get("dict_size", "1024"))
        block_bytes = int(query.get("block_bytes", "0"))
    except ValueError as exc:
        raise ConfigError(f"malformed numeric query parameter ({exc})") from None
    if block_bytes < 0:
        raise ConfigError(f"block_bytes must be >= 0, got {block_bytes}")
    return {
        "dims": dims,
        "dtype": dtype,
        "eb": eb,
        "mode": mode,
        "workflow": query.get("workflow", "auto"),
        "predictor": query.get("predictor", "lorenzo"),
        "dict_size": dict_size,
        "block_bytes": block_bytes,
    }


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


@dataclass
class ServerConfig:
    """Everything :class:`CompressionServer` needs to boot."""

    host: str = "127.0.0.1"
    port: int = 8077
    jobs: int | None = None          #: engine workers (default: core count)
    backend: str | None = None       #: serial | thread | process
    max_inflight: int | None = None  #: admission limit (default: 2 * jobs)
    batch_reserve: int | None = None
    quota_rate: float = 100.0        #: default tenant tokens/second
    quota_burst: float | None = None
    tenant_quotas: dict[str, tuple[float, float]] = field(default_factory=dict)
    max_body: int = 256 << 20
    drain_timeout: float = 30.0


class CompressionServer:
    """The asyncio front door; see the module docstring for the contract."""

    def __init__(self, config: ServerConfig | None = None, **overrides) -> None:
        cfg = config or ServerConfig()
        if overrides:
            cfg = ServerConfig(**{**cfg.__dict__, **overrides})
        self.config = cfg
        self.host = cfg.host
        self.port = cfg.port
        self._engine: CompressionEngine | None = None
        self._engine_gen = 0
        self._engine_lock: asyncio.Lock | None = None
        self._scheduler: RequestScheduler | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._active = 0
        self._draining = False
        self._started = 0.0

    # -- engine -------------------------------------------------------------

    def _make_engine(self) -> CompressionEngine:
        cfg = self.config
        engine = CompressionEngine(
            jobs=cfg.jobs,
            backend=cfg.backend,
            max_inflight=cfg.max_inflight,
        )
        return engine

    async def _warm_engine(self, engine: CompressionEngine) -> None:
        """Pre-spawn the worker pool.  Process workers pay an import-heavy
        spin-up on their first job; paying it here keeps first-burst
        latency from cascading into Saturated rejections."""
        fanout = min(engine.jobs, engine.max_inflight)
        futures = [engine.run(_warmup_job) for _ in range(fanout)]
        await asyncio.gather(*(asyncio.wrap_future(f) for f in futures))

    async def _recycle_engine(self, gen: int) -> None:
        """Replace a broken engine (dead process-pool worker) exactly once."""
        async with self._engine_lock:
            if self._engine_gen != gen:
                return  # a concurrent failure already recycled it
            old = self._engine
            self._engine = self._make_engine()
            self._engine_gen += 1
            await self._warm_engine(self._engine)
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, lambda: old.shutdown(wait=False))

    # -- lifecycle ----------------------------------------------------------

    async def _start(self) -> None:
        self._engine = self._make_engine()
        self._engine_lock = asyncio.Lock()
        await self._warm_engine(self._engine)
        cfg = self.config
        self._scheduler = RequestScheduler(
            limit=self._engine.max_inflight,
            batch_reserve=cfg.batch_reserve,
            quota_rate=cfg.quota_rate,
            quota_burst=cfg.quota_burst,
            tenant_quotas=cfg.tenant_quotas,
        )
        self._server = await asyncio.start_server(
            self._handle_conn, cfg.host, cfg.port, limit=256 << 10
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.time()

    async def _stop(self, drain: bool = True, timeout: float | None = None) -> None:
        self._draining = True
        if drain and self._active > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + (
                timeout if timeout is not None else self.config.drain_timeout
            )
            while self._active > 0 and loop.time() < deadline:
                await asyncio.sleep(0.02)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._engine is not None:
            engine = self._engine
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: engine.shutdown(wait=True)
            )

    def start(self) -> "CompressionServer":
        """Boot the server on a dedicated event-loop thread (sync callers)."""
        if self._thread is not None:
            raise ConfigError("server already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-server", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._start(), self._loop)
        try:
            future.result(timeout=60)
        except Exception:
            self._shutdown_loop()
            raise
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Drain (optionally) and stop; idempotent."""
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self._stop(drain=drain, timeout=timeout), self._loop
        )
        budget = (timeout if timeout is not None else self.config.drain_timeout)
        future.result(timeout=budget + 30)
        self._shutdown_loop()

    def _shutdown_loop(self) -> None:
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        if loop is not None:
            loop.close()

    def begin_drain(self) -> None:
        """Flip into drain mode from any thread (the SIGTERM path)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(setattr, self, "_draining", True)
        else:
            self._draining = True

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def __enter__(self) -> "CompressionServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop(drain=exc == (None, None, None))
        return False

    # -- connection handling ------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader, max_body=self.config.max_body)
                except ProtocolError as exc:
                    response = error_response(
                        exc.status, "ProtocolError", str(exc), close=True
                    )
                    await self._respond(writer, None, response, started=time.perf_counter())
                    break
                if request is None:
                    break
                started = time.perf_counter()
                self._active += 1
                try:
                    response = await self._dispatch(request)
                    await self._respond(writer, request, response, started)
                finally:
                    self._active -= 1
                    ins.SERVER_INFLIGHT.set_value(self._active)
                if not (request.keep_alive and not response.close):
                    break
        except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        request: Request | None,
        response: Response,
        started: float,
    ) -> None:
        keep = request is not None and request.keep_alive and not response.close
        writer.write(response.to_bytes(keep_alive=keep))
        await writer.drain()
        elapsed = time.perf_counter() - started
        path = request.path if request is not None else "<malformed>"
        ins.SERVER_REQUESTS.inc(endpoint=path, status=str(response.status))
        ins.SERVER_REQUEST_SECONDS.observe(elapsed, endpoint=path)
        if request is not None and request.path in _JOB_ENDPOINTS:
            led = ledger_mod.ledger_for(None)
            if led is not None:
                led.record(
                    "server." + request.path.rsplit("/", 1)[-1],
                    status=response.status,
                    tenant=request.header("x-repro-tenant", "anonymous"),
                    priority=request.header("x-repro-priority", "interactive"),
                    seconds=round(elapsed, 6),
                    bytes_in=len(request.body),
                    bytes_out=len(response.body),
                )

    # -- routing ------------------------------------------------------------

    async def _dispatch(self, request: Request) -> Response:
        try:
            return await self._route(request)
        except AdmissionError as exc:
            ins.SERVER_REJECTIONS.inc(reason=exc.reason)
            return error_response(
                429, type(exc).__name__, str(exc), retry_after=exc.retry_after
            )
        except EngineError as exc:
            return error_response(500, "EngineError", str(exc))
        except ReproError as exc:
            return error_response(400, type(exc).__name__, str(exc))
        except Exception as exc:  # noqa: BLE001 -- the front door must not die
            return error_response(
                500, "InternalError", f"{type(exc).__name__}: {exc}"
            )

    async def _route(self, request: Request) -> Response:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return json_response(
                {"status": "draining" if self._draining else "ok",
                 "active_requests": self._active}
            )
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            return Response(
                200, render_prometheus().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/metrics.json":
            if method != "GET":
                return self._method_not_allowed("GET")
            return json_response(render_json())
        if path == "/v1/info":
            if method != "GET":
                return self._method_not_allowed("GET")
            return json_response(self._info())
        if path in _JOB_ENDPOINTS:
            if method != "POST":
                return self._method_not_allowed("POST")
            if self._draining:
                return error_response(
                    503, "ServerDraining",
                    "server is draining; retry against another instance",
                    retry_after=1,
                )
            return await self._handle_job(request)
        return error_response(404, "NotFound", f"no route for {path!r}")

    @staticmethod
    def _method_not_allowed(allowed: str) -> Response:
        return error_response(
            405, "MethodNotAllowed", f"this endpoint only accepts {allowed}"
        )

    def _info(self) -> dict:
        return {
            "server": {
                "version": __version__,
                "address": self.address,
                "draining": self._draining,
                "active_requests": self._active,
                "uptime_seconds": round(time.time() - self._started, 3),
            },
            "scheduler": self._scheduler.snapshot(),
            "engine": self._engine.diagnostics_snapshot(),
            "endpoints": sorted(_JOB_ENDPOINTS)
            + ["/healthz", "/metrics", "/metrics.json", "/v1/info"],
        }

    # -- job execution ------------------------------------------------------

    async def _handle_job(self, request: Request) -> Response:
        tenant = request.header("x-repro-tenant", "anonymous")
        priority = request.header("x-repro-priority", "interactive").lower()
        if priority not in PRIORITIES:
            raise ConfigError(
                f"unknown priority {priority!r}; expected one of {PRIORITIES}"
            )
        self._scheduler.admit(
            tenant, priority, spare=self._engine.spare_capacity()
        )
        try:
            if request.path == "/v1/compress":
                spec = _parse_compress_spec(request.query, len(request.body))
                blob, meta = await self._run(_compress_job, request.body, spec)
                return Response(
                    200, blob, "application/octet-stream",
                    headers=[
                        ("X-Repro-Container", meta["container"]),
                        ("X-Repro-Workflow", meta["workflow"]),
                        ("X-Repro-Ratio", str(meta["ratio"])),
                    ],
                )
            if request.path == "/v1/decompress":
                if not request.body:
                    raise ArchiveError(
                        "decompress needs the archive bytes as the request body"
                    )
                raw, meta = await self._run(_decompress_job, request.body)
                return Response(
                    200, raw, "application/octet-stream",
                    headers=[
                        ("X-Repro-Dims", ",".join(str(d) for d in meta["dims"])),
                        ("X-Repro-Dtype", meta["dtype"]),
                    ],
                )
            # /v1/verify
            if not request.body:
                raise ArchiveError(
                    "verify needs the archive bytes as the request body"
                )
            report = await self._run(_verify_job, request.body)
            return json_response(report)
        finally:
            self._scheduler.release()

    async def _run(self, fn, *args):
        """Run one job on the engine; a dead worker recycles the engine."""
        gen, engine = self._engine_gen, self._engine
        try:
            return await asyncio.wrap_future(engine.run(fn, *args))
        except EngineError:
            await self._recycle_engine(gen)
            raise


def serve_forever(config: ServerConfig) -> None:
    """CLI entry point: serve until SIGTERM/SIGINT, then drain and exit."""
    server = CompressionServer(config).start()
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 -- signal handler shape
        server.begin_drain()
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(f"repro-server listening on {server.address}", flush=True)
    try:
        while not stop.wait(0.2):
            pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.stop(drain=True)
        print("repro-server drained and stopped", flush=True)
