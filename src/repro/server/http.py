"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The front door (:mod:`repro.server.app`) serves a handful of well-known
endpoints to programmatic clients, so the framing layer is deliberately
small: request-line + headers + ``Content-Length`` bodies, keep-alive by
default on HTTP/1.1, no chunked transfer coding (a 501 tells the client to
retry with a sized body).  Every framing violation raises
:class:`ProtocolError` carrying the HTTP status the connection handler
should answer with before closing -- a malformed *request* must produce a
4xx, never a 500 or a silent hangup.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "MAX_HEADER_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "error_response",
    "json_response",
    "read_request",
]

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 64 << 10

#: Reason phrases for every status the server emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """The peer sent something that is not a well-formed HTTP request.

    ``status`` is the response code the connection handler answers with
    (400 unless a more specific code applies: 413 oversized body, 431
    oversized headers, 501 chunked transfer coding).
    """

    def __init__(self, detail: str, status: int = 400) -> None:
        super().__init__(detail)
        self.status = status


@dataclass
class Request:
    """One parsed request: split target, lowercase header names, raw body."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


@dataclass
class Response:
    """One response; ``to_bytes`` renders the wire form."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/octet-stream"
    headers: list[tuple[str, str]] = field(default_factory=list)
    close: bool = False

    def to_bytes(self, keep_alive: bool = True) -> bytes:
        keep = keep_alive and not self.close
        lines = [
            f"HTTP/1.1 {self.status} {REASONS.get(self.status, 'Unknown')}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep else 'close'}",
            "Server: repro-server/1",
        ]
        lines.extend(f"{k}: {v}" for k, v in self.headers)
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + self.body


def json_response(
    payload: dict,
    status: int = 200,
    headers: list[tuple[str, str]] | None = None,
    close: bool = False,
) -> Response:
    body = (json.dumps(payload, indent=2, default=str) + "\n").encode()
    return Response(status, body, "application/json", headers or [], close)


def error_response(
    status: int,
    err_type: str,
    detail: str,
    retry_after: int | None = None,
    close: bool = False,
) -> Response:
    """The uniform error envelope: ``{"error": {"type", "detail"}}``.

    ``type`` carries the library exception class name (``ArchiveError``,
    ``ConfigError``, ``EngineError``, ...) so clients can dispatch on it
    without parsing prose.
    """
    headers = []
    if retry_after is not None:
        headers.append(("Retry-After", str(max(int(retry_after), 1))))
    return json_response(
        {"error": {"type": err_type, "detail": detail}},
        status=status, headers=headers, close=close,
    )


async def read_request(
    reader: asyncio.StreamReader, max_body: int = 256 << 20
) -> Request | None:
    """Parse one request off the stream; ``None`` means clean EOF.

    Raises :class:`ProtocolError` for anything malformed -- including a
    body shorter than its declared ``Content-Length`` (the peer closed
    mid-upload), which the server reports as a 400 rather than hanging.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise ProtocolError(
            "connection closed before the request headers completed"
        ) from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(
            f"request headers exceed {MAX_HEADER_BYTES} bytes", status=431
        ) from None

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise ProtocolError(f"malformed header line {line!r}")
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(
            "chunked transfer coding is not supported; send a "
            "Content-Length body", status=501,
        )
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise ProtocolError(f"invalid Content-Length {raw_length!r}") from None
    if length < 0:
        raise ProtocolError(f"invalid Content-Length {length}")
    if length > max_body:
        raise ProtocolError(
            f"request body of {length} bytes exceeds the {max_body}-byte "
            "limit", status=413,
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                f"request body truncated: Content-Length declared {length} "
                f"bytes but only {len(exc.partial)} arrived"
            ) from None
    return Request(method, split.path, query, headers, body, version)
