"""Load replayer: drive the front door from a recorded traffic profile.

A *profile* is a JSONL file, one request per line (blank lines and ``#``
comments skipped)::

    {"op": "compress", "offset": 0.0, "tenant": "cesm",
     "priority": "interactive", "dims": [64, 80], "dtype": "f32",
     "eb": 1e-3, "mode": "rel", "workflow": "auto", "seed": 1}

Fields:

``op``
    ``compress`` | ``decompress`` | ``verify``.
``offset``
    Seconds after replay start at which the request fires; requests sharing
    an offset fire concurrently (that is how a profile encodes bursts).
``tenant`` / ``priority``
    Forwarded as ``X-Repro-Tenant`` / ``X-Repro-Priority``.
``dims``/``dtype``/``seed``
    The synthetic field: deterministic from ``seed`` alone, so the same
    profile always replays the same bytes.
``eb``/``mode``/``workflow``/``predictor``/``dict_size``/``block_bytes``
    Codec parameters (defaults ``1e-4``/``rel``/``auto``/``lorenzo``/
    ``1024``/``0``; a non-zero ``block_bytes`` requests the blocks
    container).

Before the clock starts, the replayer runs the *library* pipeline locally
for every distinct (field, codec) pair and records the expected response
digest -- the archive bytes for ``compress``, the reconstructed field bytes
for ``decompress``.  Because the codec is deterministic across processes
and backends (the conformance kit pins this), a digest mismatch during
replay is a real correctness failure, not noise.

The outcome is a summary dict plus, when ``out_dir`` is given, a
``repro.bench/v1`` record (one result per op) whose timing blocks carry
exact p50/p95/p99 latency quantiles -- directly comparable with ``repro
bench compare`` tooling.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import urlencode

import numpy as np

from ..bench.record import build_record, quantiles, summarize, write_record
from ..core.compressor import compress, decompress_with_stats
from ..core.config import CompressorConfig
from ..core.errors import ConfigError
from ..core.streaming import compress_blocks
from ..telemetry.metrics import render_json

__all__ = ["load_profile", "replay_profile", "synthesize_field"]

_OPS = ("compress", "decompress", "verify")
_DTYPES = {"f32": np.dtype(np.float32), "f64": np.dtype(np.float64)}


# ---------------------------------------------------------------------------
# Profile loading and deterministic payload synthesis
# ---------------------------------------------------------------------------


@dataclass
class ReplayEntry:
    """One request from the profile, with defaults resolved."""

    op: str
    offset: float
    tenant: str
    priority: str
    dims: tuple[int, ...]
    dtype: str
    seed: int
    eb: float
    mode: str
    workflow: str
    predictor: str
    dict_size: int
    block_bytes: int
    index: int = 0

    def codec_key(self) -> tuple:
        """Everything that determines the bytes this entry exchanges."""
        return (
            self.dims, self.dtype, self.seed, self.eb, self.mode,
            self.workflow, self.predictor, self.dict_size, self.block_bytes,
        )


def load_profile(path: str | Path) -> list[ReplayEntry]:
    """Parse and validate a JSONL traffic profile."""
    entries: list[ReplayEntry] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}:{lineno}: malformed JSON ({exc})") from None
        if not isinstance(raw, dict):
            raise ConfigError(f"{path}:{lineno}: profile lines must be objects")
        op = raw.get("op")
        if op not in _OPS:
            raise ConfigError(
                f"{path}:{lineno}: op must be one of {_OPS}, got {op!r}"
            )
        dims = tuple(int(d) for d in raw.get("dims", ()))
        if not 1 <= len(dims) <= 4 or any(d < 1 for d in dims):
            raise ConfigError(
                f"{path}:{lineno}: dims must be 1..4 positive axes, got {dims}"
            )
        dtype = raw.get("dtype", "f32")
        if dtype not in _DTYPES:
            raise ConfigError(
                f"{path}:{lineno}: dtype must be one of {sorted(_DTYPES)}"
            )
        entries.append(ReplayEntry(
            op=op,
            offset=float(raw.get("offset", 0.0)),
            tenant=str(raw.get("tenant", "anonymous")),
            priority=str(raw.get("priority", "interactive")),
            dims=dims,
            dtype=dtype,
            seed=int(raw.get("seed", 0)),
            eb=float(raw.get("eb", 1e-4)),
            mode=str(raw.get("mode", "rel")),
            workflow=str(raw.get("workflow", "auto")),
            predictor=str(raw.get("predictor", "lorenzo")),
            dict_size=int(raw.get("dict_size", 1024)),
            block_bytes=int(raw.get("block_bytes", 0)),
            index=len(entries),
        ))
    if not entries:
        raise ConfigError(f"profile {path} contains no requests")
    return entries


def synthesize_field(
    dims: tuple[int, ...], dtype: str, seed: int
) -> np.ndarray:
    """Deterministic smooth-ish field: the same seed always replays the
    same bytes.  An offset keeps values away from zero so ``pwrel``
    profiles are well-posed."""
    rng = np.random.default_rng(seed)
    n = int(np.prod(dims))
    wave = np.sin(np.linspace(0.0, 8.0 * np.pi, n))
    drift = np.cumsum(rng.standard_normal(n) * 0.01)
    return (wave + drift + 5.0).astype(_DTYPES[dtype]).reshape(dims)


@dataclass
class _Prepared:
    """Request bytes plus the locally-computed expected outcome."""

    payload: bytes
    query: str
    expected_digest: str | None  # None: JSON response, assert ok instead
    field_bytes: int = 0


def _digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _prepare(entries: list[ReplayEntry]) -> dict[tuple, dict[str, _Prepared]]:
    """Run the library pipeline once per distinct codec key."""
    prepared: dict[tuple, dict[str, _Prepared]] = {}
    for entry in entries:
        key = entry.codec_key()
        bucket = prepared.setdefault(key, {})
        if entry.op in bucket:
            continue
        data = synthesize_field(entry.dims, entry.dtype, entry.seed)
        cfg = CompressorConfig(
            eb=entry.eb, mode=entry.mode, workflow=entry.workflow,
            predictor=entry.predictor, dict_size=entry.dict_size,
        )
        if entry.block_bytes:
            archive = compress_blocks(
                data, cfg, max_block_bytes=entry.block_bytes
            )
        else:
            archive = compress(data, cfg).archive
        params = {
            "dims": ",".join(str(d) for d in entry.dims),
            "dtype": entry.dtype,
            "eb": repr(entry.eb),
            "mode": entry.mode,
            "workflow": entry.workflow,
            "predictor": entry.predictor,
            "dict_size": str(entry.dict_size),
        }
        if entry.block_bytes:
            params["block_bytes"] = str(entry.block_bytes)
        if entry.op == "compress":
            bucket["compress"] = _Prepared(
                payload=data.tobytes(),
                query=urlencode(params),
                expected_digest=_digest(archive),
                field_bytes=data.nbytes,
            )
        elif entry.op == "decompress":
            reconstructed = np.ascontiguousarray(
                decompress_with_stats(archive).data
            ).tobytes()
            bucket["decompress"] = _Prepared(
                payload=archive,
                query="",
                expected_digest=_digest(reconstructed),
                field_bytes=data.nbytes,
            )
        else:  # verify
            bucket["verify"] = _Prepared(
                payload=archive,
                query="",
                expected_digest=None,
                field_bytes=data.nbytes,
            )
    return prepared


# ---------------------------------------------------------------------------
# The asyncio driver
# ---------------------------------------------------------------------------


async def _http_request(
    host: str,
    port: int,
    method: str,
    target: str,
    body: bytes,
    headers: list[tuple[str, str]],
) -> tuple[int, dict[str, str], bytes]:
    """One connection, one request (Connection: close keeps it simple)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = [
            f"{method} {target} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.split(maxsplit=2)
        if len(parts) < 2:
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        resp_headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").strip().partition(":")
            resp_headers[name.lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0"))
        resp_body = await reader.readexactly(length) if length else b""
        return status, resp_headers, resp_body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


@dataclass
class _Outcome:
    entry: ReplayEntry
    status: int = 0
    latency: float = 0.0
    digest_ok: bool = True
    detail: str = ""
    bytes_out: int = 0
    bytes_in: int = 0

    @property
    def ok(self) -> bool:
        return self.status == 200 and self.digest_ok and not self.detail


async def _fire(
    host: str,
    port: int,
    entry: ReplayEntry,
    prep: _Prepared,
    start: float,
    speed: float,
    gate: asyncio.Semaphore,
) -> _Outcome:
    loop = asyncio.get_running_loop()
    delay = start + entry.offset / speed - loop.time()
    if delay > 0:
        await asyncio.sleep(delay)
    target = f"/v1/{entry.op}"
    if prep.query:
        target += "?" + prep.query
    outcome = _Outcome(entry, bytes_out=len(prep.payload))
    async with gate:
        t0 = loop.time()
        try:
            status, _, body = await _http_request(
                host, port, "POST", target, prep.payload,
                [("X-Repro-Tenant", entry.tenant),
                 ("X-Repro-Priority", entry.priority)],
            )
        except (OSError, asyncio.IncompleteReadError, ConnectionError) as exc:
            outcome.detail = f"transport failure: {exc}"
            return outcome
        outcome.latency = loop.time() - t0
    outcome.status = status
    outcome.bytes_in = len(body)
    if status != 200:
        try:
            outcome.detail = json.loads(body)["error"]["detail"]
        except (ValueError, KeyError, TypeError):
            outcome.detail = body[:200].decode("latin-1", "replace")
        return outcome
    if prep.expected_digest is not None:
        outcome.digest_ok = _digest(body) == prep.expected_digest
        if not outcome.digest_ok:
            outcome.detail = (
                f"response digest {_digest(body)[:16]}... does not match the "
                f"library pipeline ({prep.expected_digest[:16]}...)"
            )
    else:  # verify: the JSON report must say ok
        try:
            report = json.loads(body)
        except ValueError:
            outcome.detail = "verify response is not JSON"
            return outcome
        if report.get("ok") is not True:
            outcome.detail = f"verify reported not-ok: {report}"
    return outcome


async def _drive(
    host: str,
    port: int,
    entries: list[ReplayEntry],
    prepared: dict,
    speed: float,
    max_concurrency: int,
) -> list[_Outcome]:
    gate = asyncio.Semaphore(max_concurrency)
    start = asyncio.get_running_loop().time()
    tasks = [
        asyncio.ensure_future(_fire(
            host, port, entry, prepared[entry.codec_key()][entry.op],
            start, speed, gate,
        ))
        for entry in entries
    ]
    return list(await asyncio.gather(*tasks))


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def replay_profile(
    profile: str | Path,
    host: str = "127.0.0.1",
    port: int = 8077,
    out_dir: str | Path | None = None,
    label: str | None = None,
    speed: float = 1.0,
    max_concurrency: int = 64,
) -> dict:
    """Replay ``profile`` against a live server and summarize the outcome.

    Returns a summary dict (statuses, error list, digest mismatches, exact
    latency quantiles); with ``out_dir`` it also writes a ``repro.bench/v1``
    record (``record_path`` in the summary) whose per-op results carry
    ``latency_quantiles`` blocks.
    """
    if speed <= 0:
        raise ConfigError(f"replay speed must be > 0, got {speed}")
    entries = load_profile(profile)
    prepared = _prepare(entries)
    wall_start = time.perf_counter()
    outcomes = asyncio.run(
        _drive(host, port, entries, prepared, speed, max_concurrency)
    )
    wall = time.perf_counter() - wall_start

    statuses: dict[str, int] = {}
    errors: list[dict] = []
    mismatches = 0
    tenants: set[str] = set()
    for outcome in outcomes:
        statuses[str(outcome.status)] = statuses.get(str(outcome.status), 0) + 1
        tenants.add(outcome.entry.tenant)
        if not outcome.digest_ok:
            mismatches += 1
        if not outcome.ok:
            errors.append({
                "index": outcome.entry.index,
                "op": outcome.entry.op,
                "tenant": outcome.entry.tenant,
                "status": outcome.status,
                "detail": outcome.detail,
            })
    latencies = [o.latency for o in outcomes if o.status == 200]
    summary = {
        "profile": str(profile),
        "url": f"http://{host}:{port}",
        "n_requests": len(outcomes),
        "n_tenants": len(tenants),
        "statuses": dict(sorted(statuses.items())),
        "errors": errors,
        "digest_mismatches": mismatches,
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(len(outcomes) / wall, 2) if wall else 0.0,
        "latency_seconds": {
            **summarize(latencies), **quantiles(latencies),
        },
        "record_path": None,
    }

    if out_dir is not None:
        results = []
        for op in _OPS:
            op_outcomes = [o for o in outcomes if o.entry.op == op]
            if not op_outcomes:
                continue
            op_latencies = [o.latency for o in op_outcomes if o.status == 200]
            results.append({
                "case": f"replay.{op}",
                "dataset": "replay",
                "field": Path(profile).stem,
                "eb": op_outcomes[0].entry.eb,
                "workflow": "mixed",
                "repeats": len(op_outcomes),
                "timing": {"request": summarize(op_latencies)},
                "latency_quantiles": {"request": quantiles(op_latencies)},
                "quality": {
                    "errors": sum(1 for o in op_outcomes if not o.ok),
                    "digest_mismatches": sum(
                        1 for o in op_outcomes if not o.digest_ok
                    ),
                },
                "sizes": {
                    "bytes_sent": sum(o.bytes_out for o in op_outcomes),
                    "bytes_received": sum(o.bytes_in for o in op_outcomes),
                },
                "selector": {},
            })
        record = build_record(
            label=label or f"replay_{Path(profile).stem}",
            scenario="replay",
            results=results,
            config={
                "profile": str(profile),
                "url": summary["url"],
                "speed": speed,
                "max_concurrency": max_concurrency,
                "n_requests": len(outcomes),
                "n_tenants": len(tenants),
            },
            metrics=render_json(),
        )
        summary["record_path"] = str(write_record(record, out_dir))
    return summary
