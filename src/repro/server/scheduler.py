"""Request admission control: per-tenant quotas and priority classes.

The front door must never queue unboundedly: the engine already bounds
in-flight work with its ``max_inflight`` semaphore, but *blocking* on that
semaphore from the event loop would stall every connection.  The scheduler
converts saturation into an immediate, explicit answer instead:

* **per-tenant token buckets** -- every tenant (the ``X-Repro-Tenant``
  header) draws from a refilling bucket; an empty bucket is a
  :class:`QuotaExceeded` rejection whose ``retry_after`` is the time until
  the next token;
* **priority classes** -- ``interactive`` requests may use every admission
  slot, ``batch`` requests stop at ``limit - batch_reserve`` so a batch
  flood cannot starve interactive traffic;
* **capacity admission** -- once the admitted in-flight count reaches the
  limit (or the engine reports no spare ``max_inflight`` headroom), further
  requests get :class:`Saturated`.

Both rejection types map to ``429 Too Many Requests`` with a
``Retry-After`` header upstream.  The scheduler is intentionally
synchronous and unlocked: it is only ever called from the server's event
loop thread.
"""

from __future__ import annotations

import math
import time

from ..core.errors import ConfigError, ReproError

__all__ = [
    "PRIORITIES",
    "AdmissionError",
    "QuotaExceeded",
    "RequestScheduler",
    "Saturated",
    "TokenBucket",
    "parse_quota",
]

#: Recognized priority classes, most privileged first.
PRIORITIES = ("interactive", "batch")


class AdmissionError(ReproError):
    """A request was rejected at admission (HTTP 429 upstream)."""

    reason = "rejected"

    def __init__(self, detail: str, retry_after: float) -> None:
        super().__init__(detail)
        #: Seconds the client should wait before retrying (>= 1 on the wire).
        self.retry_after = max(int(math.ceil(retry_after)), 1)


class QuotaExceeded(AdmissionError):
    """The tenant's token bucket is empty."""

    reason = "quota"


class Saturated(AdmissionError):
    """Every admission slot (or the engine's inflight headroom) is taken."""

    reason = "capacity"


def parse_quota(spec: str) -> tuple[float, float]:
    """Parse a ``RATE[:BURST]`` quota spec into ``(rate, burst)``.

    ``RATE`` is tokens (requests) per second; ``BURST`` defaults to twice
    the rate (minimum 1 token).
    """
    rate_s, _, burst_s = str(spec).partition(":")
    try:
        rate = float(rate_s)
        burst = float(burst_s) if burst_s else max(2.0 * rate, 1.0)
    except ValueError:
        raise ConfigError(f"quota must be RATE[:BURST], got {spec!r}") from None
    if rate <= 0 or burst < 1:
        raise ConfigError(
            f"quota needs rate > 0 and burst >= 1, got rate={rate} burst={burst}"
        )
    return rate, burst


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock")

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0 or burst < 1:
            raise ConfigError(
                f"token bucket needs rate > 0 and burst >= 1, "
                f"got rate={rate} burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_take(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available; returns 0.0 on success, else the
        seconds until ``n`` tokens will have refilled."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate

    def snapshot(self) -> dict:
        self._refill()
        return {"rate": self.rate, "burst": self.burst,
                "tokens": round(self._tokens, 3)}


class RequestScheduler:
    """Admission bookkeeping for one server instance (event-loop only).

    Parameters
    ----------
    limit:
        Maximum admitted in-flight requests -- normally the engine's
        ``max_inflight`` so admission mirrors the engine's own
        backpressure bound.
    batch_reserve:
        Slots withheld from ``batch``-priority requests (default
        ``limit // 4``); interactive traffic always sees the full limit.
    quota_rate / quota_burst:
        Default per-tenant token-bucket parameters; ``tenant_quotas`` maps
        tenant names to ``(rate, burst)`` overrides.
    """

    def __init__(
        self,
        limit: int,
        batch_reserve: int | None = None,
        quota_rate: float = 100.0,
        quota_burst: float | None = None,
        tenant_quotas: dict[str, tuple[float, float]] | None = None,
        clock=time.monotonic,
    ) -> None:
        self.limit = int(limit)
        if self.limit < 1:
            raise ConfigError(f"admission limit must be >= 1, got {limit}")
        self.batch_reserve = (
            self.limit // 4 if batch_reserve is None else int(batch_reserve)
        )
        if not 0 <= self.batch_reserve < self.limit:
            raise ConfigError(
                f"batch_reserve must be in [0, limit), got "
                f"{self.batch_reserve} with limit {self.limit}"
            )
        self.quota_rate = float(quota_rate)
        self.quota_burst = (
            float(quota_burst) if quota_burst is not None
            else max(2.0 * self.quota_rate, 1.0)
        )
        self._tenant_quotas = dict(tenant_quotas or {})
        self._buckets: dict[str, TokenBucket] = {}
        self._clock = clock
        self.inflight = 0
        self.inflight_peak = 0
        self.admitted_total = 0
        self.rejected: dict[str, int] = {}

    def bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            rate, burst = self._tenant_quotas.get(
                tenant, (self.quota_rate, self.quota_burst)
            )
            bucket = TokenBucket(rate, burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, priority: str, spare: int | None = None) -> None:
        """Admit one request or raise; the caller must :meth:`release`.

        ``spare`` is the engine's current ``max_inflight`` headroom
        (:meth:`~repro.engine.CompressionEngine.spare_capacity`); passing it
        lets admission reflect work the engine is running for other callers.
        """
        if priority not in PRIORITIES:
            raise ConfigError(
                f"unknown priority {priority!r}; expected one of {PRIORITIES}"
            )
        wait = self.bucket_for(tenant).try_take()
        if wait > 0.0:
            self.rejected["quota"] = self.rejected.get("quota", 0) + 1
            raise QuotaExceeded(
                f"tenant {tenant!r} is over its request quota "
                f"({self.bucket_for(tenant).rate:g}/s)", retry_after=wait,
            )
        cap = self.limit if priority == "interactive" else (
            self.limit - self.batch_reserve
        )
        if self.inflight >= cap or (spare is not None and spare < 1):
            self.rejected["capacity"] = self.rejected.get("capacity", 0) + 1
            raise Saturated(
                f"server is at capacity ({self.inflight} in flight, "
                f"{priority} admission limit {cap})", retry_after=1.0,
            )
        self.inflight += 1
        self.inflight_peak = max(self.inflight_peak, self.inflight)
        self.admitted_total += 1

    def release(self) -> None:
        self.inflight = max(self.inflight - 1, 0)

    def snapshot(self) -> dict:
        return {
            "limit": self.limit,
            "batch_reserve": self.batch_reserve,
            "inflight": self.inflight,
            "inflight_peak": self.inflight_peak,
            "admitted_total": self.admitted_total,
            "rejected": dict(self.rejected),
            "tenants": {
                name: bucket.snapshot()
                for name, bucket in sorted(self._buckets.items())
            },
        }
