"""Unified telemetry: structured tracing, metrics, and trace export.

One instrumentation layer every pipeline stage reports through:

>>> from repro import telemetry as tel
>>> with tel.trace("demo") as tr:
...     result = repro.compress(field, eb=1e-3)
>>> print(tr.tree())                      # human-readable span tree
>>> tel.write_chrome_trace("t.json", tr)  # open in Perfetto
>>> print(tel.render_prometheus())        # counters/gauges/histograms

Tracing (:mod:`.context`) provides nested :class:`Span` context managers
with byte counters and contextvar propagation (parallel workers nest
correctly).  Metrics (:mod:`.metrics`) is a process-global registry with
Prometheus-text and JSON exposition.  Export (:mod:`.export`) renders
traces as Chrome trace-event JSON or indented text.  The whole layer
switches off via ``REPRO_TELEMETRY=0`` (or :func:`set_enabled`), leaving
only no-op spans behind; see ``docs/observability.md``.
"""

from .context import (
    Span,
    Trace,
    current_span,
    enabled,
    scope,
    set_enabled,
    span,
    trace,
)
from .export import render_tree, to_chrome_trace, write_chrome_trace
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    render_json,
    render_prometheus,
    reset_metrics,
)

__all__ = [
    # tracing
    "Span",
    "Trace",
    "span",
    "trace",
    "current_span",
    "enabled",
    "set_enabled",
    "scope",
    # export
    "to_chrome_trace",
    "write_chrome_trace",
    "render_tree",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "render_prometheus",
    "render_json",
    "reset_metrics",
]
