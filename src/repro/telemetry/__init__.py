"""Unified telemetry: structured tracing, metrics, and trace export.

One instrumentation layer every pipeline stage reports through:

>>> from repro import telemetry as tel
>>> with tel.trace("demo") as tr:
...     result = repro.compress(field, eb=1e-3)
>>> print(tr.tree())                      # human-readable span tree
>>> tel.write_chrome_trace("t.json", tr)  # open in Perfetto
>>> print(tel.render_prometheus())        # counters/gauges/histograms

Tracing (:mod:`.context`) provides nested :class:`Span` context managers
with byte counters and contextvar propagation (parallel workers nest
correctly).  Metrics (:mod:`.metrics`) is a process-global registry with
Prometheus-text and JSON exposition.  Export (:mod:`.export`) renders
traces as Chrome trace-event JSON or indented text.  The whole layer
switches off via ``REPRO_TELEMETRY=0`` (or :func:`set_enabled`), leaving
only no-op spans behind; see ``docs/observability.md``.

The continuous layer on top of the per-call one:

* :mod:`.ledger` -- append-only JSONL run ledger (``REPRO_LEDGER=path``),
  one record per compress/decompress/engine-batch invocation;
* :mod:`.exposition` -- stdlib HTTP exporter serving the metrics registry
  at ``/metrics`` (Prometheus text) and ``/metrics.json``;
* :mod:`.log` -- span-correlated structured JSON log lines
  (``REPRO_LOG=stderr`` or a path).
"""

from .context import (
    Span,
    Trace,
    current_span,
    enabled,
    scope,
    set_enabled,
    span,
    trace,
)
from .export import render_tree, to_chrome_trace, write_chrome_trace
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    render_json,
    render_prometheus,
    reset_metrics,
)
from .exposition import MetricsServer, lint_prometheus
from .ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    aggregate_ledger,
    config_fingerprint,
    ledger_for,
    read_ledger,
    render_ledger_report,
    reset_ledgers,
    span_self_times,
)
from .log import get_logger

__all__ = [
    # tracing
    "Span",
    "Trace",
    "span",
    "trace",
    "current_span",
    "enabled",
    "set_enabled",
    "scope",
    # export
    "to_chrome_trace",
    "write_chrome_trace",
    "render_tree",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "render_prometheus",
    "render_json",
    "reset_metrics",
    # ledger
    "LEDGER_SCHEMA",
    "RunLedger",
    "ledger_for",
    "read_ledger",
    "aggregate_ledger",
    "render_ledger_report",
    "reset_ledgers",
    "config_fingerprint",
    "span_self_times",
    # exposition / logging
    "MetricsServer",
    "lint_prometheus",
    "get_logger",
]
