"""Structured tracing: nested spans, trace capture, and the enable switch.

A :class:`Span` measures one pipeline stage: wall time (``perf_counter``
pair), optional byte counters (``bytes_in``/``bytes_out`` -> derived
throughput), and free-form attributes.  Spans nest through a
``contextvars.ContextVar`` holding the current open span, so concurrent
:mod:`repro.parallel` ranks (one thread per rank -- a fresh context each)
build independent, correctly-nested trees that still land in one process
trace, distinguishable by thread id.

Telemetry is controlled by three layers, most specific wins:

1. a per-call scope (:func:`scope`, used by ``CompressorConfig.telemetry``);
2. a process-global override (:func:`set_enabled`);
3. the ``REPRO_TELEMETRY`` environment variable (``0``/``false``/``off``
   disables; anything else, including unset, enables).

When disabled, :func:`span` returns a shared no-op singleton: one function
call plus the switch lookup, no allocation, no timing -- the <2% overhead
path the benchmarks rely on.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "Span",
    "Trace",
    "span",
    "trace",
    "current_span",
    "enabled",
    "set_enabled",
    "scope",
]

_FALSY = {"0", "false", "off", "no"}

#: Process-global override; ``None`` defers to the environment variable.
_GLOBAL_OVERRIDE: bool | None = None

#: Per-context (thread / task / call-scope) override; ``None`` defers down.
_SCOPE_OVERRIDE: ContextVar[bool | None] = ContextVar("repro_tel_scope", default=None)

#: The innermost open span in this context (None at top level).
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_tel_span", default=None)

#: Common monotonic origin so Chrome-trace timestamps from all threads align.
_ORIGIN = time.perf_counter()

#: Active trace collectors (usually zero or one); guarded by ``_TRACE_LOCK``
#: because root spans may complete on any thread.
_ACTIVE_TRACES: list["Trace"] = []
_TRACE_LOCK = threading.Lock()


def enabled() -> bool:
    """Whether telemetry is currently on (scope > global > environment)."""
    ov = _SCOPE_OVERRIDE.get()
    if ov is not None:
        return ov
    if _GLOBAL_OVERRIDE is not None:
        return _GLOBAL_OVERRIDE
    return os.environ.get("REPRO_TELEMETRY", "1").strip().lower() not in _FALSY


def set_enabled(value: bool | None) -> None:
    """Set (or with ``None`` clear) the process-global override."""
    global _GLOBAL_OVERRIDE
    _GLOBAL_OVERRIDE = None if value is None else bool(value)


@contextmanager
def scope(value: bool | None):
    """Force telemetry on/off inside the block; ``None`` is a no-op."""
    if value is None:
        yield
        return
    token = _SCOPE_OVERRIDE.set(bool(value))
    try:
        yield
    finally:
        _SCOPE_OVERRIDE.reset(token)


class _NullSpan:
    """Shared do-nothing span used whenever telemetry is disabled."""

    __slots__ = ()

    name = ""
    bytes_in = 0
    bytes_out = 0
    duration = 0.0
    children: tuple = ()
    attrs: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **kwargs) -> "_NullSpan":
        return self

    def __bool__(self) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One timed stage; use as a context manager (see :func:`span`)."""

    __slots__ = (
        "name", "bytes_in", "bytes_out", "attrs", "children",
        "t_start", "t_end", "tid", "_token",
    )

    def __init__(self, name: str, bytes_in: int = 0, bytes_out: int = 0, **attrs) -> None:
        self.name = name
        self.bytes_in = int(bytes_in)
        self.bytes_out = int(bytes_out)
        self.attrs: dict = dict(attrs)
        self.children: list[Span] = []
        self.t_start = 0.0
        self.t_end = 0.0
        self.tid = 0
        self._token = None

    def set(self, bytes_in: int | None = None, bytes_out: int | None = None, **attrs) -> "Span":
        """Update byte counters / attach attributes mid-span."""
        if bytes_in is not None:
            self.bytes_in = int(bytes_in)
        if bytes_out is not None:
            self.bytes_out = int(bytes_out)
        if attrs:
            self.attrs.update(attrs)
        return self

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        self.tid = threading.get_ident()
        self._token = _CURRENT.set(self)
        self.t_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t_end = time.perf_counter()
        _CURRENT.reset(self._token)
        self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        parent = _CURRENT.get()
        if parent is not None:
            parent.children.append(self)
        elif _ACTIVE_TRACES:
            with _TRACE_LOCK:
                for tr in _ACTIVE_TRACES:
                    tr.roots.append(self)
        return False

    # -- derived quantities -------------------------------------------------

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while the span is still open)."""
        return max(self.t_end - self.t_start, 0.0) if self.t_end else 0.0

    @property
    def start_us(self) -> float:
        """Microseconds since the process trace origin (Chrome ``ts``)."""
        return (self.t_start - _ORIGIN) * 1e6

    @property
    def throughput_gbps(self) -> float:
        """max(bytes_in, bytes_out) / duration, in GB/s (0.0 if unknown)."""
        d = self.duration
        b = max(self.bytes_in, self.bytes_out)
        return b / d / 1e9 if d > 0 and b else 0.0

    def walk(self):
        """Yield this span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, depth-first."""
        for s in self.walk():
            if s.name == name:
                return s
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, {len(self.children)} children)"


def span(name: str, bytes_in: int = 0, bytes_out: int = 0, **attrs):
    """Open a span (or the no-op singleton when telemetry is disabled)."""
    if not enabled():
        return _NULL_SPAN
    return Span(name, bytes_in=bytes_in, bytes_out=bytes_out, **attrs)


def current_span():
    """The innermost open span in this context, or None."""
    return _CURRENT.get()


class Trace:
    """A collection of completed root spans, ready for export."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.roots: list[Span] = []

    def spans(self):
        """All spans in the trace, depth-first."""
        for root in self.roots:
            yield from root.walk()

    def span_names(self) -> set[str]:
        return {s.name for s in self.spans()}

    def to_chrome(self) -> dict:
        """Chrome trace-event JSON object (see :mod:`repro.telemetry.export`)."""
        from .export import to_chrome_trace

        return to_chrome_trace(self)

    def tree(self) -> str:
        """Human-readable indented rendering of the trace."""
        from .export import render_tree

        return render_tree(self)


@contextmanager
def trace(name: str = "trace"):
    """Collect every root span completed inside the block into a Trace.

    Collection is process-wide: root spans finishing on *other* threads
    (e.g. :func:`repro.parallel.run_spmd` ranks) are captured too, each
    carrying its own thread id for per-thread trace rows.
    """
    tr = Trace(name)
    with _TRACE_LOCK:
        _ACTIVE_TRACES.append(tr)
    try:
        yield tr
    finally:
        with _TRACE_LOCK:
            _ACTIVE_TRACES.remove(tr)
