"""Trace export: Chrome trace-event JSON (Perfetto-loadable) and text trees.

The Chrome format is the trace-event "JSON object format": a top-level
object with a ``traceEvents`` array of complete (``"ph": "X"``) events,
each carrying microsecond ``ts``/``dur`` against a shared process origin,
``pid``/``tid`` for row grouping, and an ``args`` payload with the byte
counters and derived throughput.  Spans that moved bytes additionally emit
counter (``"ph": "C"``) events so the viewer draws a throughput track under
the flame chart.  Load the file at https://ui.perfetto.dev (or
``chrome://tracing``) to see the pipeline as a flame chart.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .context import Span, Trace

__all__ = ["to_chrome_trace", "write_chrome_trace", "render_tree"]


def _span_event(span: Span, pid: int) -> dict:
    args: dict = {}
    if span.bytes_in:
        args["bytes_in"] = span.bytes_in
    if span.bytes_out:
        args["bytes_out"] = span.bytes_out
    gbps = span.throughput_gbps
    if gbps:
        args["throughput_gbps"] = round(gbps, 4)
    for k, v in span.attrs.items():
        args[k] = v if isinstance(v, (int, float, str, bool)) else repr(v)
    return {
        "name": span.name,
        "cat": "repro",
        "ph": "X",
        "pid": pid,
        "tid": span.tid,
        "ts": round(span.start_us, 3),
        "dur": round(span.duration * 1e6, 3),
        "args": args,
    }


def _counter_events(span: Span, pid: int) -> list[dict]:
    """Throughput counter track: value while the span runs, zero after.

    Chrome draws ``"ph": "C"`` samples as a step function per counter
    ``name``; pairing each span's GB/s with a trailing zero at its end
    keeps concurrent spans from smearing into each other.
    """
    gbps = span.throughput_gbps
    if not gbps:
        return []
    common = {"cat": "repro", "ph": "C", "pid": pid, "tid": span.tid,
              "name": "throughput_gbps"}
    return [
        {**common, "ts": round(span.start_us, 3),
         "args": {span.name: round(gbps, 4)}},
        {**common, "ts": round(span.start_us + span.duration * 1e6, 3),
         "args": {span.name: 0}},
    ]


def to_chrome_trace(trace: Trace | Span) -> dict:
    """Build the Chrome trace-event JSON object for a trace (or one span)."""
    spans = list(trace.spans() if isinstance(trace, Trace) else trace.walk())
    pid = os.getpid()
    events = [_span_event(s, pid) for s in spans]
    for s in spans:
        events.extend(_counter_events(s, pid))
    name = trace.name if isinstance(trace, Trace) else trace.name
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry", "trace": name},
    }


def write_chrome_trace(path: str | Path, trace: Trace | Span) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(trace), indent=1) + "\n")
    return path


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 30:
        return f"{n / (1 << 30):.2f} GiB"
    if n >= 1 << 20:
        return f"{n / (1 << 20):.2f} MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f} KiB"
    return f"{n} B"


def _tree_lines(span: Span, prefix: str, is_last: bool, top: bool) -> list[str]:
    connector = "" if top else ("`- " if is_last else "|- ")
    label = f"{prefix}{connector}{span.name}"
    cols = [f"{span.duration * 1e3:10.3f} ms"]
    if span.bytes_in or span.bytes_out:
        cols.append(f"in {_fmt_bytes(span.bytes_in)} / out {_fmt_bytes(span.bytes_out)}")
    gbps = span.throughput_gbps
    if gbps:
        cols.append(f"{gbps:.2f} GB/s")
    if span.attrs:
        cols.append(" ".join(f"{k}={v}" for k, v in sorted(span.attrs.items())))
    lines = [f"{label:<44} {'  '.join(cols)}"]
    child_prefix = prefix if top else prefix + ("   " if is_last else "|  ")
    for i, child in enumerate(span.children):
        lines.extend(
            _tree_lines(child, child_prefix, i == len(span.children) - 1, top=False)
        )
    return lines


def render_tree(trace: Trace | Span) -> str:
    """Indented human-readable rendering of a trace's span forest."""
    roots = trace.roots if isinstance(trace, Trace) else [trace]
    if not roots:
        return "(empty trace)"
    lines: list[str] = []
    for root in roots:
        lines.extend(_tree_lines(root, "", is_last=True, top=True))
    return "\n".join(lines)
