"""Live metrics exposition over HTTP (the ``/metrics`` front door).

A stdlib-only exporter for the process-global metrics registry:

* ``GET /metrics``       -- Prometheus text exposition format 0.0.4;
* ``GET /metrics.json``  -- the registry's JSON snapshot;
* ``GET /healthz``       -- liveness probe (``ok``).

Two entry points:

* ``repro obs serve [--host H] [--port P]`` runs it in the foreground
  (``--once`` renders a single scrape to stdout and exits -- the CI
  smoke path);
* :class:`MetricsServer` embeds it: a daemon-threaded
  ``ThreadingHTTPServer`` with context-manager lifecycle, which the
  planned ``repro.server`` async front door mounts alongside the codec
  endpoints.

:func:`lint_prometheus` validates the text format the way ``promtool
check metrics`` would: one ``# TYPE``/``# HELP`` per family, headers
before samples, sample names derived from a declared family, trailing
newline.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .log import get_logger
from .metrics import REGISTRY, MetricsRegistry

__all__ = ["MetricsServer", "lint_prometheus", "serve_forever"]

_log = get_logger("repro.telemetry.exposition")


def lint_prometheus(text: str) -> list[str]:
    """Problems with a Prometheus text exposition payload (empty = clean).

    Checks the invariants ``promtool check metrics`` enforces on the
    0.0.4 text format: exactly one ``# TYPE`` (and at most one ``# HELP``,
    appearing first) per metric family, samples only after their family's
    headers, histogram sample suffixes (``_bucket``/``_sum``/``_count``)
    resolving to a declared family, and a newline-terminated payload.
    """
    problems: list[str] = []
    if text and not text.endswith("\n"):
        problems.append("payload does not end with a newline")
    typed: dict[str, str] = {}
    helped: set[str] = set()
    sampled: set[str] = set()
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            family = line.split()[2]
            if family in helped:
                problems.append(f"line {i + 1}: duplicate # HELP for {family}")
            if family in typed or family in sampled:
                problems.append(f"line {i + 1}: # HELP for {family} after its TYPE/samples")
            helped.add(family)
        elif line.startswith("# TYPE "):
            parts = line.split()
            family, kind = parts[2], parts[3] if len(parts) > 3 else ""
            if family in typed:
                problems.append(f"line {i + 1}: duplicate # TYPE for {family}")
            if family in sampled:
                problems.append(f"line {i + 1}: # TYPE for {family} after its samples")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {i + 1}: unknown metric type {kind!r}")
            typed[family] = kind
        elif line.startswith("#"):
            continue  # free-form comment
        else:
            name = line.split("{")[0].split()[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in typed:
                    base = name[: -len(suffix)]
                    break
            if base not in typed:
                problems.append(f"line {i + 1}: sample {name} has no # TYPE header")
            else:
                sampled.add(base)
    return problems


class _MetricsHandler(BaseHTTPRequestHandler):
    """Routes the three endpoints; the registry arrives via the server."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        registry: MetricsRegistry = self.server.registry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = registry.render_prometheus().encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = (json.dumps(registry.render_json(), indent=2) + "\n").encode()
            ctype = "application/json"
        elif path == "/healthz":
            body = b"ok\n"
            ctype = "text/plain"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        # Route http.server's stderr chatter through the structured log
        # (silent unless REPRO_LOG is configured).
        _log.event("server.request", detail=fmt % args)


class MetricsServer:
    """Embeddable ``/metrics`` exporter with context-manager lifecycle.

    >>> with MetricsServer(port=0) as srv:      # port 0 = ephemeral
    ...     print(srv.url)                      # http://127.0.0.1:<port>
    ...     ...                                 # scrape away
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.host = host
        self.requested_port = int(port)
        self.registry = registry if registry is not None else REGISTRY
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            raise RuntimeError("metrics server already started")
        self._httpd = ThreadingHTTPServer(
            (self.host, self.requested_port), _MetricsHandler
        )
        self._httpd.registry = self.registry  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        _log.event("server.start", host=self.host, port=self.port)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        _log.event("server.stop", host=self.host, port=self.port)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- addressing ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self.requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


def serve_forever(host: str = "127.0.0.1", port: int = 9464) -> None:
    """Blocking foreground server (the ``repro obs serve`` body)."""
    server = MetricsServer(host=host, port=port).start()
    try:
        while True:
            server._thread.join(timeout=3600.0)  # type: ignore[union-attr]
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
