"""Predefined pipeline metrics and the stage-stats derivation helpers.

Metric names follow Prometheus conventions (``repro_`` namespace, ``_total``
suffix on counters, base-unit ``_seconds``/``_bytes``):

* ``repro_compress_calls_total`` / ``repro_decompress_calls_total``
* ``repro_compress_input_bytes_total`` -- raw bytes fed to :func:`repro.compress`
* ``repro_archive_bytes_total``       -- archive bytes produced
* ``repro_selector_decisions_total{workflow=...}``
* ``repro_selector_fastpath_total{workflow=...}`` -- forced-workflow
  short-circuits that skipped the O(n) selector estimation passes
* ``repro_integrity_failures_total{kind=...}`` -- detected archive
  corruption by failure class (framing, header_digest, section_checksum)
* ``repro_outliers_total``
* ``repro_stage_seconds{op=...,stage=...}`` -- per-stage latency histogram
* ``repro_kernel_simulated_seconds{kernel=...}`` -- GPU-model kernel times
* ``repro_last_compression_ratio`` (gauge)
* ``repro_experiment_seconds{experiment=...}`` (gauge, bench harness)
"""

from __future__ import annotations

from .context import Span, enabled
from .metrics import REGISTRY

__all__ = [
    "COMPRESS_CALLS",
    "DECOMPRESS_CALLS",
    "INPUT_BYTES",
    "ARCHIVE_BYTES",
    "SELECTOR_DECISIONS",
    "SELECTOR_FASTPATH",
    "INTEGRITY_FAILURES",
    "OUTLIERS",
    "STAGE_SECONDS",
    "KERNEL_SIM_SECONDS",
    "LAST_RATIO",
    "EXPERIMENT_SECONDS",
    "stage_stats_from_span",
    "record_stage_metrics",
]

COMPRESS_CALLS = REGISTRY.counter(
    "repro_compress_calls_total", "Completed repro.compress calls")
DECOMPRESS_CALLS = REGISTRY.counter(
    "repro_decompress_calls_total", "Completed repro.decompress calls")
INPUT_BYTES = REGISTRY.counter(
    "repro_compress_input_bytes_total", "Raw bytes fed to the compressor")
ARCHIVE_BYTES = REGISTRY.counter(
    "repro_archive_bytes_total", "Archive bytes produced by the compressor")
SELECTOR_DECISIONS = REGISTRY.counter(
    "repro_selector_decisions_total", "Adaptive-workflow decisions by outcome")
SELECTOR_FASTPATH = REGISTRY.counter(
    "repro_selector_fastpath_total",
    "Forced-workflow selections that skipped the O(n) estimation passes")
INTEGRITY_FAILURES = REGISTRY.counter(
    "repro_integrity_failures_total",
    "Archive corruption detections by failure class")
OUTLIERS = REGISTRY.counter(
    "repro_outliers_total", "Out-of-dictionary-range compensation deltas stored")
STAGE_SECONDS = REGISTRY.histogram(
    "repro_stage_seconds", "Wall seconds per pipeline stage")
KERNEL_SIM_SECONDS = REGISTRY.histogram(
    "repro_kernel_simulated_seconds",
    "Cost-model (simulated device) seconds per GPU kernel",
    buckets=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0),
)
LAST_RATIO = REGISTRY.gauge(
    "repro_last_compression_ratio", "Compression ratio of the last compress call")
EXPERIMENT_SECONDS = REGISTRY.gauge(
    "repro_experiment_seconds", "Wall seconds of the last run per bench experiment")


def stage_stats_from_span(root: Span | None) -> dict[str, float]:
    """Flatten a closed pipeline root span into ``stage_stats`` timing keys.

    Each direct child becomes ``<name>_seconds``; the root itself becomes
    ``total_seconds``.  Returns ``{}`` for no-op spans (telemetry disabled),
    keeping the result dict free of bogus zeros.
    """
    if not isinstance(root, Span):
        return {}
    stats = {f"{child.name}_seconds": child.duration for child in root.children}
    stats["total_seconds"] = root.duration
    return stats


def record_stage_metrics(root: Span | None, op: str) -> None:
    """Feed a closed root span's stage timings into ``repro_stage_seconds``."""
    if not isinstance(root, Span) or not enabled():
        return
    for child in root.children:
        STAGE_SECONDS.observe(child.duration, op=op, stage=child.name)
    STAGE_SECONDS.observe(root.duration, op=op, stage="total")
