"""Predefined pipeline metrics and the stage-stats derivation helpers.

Metric names follow Prometheus conventions (``repro_`` namespace, ``_total``
suffix on counters, base-unit ``_seconds``/``_bytes``):

* ``repro_compress_calls_total`` / ``repro_decompress_calls_total``
* ``repro_compress_input_bytes_total`` -- raw bytes fed to :func:`repro.compress`
* ``repro_archive_bytes_total``       -- archive bytes produced
* ``repro_selector_decisions_total{workflow=...}``
* ``repro_selector_fastpath_total{workflow=...}`` -- forced-workflow
  short-circuits that skipped the O(n) selector estimation passes
* ``repro_integrity_failures_total{kind=...}`` -- detected archive
  corruption by failure class (framing, header_digest, section_checksum)
* ``repro_outliers_total``
* ``repro_selector_mispredict_total{kind=...}`` -- selector estimator
  mispredictions (actual coded bits outside the predicted R-/R+ bounds, or
  an RLE pick that coded worse than Huffman's predicted worst case)
* ``repro_stage_seconds{op=...,stage=...}`` -- per-stage latency histogram
* ``repro_kernel_simulated_seconds{kernel=...}`` -- GPU-model kernel times
* ``repro_kernel_elements_total{kernel=...}`` -- elements processed per
  simulated kernel (at profile scale ``n_sim``)
* ``repro_kernel_bytes_total{kernel=...,direction=...}`` -- DRAM bytes
  moved per simulated kernel (read/written)
* ``repro_last_compression_ratio`` (gauge)
* ``repro_experiment_seconds{experiment=...}`` (gauge, bench harness)
* ``repro_engine_jobs_total`` -- compression jobs completed by the parallel
  engine's worker pool
* ``repro_engine_cache_hits_total`` / ``repro_engine_cache_misses_total`` --
  codebook/histogram cache outcomes (a hit skips Huffman tree construction)
* ``repro_engine_queue_depth`` (gauge) -- engine jobs queued or running,
  bounded by the engine's ``max_inflight`` backpressure limit
* ``repro_engine_queue_depth_max`` (gauge) -- high-water mark of the queue
  depth, so ledger records and ``obs report`` can show saturation without
  sampling the live gauge
* ``repro_engine_submit_wait_seconds`` -- histogram of producer-side
  blocking on the ``max_inflight`` semaphore (backpressure wait)
* ``repro_engine_worker_seconds_total{kind=wall|cpu}`` -- wall vs
  thread-CPU seconds spent inside engine jobs; the gap is lock/GIL wait
* ``repro_ledger_records_total{op=...}`` -- run-ledger records appended
* ``repro_server_requests_total{endpoint=...,status=...}`` -- front-door
  HTTP requests served
* ``repro_server_request_seconds{endpoint=...}`` -- front-door request
  latency histogram
* ``repro_server_rejections_total{reason=quota|capacity}`` -- admission
  rejections (the 429 paths)
* ``repro_server_inflight`` (gauge) -- requests currently being served

Server instruments tick unconditionally (serving is observable even with
``REPRO_TELEMETRY=0``); everything is registered once in the process-global
registry, so the ``obs serve`` exporter and the front door's ``/metrics``
endpoint render the same families without double registration.
"""

from __future__ import annotations

from .context import Span, enabled
from .metrics import REGISTRY

__all__ = [
    "COMPRESS_CALLS",
    "DECOMPRESS_CALLS",
    "INPUT_BYTES",
    "ARCHIVE_BYTES",
    "SELECTOR_DECISIONS",
    "SELECTOR_FASTPATH",
    "SELECTOR_MISPREDICT",
    "INTEGRITY_FAILURES",
    "OUTLIERS",
    "STAGE_SECONDS",
    "KERNEL_SIM_SECONDS",
    "KERNEL_ELEMENTS",
    "KERNEL_BYTES",
    "LAST_RATIO",
    "EXPERIMENT_SECONDS",
    "ENGINE_JOBS",
    "ENGINE_CACHE_HITS",
    "ENGINE_CACHE_MISSES",
    "ENGINE_QUEUE_DEPTH",
    "ENGINE_QUEUE_DEPTH_MAX",
    "ENGINE_SUBMIT_WAIT",
    "ENGINE_WORKER_SECONDS",
    "LEDGER_RECORDS",
    "SERVER_REQUESTS",
    "SERVER_REQUEST_SECONDS",
    "SERVER_REJECTIONS",
    "SERVER_INFLIGHT",
    "stage_stats_from_span",
    "record_stage_metrics",
    "record_kernel_profile",
]

COMPRESS_CALLS = REGISTRY.counter(
    "repro_compress_calls_total", "Completed repro.compress calls")
DECOMPRESS_CALLS = REGISTRY.counter(
    "repro_decompress_calls_total", "Completed repro.decompress calls")
INPUT_BYTES = REGISTRY.counter(
    "repro_compress_input_bytes_total", "Raw bytes fed to the compressor")
ARCHIVE_BYTES = REGISTRY.counter(
    "repro_archive_bytes_total", "Archive bytes produced by the compressor")
SELECTOR_DECISIONS = REGISTRY.counter(
    "repro_selector_decisions_total", "Adaptive-workflow decisions by outcome")
SELECTOR_FASTPATH = REGISTRY.counter(
    "repro_selector_fastpath_total",
    "Forced-workflow selections that skipped the O(n) estimation passes")
INTEGRITY_FAILURES = REGISTRY.counter(
    "repro_integrity_failures_total",
    "Archive corruption detections by failure class")
OUTLIERS = REGISTRY.counter(
    "repro_outliers_total", "Out-of-dictionary-range compensation deltas stored")
SELECTOR_MISPREDICT = REGISTRY.counter(
    "repro_selector_mispredict_total",
    "Selector estimator mispredictions by kind (huffman_bounds, rle_regret)")
STAGE_SECONDS = REGISTRY.histogram(
    "repro_stage_seconds", "Wall seconds per pipeline stage")
KERNEL_SIM_SECONDS = REGISTRY.histogram(
    "repro_kernel_simulated_seconds",
    "Cost-model (simulated device) seconds per GPU kernel",
    buckets=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0),
)
KERNEL_ELEMENTS = REGISTRY.counter(
    "repro_kernel_elements_total",
    "Elements processed per simulated GPU kernel (profile scale)")
KERNEL_BYTES = REGISTRY.counter(
    "repro_kernel_bytes_total",
    "DRAM bytes moved per simulated GPU kernel, by direction")
LAST_RATIO = REGISTRY.gauge(
    "repro_last_compression_ratio", "Compression ratio of the last compress call")
EXPERIMENT_SECONDS = REGISTRY.gauge(
    "repro_experiment_seconds", "Wall seconds of the last run per bench experiment")
ENGINE_JOBS = REGISTRY.counter(
    "repro_engine_jobs_total", "Compression jobs completed by the engine worker pool")
ENGINE_CACHE_HITS = REGISTRY.counter(
    "repro_engine_cache_hits_total",
    "Engine codebook/histogram cache hits (tree construction skipped)")
ENGINE_CACHE_MISSES = REGISTRY.counter(
    "repro_engine_cache_misses_total",
    "Engine codebook/histogram cache misses (entry built and stored)")
ENGINE_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_engine_queue_depth",
    "Engine jobs currently queued or running (bounded by max_inflight)")
ENGINE_QUEUE_DEPTH_MAX = REGISTRY.gauge(
    "repro_engine_queue_depth_max",
    "High-water mark of the engine queue depth (saturation indicator)")
ENGINE_SUBMIT_WAIT = REGISTRY.histogram(
    "repro_engine_submit_wait_seconds",
    "Producer-side blocking on the engine's max_inflight semaphore",
    buckets=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0),
)
ENGINE_WORKER_SECONDS = REGISTRY.counter(
    "repro_engine_worker_seconds_total",
    "Wall vs thread-CPU seconds inside engine jobs (gap = lock/GIL wait)")
LEDGER_RECORDS = REGISTRY.counter(
    "repro_ledger_records_total", "Run-ledger records appended, by operation")
SERVER_REQUESTS = REGISTRY.counter(
    "repro_server_requests_total",
    "HTTP requests served by the compression front door, by endpoint/status")
SERVER_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_server_request_seconds",
    "Front-door request latency (admission to last response byte)")
SERVER_REJECTIONS = REGISTRY.counter(
    "repro_server_rejections_total",
    "Requests rejected at admission (quota or capacity), by reason")
SERVER_INFLIGHT = REGISTRY.gauge(
    "repro_server_inflight", "Front-door requests currently being served")


def stage_stats_from_span(root: Span | None) -> dict[str, float]:
    """Flatten a closed pipeline root span into ``stage_stats`` timing keys.

    Each direct child becomes ``<name>_seconds``; the root itself becomes
    ``total_seconds``.  Returns ``{}`` for no-op spans (telemetry disabled),
    keeping the result dict free of bogus zeros.
    """
    if not isinstance(root, Span):
        return {}
    stats = {f"{child.name}_seconds": child.duration for child in root.children}
    stats["total_seconds"] = root.duration
    return stats


def record_kernel_profile(profile) -> None:
    """Feed one simulated-kernel cost profile into the per-kernel counters.

    ``profile`` is a :class:`repro.gpu.kernel.KernelProfile`; the element
    count comes from its ``elements`` tag (attached by the kernels through
    :func:`repro.kernels.common.tag_elements`) and the byte counters from
    its raw read/write traffic, so ``bytes / simulated seconds`` reproduces
    the cost model's GB/s per kernel.
    """
    if not enabled():
        return
    elements = int(profile.tags.get("elements", 0)) if profile.tags else 0
    if elements:
        KERNEL_ELEMENTS.inc(elements, kernel=profile.name)
    if profile.bytes_read:
        KERNEL_BYTES.inc(profile.bytes_read, kernel=profile.name, direction="read")
    if profile.bytes_written:
        KERNEL_BYTES.inc(profile.bytes_written, kernel=profile.name, direction="written")


def record_stage_metrics(root: Span | None, op: str) -> None:
    """Feed a closed root span's stage timings into ``repro_stage_seconds``."""
    if not isinstance(root, Span) or not enabled():
        return
    for child in root.children:
        STAGE_SECONDS.observe(child.duration, op=op, stage=child.name)
    STAGE_SECONDS.observe(root.duration, op=op, stage="total")
