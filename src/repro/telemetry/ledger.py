"""The run ledger: an append-only JSONL record of real invocations.

Point-in-time tools (``bench run``, ``profile``, traces) answer "how fast
is this build"; the ledger answers "what do real invocations actually do
over time".  Every ``repro.compress`` / ``repro.decompress`` /
engine-batch call appends one JSON line describing what happened: the
configuration fingerprint, field geometry, the selector's decision,
per-stage *self* times from the span tree, sizes and ratio, cache
outcomes, and (for engine batches) worker count and the queue-depth
high-water mark.

Opt-in, like all continuous telemetry:

* ``REPRO_LEDGER=/path/to/ledger.jsonl`` enables it process-wide;
* ``CompressorConfig(ledger="...")`` enables it per call (compression
  paths only -- decompression has no config and follows the environment).

The record format is schema-versioned (``repro.ledger/v1``) mirroring
``repro.bench/v1``: additions are fine, renames/removals bump the
version.  Files rotate at ``REPRO_LEDGER_MAX_BYTES`` (default 16 MiB):
``ledger.jsonl`` becomes ``ledger.jsonl.1`` and so on up to
``REPRO_LEDGER_KEEP`` (default 3) rotated generations.

``repro obs report`` aggregates a ledger into per-stage / per-workflow
summaries (see :func:`aggregate_ledger`).
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import threading
import time
from pathlib import Path

from .context import Span
from .context import enabled as _tel_enabled
from .log import get_logger

__all__ = [
    "LEDGER_SCHEMA",
    "RECORD_REQUIRED_KEYS",
    "RunLedger",
    "ledger_for",
    "reset_ledgers",
    "config_fingerprint",
    "span_self_times",
    "read_ledger",
    "aggregate_ledger",
    "render_ledger_report",
]

#: Current ledger record schema identifier.
LEDGER_SCHEMA = "repro.ledger/v1"

#: Keys every ledger record carries.
RECORD_REQUIRED_KEYS = ("schema", "ts", "op", "pid")

#: Default rotation threshold (bytes) and rotated-generation count.
DEFAULT_MAX_BYTES = 16 << 20
DEFAULT_KEEP = 3

_log = get_logger("repro.telemetry.ledger")

#: Open writers keyed by resolved path, so repeated calls share one handle;
#: ``_WRITERS_BY_RAW`` is a lock-free fast path keyed on the caller's raw
#: string/Path spelling.
_WRITERS: dict[Path, "RunLedger"] = {}
_WRITERS_BY_RAW: dict = {}
_WRITERS_LOCK = threading.Lock()

#: CompressorConfig fields that shape the *output* and therefore the
#: fingerprint; observability knobs (telemetry, ledger) are excluded --
#: turning the ledger on must not change any record's fingerprint.
_FINGERPRINT_FIELDS = (
    "eb", "eb_mode", "dict_size", "workflow", "predictor", "chunks",
    "huffman_chunk", "rle_bitlen_threshold", "rle_encode_lengths",
    "rle_length_dtype",
)


@functools.lru_cache(maxsize=256)
def config_fingerprint(config) -> str:
    """Short stable digest of the codec-relevant configuration fields.

    Cached on the (frozen, hashable) config object: the hot path computes
    this once per distinct config, not once per compress call.
    """
    parts = [f"{name}={getattr(config, name, None)!r}" for name in _FINGERPRINT_FIELDS]
    return hashlib.sha1("|".join(parts).encode()).hexdigest()[:16]


def span_self_times(root) -> dict[str, float]:
    """Per-stage *self* seconds (inclusive minus children) from a span tree.

    Aggregates over the whole tree by span name, so repeated stages (e.g.
    per-chunk ``huffman.encode`` spans) sum into one key.  Returns ``{}``
    for no-op spans (telemetry disabled).
    """
    if not isinstance(root, Span):
        return {}
    out: dict[str, float] = {}
    for s in root.walk():
        self_seconds = s.duration - sum(c.duration for c in s.children)
        out[s.name] = out.get(s.name, 0.0) + max(self_seconds, 0.0)
    return out


class RunLedger:
    """Append-only JSONL writer with size-based rotation (thread-safe)."""

    def __init__(
        self,
        path: str | Path,
        max_bytes: int | None = None,
        keep: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.max_bytes = int(
            max_bytes
            if max_bytes is not None
            else os.environ.get("REPRO_LEDGER_MAX_BYTES", DEFAULT_MAX_BYTES)
        )
        self.keep = int(
            keep if keep is not None else os.environ.get("REPRO_LEDGER_KEEP", DEFAULT_KEEP)
        )
        if self.max_bytes < 1:
            raise ValueError(f"ledger max_bytes must be positive, got {self.max_bytes}")
        if self.keep < 1:
            raise ValueError(f"ledger keep must be >= 1, got {self.keep}")
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a")
        self.records_written = 0

    def record(self, op: str, **fields) -> dict:
        """Append one schema-stamped record; returns the record dict."""
        rec = {
            "schema": LEDGER_SCHEMA,
            "ts": time.time(),
            "op": op,
            "pid": os.getpid(),
        }
        rec.update(fields)
        line = json.dumps(rec, sort_keys=False)
        with self._lock:
            if self._fh.tell() + len(line) + 1 > self.max_bytes:
                self._rotate_locked()
            self._fh.write(line + "\n")
            self._fh.flush()
            self.records_written += 1
        if _tel_enabled():
            from . import instruments as ins  # lazy: sibling imports back

            ins.LEDGER_RECORDS.inc(op=op)
        return rec

    def _rotate_locked(self) -> None:
        """Shift ``path`` -> ``path.1`` -> ... -> ``path.keep`` (dropped)."""
        self._fh.close()
        oldest = self.path.with_name(self.path.name + f".{self.keep}")
        if oldest.exists():
            oldest.unlink()
        for gen in range(self.keep - 1, 0, -1):
            src = self.path.with_name(self.path.name + f".{gen}")
            if src.exists():
                src.rename(self.path.with_name(self.path.name + f".{gen + 1}"))
        if self.path.exists():
            self.path.rename(self.path.with_name(self.path.name + ".1"))
        self._fh = open(self.path, "a")
        _log.event("ledger.rotate", path=str(self.path), keep=self.keep,
                   max_bytes=self.max_bytes)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLedger({str(self.path)!r}, written={self.records_written})"


def ledger_for(config=None) -> RunLedger | None:
    """The active ledger for this invocation, or None (the common case).

    Resolution order: ``config.ledger`` (when a config is in hand), then
    the ``REPRO_LEDGER`` environment variable.  Writers are cached per
    resolved path so every invocation appends to one shared handle.
    """
    path = getattr(config, "ledger", None) if config is not None else None
    if path is None:
        path = os.environ.get("REPRO_LEDGER") or None
    if path is None:
        return None
    # Fast path: an open writer for this exact spelling of the path.  The
    # canonical cache below is keyed on Path so "l.jsonl" and Path("l.jsonl")
    # still share one handle.
    writer = _WRITERS_BY_RAW.get(path)
    if writer is not None and not writer._fh.closed:
        return writer
    resolved = Path(path)
    with _WRITERS_LOCK:
        writer = _WRITERS.get(resolved)
        if writer is None or writer._fh.closed:
            writer = RunLedger(resolved)
            _WRITERS[resolved] = writer
        _WRITERS_BY_RAW[path] = writer
        return writer


def reset_ledgers() -> None:
    """Close and forget every cached writer (test isolation aid)."""
    with _WRITERS_LOCK:
        for writer in _WRITERS.values():
            writer.close()
        _WRITERS.clear()
        _WRITERS_BY_RAW.clear()


# ---------------------------------------------------------------------------
# Reading and aggregation (``repro obs report``)
# ---------------------------------------------------------------------------


def read_ledger(path: str | Path, include_rotated: bool = True) -> list[dict]:
    """Load a ledger's records, oldest first, tolerating torn tail lines.

    Rotated generations (``path.N``) are read before the live file when
    ``include_rotated``.  Records whose schema family is not
    ``repro.ledger`` are skipped (counted, not fatal): a ledger directory
    may accumulate foreign lines across versions.
    """
    path = Path(path)
    files: list[Path] = []
    if include_rotated:
        gens = sorted(
            (p for p in path.parent.glob(path.name + ".*")
             if p.suffix[1:].isdigit()),
            key=lambda p: int(p.suffix[1:]),
            reverse=True,
        )
        files.extend(gens)
    files.append(path)
    records: list[dict] = []
    for file in files:
        if not file.exists():
            continue
        for line in file.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write at a crash boundary; skip the line
            if not isinstance(rec, dict):
                continue
            if not str(rec.get("schema", "")).startswith("repro.ledger/"):
                continue
            if any(k not in rec for k in RECORD_REQUIRED_KEYS):
                continue
            records.append(rec)
    return records


def aggregate_ledger(records: list[dict]) -> dict:
    """Fold ledger records into per-op / per-stage / per-workflow summaries."""
    ops: dict[str, int] = {}
    stages: dict[str, dict[str, dict]] = {}  # op -> stage -> {total, n}
    workflows: dict[str, dict] = {}
    cache_hits = cache_misses = 0
    queue_depth_max = 0
    jobs_seen: set[int] = set()
    bytes_in = bytes_out = 0
    t_first = t_last = None
    for rec in records:
        op = rec["op"]
        ops[op] = ops.get(op, 0) + 1
        ts = rec.get("ts")
        if isinstance(ts, (int, float)):
            t_first = ts if t_first is None else min(t_first, ts)
            t_last = ts if t_last is None else max(t_last, ts)
        for stage, seconds in (rec.get("stages") or {}).items():
            slot = stages.setdefault(op, {}).setdefault(
                stage, {"total_seconds": 0.0, "n": 0}
            )
            slot["total_seconds"] += float(seconds)
            slot["n"] += 1
        wf = (rec.get("selector") or {}).get("decision") or rec.get("workflow")
        sizes = rec.get("sizes") or {}
        if wf:
            slot = workflows.setdefault(
                wf, {"n": 0, "ratio_sum": 0.0, "ratio_n": 0}
            )
            slot["n"] += 1
            ratio = sizes.get("ratio")
            if isinstance(ratio, (int, float)):
                slot["ratio_sum"] += float(ratio)
                slot["ratio_n"] += 1
        bytes_in += int(sizes.get("original_bytes") or 0)
        bytes_out += int(sizes.get("compressed_bytes") or 0)
        cache = rec.get("cache") or {}
        cache_hits += int(cache.get("hits") or 0)
        cache_misses += int(cache.get("misses") or 0)
        engine = rec.get("engine") or {}
        if "queue_depth_max" in engine:
            queue_depth_max = max(queue_depth_max, int(engine["queue_depth_max"]))
        if "jobs" in rec:
            jobs_seen.add(int(rec["jobs"]))
    for op, table in stages.items():
        for stage, slot in table.items():
            slot["mean_seconds"] = slot["total_seconds"] / slot["n"] if slot["n"] else 0.0
    for wf, slot in workflows.items():
        slot["mean_ratio"] = (
            slot["ratio_sum"] / slot["ratio_n"] if slot["ratio_n"] else None
        )
        del slot["ratio_sum"], slot["ratio_n"]
    cache_total = cache_hits + cache_misses
    return {
        "schema": LEDGER_SCHEMA,
        "n_records": len(records),
        "ops": ops,
        "window_seconds": (t_last - t_first) if t_first is not None else 0.0,
        "stages": stages,
        "workflows": workflows,
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_rate": cache_hits / cache_total if cache_total else 0.0,
        },
        "engine": {
            "queue_depth_max": queue_depth_max,
            "jobs_seen": sorted(jobs_seen),
        },
        "bytes": {"original": bytes_in, "compressed": bytes_out},
    }


def render_ledger_report(report: dict) -> str:
    """Human-readable rendering of :func:`aggregate_ledger`'s summary."""
    from ..bench.harness import format_table  # lazy: avoid import cycle

    lines = [
        f"ledger report ({report['n_records']} records, "
        f"{report['window_seconds']:.1f} s window)",
        "  ops: " + (", ".join(
            f"{op}={n}" for op, n in sorted(report["ops"].items())
        ) or "(none)"),
    ]
    cache = report["cache"]
    if cache["hits"] or cache["misses"]:
        lines.append(
            f"  cache: {cache['hits']} hits / {cache['misses']} misses "
            f"({cache['hit_rate']:.1%} hit rate)"
        )
    eng = report["engine"]
    if eng["jobs_seen"]:
        lines.append(
            f"  engine: jobs seen {eng['jobs_seen']}, "
            f"queue depth high-water {eng['queue_depth_max']}"
        )
    if report["workflows"]:
        rows = [
            [wf, slot["n"],
             f"{slot['mean_ratio']:.2f}" if slot["mean_ratio"] else "-"]
            for wf, slot in sorted(report["workflows"].items())
        ]
        lines.append(format_table(
            ["workflow", "records", "mean ratio"], rows, title="workflows"))
    for op, table in sorted(report["stages"].items()):
        rows = [
            [stage, slot["n"], f"{slot['total_seconds'] * 1e3:.2f}",
             f"{slot['mean_seconds'] * 1e3:.3f}"]
            for stage, slot in sorted(
                table.items(), key=lambda kv: -kv[1]["total_seconds"]
            )
        ]
        lines.append(format_table(
            ["stage", "n", "total ms", "mean ms"], rows,
            title=f"self-time by stage · {op}"))
    return "\n".join(lines)
