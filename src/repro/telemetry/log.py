"""Structured JSON log lines, span-correlated.

A deliberately tiny event logger for the *continuous* observability layer
(ledger rotation, metrics-server lifecycle, scaling sweeps): one JSON
object per line, machine-parseable, carrying enough context to join
against traces and ledger records:

* ``ts``     -- Unix seconds (``time.time()``);
* ``logger`` -- dotted component name (``repro.telemetry.ledger``);
* ``event``  -- short event name (``ledger.rotate``, ``server.start``);
* ``span``   -- the innermost open telemetry span's name in this context
  (``None`` at top level), so log lines correlate with the span tree;
* ``tid``    -- OS thread id, matching the Chrome-trace ``tid`` rows;
* any keyword fields the call site attaches.

Output goes to ``REPRO_LOG=path`` (append mode) when set, else to stderr
when ``REPRO_LOG=stderr``, else nowhere -- logging is opt-in exactly like
the run ledger, so the hot path pays one dict lookup when off.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

from .context import current_span

__all__ = ["StructuredLogger", "get_logger", "log_event"]

_LOCK = threading.Lock()


def _sink_path() -> str | None:
    """The configured log destination, or None when logging is off."""
    value = os.environ.get("REPRO_LOG", "").strip()
    return value or None


class StructuredLogger:
    """Named emitter of one-line JSON events (see module docstring)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def event(self, event: str, **fields) -> dict | None:
        """Emit one structured event; returns the record dict (or None
        when logging is disabled -- the common case)."""
        sink = _sink_path()
        if sink is None:
            return None
        span = current_span()
        record = {
            "ts": time.time(),
            "logger": self.name,
            "event": event,
            "span": span.name if span is not None else None,
            "tid": threading.get_ident(),
        }
        for key, value in fields.items():
            record[key] = value if isinstance(
                value, (int, float, str, bool, type(None))
            ) else repr(value)
        line = json.dumps(record, sort_keys=False)
        with _LOCK:
            if sink == "stderr":
                print(line, file=sys.stderr)
            else:
                with open(sink, "a") as fh:
                    fh.write(line + "\n")
        return record


def get_logger(name: str) -> StructuredLogger:
    return StructuredLogger(name)


def log_event(logger: str, event: str, **fields) -> dict | None:
    """One-shot convenience wrapper over :meth:`StructuredLogger.event`."""
    return StructuredLogger(logger).event(event, **fields)
