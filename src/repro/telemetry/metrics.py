"""Process-global metrics: counters, gauges, histograms, and exposition.

A deliberately small subset of the Prometheus client model:

* :class:`Counter` -- monotonically increasing totals (``inc``);
* :class:`Gauge` -- last-write-wins values (``set_value``/``inc``);
* :class:`Histogram` -- cumulative fixed-bucket distributions (``observe``).

All three support label sets passed as keyword arguments at observation
time (``SELECTOR_DECISIONS.inc(workflow="rle+vle")``).  The registry renders
the standard Prometheus text exposition format and a JSON equivalent for
the bench harness's structured run records.

Everything is thread-safe under one registry lock: pipeline stages run on
:mod:`repro.parallel` worker threads and must not corrupt shared buckets.
"""

from __future__ import annotations

import json
import math
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SUMMARY_QUANTILES",
    "counter",
    "gauge",
    "histogram",
    "render_prometheus",
    "render_json",
    "reset_metrics",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default latency buckets (seconds): 10 us .. 10 s, roughly log-spaced.
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    """Canonical hashable key for a label set (sorted by label name)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: tuple, extra: tuple = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Metric:
    """Shared plumbing: name/help validation and the registry lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = lock

    def header_lines(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """Monotonic counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        super().__init__(name, help, lock)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        return self.header_lines() + [
            f"{self.name}{_format_labels(key)} {_num(v)}" for key, v in items
        ]

    def to_json(self) -> dict:
        with self._lock:
            return {
                "type": self.kind,
                "help": self.help,
                "values": [{"labels": dict(k), "value": v} for k, v in sorted(self._values.items())],
            }


class Gauge(_Metric):
    """Last-write-wins value, optionally labelled."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        super().__init__(name, help, lock)
        self._values: dict[tuple, float] = {}

    def set_value(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        return self.header_lines() + [
            f"{self.name}{_format_labels(key)} {_num(v)}" for key, v in items
        ]

    def to_json(self) -> dict:
        with self._lock:
            return {
                "type": self.kind,
                "help": self.help,
                "values": [{"labels": dict(k), "value": v} for k, v in sorted(self._values.items())],
            }


class Histogram(_Metric):
    """Cumulative fixed-bucket histogram with per-label-set series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(not math.isfinite(b) for b in bounds):
            raise ValueError("histogram buckets must be finite and non-empty")
        self.buckets = bounds
        # per label-set: ([count per finite bucket], count, sum)
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * len(self.buckets), 0, 0.0]
                self._series[key] = series
            counts, _, _ = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            series[1] += 1
            series[2] += float(value)

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[1] if series else 0

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[2] if series else 0.0

    def bucket_counts(self, **labels) -> dict[float, int]:
        """Cumulative counts per finite bucket bound."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            counts = series[0] if series else [0] * len(self.buckets)
            return dict(zip(self.buckets, counts))

    def quantile(self, q: float, **labels) -> float | None:
        """Estimated q-quantile (0..1) for one label set, or None if empty."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return None
            counts, n = list(series[0]), series[1]
        return _quantile_from_counts(self.buckets, counts, n, q)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted((k, (list(c), n, s)) for k, (c, n, s) in self._series.items())
        lines = self.header_lines()
        for key, (counts, n, total) in items:
            for bound, c in zip(self.buckets, counts):
                lines.append(
                    f"{self.name}_bucket{_format_labels(key, (('le', _num(bound)),))} {c}"
                )
            lines.append(f"{self.name}_bucket{_format_labels(key, (('le', '+Inf'),))} {n}")
            lines.append(f"{self.name}_sum{_format_labels(key)} {_num(total)}")
            lines.append(f"{self.name}_count{_format_labels(key)} {n}")
        return lines

    def to_json(self) -> dict:
        with self._lock:
            return {
                "type": self.kind,
                "help": self.help,
                "buckets": list(self.buckets),
                "values": [
                    {
                        "labels": dict(k),
                        "bucket_counts": list(c),
                        "count": n,
                        "sum": s,
                        "quantiles": {
                            f"p{int(q * 100)}": _quantile_from_counts(
                                self.buckets, c, n, q
                            )
                            for q in SUMMARY_QUANTILES
                        },
                    }
                    for k, (c, n, s) in sorted(self._series.items())
                ],
            }


#: Quantiles reported in every histogram's JSON snapshot.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def _quantile_from_counts(
    bounds: tuple[float, ...], counts: list[int], n: int, q: float
) -> float | None:
    """Prometheus-style bucket quantile with linear interpolation.

    Observations that landed above the last finite bound (the implicit
    ``+Inf`` bucket) clamp to that bound -- the bucket layout caps what the
    estimate can resolve, exactly as ``histogram_quantile`` does.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if n <= 0:
        return None
    target = q * n
    prev_count = 0
    prev_bound = 0.0
    for bound, cum in zip(bounds, counts):
        if cum >= target:
            if cum == prev_count:
                return bound
            frac = (target - prev_count) / (cum - prev_count)
            return prev_bound + (bound - prev_bound) * frac
    return bounds[-1]


def _num(v: float) -> str:
    """Compact numeric rendering: integers without the trailing ``.0``."""
    f = float(v)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


class MetricsRegistry:
    """Get-or-create registry; one per process is the intended shape."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                # Get-or-create is how independent exporters (obs serve, the
                # server's /metrics endpoint) share one family without double
                # registration -- but only when they agree on its shape.  A
                # histogram re-registered with different buckets would
                # silently fork the series, so that is an error instead.
                buckets = kwargs.get("buckets")
                if buckets is not None and isinstance(existing, Histogram):
                    bounds = tuple(sorted(float(b) for b in buckets))
                    if bounds != existing.buckets:
                        raise ValueError(
                            f"histogram {name!r} already registered with "
                            f"buckets {existing.buckets}; re-registering "
                            f"with {bounds} would fork the series"
                        )
                return existing
            metric = cls(name, help, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        Format contract (scrape targets and ``promtool check metrics``
        depend on it): each metric family's ``# HELP``/``# TYPE`` headers
        appear exactly once, immediately before its samples, and the
        payload is newline-terminated.
        """
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        declared: set[str] = set()
        for m in metrics:
            rendered = m.render()
            if m.name in declared:
                # A family declares its headers once; strip repeats so a
                # hypothetical duplicate registration can never produce an
                # exposition payload scrapers reject.
                rendered = [ln for ln in rendered if not ln.startswith("#")]
            declared.add(m.name)
            lines.extend(rendered)
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> dict:
        """JSON-serializable snapshot of every metric."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        snapshot = {m.name: m.to_json() for m in metrics}
        json.dumps(snapshot)  # guarantee serializability for callers
        return snapshot

    def reset(self) -> None:
        """Zero every series (metric objects stay registered) -- test aid."""
        with self._lock:
            for m in self._metrics.values():
                if isinstance(m, (Counter, Gauge)):
                    m._values.clear()
                elif isinstance(m, Histogram):
                    m._series.clear()


#: The process-global registry every pipeline instrument hangs off.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "") -> Counter:
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return REGISTRY.gauge(name, help)


def histogram(name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
    return REGISTRY.histogram(name, help, buckets=buckets)


def render_prometheus() -> str:
    return REGISTRY.render_prometheus()


def render_json() -> dict:
    return REGISTRY.render_json()


def reset_metrics() -> None:
    REGISTRY.reset()
