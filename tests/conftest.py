"""Shared fixtures: representative small fields of each dimensionality."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def field_1d(rng) -> np.ndarray:
    """Smooth 1-D signal with noise (HACC-velocity-like)."""
    t = np.linspace(0, 20 * np.pi, 4096)
    return (np.sin(t) * 50 + rng.normal(0, 1.5, t.size)).astype(np.float32)


@pytest.fixture(scope="session")
def field_2d(rng) -> np.ndarray:
    """Smooth 2-D field with noise (CESM-like)."""
    x = np.linspace(0, 6 * np.pi, 200)
    y = np.linspace(0, 4 * np.pi, 160)
    base = np.sin(y)[:, None] * np.cos(x)[None, :]
    return (base * 10 + rng.normal(0, 0.05, (160, 200))).astype(np.float32)


@pytest.fixture(scope="session")
def field_3d(rng) -> np.ndarray:
    """Smooth 3-D field (Nyx-like)."""
    g = np.linspace(0, 2 * np.pi, 40)
    base = (
        np.sin(g)[:, None, None]
        + np.cos(g)[None, :, None]
        + np.sin(2 * g)[None, None, :]
    )
    return (base + rng.normal(0, 0.02, (40, 40, 40))).astype(np.float32)


@pytest.fixture(scope="session")
def sparse_field_2d() -> np.ndarray:
    """Mostly-constant field with plateaus (ODV/ICEFRAC-like, RLE-friendly)."""
    f = np.zeros((300, 300), dtype=np.float32)
    f[40:90, 50:220] = 3.5
    f[150:260, 10:80] = -1.25
    return f
