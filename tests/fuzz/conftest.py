"""Fuzz-suite fixtures: archives from every producer, Hypothesis profiles.

The corruption tests need one representative v2 archive per *producer*
(``compress``, ``compress_blocks``, ``StreamingCompressor``, and the
parallel checkpoint writer) because each wraps the sectioned container
differently.  Profiles: ``dev`` keeps the property tests cheap inside the
tier-1 run; ``ci`` (selected via ``REPRO_HYPOTHESIS_PROFILE=ci``) widens
the search for the dedicated CI job.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

import repro
from repro.core.config import CompressorConfig
from repro.core.streaming import StreamingCompressor, compress_blocks
from repro.parallel import run_spmd, slab_for_rank, write_checkpoint

settings.register_profile(
    "dev", max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci", max_examples=75, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))


def _smooth_field(shape=(96, 96), seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 6, shape[0])
    y = np.linspace(0, 4, shape[1])
    return (np.sin(x)[:, None] * np.cos(y)[None, :] * 5
            + rng.normal(0, 0.01, shape)).astype(np.float32)


@pytest.fixture(scope="package")
def producer_archives():
    """name -> (archive blob, decoder callable) for every archive producer."""
    from repro.core.streaming import decompress_blocks
    from repro.parallel import read_checkpoint

    field = _smooth_field()
    single = repro.compress(field, eb=1e-3).archive

    blocks = compress_blocks(field, eb=1e-3, max_block_bytes=12_000)

    sc = StreamingCompressor(CompressorConfig(eb=1e-3, eb_mode="abs"))
    for off in (0, 32, 64):
        sc.append(field[off : off + 32])
    streamed = sc.finish()

    config = CompressorConfig(eb=1e-3)
    ckpt = run_spmd(
        2,
        lambda c: write_checkpoint(
            c, slab_for_rank(field, 2, c.rank).copy(), config
        ),
    )[0]

    return {
        "compress": (single, repro.decompress),
        "compress_blocks": (blocks, decompress_blocks),
        "streaming": (streamed, decompress_blocks),
        "checkpoint": (ckpt, read_checkpoint),
    }
