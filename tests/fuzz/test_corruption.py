"""Fault-injection: every corrupted v2 archive must fail loudly and typed.

The contract under test (ISSUE 2 acceptance): any bit-flip in any section
payload, any truncation, and any section-table mutation of a v2 archive
raises :class:`ArchiveError`/:class:`IntegrityError` from *both* the deep
verifier and the real decode path -- never a silently-wrong array, never an
uncaught non-repro exception.  Untampered archives keep round-tripping.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.core.archive import ArchiveBuilder, ArchiveReader
from repro.core.errors import ArchiveError, IntegrityError, ReproError
from repro.core.integrity import (
    flip_bit,
    iter_corruptions,
    verify_archive,
    with_mutated_section_length,
    with_swapped_table_entries,
)

PRODUCERS = ["compress", "compress_blocks", "streaming", "checkpoint"]


def _must_raise_archive_error(fn, blob, label, producer):
    try:
        fn(blob)
    except ArchiveError:
        return
    except ReproError as exc:  # typed, but the wrong family
        pytest.fail(f"{producer}/{label}: raised {type(exc).__name__}, "
                    f"expected ArchiveError")
    except Exception as exc:  # noqa: BLE001 - the whole point of the test
        pytest.fail(f"{producer}/{label}: escaped with non-repro "
                    f"{type(exc).__name__}: {exc}")
    else:
        pytest.fail(f"{producer}/{label}: corruption went undetected")


class TestUntampered:
    @pytest.mark.parametrize("producer", PRODUCERS)
    def test_clean_archive_verifies_and_decodes(self, producer_archives, producer):
        blob, decode = producer_archives[producer]
        report = verify_archive(blob, deep=True)
        assert report.version == 3
        out = decode(blob)
        assert np.isfinite(out).all()

    @pytest.mark.parametrize("producer", PRODUCERS)
    def test_decode_is_deterministic(self, producer_archives, producer):
        blob, decode = producer_archives[producer]
        np.testing.assert_array_equal(decode(blob), decode(bytes(blob)))


class TestSystematicCorruption:
    @pytest.mark.parametrize("producer", PRODUCERS)
    def test_verify_rejects_every_mutation(self, producer_archives, producer):
        blob, _ = producer_archives[producer]
        n = 0
        for label, bad in iter_corruptions(blob, seed=7):
            assert bad != blob, label
            _must_raise_archive_error(lambda b: verify_archive(b, deep=True),
                                      bad, label, producer)
            n += 1
        assert n > 80  # the generator actually produced a broad sweep

    @pytest.mark.parametrize("producer", PRODUCERS)
    def test_decode_rejects_every_mutation(self, producer_archives, producer):
        blob, decode = producer_archives[producer]
        for label, bad in iter_corruptions(blob, seed=11):
            _must_raise_archive_error(decode, bad, label, producer)


class TestEveryPayloadByte:
    """Exhaustive single-bit coverage of every payload region (one archive)."""

    def test_bitflip_in_each_payload_section_detected(self, producer_archives):
        blob, _ = producer_archives["compress"]
        reader = ArchiveReader(blob)
        for name in reader.names():
            _, off, length, _ = reader._entry(name)
            if length == 0:
                continue
            for byte in {off, off + length // 2, off + length - 1}:
                bad = flip_bit(blob, 8 * byte + 3)
                with pytest.raises(IntegrityError):
                    ArchiveReader(bad).get_bytes(name)

    def test_truncation_at_every_byte_of_small_archive(self):
        blob = repro.compress(
            np.linspace(0, 1, 256, dtype=np.float32), eb=1e-3
        ).archive
        for cut in range(len(blob)):
            with pytest.raises(ArchiveError):
                repro.decompress(blob[:cut])
            with pytest.raises(ArchiveError):
                verify_archive(blob[:cut])

    def test_extension_rejected(self, producer_archives):
        blob, _ = producer_archives["compress"]
        with pytest.raises(ArchiveError):
            verify_archive(blob + b"\x00")


class TestTableMutations:
    def test_swapped_entries_detected(self, producer_archives):
        blob, _ = producer_archives["compress"]
        with pytest.raises(IntegrityError):
            verify_archive(with_swapped_table_entries(blob, 0, 1))

    @pytest.mark.parametrize("delta", [-7, -1, 1, 64])
    def test_length_mutations_detected(self, producer_archives, delta):
        blob, _ = producer_archives["compress"]
        with pytest.raises(ArchiveError):
            verify_archive(with_mutated_section_length(blob, 1, delta))

    def test_rebuilt_archive_with_wrong_payload_fails_crosschecks(
        self, producer_archives
    ):
        """A 'valid' v2 archive whose meta lies about counts must still fail."""
        blob, _ = producer_archives["compress"]
        reader = ArchiveReader(blob)
        builder = ArchiveBuilder()
        for name in reader.names():
            raw = reader.get_bytes(name)
            if name == "o.idx":
                raw = raw + b"\x00" * 4  # one phantom outlier index
            builder.add_bytes(name, raw)
        with pytest.raises(ArchiveError):
            verify_archive(builder.to_bytes())


class TestSparseCodebookMutations:
    """Duplicate-entry sparse codebooks must fail typed, not decode wrong.

    The sparse serialization scatters ``(symbol, length)`` pairs into a
    dense table; a crafted duplicate pair used to be silently last-write-
    wins, yielding a codebook that disagrees with its own serialized bytes.
    """

    def _sparse_archive(self):
        # Plateaus with two alternating widths: the quant stream becomes
        # long same-code runs whose few distinct lengths make the sparse
        # VLE length codebook (section ``rl.cb``) win over raw storage.
        n_runs = 3000
        lens = np.where(np.arange(n_runs) % 3 == 0, 30, 33)
        vals = (np.arange(n_runs) % 8).astype(np.float32)
        field = np.repeat(vals, lens)
        blob = repro.compress(
            field, eb=1e-2, eb_mode="abs", workflow="rle+vle"
        ).archive
        assert ArchiveReader(blob).has("rl.cb")
        return blob

    @staticmethod
    def _with_duplicate_entry(raw: bytes) -> bytes:
        symbols = np.frombuffer(raw[8:], dtype=np.uint32, count=int(
            np.frombuffer(raw[4:8], dtype=np.uint32)[0]
        )).copy()
        symbols[1] = symbols[0]
        return raw[:8] + symbols.tobytes() + raw[8 + symbols.nbytes:]

    def test_unit_duplicate_symbol_entries_rejected(self):
        from repro.core.errors import EncodingError
        from repro.encoding.huffman import CanonicalCodebook, build_codebook

        freqs = np.zeros(500, dtype=np.int64)
        freqs[[3, 70, 200]] = [5, 3, 2]
        raw = build_codebook(freqs).serialized_sparse()
        with pytest.raises(EncodingError, match="duplicate symbol"):
            CanonicalCodebook.deserialized_sparse(self._with_duplicate_entry(raw))

    def test_archive_with_duplicated_entry_fails_loudly(self):
        blob = self._sparse_archive()
        reader = ArchiveReader(blob)
        builder = ArchiveBuilder()
        for name in reader.names():
            raw = reader.get_bytes(name)
            if name == "rl.cb":
                raw = self._with_duplicate_entry(raw)
            builder.add_bytes(name, raw)
        bad = builder.to_bytes()
        with pytest.raises(ReproError):
            repro.decompress(bad)
        with pytest.raises(ReproError):
            verify_archive(bad, deep=True)


class TestTelemetryCounters:
    def test_corruption_detections_are_counted(self, producer_archives):
        blob, _ = producer_archives["compress"]
        counter = telemetry.REGISTRY.counter("repro_integrity_failures_total")
        with telemetry.scope(True):
            before = counter.total()
            with pytest.raises(ArchiveError):
                verify_archive(blob[: len(blob) - 3])
            with pytest.raises(IntegrityError):
                verify_archive(flip_bit(blob, 8 * (len(blob) - 1)))
            assert counter.total() >= before + 2
