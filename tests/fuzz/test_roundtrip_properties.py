"""Property-based round-trips over the dtype/shape/eb-mode/workflow space.

Every archive the compressor can emit must (a) pass deep verification,
(b) decode to within the promised bound, and (c) detect a random bit-flip.
Hypothesis drives the configuration space; the field data itself comes from
a seeded numpy generator (cheaper than drawing arrays element-wise, and the
seed is part of the shrinkable example).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.core.errors import ArchiveError
from repro.core.integrity import flip_bit, verify_archive
from repro.core.streaming import compress_blocks, decompress_blocks

_SHAPES = st.sampled_from([
    (64,), (257,), (4096,),
    (16, 16), (33, 7), (96, 96),
    (8, 8, 8), (5, 11, 7),
])
_PATTERNS = st.sampled_from(["smooth", "noise", "plateau", "mixed"])


def _make_field(shape, dtype, pattern, seed):
    rng = np.random.default_rng(seed)
    n = int(np.prod(shape))
    if pattern == "smooth":
        t = np.linspace(0, 6 * np.pi, n)
        flat = np.sin(t) * 10 + rng.normal(0, 0.05, n)
    elif pattern == "noise":
        flat = rng.normal(0, 3, n)
    elif pattern == "plateau":
        flat = np.repeat(rng.integers(-3, 4, max(n // 50, 1)).astype(float), 50)[:n]
        if flat.size < n:
            flat = np.pad(flat, (0, n - flat.size))
    else:  # mixed: smooth base with a sparse spike field
        flat = np.linspace(-5, 5, n)
        flat[rng.integers(0, n, max(n // 100, 1))] *= 40
    return np.asarray(flat, dtype=dtype).reshape(shape)


@given(
    shape=_SHAPES,
    dtype=st.sampled_from([np.float32, np.float64]),
    pattern=_PATTERNS,
    eb_mode=st.sampled_from(["rel", "abs"]),
    eb_exp=st.integers(-5, -2),
    workflow=st.sampled_from(["auto", "huffman", "rle", "rle+vle"]),
    seed=st.integers(0, 2**32 - 1),
)
def test_compress_roundtrip_verifies_and_bounds(
    shape, dtype, pattern, eb_mode, eb_exp, workflow, seed
):
    field = _make_field(shape, dtype, pattern, seed)
    result = repro.compress(field, eb=10.0**eb_exp, eb_mode=eb_mode, workflow=workflow)

    report = verify_archive(result.archive, deep=True)
    assert report.version == 3

    out = repro.decompress(result.archive)
    assert out.shape == field.shape
    assert out.dtype == field.dtype
    err = np.abs(field.astype(np.float64) - out.astype(np.float64)).max()
    assert err <= result.eb_abs * (1 + 1e-12) + 1e-300

    # A single flipped bit anywhere must be detected by the verifier.
    bit = seed % (8 * len(result.archive))
    try:
        verify_archive(flip_bit(result.archive, bit), deep=True)
    except ArchiveError:
        pass
    else:
        raise AssertionError(f"bit-flip at {bit} went undetected")


@given(
    rows=st.integers(40, 200),
    cols=st.integers(4, 32),
    block_kb=st.sampled_from([2, 8, 64]),
    pattern=_PATTERNS,
    seed=st.integers(0, 2**32 - 1),
)
def test_block_container_roundtrip_verifies_and_bounds(
    rows, cols, block_kb, pattern, seed
):
    field = _make_field((rows, cols), np.float32, pattern, seed)
    blob = compress_blocks(field, eb=1e-3, max_block_bytes=block_kb * 1024)

    report = verify_archive(blob, deep=True)
    assert report.kind == "blocks"
    assert report.nested  # at least one inner block archive was walked

    out = decompress_blocks(blob)
    rng_span = float(np.ptp(field))
    eb_abs = 1e-3 * rng_span if rng_span > 0 else np.inf
    assert np.abs(field.astype(np.float64) - out.astype(np.float64)).max() <= eb_abs


@given(
    rows=st.integers(40, 160),
    cols=st.integers(4, 24),
    block_kb=st.sampled_from([2, 8]),
    pattern=_PATTERNS,
    seed=st.integers(0, 2**32 - 1),
)
def test_parallel_block_container_matches_serial_bytes(
    rows, cols, block_kb, pattern, seed
):
    """``jobs=2`` must produce the exact serial container, not just a valid one."""
    field = _make_field((rows, cols), np.float32, pattern, seed)
    serial = compress_blocks(field, eb=1e-3, max_block_bytes=block_kb * 1024, jobs=1)
    parallel = compress_blocks(field, eb=1e-3, max_block_bytes=block_kb * 1024, jobs=2)
    assert parallel == serial

    report = verify_archive(parallel, deep=True)
    assert report.kind == "blocks"
    out = decompress_blocks(parallel)
    rng_span = float(np.ptp(field))
    eb_abs = 1e-3 * rng_span if rng_span > 0 else np.inf
    assert np.abs(field.astype(np.float64) - out.astype(np.float64)).max() <= eb_abs


@given(
    shape=st.sampled_from([(64,), (257,), (16, 16), (33, 7), (8, 8, 8)]),
    dtype=st.sampled_from([np.float32, np.float64]),
    pattern=_PATTERNS,
    eb_exp=st.integers(-4, -2),
    workflow=st.sampled_from(["huffman", "rle", "rle+vle", "huffman+lz"]),
    seed=st.integers(0, 2**32 - 1),
)
def test_pwrel_roundtrip_verifies_and_bounds(
    shape, dtype, pattern, eb_exp, workflow, seed
):
    """Point-wise relative mode: zeros restored exactly, nonzeros within eb."""
    field = _make_field(shape, dtype, pattern, seed)
    eb = 10.0**eb_exp
    result = repro.compress(field, eb=eb, eb_mode="pwrel", workflow=workflow)

    report = verify_archive(result.archive, deep=True)
    assert report.version == 3
    assert report.kind == "pwrel"

    out = repro.decompress(result.archive)
    assert out.shape == field.shape
    assert out.dtype == field.dtype

    a = field.astype(np.float64).reshape(-1)
    b = out.astype(np.float64).reshape(-1)
    zeros = a == 0.0
    assert np.array_equal(b[zeros], a[zeros]), "pwrel zeros must round-trip exactly"
    if (~zeros).any():
        rel = np.abs(b[~zeros] - a[~zeros]) / np.abs(a[~zeros])
        assert float(rel.max()) <= eb * (1 + 1e-9)
