"""Tests for the sectioned archive container."""

import numpy as np
import pytest

from repro.core.archive import ArchiveBuilder, ArchiveReader, MAGIC
from repro.core.errors import ArchiveError


class TestBuilderReader:
    def test_bytes_roundtrip(self):
        blob = ArchiveBuilder().add_bytes("meta", b"hello").to_bytes()
        reader = ArchiveReader(blob)
        assert reader.get_bytes("meta") == b"hello"

    def test_array_roundtrip_preserves_dtype(self):
        arr = np.arange(100, dtype=np.uint32)
        blob = ArchiveBuilder().add_array("a", arr).to_bytes()
        out = ArchiveReader(blob).get_array("a")
        assert out.dtype == np.uint32
        np.testing.assert_array_equal(out, arr)

    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.int32, np.int64, np.float32, np.float64])
    def test_all_dtypes(self, dtype):
        arr = np.arange(17).astype(dtype)
        blob = ArchiveBuilder().add_array("x", arr).to_bytes()
        np.testing.assert_array_equal(ArchiveReader(blob).get_array("x"), arr)

    def test_multiple_sections_keep_order_and_content(self):
        b = ArchiveBuilder()
        b.add_bytes("one", b"1" * 13)
        b.add_array("two", np.arange(5, dtype=np.int64))
        b.add_bytes("three", b"")
        reader = ArchiveReader(b.to_bytes())
        assert reader.names() == ["one", "two", "three"]
        assert reader.get_bytes("one") == b"1" * 13
        assert reader.get_bytes("three") == b""

    def test_empty_array_section(self):
        blob = ArchiveBuilder().add_array("e", np.zeros(0, dtype=np.uint32)).to_bytes()
        assert ArchiveReader(blob).get_array("e").size == 0

    def test_duplicate_name_rejected(self):
        b = ArchiveBuilder().add_bytes("x", b"a")
        with pytest.raises(ArchiveError):
            b.add_bytes("x", b"b")

    def test_long_name_rejected(self):
        with pytest.raises(ArchiveError):
            ArchiveBuilder().add_bytes("n" * 17, b"")

    def test_missing_section(self):
        blob = ArchiveBuilder().add_bytes("a", b"").to_bytes()
        with pytest.raises(ArchiveError):
            ArchiveReader(blob).get_bytes("b")

    def test_raw_section_not_readable_as_array(self):
        blob = ArchiveBuilder().add_bytes("raw", b"abcd").to_bytes()
        with pytest.raises(ArchiveError):
            ArchiveReader(blob).get_array("raw")

    def test_has(self):
        reader = ArchiveReader(ArchiveBuilder().add_bytes("a", b"").to_bytes())
        assert reader.has("a") and not reader.has("z")

    def test_section_sizes(self):
        b = ArchiveBuilder().add_bytes("a", b"xy").add_array("b", np.zeros(3, np.uint16))
        assert b.section_sizes() == {"a": 2, "b": 6}


class TestCorruption:
    def test_bad_magic(self):
        blob = ArchiveBuilder().add_bytes("a", b"x").to_bytes()
        with pytest.raises(ArchiveError):
            ArchiveReader(b"WRONGMAG" + blob[len(MAGIC):])

    def test_truncated_header(self):
        with pytest.raises(ArchiveError):
            ArchiveReader(b"abc")

    def test_truncated_payload(self):
        blob = ArchiveBuilder().add_bytes("a", b"0123456789").to_bytes()
        with pytest.raises(ArchiveError):
            ArchiveReader(blob[:-4])

    def test_truncated_table(self):
        blob = ArchiveBuilder().add_bytes("a", b"x").add_bytes("b", b"y").to_bytes()
        with pytest.raises(ArchiveError):
            ArchiveReader(blob[:16])
