"""Tests for error-bound autotuning."""

import numpy as np
import pytest

import repro
from repro.analysis.autotune import tune_for_psnr, tune_for_ratio
from repro.analysis.metrics import psnr
from repro.core.errors import ConfigError


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 15, 256)
    return (np.sin(x)[:, None] * np.cos(x)[None, :] * 3 + rng.normal(0, 0.02, (256, 256))).astype(
        np.float32
    )


class TestTuneForPsnr:
    @pytest.mark.parametrize("target", [60.0, 85.0, 100.0])
    def test_meets_target(self, field, target):
        result = tune_for_psnr(field, target)
        assert result.satisfied
        # Confirm independently.
        res = repro.compress(field, eb=result.eb)
        out = repro.decompress(res.archive)
        assert psnr(field, out) >= target - 0.5

    def test_few_evaluations(self, field):
        """The closed-form seed should land within a couple of evals."""
        result = tune_for_psnr(field, 85.0)
        assert result.evaluations <= 4

    def test_config_helper(self, field):
        result = tune_for_psnr(field, 70.0)
        config = result.config(workflow="huffman")
        assert config.eb == result.eb
        assert config.workflow == "huffman"

    def test_invalid_target(self, field):
        with pytest.raises(ConfigError):
            tune_for_psnr(field, 5.0)


class TestTuneForRatio:
    @pytest.mark.parametrize("target", [5.0, 12.0, 20.0])
    def test_meets_target(self, field, target):
        result = tune_for_ratio(field, target)
        assert result.satisfied
        assert result.achieved >= target * 0.9

    def test_prefers_tight_bounds(self, field):
        """The returned bound should not be far looser than needed."""
        result = tune_for_ratio(field, 8.0)
        tighter = repro.compress(field, eb=result.eb / 4)
        assert tighter.compression_ratio < 8.0 * 1.2

    def test_unreachable_target_reported(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(size=(64, 64)).astype(np.float32)
        result = tune_for_ratio(noise, 5000.0, eb_max=1e-2)
        assert not result.satisfied

    def test_invalid_target(self, field):
        with pytest.raises(ConfigError):
            tune_for_ratio(field, 0.5)
