"""Tests for the pluggable executor backends (`repro.engine.backends`).

Covers the one-path backend resolution (argument > config > environment >
default), the deprecation shims for the legacy scattered ``engine=``
kwargs, process-backend byte-identity against the serial reference, the
worker-crash failure mode (clean :class:`EngineError`, no hang), and the
shared-memory hygiene contract: no ``/dev/shm`` entry with the engine's
prefix survives a shutdown, clean or not.
"""

import glob
import os
import warnings

import numpy as np
import pytest

import repro
from repro.core.compressor import compress, decompress
from repro.core.config import CompressorConfig
from repro.core.errors import ConfigError, EngineError
from repro.core.streaming import compress_blocks, decompress_blocks
from repro.engine import CompressionEngine, get_executor, resolve_backend_name
from repro.engine.backends import (
    _DEPRECATED_WARNED,
    ENV_BACKEND,
    SHM_PREFIX,
    ShmArena,
    _hard_exit,
    resolve_execution,
)

HAS_DEV_SHM = os.path.isdir("/dev/shm")


def make_field(seed=0, shape=(48, 64)):
    rng = np.random.default_rng(seed)
    base = rng.normal(0.0, 0.05, shape).astype(np.float32)
    base += np.sin(np.linspace(0.0, 6.0, shape[-1], dtype=np.float32))
    return base


def shm_leftovers():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}-*")


class TestResolution:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend_name() == "thread"

    def test_explicit_beats_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "process")
        assert resolve_backend_name() == "process"
        cfg = CompressorConfig(eb=1e-3, backend="serial")
        assert resolve_backend_name(config=cfg) == "serial"
        assert resolve_backend_name("thread", config=cfg) == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            resolve_backend_name("gpu")
        with pytest.raises(ConfigError):
            CompressorConfig(eb=1e-3, backend="gpu")

    def test_env_var_selects_engine_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "serial")
        with CompressionEngine(jobs=1) as eng:
            assert eng.backend == "serial"

    def test_serial_engine_rejects_parallel_jobs(self):
        with pytest.raises(ConfigError):
            CompressionEngine(jobs=4, backend="serial")

    def test_get_executor_passes_engine_through(self):
        with CompressionEngine(jobs=1, backend="serial") as eng:
            assert get_executor(eng) is eng

    def test_resolve_execution_serial_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_execution() == (None, False)
        assert resolve_execution(jobs=1) == (None, False)

    def test_resolve_execution_config_backend_is_advisory(self):
        # A configured pool backend must not promote a plain serial call
        # into a pool dispatch; it only picks the pool for parallel asks.
        cfg = CompressorConfig(eb=1e-3, backend="process")
        assert resolve_execution(config=cfg) == (None, False)
        eng, own = resolve_execution(jobs=2, config=cfg)
        try:
            assert own and eng.backend == "process" and eng.jobs == 2
        finally:
            eng.shutdown(wait=True)

    def test_resolve_execution_explicit_serial_with_jobs_rejected(self):
        with pytest.raises(ConfigError):
            resolve_execution(backend="serial", jobs=4)

    def test_resolve_execution_reuses_passed_engine(self):
        with CompressionEngine(jobs=1, backend="serial") as eng:
            assert resolve_execution(backend=eng, jobs=4) == (eng, False)


class TestDeprecationShims:
    def test_engine_kwarg_warns_once_per_site(self):
        field = make_field(3, shape=(32, 32))
        cfg = CompressorConfig(eb=1e-3)
        _DEPRECATED_WARNED.clear()
        with CompressionEngine(cfg, jobs=1, backend="serial") as eng:
            with pytest.warns(DeprecationWarning, match="pass backend="):
                blob = compress_blocks(field, cfg, max_block_bytes=2048,
                                       engine=eng)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second use: no warning
                blob2 = compress_blocks(field, cfg, max_block_bytes=2048,
                                        engine=eng)
        assert blob == blob2

    def test_decompress_engine_kwarg_warns(self):
        field = make_field(4, shape=(32, 32))
        cfg = CompressorConfig(eb=1e-3)
        blob = compress_blocks(field, cfg, max_block_bytes=2048)
        _DEPRECATED_WARNED.clear()
        with CompressionEngine(cfg, jobs=1, backend="serial") as eng:
            with pytest.warns(DeprecationWarning, match="pass backend="):
                out = decompress(blob, engine=eng)
        np.testing.assert_array_equal(out, decompress(blob))

    def test_migrated_call_sites_raise_no_warnings(self):
        field = make_field(5, shape=(32, 32))
        cfg = CompressorConfig(eb=1e-3)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            blob = compress_blocks(field, cfg, max_block_bytes=2048, jobs=2,
                                   backend="thread")
            decompress_blocks(blob, jobs=2, backend="thread")


class TestProcessBackend:
    def test_blocks_byte_identical_across_backends(self):
        field = make_field(1, shape=(64, 64))
        cfg = CompressorConfig(eb=1e-3)
        reference = compress_blocks(field, cfg, max_block_bytes=4096)
        serial_out = decompress_blocks(reference)
        for backend in ("thread", "process"):
            blob = compress_blocks(field, cfg, max_block_bytes=4096,
                                   jobs=2, backend=backend)
            assert blob == reference, f"{backend} diverged from serial"
            np.testing.assert_array_equal(
                decompress_blocks(blob, jobs=2, backend=backend), serial_out
            )

    def test_submit_matches_serial_compress(self):
        field = make_field(2, shape=(48, 48))
        cfg = CompressorConfig(eb=1e-3)
        serial = compress(field, cfg)
        with CompressionEngine(cfg, jobs=1, backend="process") as eng:
            remote = eng.submit(field).result()
        assert remote.archive == serial.archive
        assert remote.workflow == serial.workflow
        assert remote.compression_ratio == serial.compression_ratio

    def test_diagnostics_report_worker_pids(self):
        field = make_field(6, shape=(32, 32))
        with CompressionEngine(jobs=1, backend="process") as eng:
            eng.map([field, field])
            snap = eng.diagnostics_snapshot()
        assert snap["backend"] == "process"
        assert snap["jobs_completed"] == 2
        # worker ids are pids measured inside the worker, not our threads
        assert all(w["tid"] != os.getpid() for w in snap["workers"])
        assert snap["worker_cpu_seconds"] > 0.0

    def test_all_nan_block_roundtrips(self):
        field = np.full((32, 32), np.nan, dtype=np.float32)
        cfg = CompressorConfig(eb=1e-3, eb_mode="abs")
        reference = compress_blocks(field, cfg, max_block_bytes=2048)
        blob = compress_blocks(field, cfg, max_block_bytes=2048,
                               jobs=2, backend="process")
        assert blob == reference
        out = decompress_blocks(blob)
        assert np.isnan(out).all() and out.shape == field.shape

    def test_zero_length_field_fails_cleanly(self):
        empty = np.array([], dtype=np.float32)
        cfg = CompressorConfig(eb=1e-3, eb_mode="abs")
        with CompressionEngine(cfg, jobs=1, backend="process") as eng:
            with pytest.raises(ConfigError, match="empty"):
                eng.submit(empty).result()
            # the pool survives a job-level error; later jobs still run
            result = eng.submit(make_field(7, shape=(16, 16))).result()
        assert len(result.archive) > 0

    def test_worker_crash_raises_engine_error_without_hang(self):
        with CompressionEngine(jobs=1, backend="process") as eng:
            future = eng.run(_hard_exit, 3)
            with pytest.raises(EngineError, match="worker process died"):
                future.result(timeout=60)
            with pytest.raises(EngineError):
                eng.run(os.getpid)
        if HAS_DEV_SHM:
            assert shm_leftovers() == []


@pytest.mark.skipif(not HAS_DEV_SHM, reason="no /dev/shm on this platform")
class TestShmHygiene:
    def test_clean_shutdown_unlinks_segments(self):
        field = make_field(8, shape=(48, 48))
        eng = CompressionEngine(jobs=1, backend="process")
        try:
            eng.map([field, field])
            assert shm_leftovers(), "zero-copy path must lease shm segments"
        finally:
            eng.shutdown(wait=True)
        assert shm_leftovers() == []

    def test_exit_on_exception_unlinks_segments(self):
        field = make_field(9, shape=(48, 48))
        with pytest.raises(RuntimeError, match="mid-batch failure"):
            with CompressionEngine(jobs=1, backend="process") as eng:
                eng.submit(field).result()
                raise RuntimeError("mid-batch failure")
        assert shm_leftovers() == []

    def test_arena_lease_release_close(self):
        arena = ShmArena()
        shm = arena.lease(1 << 16)
        name = shm.name
        assert os.path.exists(f"/dev/shm/{name}")
        arena.release(shm)
        assert arena.lease(1 << 12) is shm  # free list recycles by fit
        arena.release(shm)
        arena.close()
        assert not os.path.exists(f"/dev/shm/{name}")
        with pytest.raises(EngineError):
            arena.lease(1 << 12)
        arena.close()  # idempotent


class TestPublicApiThreading:
    def test_top_level_decompress_accepts_backend(self):
        field = make_field(10, shape=(32, 32))
        cfg = CompressorConfig(eb=1e-3)
        blob = compress_blocks(field, cfg, max_block_bytes=2048)
        np.testing.assert_array_equal(
            repro.decompress(blob, jobs=2, backend="thread"),
            repro.decompress(blob),
        )

    def test_compressor_class_carries_backend(self):
        field = make_field(11, shape=(32, 32))
        with repro.Compressor(CompressorConfig(eb=1e-3), jobs=2,
                              backend="thread") as comp:
            assert comp.engine().backend == "thread"
            blob = comp.compress_blocks(field, max_block_bytes=2048)
            reference = compress_blocks(field, comp.config,
                                        max_block_bytes=2048)
        assert blob == reference
