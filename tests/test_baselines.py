"""Tests for the CPU-SZ, original-cuSZ, and ZFP-like baselines."""

import numpy as np
import pytest

from repro.baselines import CpuSZ, OriginalCuSZ, ZfpLike, reference_ratios
from repro.baselines.zfp_like import _haar_forward, _haar_inverse
from repro.core.config import CompressorConfig
from repro.core.dual_quant import quantize_field
from repro.core.errors import ConfigError, DimensionalityError


@pytest.fixture(scope="module")
def small_field():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 4, 24)
    return (np.sin(x)[:, None] * np.cos(x)[None, :] + 0.02 * rng.normal(size=(24, 24))).astype(
        np.float32
    )


class TestCpuSZ:
    def test_error_bound_holds(self, small_field):
        sz = CpuSZ(eb=1e-3)
        quant, recon, eb = sz.quantize(small_field)
        assert np.abs(small_field - recon).max() <= eb * (1 + 1e-9)

    def test_quant_codes_in_range(self, small_field):
        sz = CpuSZ(eb=1e-3, dict_size=64)
        quant, _, _ = sz.quantize(small_field)
        assert quant.min() >= 0 and quant.max() < 64

    def test_statistics_close_to_dual_quant(self, small_field):
        """In-loop reconstruction and dual-quant give nearly identical
        quant-code histograms on well-behaved data (the compression ratio
        equivalence that justifies using the fast path for references)."""
        config = CompressorConfig(eb=1e-3)
        sz_quant, _, _ = CpuSZ(config).quantize(small_field)
        bundle, _ = quantize_field(small_field, config)
        a = np.bincount(sz_quant.reshape(-1).astype(np.int64), minlength=1024)
        b = np.bincount(bundle.quant.reshape(-1).astype(np.int64), minlength=1024)
        # Compare zero-delta mass (dominant bin) within a few percent.
        assert abs(int(a[512]) - int(b[512])) <= 0.05 * small_field.size + 5

    def test_cr_estimate_positive(self, small_field):
        assert CpuSZ(eb=1e-2).compress_ratio_estimate(small_field) > 1.0


class TestOriginalCuSZ:
    def test_branchy_roundtrip_bound(self, small_field):
        out, eb = OriginalCuSZ(eb=1e-3).roundtrip(small_field)
        assert np.abs(small_field - out).max() <= eb * (1 + 1e-9)

    def test_old_scheme_outliers_store_values(self):
        """The old scheme stores prequantized *values*, not deltas."""
        data = np.array([0.0, 100.0, 100.1], dtype=np.float32)
        base = OriginalCuSZ(eb=1e-3, eb_mode="abs", dict_size=16)
        bundle = base.quantize(data)
        assert bundle.outlier_indices.size >= 1
        # The outlier at the jump holds ~100/2eb, not the delta.
        jump = bundle.outlier_values[0]
        assert abs(jump * bundle.eb_twice - 100.0) < 1.0

    def test_matches_new_scheme_numerically(self, small_field):
        """Old and new outlier schemes reconstruct identically."""
        import repro

        config = CompressorConfig(eb=1e-3)
        old_out, eb = OriginalCuSZ(config).roundtrip(small_field)
        res = repro.compress(small_field, config)
        new_out = repro.decompress(res.archive)
        # Both are bound-respecting; their difference is at most 2*eb... but
        # in fact the underlying integer codes agree, so outputs are close.
        assert np.abs(old_out.astype(np.float64) - new_out.astype(np.float64)).max() <= 2 * eb

    def test_placeholder_zero_reserved(self, small_field):
        bundle = OriginalCuSZ(eb=1e-3).quantize(small_field)
        # Quant code 0 appears only at outlier positions.
        zeros = np.flatnonzero(bundle.quant.reshape(-1) == 0)
        np.testing.assert_array_equal(np.sort(zeros), np.sort(bundle.outlier_indices))


class TestReferenceRatios:
    def test_all_positive_and_ordered(self, small_field):
        rr = reference_ratios(np.tile(small_field, (8, 8)), CompressorConfig(eb=1e-2))
        assert rr.qg > 0 and rr.qh > 0 and rr.qhg > 0
        assert rr.qhg >= rr.qh * 0.95

    def test_as_dict(self, small_field):
        rr = reference_ratios(small_field, CompressorConfig(eb=1e-2))
        assert set(rr.as_dict()) == {"qg", "qh", "qhg"}


class TestZfpLike:
    def test_haar_lifting_exact(self):
        rng = np.random.default_rng(1)
        x = rng.integers(-(2**40), 2**40, (32, 4, 4)).astype(np.int64)
        y = _haar_forward(_haar_forward(x.copy(), 1), 2)
        z = _haar_inverse(_haar_inverse(y.copy(), 2), 1)
        np.testing.assert_array_equal(x, z)

    @pytest.mark.parametrize("shape", [(64,), (32, 24), (16, 12, 20)])
    def test_roundtrip_shapes(self, shape):
        rng = np.random.default_rng(2)
        data = rng.normal(size=shape).astype(np.float32)
        codec = ZfpLike(rate_bits=16)
        out = codec.decompress(codec.compress(data))
        assert out.shape == data.shape
        # Relative precision at 16 bits minus 2*d lifting headroom bits.
        step = 2.0 ** (2 * len(shape) - 15)
        assert np.abs(data - out).max() < step * float(np.abs(data).max()) * 2

    def test_higher_rate_less_error(self, small_field):
        errs = []
        for rate in (4, 8, 16):
            codec = ZfpLike(rate)
            out = codec.decompress(codec.compress(small_field))
            errs.append(float(np.abs(small_field - out).max()))
        assert errs[0] > errs[1] > errs[2]

    def test_fixed_rate_deterministic_cr(self, small_field):
        """CR depends only on the rate, never the content -- the limitation
        the paper calls out for cuZFP."""
        rng = np.random.default_rng(3)
        noise = rng.normal(size=small_field.shape).astype(np.float32)
        cr1 = ZfpLike(8).compress(small_field).compression_ratio()
        cr2 = ZfpLike(8).compress(noise).compression_ratio()
        assert cr1 == pytest.approx(cr2, rel=0.01)

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            ZfpLike(0)
        with pytest.raises(ConfigError):
            ZfpLike(40)

    def test_rejects_4d(self):
        with pytest.raises(DimensionalityError):
            ZfpLike(8).compress(np.zeros((2, 2, 2, 2), dtype=np.float32))

    def test_no_error_bound_guarantee(self):
        """A spiky block shows unbounded pointwise error at low rate --
        exactly the error-bounded-vs-fixed-rate contrast."""
        data = np.zeros((16, 16), dtype=np.float32)
        data[3, 3] = 1000.0
        codec = ZfpLike(rate_bits=2)
        out = codec.decompress(codec.compress(data))
        assert np.abs(data - out).max() > 1.0
