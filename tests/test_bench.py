"""Bench harness: record schema, regression gating, profiler, diagnostics."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.diagnose import DiagnoseField, diagnose_report, render_report
from repro.bench.profiler import profile_scenario
from repro.bench.record import (
    RECORD_REQUIRED_KEYS,
    RESULT_REQUIRED_KEYS,
    SCHEMA,
    build_record,
    load_record,
    record_filename,
    validate_record,
    write_record,
)
from repro.bench.regression import PROFILES, compare_records
from repro.bench.runner import run_scenario
from repro.bench.scenarios import BenchCase, Scenario, get_scenario
from repro.cli import main


def tiny_scenario(repeats: int = 1) -> Scenario:
    """One small case -- keeps harness tests fast."""
    return Scenario(
        name="tiny",
        description="unit-test scenario",
        cases=(BenchCase("cesm_ps_tiny", "CESM", "PS", 1e-2),),
        repeats=repeats,
    )


def fixture_record(label: str = "fix") -> dict:
    """Hand-built minimal valid record for detector tests."""
    def result(case: str, tmin: float, stdev: float = 0.0) -> dict:
        return {
            "case": case, "dataset": "CESM", "field": "PS", "eb": 1e-3,
            "workflow": "auto", "repeats": 3,
            "timing": {
                "compress_total": {"mean": tmin * 1.1, "min": tmin,
                                   "max": tmin * 1.2, "stdev": stdev, "n": 3},
            },
            "quality": {"compression_ratio": 20.0, "psnr_db": 66.0,
                        "max_error": 1e-3, "bound_satisfied": True},
            "sizes": {}, "selector": {},
        }

    return build_record(
        label=label, scenario="fixture",
        results=[result("case_a", 0.100, 0.002), result("case_b", 0.050, 0.001)],
        config={"repeats": 3}, metrics={},
    )


class TestRecordSchema:
    def test_run_scenario_produces_required_keys(self):
        record = run_scenario(tiny_scenario(), repeats=1)
        for key in RECORD_REQUIRED_KEYS:
            assert key in record
        assert record["schema"] == SCHEMA
        result = record["results"][0]
        for key in RESULT_REQUIRED_KEYS:
            assert key in result
        assert "compress_total" in result["timing"]
        assert "decompress_total" in result["timing"]
        for summary in result["timing"].values():
            assert summary["n"] == 1
            assert summary["min"] <= summary["mean"] <= summary["max"]
        assert result["quality"]["bound_satisfied"] is True
        assert result["selector"]["decision"] in (
            "huffman", "rle", "rle+vle",
        )
        # environment fingerprint is populated
        assert record["environment"]["python"]
        assert record["environment"]["cpu"]

    def test_record_roundtrips_through_disk(self, tmp_path):
        record = fixture_record("disk")
        path = write_record(record, tmp_path)
        assert path.name == record_filename("disk") == "BENCH_disk.json"
        assert load_record(path) == json.loads(json.dumps(record))

    def test_validation_rejects_missing_keys(self):
        record = fixture_record()
        bad = copy.deepcopy(record)
        del bad["environment"]
        with pytest.raises(ValueError, match="environment"):
            validate_record(bad)
        bad = copy.deepcopy(record)
        del bad["results"][0]["quality"]
        with pytest.raises(ValueError, match="quality"):
            validate_record(bad)
        bad = copy.deepcopy(record)
        del bad["results"][0]["timing"]["compress_total"]["stdev"]
        with pytest.raises(ValueError, match="stdev"):
            validate_record(bad)
        bad = copy.deepcopy(record)
        bad["schema"] = "repro.bench/v0"
        with pytest.raises(ValueError, match="schema"):
            validate_record(bad)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("nope")


class TestRegressionDetector:
    def test_identical_records_pass(self):
        rec = fixture_record()
        report = compare_records(rec, rec)
        assert report.ok and report.exit_code == 0

    def test_2x_stage_time_regression_fails(self):
        old = fixture_record("old")
        new = copy.deepcopy(old)
        for result in new["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max"):
                    summary[k] *= 2.0
        report = compare_records(old, new)
        assert not report.ok
        assert report.exit_code == 1
        assert any(r.status == "regression" for r in report.rows)
        # the generous CI profile tolerates 2x (+100% < +150%) but not 3x
        assert compare_records(old, new, "ci").ok is True
        worse = copy.deepcopy(old)
        for result in worse["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max"):
                    summary[k] *= 3.0
        assert compare_records(old, worse, "ci").ok is False

    def test_noise_widens_tolerance(self):
        old = fixture_record("old")
        new = copy.deepcopy(old)
        # +30% on a noisy stage (cv ~0.2 -> tolerance 3*0.2=60%) is not gated
        noisy = new["results"][0]["timing"]["compress_total"]
        noisy["stdev"] = noisy["mean"] * 0.2
        old["results"][0]["timing"]["compress_total"]["stdev"] = noisy["stdev"]
        for k in ("mean", "min", "max"):
            noisy[k] *= 1.30
        rows = [r for r in compare_records(old, new).rows
                if r.case == "case_a" and r.metric == "compress_total"]
        assert rows[0].status == "ok"

    def test_micro_stage_under_floor_never_gates(self):
        old = fixture_record("old")
        for result in old["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max"):
                    summary[k] *= 1e-3  # well under min_seconds
        new = copy.deepcopy(old)
        for result in new["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max"):
                    summary[k] *= 10.0
        assert compare_records(old, new).ok

    def test_quality_regression_gates(self):
        old = fixture_record("old")
        new = copy.deepcopy(old)
        new["results"][0]["quality"]["compression_ratio"] = 15.0  # -25%
        report = compare_records(old, new)
        assert not report.ok
        assert any(r.metric == "compression_ratio" and r.status == "regression"
                   for r in report.rows)

    def test_missing_case_is_a_regression_new_case_is_not(self):
        old = fixture_record("old")
        new = copy.deepcopy(old)
        dropped = new["results"].pop(0)
        report = compare_records(old, new)
        assert not report.ok
        assert any(r.status == "missing" for r in report.rows)
        # the reverse direction: an extra case is informational only
        report = compare_records(new, old)
        assert report.ok
        assert any(r.status == "new" and r.case == dropped["case"]
                   for r in report.rows)

    def test_render_mentions_verdict(self):
        rec = fixture_record()
        assert "no regressions" in compare_records(rec, rec).render()
        assert set(PROFILES) == {"default", "ci"}

    def test_gated_stage_ignores_min_seconds_floor(self):
        old = fixture_record("old")
        for result in old["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max", "stdev"):
                    summary[k] *= 1e-3  # under the floor: normally demoted
        new = copy.deepcopy(old)
        for result in new["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max"):
                    summary[k] *= 10.0
        assert compare_records(old, new).ok  # ungated: info only
        report = compare_records(old, new, gate_stages=["compress_total"])
        assert not report.ok
        assert any(r.metric == "compress_total" and r.status == "regression"
                   for r in report.rows)

    def test_gated_stage_missing_from_either_record_is_a_regression(self):
        old = fixture_record("old")
        for result in old["results"]:
            timing = result["timing"]
            timing["other_stage"] = copy.deepcopy(timing["compress_total"])
        new = copy.deepcopy(old)
        del new["results"][0]["timing"]["compress_total"]
        report = compare_records(old, new, gate_stages=["compress_total"])
        assert not report.ok
        assert any(r.metric == "compress_total" and r.status == "missing"
                   for r in report.rows)
        # Same stage absent ungated: informational only.
        assert compare_records(old, new).ok
        # A gate naming a stage neither record has must fail, not no-op.
        assert not compare_records(old, new, gate_stages=["no.such.stage"]).ok

    def test_gated_improvement_still_passes(self):
        old = fixture_record("old")
        new = copy.deepcopy(old)
        for result in new["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max"):
                    summary[k] *= 0.2
        report = compare_records(old, new, gate_stages=["compress_total"])
        assert report.ok
        assert any(r.status == "improved" for r in report.rows)


class TestProfiler:
    def test_profile_scenario_folds_and_kernels(self):
        view, kernels = profile_scenario("smoke", repeats=1)
        names = {h.name for h in view.hotspots}
        assert "quantize" in names and "reconstruct" in names
        assert view.total_seconds > 0
        # self time never exceeds inclusive time
        for h in view.hotspots:
            assert h.self_seconds <= h.total_seconds + 1e-9
        folded = view.folded_lines()
        assert any(line.startswith("compress;") for line in folded)
        for line in folded:
            path, us = line.rsplit(" ", 1)
            assert int(us) >= 1
        # the smoke scenario's gpu workload populates kernel counters
        assert "lorenzo_construct" in kernels
        assert "GB/s" in kernels


class TestDiagnose:
    FIELDS = (
        DiagnoseField("CESM", "PS", 1e-3),      # huffman regime
        DiagnoseField("CESM", "FSDSC", 1e-2),   # rle regime
    )

    def test_predicted_bounds_hold_for_both_regimes(self):
        report = diagnose_report(self.FIELDS)
        assert report["regime_counts"]["huffman"] >= 1
        assert report["regime_counts"]["rle"] >= 1
        for entry in report["fields"]:
            assert entry["predicted_bitlen_lower"] <= entry["actual_avg_bitlen"]
            assert entry["actual_avg_bitlen"] <= entry["predicted_bitlen_upper"]
            assert entry["within_bounds"]
        assert report["all_within_bounds"]
        assert report["mispredict_total"] == 0

    def test_render_report_is_human_readable(self):
        report = diagnose_report(self.FIELDS)
        text = render_report(report)
        assert "selector estimator audit" in text
        assert "bounds hold: True" in text


class TestBenchCli:
    def test_bench_run_writes_validated_record(self, tmp_path, capsys):
        rc = main(["bench", "run", "--scenario", "smoke", "--repeats", "1",
                   "--out", str(tmp_path)])
        assert rc == 0
        record = load_record(tmp_path / "BENCH_smoke.json")
        assert {r["case"] for r in record["results"]} == {
            "cesm_ps_1e-3_auto", "cesm_fsdsc_1e-2_auto",
        }
        assert "wrote" in capsys.readouterr().out

    def test_bench_compare_exit_codes(self, tmp_path, capsys):
        old = fixture_record("old")
        new = copy.deepcopy(old)
        new["label"] = "new"
        for result in new["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max"):
                    summary[k] *= 2.0
        old_path = write_record(old, tmp_path)
        new_path = write_record(new, tmp_path)
        assert main(["bench", "compare", str(old_path), str(old_path)]) == 0
        assert main(["bench", "compare", str(old_path), str(new_path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        rc = main(["bench", "compare", str(old_path), str(new_path), "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False and payload["n_regressions"] >= 1

    def test_bench_compare_gate_stage_flag(self, tmp_path, capsys):
        old = fixture_record("old")
        for result in old["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max", "stdev"):
                    summary[k] *= 1e-3  # below the min-seconds floor
        new = copy.deepcopy(old)
        new["label"] = "new"
        for result in new["results"]:
            for summary in result["timing"].values():
                for k in ("mean", "min", "max"):
                    summary[k] *= 10.0
        old_path = write_record(old, tmp_path)
        new_path = write_record(new, tmp_path)
        # Without the gate the sub-floor stages are informational only.
        assert main(["bench", "compare", str(old_path), str(new_path)]) == 0
        capsys.readouterr()
        rc = main(["bench", "compare", str(old_path), str(new_path),
                   "--gate-stage", "compress_total"])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_compare_rejects_invalid_record(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": SCHEMA}))
        good = write_record(fixture_record(), tmp_path)
        assert main(["bench", "compare", str(good), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_cli_writes_folded_stacks(self, tmp_path, capsys):
        fold = tmp_path / "out.folded"
        rc = main(["profile", "--scenario", "smoke", "--top", "5",
                   "--fold", str(fold)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hotspots by self time" in out
        assert "simulated kernels" in out
        lines = fold.read_text().strip().splitlines()
        assert lines and all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_diagnose_cli_json(self, capsys):
        rc = main(["diagnose", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "diagnose"
        assert payload["regime_counts"]["huffman"] >= 1
        assert payload["regime_counts"]["rle"] >= 1
        assert payload["all_within_bounds"] is True


def scaling_record(
    process_walls: dict[int, float],
    thread_walls: dict[int, float] | None = None,
    cpu_count: int | None = 8,
) -> dict:
    """Hand-built scaling-scenario record for summary/gate tests."""
    from repro.bench.scaling import scaling_summary

    def result(backend: str, jobs: int, wall: float) -> dict:
        return {
            "case": f"blocks_{backend}_j{jobs}", "dataset": "CESM",
            "field": "PS", "eb": 1e-3, "workflow": "auto", "repeats": 3,
            "timing": {
                "blocks.compress": {"mean": wall * 1.1, "min": wall,
                                    "max": wall * 1.2, "stdev": 0.0, "n": 3},
            },
            "quality": {"compression_ratio": 20.0, "psnr_db": 66.0,
                        "max_error": 1e-3, "bound_satisfied": True},
            "sizes": {}, "selector": {},
            "engine": {"jobs": jobs, "block_bytes": 1 << 20,
                       "backend": backend},
        }

    results = [result("process", j, w) for j, w in process_walls.items()]
    results += [result("thread", j, w)
                for j, w in (thread_walls or {}).items()]
    record = build_record(
        label="scaling", scenario="scaling",
        results=results,
        config={"repeats": 3, **scaling_summary(results)}, metrics={},
    )
    if cpu_count is None:
        record["environment"].pop("cpu_count", None)
    else:
        record["environment"]["cpu_count"] = cpu_count
    return record


class TestScalingSummaryAndGate:
    def test_summary_builds_per_backend_curves(self):
        record = scaling_record({1: 0.4, 4: 0.2}, {1: 0.4, 4: 0.38})
        summary = record["config"]["scaling"]
        process = summary["process"]
        assert [p["jobs"] for p in process["points"]] == [1, 4]
        assert process["points"][-1]["speedup"] == pytest.approx(2.0)
        assert process["max_speedup"] == pytest.approx(2.0)
        assert summary["thread"]["max_speedup"] < 1.1
        assert record["config"]["fastest_backend"] == "process"

    def test_gate_passes_on_sufficient_speedup(self):
        record = scaling_record({1: 0.4, 4: 0.2})
        from repro.bench.scaling import check_scaling_gate

        status, message = check_scaling_gate(record, min_speedup=1.5)
        assert status == "pass"
        assert "2.00x" in message

    def test_gate_fails_below_threshold(self):
        from repro.bench.scaling import check_scaling_gate

        record = scaling_record({1: 0.4, 4: 0.35})
        status, message = check_scaling_gate(record, min_speedup=1.5)
        assert status == "fail"
        assert "gate 1.50x" in message

    def test_gate_skips_on_small_hosts(self):
        from repro.bench.scaling import check_scaling_gate

        record = scaling_record({1: 0.4, 4: 0.35}, cpu_count=1)
        status, message = check_scaling_gate(record, min_speedup=1.5)
        assert status == "skip"
        assert "1 core" in message

    def test_gate_skips_when_cases_missing(self):
        from repro.bench.scaling import check_scaling_gate

        record = scaling_record({1: 0.4, 2: 0.3})
        status, message = check_scaling_gate(record, min_speedup=1.5)
        assert status == "skip"
        assert "lacks" in message

    def test_gate_cli(self, tmp_path, capsys):
        passing = write_record(scaling_record({1: 0.4, 4: 0.2}), tmp_path)
        assert main(["bench", "scaling-gate", str(passing)]) == 0
        assert "PASS" in capsys.readouterr().out
        failing = scaling_record({1: 0.4, 4: 0.38})
        failing["label"] = "scaling-fail"
        failing_path = write_record(failing, tmp_path)
        assert main(["bench", "scaling-gate", str(failing_path)]) == 1
        skipping = scaling_record({1: 0.4, 4: 0.38}, cpu_count=2)
        skipping["label"] = "scaling-skip"
        skipping_path = write_record(skipping, tmp_path)
        capsys.readouterr()
        assert main(["bench", "scaling-gate", str(skipping_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "skip"

    def test_scaling_scenario_is_registered(self):
        scenario = get_scenario("scaling")
        backends = {c.backend for c in scenario.cases}
        jobs = {c.jobs for c in scenario.cases}
        assert backends == {"thread", "process"}
        assert jobs == {1, 2, 4, 8}
        assert scenario.summary is not None
