"""Tests for the bench CLI and determinism of the core pipeline."""

import numpy as np

import repro
from repro.bench.__main__ import main as bench_main


class TestBenchCli:
    def test_list(self, capsys):
        assert bench_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table7", "fig2a", "fidelity", "ablation_host"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert bench_main(["table99"]) == 1

    def test_run_and_save(self, tmp_path, capsys):
        assert bench_main(["fig3", "--out", str(tmp_path)]) == 0
        saved = (tmp_path / "fig3.txt").read_text()
        assert "partial-sum" in saved

    def test_out_requires_dir(self, capsys):
        assert bench_main(["fig3", "--out"]) == 1


class TestDeterminism:
    def test_identical_archives_for_identical_input(self):
        """Compression is bit-reproducible (no hidden randomness)."""
        rng = np.random.default_rng(0)
        data = rng.normal(size=(120, 120)).astype(np.float32)
        a = repro.compress(data, eb=1e-3).archive
        b = repro.compress(data.copy(), eb=1e-3).archive
        assert a == b

    def test_dataset_fields_reproducible(self):
        from repro.data.datasets import DATASETS, DatasetSpec

        spec = DATASETS["CESM"]
        fresh = DatasetSpec(
            name=spec.name, description=spec.description,
            paper_shape=spec.paper_shape, scaled_shape=spec.scaled_shape,
            paper_size_mb=spec.paper_size_mb, makers=dict(spec.makers),
        )
        a = spec.field("PS").data
        b = fresh.field("PS").data
        np.testing.assert_array_equal(a, b)

    def test_experiment_output_deterministic(self):
        from repro.bench import get_experiment

        out1 = get_experiment("fig3").func()
        out2 = get_experiment("fig3").func()
        assert out1 == out2
