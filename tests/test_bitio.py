"""Tests for vectorized bit packing/unpacking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import EncodingError
from repro.encoding.bitio import (
    bits_to_bytes,
    pack_codes,
    pack_codes_at,
    peek_bits,
    unpack_to_bits,
)


class TestPackCodes:
    def test_single_code(self):
        packed, total = pack_codes(np.array([0b101], dtype=np.uint64), np.array([3]))
        assert total == 3
        assert packed[0] == 0b10100000

    def test_concatenation_order_msb_first(self):
        # 0b1 then 0b01 then 0b0011 -> bits 1 01 0011 -> byte 1010011 0
        packed, total = pack_codes(
            np.array([1, 1, 3], dtype=np.uint64), np.array([1, 2, 4])
        )
        assert total == 7
        assert packed[0] == 0b10100110

    def test_empty(self):
        packed, total = pack_codes(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        assert total == 0 and packed.size == 0

    def test_mismatched_shapes_raise(self):
        with pytest.raises(EncodingError):
            pack_codes(np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=np.int64))

    def test_invalid_length_raises(self):
        with pytest.raises(EncodingError):
            pack_codes(np.array([1], dtype=np.uint64), np.array([0]))
        with pytest.raises(EncodingError):
            pack_codes(np.array([1], dtype=np.uint64), np.array([65]))

    def test_unpack_inverts_pack(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 20, 100)
        codes = np.array(
            [rng.integers(0, 1 << int(l)) for l in lengths], dtype=np.uint64
        )
        packed, total = pack_codes(codes, lengths)
        bits = unpack_to_bits(packed, total)
        # Re-read each code by its offset.
        offsets = np.cumsum(lengths) - lengths
        for code, length, off in zip(codes, lengths, offsets):
            val = 0
            for b in bits[off : off + length]:
                val = (val << 1) | int(b)
            assert val == int(code)

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_total_bits_property(self, data):
        n = data.draw(st.integers(1, 60))
        lengths = np.array(data.draw(st.lists(st.integers(1, 64), min_size=n, max_size=n)))
        codes = np.zeros(n, dtype=np.uint64)
        packed, total = pack_codes(codes, lengths)
        assert total == lengths.sum()
        assert packed.size == bits_to_bytes(total)


class TestPeekBits:
    def test_basic_peek(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        vals = peek_bits(bits, np.array([0, 2, 4]), 3)
        np.testing.assert_array_equal(vals, [0b101, 0b110, 0b001])

    def test_peek_past_end_zero_pads(self):
        bits = np.array([1, 1], dtype=np.uint8)
        vals = peek_bits(bits, np.array([1]), 4)
        assert vals[0] == 0b1000

    def test_invalid_width(self):
        bits = np.zeros(8, dtype=np.uint8)
        with pytest.raises(EncodingError):
            peek_bits(bits, np.array([0]), 0)
        with pytest.raises(EncodingError):
            peek_bits(bits, np.array([0]), 64)

    def test_unpack_bounds_check(self):
        with pytest.raises(EncodingError):
            unpack_to_bits(np.zeros(1, dtype=np.uint8), 9)

    def test_empty_stream_returns_zeros(self):
        # Regression: the clamped gather (`bits[min(idx, n-1)]`) indexed at
        # -1 on an empty stream and raised IndexError; an empty stream is
        # all padding, so every window must read as zero.
        vals = peek_bits(np.zeros(0, dtype=np.uint8), np.array([0, 3, 11]), 5)
        np.testing.assert_array_equal(vals, [0, 0, 0])

    def test_empty_stream_empty_positions(self):
        vals = peek_bits(np.zeros(0, dtype=np.uint8), np.zeros(0, dtype=np.int64), 7)
        assert vals.size == 0


class TestPackCodesAt:
    def test_dense_starts_match_pack_codes(self):
        rng = np.random.default_rng(1)
        lengths = rng.integers(1, 24, 64)
        codes = np.array(
            [rng.integers(0, 1 << int(l)) for l in lengths], dtype=np.uint64
        )
        dense, total = pack_codes(codes, lengths)
        starts = np.cumsum(lengths) - lengths
        scattered = pack_codes_at(codes, lengths, starts, total)
        np.testing.assert_array_equal(scattered, dense)

    def test_gap_bits_stay_zero(self):
        # Two one-bit codes of value 1 scattered a byte apart: only the
        # addressed bits may be set.
        packed = pack_codes_at(
            np.array([1, 1], dtype=np.uint64),
            np.array([1, 1]),
            np.array([0, 8]),
            16,
        )
        np.testing.assert_array_equal(packed, [0b10000000, 0b10000000])

    def test_span_outside_total_bits_raises(self):
        with pytest.raises(EncodingError):
            pack_codes_at(
                np.array([1], dtype=np.uint64), np.array([4]), np.array([5]), 8
            )
        with pytest.raises(EncodingError):
            pack_codes_at(
                np.array([1], dtype=np.uint64), np.array([1]), np.array([-1]), 8
            )

    def test_empty_codes_give_zeroed_buffer(self):
        packed = pack_codes_at(
            np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64), 12,
        )
        assert packed.size == 2 and not packed.any()


class TestPeekBitsPacked:
    def test_matches_bit_array_peek(self):
        from repro.encoding.bitio import peek_bits_packed

        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 400).astype(np.uint8)
        packed = np.packbits(bits)
        positions = rng.integers(0, 360, 50)
        for width in (1, 7, 13, 24, 56):
            a = peek_bits(bits, positions, min(width, 63))
            b = peek_bits_packed(packed, positions, width)
            np.testing.assert_array_equal(a[: b.size], b)

    def test_past_end_zero_padded(self):
        from repro.encoding.bitio import peek_bits_packed

        packed = np.array([0b10000000], dtype=np.uint8)
        v = peek_bits_packed(packed, np.array([0]), 16)
        assert v[0] == 0b1000000000000000

    def test_width_limits(self):
        from repro.encoding.bitio import peek_bits_packed

        with pytest.raises(EncodingError):
            peek_bits_packed(np.zeros(4, np.uint8), np.array([0]), 57)
        with pytest.raises(EncodingError):
            peek_bits_packed(np.zeros(4, np.uint8), np.array([0]), 0)
