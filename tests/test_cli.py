"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import save_binary


@pytest.fixture()
def field_file(tmp_path):
    rng = np.random.default_rng(0)
    x = np.linspace(0, 10, 120)
    data = (np.sin(x)[:, None] * np.cos(x)[None, :] * 4 + rng.normal(0, 0.01, (120, 120))).astype(
        np.float32
    )
    path = tmp_path / "field.f32"
    save_binary(path, data)
    return path, data


class TestCompressDecompress:
    def test_roundtrip(self, field_file, tmp_path, capsys):
        path, data = field_file
        archive = tmp_path / "field.rpsz"
        restored = tmp_path / "restored.f32"
        assert main(["compress", str(path), "-o", str(archive),
                     "--dims", "120", "120", "--eb", "1e-3"]) == 0
        assert archive.exists()
        out = capsys.readouterr().out
        assert "workflow=" in out and "x)" in out
        assert main(["decompress", str(archive), "-o", str(restored)]) == 0
        back = np.fromfile(restored, dtype=np.float32).reshape(120, 120)
        eb = 1e-3 * float(data.max() - data.min())
        assert np.abs(data - back).max() <= eb

    def test_compress_options(self, field_file, tmp_path):
        path, _ = field_file
        archive = tmp_path / "f.rpsz"
        assert main([
            "compress", str(path), "-o", str(archive), "--dims", "120", "120",
            "--eb", "0.01", "--mode", "abs", "--workflow", "rle+vle",
            "--predictor", "regression", "--dict-size", "512",
        ]) == 0

    def test_decompress_jobs_matches_serial(self, field_file, tmp_path, capsys):
        path, _ = field_file
        archive = tmp_path / "field.rpsz"
        serial = tmp_path / "serial.f32"
        threaded = tmp_path / "threaded.f32"
        assert main(["compress", str(path), "-o", str(archive),
                     "--dims", "120", "120", "--eb", "1e-3"]) == 0
        assert main(["decompress", str(archive), "-o", str(serial)]) == 0
        assert main(["decompress", str(archive), "-o", str(threaded),
                     "--jobs", "2"]) == 0
        assert serial.read_bytes() == threaded.read_bytes()

    def test_wrong_dims_fails_cleanly(self, field_file, tmp_path, capsys):
        path, _ = field_file
        rc = main(["compress", str(path), "-o", str(tmp_path / "x.rpsz"),
                   "--dims", "64", "64"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(["compress", str(tmp_path / "missing.f32"),
                   "-o", str(tmp_path / "x.rpsz"), "--dims", "4"])
        assert rc == 2


class TestTelemetryFlags:
    def _compress(self, field_file, tmp_path, *extra):
        path, _ = field_file
        archive = tmp_path / "f.rpsz"
        rc = main(["compress", str(path), "-o", str(archive),
                   "--dims", "120", "120", "--eb", "1e-3", *extra])
        return rc, archive

    def test_trace_writes_chrome_json(self, field_file, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        rc, _ = self._compress(field_file, tmp_path, "--trace", str(trace_path))
        assert rc == 0
        payload = json.loads(trace_path.read_text())
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert {"compress", "quantize", "histogram", "select_workflow",
                "encode", "outliers", "archive"} <= names
        for e in spans:
            assert e["dur"] >= 0
        # byte-moving stages additionally get a throughput counter track
        assert any(e["ph"] == "C" for e in payload["traceEvents"])
        assert str(trace_path) in capsys.readouterr().out

    def test_stats_prints_stage_table(self, field_file, tmp_path, capsys):
        rc, _ = self._compress(field_file, tmp_path, "--stats")
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage timings:" in out
        assert "quantize" in out and "total" in out

    def test_decompress_trace_and_stats(self, field_file, tmp_path, capsys):
        _, archive = self._compress(field_file, tmp_path)
        trace_path = tmp_path / "d.json"
        capsys.readouterr()
        rc = main(["decompress", str(archive), "-o", str(tmp_path / "r.f32"),
                   "--trace", str(trace_path), "--stats"])
        assert rc == 0
        names = {e["name"] for e in json.loads(trace_path.read_text())["traceEvents"]}
        assert {"decompress", "archive_read", "decode", "reconstruct"} <= names
        assert "stage timings:" in capsys.readouterr().out


class TestJsonOutput:
    def _compress_json(self, field_file, tmp_path, capsys):
        path, _ = field_file
        archive = tmp_path / "f.rpsz"
        rc = main(["compress", str(path), "-o", str(archive),
                   "--dims", "120", "120", "--eb", "1e-3", "--json"])
        assert rc == 0
        return archive, json.loads(capsys.readouterr().out)

    def test_compress_json(self, field_file, tmp_path, capsys):
        archive, payload = self._compress_json(field_file, tmp_path, capsys)
        assert payload["command"] == "compress"
        assert payload["compressed_bytes"] == archive.stat().st_size
        assert payload["compression_ratio"] > 1
        assert payload["workflow"] in ("huffman", "rle", "rle+vle")
        assert "section_sizes" in payload and "stage_stats" in payload
        assert payload["diagnostics"]["decision"] == payload["workflow"]

    def test_decompress_json(self, field_file, tmp_path, capsys):
        archive, _ = self._compress_json(field_file, tmp_path, capsys)
        rc = main(["decompress", str(archive), "-o", str(tmp_path / "r.f32"),
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "decompress"
        assert payload["shape"] == [120, 120]
        assert payload["dtype"] == "float32"

    def test_info_json(self, field_file, tmp_path, capsys):
        archive, _ = self._compress_json(field_file, tmp_path, capsys)
        assert main(["info", str(archive), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shape"] == [120, 120]
        assert payload["archive_bytes"] == archive.stat().st_size
        assert sum(payload["section_sizes"].values()) <= payload["archive_bytes"]
        assert payload["format_version"] == 3
        assert payload["indexed_payload"] is True

    def test_verify_json(self, field_file, tmp_path, capsys):
        path, _ = field_file
        archive, _ = self._compress_json(field_file, tmp_path, capsys)
        assert main(["verify", str(path), str(archive),
                     "--dims", "120", "120", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["bound_satisfied"] is True
        assert payload["max_error"] <= payload["eb_abs"]


class TestInfoVerify:
    def test_info(self, field_file, tmp_path, capsys):
        path, _ = field_file
        archive = tmp_path / "f.rpsz"
        main(["compress", str(path), "-o", str(archive), "--dims", "120", "120"])
        capsys.readouterr()
        assert main(["info", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "shape      : (120, 120)" in out
        assert "sections" in out
        assert "ratio" in out
        assert "sync points" in out and "parallel-decodable" in out

    def test_info_v2_archive_reports_no_sync_points(self, field_file, tmp_path,
                                                    capsys):
        from repro.core.archive import pinned_format

        path, _ = field_file
        archive = tmp_path / "f2.rpsz"
        with pinned_format(version=2):
            main(["compress", str(path), "-o", str(archive),
                  "--dims", "120", "120"])
        capsys.readouterr()
        assert main(["info", str(archive), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format_version"] == 2
        assert payload["indexed_payload"] is False

    def test_verify_pass(self, field_file, tmp_path, capsys):
        path, _ = field_file
        archive = tmp_path / "f.rpsz"
        main(["compress", str(path), "-o", str(archive), "--dims", "120", "120",
              "--eb", "1e-3"])
        capsys.readouterr()
        assert main(["verify", str(path), str(archive), "--dims", "120", "120"]) == 0
        assert "satisfied=True" in capsys.readouterr().out

    def test_verify_shape_mismatch(self, field_file, tmp_path, capsys):
        path, data = field_file
        archive = tmp_path / "f.rpsz"
        main(["compress", str(path), "-o", str(archive), "--dims", "120", "120"])
        other = tmp_path / "other.f32"
        save_binary(other, data[:60].copy())
        capsys.readouterr()
        assert main(["verify", str(other), str(archive), "--dims", "60", "120"]) == 1

    def test_info_garbage_archive(self, tmp_path):
        bad = tmp_path / "bad.rpsz"
        bad.write_bytes(b"definitely not an archive")
        assert main(["info", str(bad)]) == 2


class TestDeepVerify:
    def _archive(self, field_file, tmp_path):
        path, _ = field_file
        archive = tmp_path / "f.rpsz"
        assert main(["compress", str(path), "-o", str(archive),
                     "--dims", "120", "120", "--eb", "1e-3"]) == 0
        return path, archive

    def test_deep_verify_archive_only(self, field_file, tmp_path, capsys):
        _, archive = self._archive(field_file, tmp_path)
        capsys.readouterr()
        assert main(["verify", str(archive), "--deep"]) == 0
        out = capsys.readouterr().out
        assert "integrity OK" in out
        assert "format v3" in out

    def test_deep_verify_json(self, field_file, tmp_path, capsys):
        _, archive = self._archive(field_file, tmp_path)
        capsys.readouterr()
        assert main(["verify", str(archive), "--deep", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["deep"] is True
        assert payload["format_version"] == 3
        assert payload["sections_checked"] >= 1

    def test_deep_verify_detects_corruption(self, field_file, tmp_path, capsys):
        _, archive = self._archive(field_file, tmp_path)
        blob = bytearray(archive.read_bytes())
        blob[-1] ^= 0x10
        bad = tmp_path / "bad.rpsz"
        bad.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["verify", str(bad), "--deep"]) == 2
        assert "FAIL" in capsys.readouterr().err

    def test_deep_combined_with_quality_check(self, field_file, tmp_path, capsys):
        path, archive = self._archive(field_file, tmp_path)
        capsys.readouterr()
        assert main(["verify", str(path), str(archive),
                     "--dims", "120", "120", "--deep", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bound_satisfied"] is True
        assert payload["deep_ok"] is True

    def test_verify_without_deep_needs_original(self, field_file, tmp_path, capsys):
        _, archive = self._archive(field_file, tmp_path)
        capsys.readouterr()
        assert main(["verify", str(archive)]) == 2
        assert capsys.readouterr().err


class TestErrorPaths:
    """Failure modes must exit nonzero with an actionable message."""

    def _archive(self, field_file, tmp_path):
        path, _ = field_file
        archive = tmp_path / "field.rpsz"
        assert main(["compress", str(path), "-o", str(archive),
                     "--dims", "120", "120"]) == 0
        return archive

    def test_decompress_truncated_archive(self, field_file, tmp_path, capsys):
        archive = self._archive(field_file, tmp_path)
        blob = archive.read_bytes()
        cut = tmp_path / "cut.rpsz"
        cut.write_bytes(blob[: len(blob) // 3])
        capsys.readouterr()
        rc = main(["decompress", str(cut), "-o", str(tmp_path / "r.f32")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        # v2 archives fail the framing total first; a cut below the header
        # reports truncation directly.  Either way the hint names the cause.
        assert "truncated" in err or "framing mismatch" in err

    def test_decompress_wrong_kind_container(self, tmp_path, capsys):
        from repro.core.archive import ArchiveBuilder

        junk = tmp_path / "junk.rpsz"
        junk.write_bytes(
            ArchiveBuilder().add_bytes("mystery", b"\x00" * 32).to_bytes()
        )
        rc = main(["decompress", str(junk), "-o", str(tmp_path / "r.f32")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no recognizable payload" in err
        assert "mystery" in err  # the report names what *was* found

    def test_decompress_non_archive_bytes(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.rpsz"
        bogus.write_bytes(b"this is not an archive at all, not even close")
        rc = main(["decompress", str(bogus), "-o", str(tmp_path / "r.f32")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_deep_verify_corrupted_payload_names_integrity_error(
        self, field_file, tmp_path, capsys
    ):
        archive = self._archive(field_file, tmp_path)
        blob = bytearray(archive.read_bytes())
        blob[len(blob) // 2] ^= 0x40  # payload byte: framing parses, CRC must not
        bad = tmp_path / "bad.rpsz"
        bad.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["verify", str(bad), "--deep", "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["error"].startswith("IntegrityError:")
        assert "checksum mismatch" in payload["error"]

    def test_deep_verify_corrupted_file_plain_output(
        self, field_file, tmp_path, capsys
    ):
        archive = self._archive(field_file, tmp_path)
        blob = bytearray(archive.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        bad = tmp_path / "bad.rpsz"
        bad.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["verify", str(bad), "--deep"]) == 2
        err = capsys.readouterr().err
        assert "FAIL" in err
        assert "checksum mismatch" in err

    def test_conformance_check_missing_corpus_exits_nonzero(
        self, tmp_path, capsys
    ):
        rc = main(["conformance", "check", "--dir", str(tmp_path / "none")])
        assert rc == 1
        assert "conformance generate" in capsys.readouterr().out
