"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import save_binary


@pytest.fixture()
def field_file(tmp_path):
    rng = np.random.default_rng(0)
    x = np.linspace(0, 10, 120)
    data = (np.sin(x)[:, None] * np.cos(x)[None, :] * 4 + rng.normal(0, 0.01, (120, 120))).astype(
        np.float32
    )
    path = tmp_path / "field.f32"
    save_binary(path, data)
    return path, data


class TestCompressDecompress:
    def test_roundtrip(self, field_file, tmp_path, capsys):
        path, data = field_file
        archive = tmp_path / "field.rpsz"
        restored = tmp_path / "restored.f32"
        assert main(["compress", str(path), "-o", str(archive),
                     "--dims", "120", "120", "--eb", "1e-3"]) == 0
        assert archive.exists()
        out = capsys.readouterr().out
        assert "workflow=" in out and "x)" in out
        assert main(["decompress", str(archive), "-o", str(restored)]) == 0
        back = np.fromfile(restored, dtype=np.float32).reshape(120, 120)
        eb = 1e-3 * float(data.max() - data.min())
        assert np.abs(data - back).max() <= eb

    def test_compress_options(self, field_file, tmp_path):
        path, _ = field_file
        archive = tmp_path / "f.rpsz"
        assert main([
            "compress", str(path), "-o", str(archive), "--dims", "120", "120",
            "--eb", "0.01", "--mode", "abs", "--workflow", "rle+vle",
            "--predictor", "regression", "--dict-size", "512",
        ]) == 0

    def test_wrong_dims_fails_cleanly(self, field_file, tmp_path, capsys):
        path, _ = field_file
        rc = main(["compress", str(path), "-o", str(tmp_path / "x.rpsz"),
                   "--dims", "64", "64"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(["compress", str(tmp_path / "missing.f32"),
                   "-o", str(tmp_path / "x.rpsz"), "--dims", "4"])
        assert rc == 2


class TestInfoVerify:
    def test_info(self, field_file, tmp_path, capsys):
        path, _ = field_file
        archive = tmp_path / "f.rpsz"
        main(["compress", str(path), "-o", str(archive), "--dims", "120", "120"])
        capsys.readouterr()
        assert main(["info", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "shape      : (120, 120)" in out
        assert "sections" in out
        assert "ratio" in out

    def test_verify_pass(self, field_file, tmp_path, capsys):
        path, _ = field_file
        archive = tmp_path / "f.rpsz"
        main(["compress", str(path), "-o", str(archive), "--dims", "120", "120",
              "--eb", "1e-3"])
        capsys.readouterr()
        assert main(["verify", str(path), str(archive), "--dims", "120", "120"]) == 0
        assert "satisfied=True" in capsys.readouterr().out

    def test_verify_shape_mismatch(self, field_file, tmp_path, capsys):
        path, data = field_file
        archive = tmp_path / "f.rpsz"
        main(["compress", str(path), "-o", str(archive), "--dims", "120", "120"])
        other = tmp_path / "other.f32"
        save_binary(other, data[:60].copy())
        capsys.readouterr()
        assert main(["verify", str(other), str(archive), "--dims", "60", "120"]) == 1

    def test_info_garbage_archive(self, tmp_path):
        bad = tmp_path / "bad.rpsz"
        bad.write_bytes(b"definitely not an archive")
        assert main(["info", str(bad)]) == 2
