"""End-to-end tests for the public compression API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro
from repro import telemetry
from repro.core.config import CompressorConfig
from repro.core.errors import ArchiveError, ConfigError


def roundtrip(data, **kw):
    res = repro.compress(data, **kw)
    out = repro.decompress(res.archive)
    return res, out


class TestRoundtrip:
    @pytest.mark.parametrize("eb", [1e-2, 1e-3, 1e-4])
    def test_bound_1d(self, field_1d, eb):
        res, out = roundtrip(field_1d, eb=eb)
        assert out.shape == field_1d.shape
        assert np.abs(field_1d.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs

    @pytest.mark.parametrize("eb", [1e-2, 1e-3, 1e-4])
    def test_bound_2d(self, field_2d, eb):
        res, out = roundtrip(field_2d, eb=eb)
        assert np.abs(field_2d.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs

    @pytest.mark.parametrize("eb", [1e-2, 1e-3])
    def test_bound_3d(self, field_3d, eb):
        res, out = roundtrip(field_3d, eb=eb)
        assert np.abs(field_3d.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs

    def test_4d(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(6, 8, 10, 12)).astype(np.float32)
        res, out = roundtrip(data, eb=1e-3)
        assert out.shape == data.shape
        assert np.abs(data - out).max() <= res.eb_abs

    def test_abs_mode(self, field_2d):
        res, out = roundtrip(field_2d, eb=0.05, eb_mode="abs")
        assert res.eb_abs == 0.05
        assert np.abs(field_2d - out).max() <= 0.05

    def test_float64_dtype_preserved(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100,))
        res, out = roundtrip(data, eb=1e-5)
        assert out.dtype == np.float64
        assert np.abs(data - out).max() <= res.eb_abs

    def test_float32_dtype_preserved(self, field_1d):
        _, out = roundtrip(field_1d, eb=1e-3)
        assert out.dtype == np.float32

    def test_integer_input_rejected(self):
        with pytest.raises(ConfigError):
            repro.compress(np.arange(10), eb=1e-3)

    def test_float16_upcast(self):
        data = np.linspace(0, 1, 64, dtype=np.float16)
        res, out = roundtrip(data, eb=1e-2)
        assert out.dtype == np.float32

    def test_constant_field(self):
        data = np.full((128,), 7.25, dtype=np.float32)
        res, out = roundtrip(data, eb=1e-3)
        assert np.abs(data - out).max() <= res.eb_abs

    def test_tiny_field(self):
        data = np.array([1.0], dtype=np.float32)
        res, out = roundtrip(data, eb=1e-3)
        assert out.shape == (1,)


class TestWorkflows:
    @pytest.mark.parametrize("wf", ["huffman", "rle", "rle+vle"])
    def test_forced_workflow_roundtrip(self, sparse_field_2d, wf):
        res, out = roundtrip(sparse_field_2d, eb=1e-3, workflow=wf)
        assert res.workflow == wf
        assert np.abs(sparse_field_2d - out).max() <= res.eb_abs

    def test_auto_selects_rle_on_sparse(self, sparse_field_2d):
        res = repro.compress(sparse_field_2d, eb=1e-2)
        assert res.workflow == "rle+vle"

    def test_auto_selects_huffman_on_noise(self):
        rng = np.random.default_rng(2)
        noise = rng.normal(size=(256, 256)).astype(np.float32)
        res = repro.compress(noise, eb=1e-4)
        assert res.workflow == "huffman"

    def test_rle_beats_huffman_on_sparse(self, sparse_field_2d):
        r_h = repro.compress(sparse_field_2d, eb=1e-2, workflow="huffman")
        r_r = repro.compress(sparse_field_2d, eb=1e-2, workflow="rle+vle")
        assert r_r.compression_ratio > r_h.compression_ratio

    def test_vle_after_rle_gains(self, sparse_field_2d):
        """The paper's steady 2-3x extra from VLE over run values."""
        r_rle = repro.compress(sparse_field_2d, eb=1e-2, workflow="rle")
        r_both = repro.compress(sparse_field_2d, eb=1e-2, workflow="rle+vle")
        assert r_both.compression_ratio >= r_rle.compression_ratio

    def test_huffman_cr_capped_at_symbol_width(self, sparse_field_2d):
        """Huffman alone cannot exceed 32x for float32 (1 bit/element floor)."""
        res = repro.compress(sparse_field_2d, eb=1e-2, workflow="huffman")
        # +metadata means strictly under 32.
        assert res.compression_ratio < 32.0

    def test_rle_can_exceed_huffman_cap(self, sparse_field_2d):
        res = repro.compress(sparse_field_2d, eb=1e-2, workflow="rle+vle")
        assert res.compression_ratio > 32.0


class TestReporting:
    def test_result_fields(self, field_2d):
        res = repro.compress(field_2d, eb=1e-3)
        assert res.original_bytes == field_2d.nbytes
        assert res.compressed_bytes == len(res.archive)
        assert res.compression_ratio == pytest.approx(
            field_2d.nbytes / len(res.archive)
        )
        assert res.diagnostics is not None
        assert res.workflow == res.diagnostics.decision
        assert sum(res.section_sizes.values()) <= len(res.archive)

    def test_diagnostics_reason_populated(self, field_2d):
        res = repro.compress(field_2d, eb=1e-3)
        assert res.diagnostics.reason

    def test_compressor_class(self, field_1d):
        comp = repro.Compressor(eb=1e-3)
        res = comp.compress(field_1d)
        out = comp.decompress(res.archive)
        assert np.abs(field_1d - out).max() <= res.eb_abs

    def test_compressor_config_override(self):
        comp = repro.Compressor(CompressorConfig(eb=1e-2), workflow="huffman")
        assert comp.config.workflow == "huffman"
        assert comp.config.eb == 1e-2


class TestStageStats:
    """Both directions report a stable set of per-stage timing keys."""

    COMPRESS_KEYS = {
        "quantize_seconds", "histogram_seconds", "select_workflow_seconds",
        "encode_seconds", "outliers_seconds", "archive_seconds", "total_seconds",
    }
    DECOMPRESS_KEYS = {
        "archive_read_seconds", "decode_seconds", "scatter_outliers_seconds",
        "reconstruct_seconds", "total_seconds",
    }

    @pytest.fixture(autouse=True)
    def _telemetry_on(self):
        telemetry.set_enabled(True)
        yield
        telemetry.set_enabled(None)

    @pytest.mark.parametrize("wf", ["huffman", "rle+vle"])
    def test_compress_stage_keys_stable(self, sparse_field_2d, wf):
        res = repro.compress(sparse_field_2d, eb=1e-2, workflow=wf)
        assert self.COMPRESS_KEYS <= set(res.stage_stats)
        assert all(res.stage_stats[k] >= 0 for k in self.COMPRESS_KEYS)

    @pytest.mark.parametrize("wf", ["huffman", "rle+vle"])
    def test_decompress_stage_keys_stable(self, sparse_field_2d, wf):
        blob = repro.compress(sparse_field_2d, eb=1e-2, workflow=wf).archive
        out = repro.decompress_with_stats(blob)
        assert self.DECOMPRESS_KEYS <= set(out.stage_stats)
        assert out.workflow == wf
        assert sum(out.section_sizes.values()) <= len(blob)

    def test_decompress_with_stats_matches_decompress(self, field_2d):
        res = repro.compress(field_2d, eb=1e-3)
        out = repro.decompress_with_stats(res.archive)
        np.testing.assert_array_equal(out.data, repro.decompress(res.archive))
        assert out.eb_abs == pytest.approx(res.eb_abs)
        assert out.predictor == res.predictor

    def test_total_bounds_stage_sum(self, field_2d):
        res = repro.compress(field_2d, eb=1e-3)
        stages = [v for k, v in res.stage_stats.items()
                  if k.endswith("_seconds") and k != "total_seconds"]
        assert sum(stages) <= res.stage_stats["total_seconds"]

    def test_config_telemetry_flag_forces_on(self, field_2d):
        telemetry.set_enabled(False)
        res = repro.compress(field_2d, eb=1e-3, telemetry=True)
        assert "total_seconds" in res.stage_stats

    def test_config_telemetry_flag_forces_off(self, field_2d):
        res = repro.compress(field_2d, eb=1e-3, telemetry=False)
        assert not any(k.endswith("_seconds") for k in res.stage_stats)


class TestArchiveRobustness:
    def test_garbage_blob_rejected(self):
        with pytest.raises(ArchiveError):
            repro.decompress(b"not an archive at all")

    def test_truncated_archive_rejected(self, field_1d):
        res = repro.compress(field_1d, eb=1e-3)
        with pytest.raises(ArchiveError):
            repro.decompress(res.archive[: len(res.archive) // 2])

    def test_archive_is_self_contained(self, field_2d, tmp_path):
        """Write to disk, read back in a fresh call -- no shared state."""
        res = repro.compress(field_2d, eb=1e-3)
        p = tmp_path / "field.rpsz"
        p.write_bytes(res.archive)
        out = repro.decompress(p.read_bytes())
        assert np.abs(field_2d - out).max() <= res.eb_abs


class TestPropertyBased:
    @given(
        data=hnp.arrays(
            np.float32,
            st.tuples(st.integers(2, 40), st.integers(2, 40)),
            elements=st.floats(-1e4, 1e4, width=32),
        ),
        eb=st.sampled_from([1e-2, 1e-3]),
    )
    @settings(max_examples=30, deadline=None)
    def test_bound_always_holds_2d(self, data, eb):
        res = repro.compress(data, eb=eb)
        out = repro.decompress(res.archive)
        assert np.abs(data.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs

    @given(
        data=hnp.arrays(
            np.float32, st.integers(1, 600), elements=st.floats(-100, 100, width=32)
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_bound_always_holds_1d(self, data):
        res = repro.compress(data, eb=1e-3)
        out = repro.decompress(res.archive)
        assert np.abs(data.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs


class TestDictionaryStage:
    """workflow='huffman+lz': the Step-9 dictionary pass, fully decodable."""

    def test_roundtrip_and_gain(self, sparse_field_2d):
        res_h = repro.compress(sparse_field_2d, eb=1e-2, workflow="huffman")
        res_lz = repro.compress(sparse_field_2d, eb=1e-2, workflow="huffman+lz")
        out = repro.decompress(res_lz.archive)
        assert np.abs(sparse_field_2d - out).max() <= res_lz.eb_abs
        assert res_lz.compression_ratio > res_h.compression_ratio
        assert "q.lz" in res_lz.section_sizes

    def test_incompressible_bitstream_falls_back(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=(128, 128)).astype(np.float32)
        res = repro.compress(noise, eb=1e-4, workflow="huffman+lz")
        out = repro.decompress(res.archive)
        assert np.abs(noise - out).max() <= res.eb_abs
        # A near-entropy Huffman stream has no repeats: raw bits kept.
        assert "q.bits" in res.section_sizes
        assert res.stage_stats.get("lz_skipped") == 1.0

    def test_auto_never_selects_lz_stage(self, field_2d):
        """The adaptive rule decides between on-GPU paths only."""
        for eb in (1e-2, 1e-4):
            res = repro.compress(field_2d, eb=eb)
            assert res.workflow in ("huffman", "rle", "rle+vle")

    def test_matches_qhg_reference_regime(self, sparse_field_2d):
        """The decodable LZ stage lands in the same regime as the zlib-based
        qhg accounting (within 3x -- zlib entropy-codes its tokens)."""
        from repro.baselines import reference_ratios
        from repro.core.config import CompressorConfig

        rr = reference_ratios(sparse_field_2d, CompressorConfig(eb=1e-2))
        res = repro.compress(sparse_field_2d, eb=1e-2, workflow="huffman+lz")
        assert res.compression_ratio > rr.qhg / 3
