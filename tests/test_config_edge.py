"""Edge-case tests for configuration validation and bound resolution."""

import math

import numpy as np
import pytest

from repro.core.config import DEFAULT_CHUNKS, CompressorConfig
from repro.core.errors import ConfigError, DimensionalityError


class TestConfigValidation:
    def test_defaults_valid(self):
        config = CompressorConfig()
        assert config.radius == 512
        assert config.rle_bitlen_threshold == 1.09

    @pytest.mark.parametrize("eb", [0.0, -1e-3, float("nan"), float("inf")])
    def test_bad_bounds_rejected(self, eb):
        with pytest.raises(ConfigError):
            CompressorConfig(eb=eb)

    @pytest.mark.parametrize("dict_size", [0, 1, 3, 999])
    def test_bad_dict_sizes_rejected(self, dict_size):
        with pytest.raises(ConfigError):
            CompressorConfig(dict_size=dict_size)

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            CompressorConfig(eb_mode="psnr")

    def test_bad_workflow_rejected(self):
        with pytest.raises(ConfigError):
            CompressorConfig(workflow="zstd")

    def test_bad_chunk_counts(self):
        with pytest.raises(DimensionalityError):
            CompressorConfig(chunks=(2,) * 5)
        with pytest.raises(ConfigError):
            CompressorConfig(chunks=(0, 4))

    def test_bad_huffman_chunk(self):
        with pytest.raises(ConfigError):
            CompressorConfig(huffman_chunk=0)

    def test_with_replaces_and_revalidates(self):
        config = CompressorConfig(eb=1e-3)
        other = config.with_(eb=1e-2, workflow="rle")
        assert other.eb == 1e-2 and other.workflow == "rle"
        assert config.eb == 1e-3  # frozen original untouched
        with pytest.raises(ConfigError):
            config.with_(eb=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            CompressorConfig().eb = 5.0


class TestChunkResolution:
    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_defaults_per_dim(self, ndim):
        assert CompressorConfig().chunks_for(ndim) == DEFAULT_CHUNKS[ndim]

    def test_explicit_chunks_must_match_ndim(self):
        config = CompressorConfig(chunks=(8, 8))
        assert config.chunks_for(2) == (8, 8)
        with pytest.raises(DimensionalityError):
            config.chunks_for(3)

    def test_unsupported_ndim(self):
        with pytest.raises(DimensionalityError):
            CompressorConfig().chunks_for(5)


class TestBoundResolution:
    def test_abs_ignores_range(self):
        config = CompressorConfig(eb=0.5, eb_mode="abs")
        assert config.absolute_bound(1000.0) == 0.5

    def test_rel_scales_with_range(self):
        config = CompressorConfig(eb=1e-2, eb_mode="rel")
        assert config.absolute_bound(50.0) == pytest.approx(0.5)

    def test_constant_field_degenerates_gracefully(self):
        config = CompressorConfig(eb=1e-2, eb_mode="rel")
        assert config.absolute_bound(0.0) == 1e-2
        assert math.isfinite(config.absolute_bound(0.0))

    def test_chunk_sizes_larger_than_data_ok(self):
        import repro

        data = np.ones((4, 4), dtype=np.float32) * 3
        res = repro.compress(data, eb=1e-3, chunks=(64, 64))
        out = repro.decompress(res.archive)
        assert np.abs(data - out).max() <= res.eb_abs
