"""Conformance kit tests: corpus integrity, drift detection, diff reports.

The committed ``tests/vectors`` corpus is the on-disk-format compatibility
contract; these tests assert that (a) today's code still honors it, (b) any
single mutated byte is detected with a report naming the vector and the
archive section, and (c) the generator is deterministic, so regeneration is
reviewable.
"""

import shutil
from pathlib import Path

import pytest

from repro.conformance import check_corpus, generate_corpus, locate_divergence
from repro.conformance.corpus import (
    CORPUS,
    MANIFEST_NAME,
    build_vector,
    default_vector_dir,
    load_manifest,
)
from repro.core.archive import ArchiveReader, pinned_format
from repro.core.errors import ArchiveError
from repro.core.integrity import (
    flip_bit,
    with_mutated_section_length,
    with_swapped_table_entries,
)

VECTOR_DIR = Path(__file__).parent / "vectors"


@pytest.fixture(scope="module")
def manifest():
    return load_manifest(VECTOR_DIR)


class TestCommittedCorpus:
    def test_full_check_passes(self):
        report = check_corpus(VECTOR_DIR)
        assert report.ok, report.render()
        assert report.n_checked == report.n_vectors == len(CORPUS)

    def test_corpus_stays_under_size_budget(self):
        total = sum(p.stat().st_size for p in VECTOR_DIR.iterdir())
        assert total < 200_000, f"corpus grew to {total} bytes (budget 200 KB)"

    def test_matrix_axes_are_all_covered(self, manifest):
        vectors = manifest["vectors"]
        assert {v["version"] for v in vectors} == {1, 2, 3}
        assert {v["container"] for v in vectors} == {"single", "blocks", "pwrel"}
        assert {v["workflow"] for v in vectors} == {
            "huffman", "rle", "rle+vle", "huffman+lz"}
        assert {v["dtype"] for v in vectors} == {"f4", "f8"}
        assert {v["ndim"] for v in vectors} == {1, 2, 3}
        # The single-field container carries the full cross product.
        singles = [v for v in vectors if v["container"] == "single"]
        assert len(singles) == 3 * 4 * 2 * 3

    def test_committed_files_match_manifest_versions(self, manifest):
        for entry in manifest["vectors"]:
            blob = (VECTOR_DIR / entry["file"]).read_bytes()
            assert ArchiveReader(blob).version == entry["version"], entry["name"]

    def test_generation_is_deterministic(self, tmp_path, manifest):
        generate_corpus(tmp_path)
        fresh = load_manifest(tmp_path)
        committed = {e["name"]: e for e in manifest["vectors"]}
        for entry in fresh["vectors"]:
            ref = committed[entry["name"]]
            assert entry["archive_sha256"] == ref["archive_sha256"], entry["name"]
            assert entry["output_sha256"] == ref["output_sha256"], entry["name"]
            regenerated = (tmp_path / entry["file"]).read_bytes()
            assert regenerated == (VECTOR_DIR / entry["file"]).read_bytes()


class TestDriftDetection:
    VICTIM = "v2-single-huff-f4-2d"

    @pytest.fixture()
    def corpus_copy(self, tmp_path):
        work = tmp_path / "vectors"
        shutil.copytree(VECTOR_DIR, work)
        return work

    def _mutated_report(self, corpus_copy, mutate):
        victim_path = corpus_copy / f"{self.VICTIM}.rpsz"
        victim_path.write_bytes(mutate(victim_path.read_bytes()))
        return check_corpus(corpus_copy, names=[self.VICTIM])

    @pytest.mark.parametrize("region", ["header", "table", "payload", "tail"])
    def test_single_bit_flip_fails_naming_vector_and_section(
        self, corpus_copy, region
    ):
        blob = (corpus_copy / f"{self.VICTIM}.rpsz").read_bytes()
        bit = {
            "header": 8,  # inside the magic
            "table": 30 * 8,  # inside the first section-table entry
            "payload": (len(blob) // 2) * 8,
            "tail": len(blob) * 8 - 3,
        }[region]
        report = self._mutated_report(corpus_copy, lambda b: flip_bit(b, bit))
        assert not report.ok
        rendered = report.render()
        assert self.VICTIM in rendered
        assert "header/section-table" in rendered or "section '" in rendered

    def test_truncation_detected(self, corpus_copy):
        report = self._mutated_report(corpus_copy, lambda b: b[: len(b) - 9])
        assert not report.ok
        assert any(f.check == "archive-digest" for f in report.failures)
        assert "truncated" in report.render()

    def test_structural_mutators_detected(self, corpus_copy):
        for mutate in (
            lambda b: with_swapped_table_entries(b, 0, 1),
            lambda b: with_mutated_section_length(b, 0, +3),
        ):
            work = corpus_copy / "case"
            if work.exists():
                shutil.rmtree(work)
            shutil.copytree(corpus_copy, work, ignore=shutil.ignore_patterns("case"))
            victim = work / f"{self.VICTIM}.rpsz"
            victim.write_bytes(mutate(victim.read_bytes()))
            report = check_corpus(work, names=[self.VICTIM])
            assert not report.ok
            assert self.VICTIM in report.render()

    def test_missing_vector_file_reported(self, corpus_copy):
        (corpus_copy / f"{self.VICTIM}.rpsz").unlink()
        report = check_corpus(corpus_copy, names=[self.VICTIM])
        assert not report.ok
        assert any(f.check == "missing-file" for f in report.failures)

    def test_missing_manifest_points_at_generate(self, tmp_path):
        report = check_corpus(tmp_path / "nowhere")
        assert not report.ok
        assert "conformance generate" in report.render()


class TestDiffReport:
    def test_divergence_names_payload_section(self):
        spec = CORPUS[0]
        blob = build_vector(spec)
        reader = ArchiveReader(blob)
        name, (off, length) = next(
            (n, s) for n, s in reader.section_spans().items() if s[1] > 0
        )
        mutated = bytearray(blob)
        mutated[off] ^= 0x55
        where = locate_divergence(blob, bytes(mutated))
        assert f"section {name!r}" in where

    def test_divergence_names_header(self):
        blob = build_vector(CORPUS[0])
        mutated = b"\x00" + blob[1:]
        assert "header/section-table" in locate_divergence(blob, mutated)

    def test_truncation_and_trailing_bytes(self):
        blob = build_vector(CORPUS[0])
        assert "truncated" in locate_divergence(blob, blob[:-4])
        assert "trailing" in locate_divergence(blob, blob + b"xx")
        assert "no byte-level divergence" in locate_divergence(blob, blob)


class TestPinnedFormat:
    def test_pin_drives_builder_defaults(self):
        import numpy as np

        import repro

        field = np.linspace(0, 1, 64, dtype=np.float32)
        with pinned_format(version=1):
            v1 = repro.compress(field, eb=1e-3).archive
        v3 = repro.compress(field, eb=1e-3).archive
        assert ArchiveReader(v1).version == 1
        assert ArchiveReader(v3).version == 3

    def test_pin_validates_inputs(self):
        with pytest.raises(ArchiveError):
            with pinned_format(version=4):
                pass
        with pytest.raises(ArchiveError):
            with pinned_format(checksum_algo=99):
                pass

    def test_pin_propagates_into_engine_workers(self):
        import numpy as np

        from repro.engine import CompressionEngine

        field = np.linspace(0, 1, 64, dtype=np.float32).reshape(8, 8)
        with pinned_format(version=1):
            with CompressionEngine(jobs=2) as eng:
                blob = eng.submit(field, eb=1e-3).result().archive
        assert ArchiveReader(blob).version == 1

    def test_default_vector_dir_resolves(self):
        d = default_vector_dir()
        assert (d / MANIFEST_NAME).exists()
