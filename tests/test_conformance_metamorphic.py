"""Tier-1 metamorphic suite: behavioral invariants across related runs.

Parametrizes the checkers in ``repro.conformance.metamorphic`` over all four
entropy workflows and all three container kinds (single-field, blocked,
point-wise-relative).  Fields are kept small so the whole suite stays well
under the 30-second tier-1 budget.
"""

import numpy as np
import pytest

from repro.conformance.metamorphic import (
    check_backend_identity,
    check_decode_serial_parallel_identity,
    check_decoder_agreement,
    check_eb_monotonicity,
    check_order_invariance,
    check_recompression_idempotence,
    check_rel_scale_covariance,
    check_serial_parallel_identity,
    check_transpose_consistency,
)
from repro.core.config import CompressorConfig

WORKFLOWS = ["huffman", "rle", "rle+vle", "huffman+lz"]
CONTAINERS = ["single", "blocks", "pwrel"]


def _field_2d(rng_seed: int = 11, shape: tuple[int, int] = (16, 16)) -> np.ndarray:
    """Small smooth-plus-noise field, strictly positive (pwrel-safe)."""
    rng = np.random.default_rng(rng_seed)
    y, x = np.mgrid[0 : shape[0], 0 : shape[1]]
    data = 2.0 + np.sin(x / 3.0) * np.cos(y / 4.0) + 0.05 * rng.standard_normal(shape)
    return data.astype(np.float32)


def _config(container: str, workflow: str, eb: float = 1e-3) -> CompressorConfig:
    mode = "pwrel" if container == "pwrel" else "rel"
    return CompressorConfig(eb=eb, eb_mode=mode, workflow=workflow, dict_size=256)


@pytest.mark.parametrize("workflow", WORKFLOWS)
@pytest.mark.parametrize("container", CONTAINERS)
class TestAllWorkflowsAllContainers:
    def test_recompression_idempotence(self, container, workflow):
        check_recompression_idempotence(
            _field_2d(), _config(container, workflow), container
        )

    def test_eb_monotonicity(self, container, workflow):
        check_eb_monotonicity(_field_2d(), _config(container, workflow), container)

    def test_transpose_consistency(self, container, workflow):
        check_transpose_consistency(
            _field_2d(shape=(12, 20)), _config(container, workflow), container
        )

    def test_order_invariance(self, container, workflow):
        check_order_invariance(
            _field_2d(shape=(12, 20)), _config(container, workflow), container
        )


@pytest.mark.parametrize("workflow", WORKFLOWS)
@pytest.mark.parametrize("container", ["single", "blocks"])
def test_rel_scale_covariance(container, workflow):
    check_rel_scale_covariance(_field_2d(), _config(container, workflow), container)


@pytest.mark.parametrize("workflow", WORKFLOWS)
@pytest.mark.parametrize("mode", ["rel", "pwrel"])
def test_serial_parallel_identity(mode, workflow):
    config = CompressorConfig(eb=1e-3, eb_mode=mode, workflow=workflow, dict_size=256)
    check_serial_parallel_identity(_field_2d(), config, jobs=2)


@pytest.mark.parametrize("workflow", WORKFLOWS)
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_decoder_agreement(dtype, workflow):
    config = CompressorConfig(eb=1e-3, eb_mode="rel", workflow=workflow, dict_size=256)
    check_decoder_agreement(_field_2d().astype(dtype), config)


@pytest.mark.parametrize("workflow", WORKFLOWS)
@pytest.mark.parametrize("container", CONTAINERS)
def test_decode_serial_parallel_identity(container, workflow):
    check_decode_serial_parallel_identity(
        # Large enough that the single-field container clears the
        # chunk-group dispatch threshold (>= 8 chunks of 64 symbols).
        _field_2d(shape=(32, 32)),
        _config(container, workflow).with_(huffman_chunk=64),
        container,
        jobs=2,
    )


# One container sweep with every backend (serial/thread/process) is enough
# to pin the cross-backend byte-identity invariant; the per-backend engine
# spawn (a process pool each) is why this is not in the full workflow matrix.
@pytest.mark.parametrize("container", ["single", "blocks"])
def test_backend_identity(container):
    check_backend_identity(
        _field_2d(shape=(24, 24)), _config(container, "huffman"), container,
        jobs=2,
    )


def test_backend_identity_reuses_caller_engines():
    from repro.engine import CompressionEngine

    config = _config("blocks", "huffman")
    with CompressionEngine(config, jobs=2, backend="thread") as eng:
        check_backend_identity(
            _field_2d(), config, "blocks", jobs=2,
            backends=("serial", "thread"), engines={"thread": eng},
        )
        assert not eng.closed  # caller-owned pools must survive the check


def test_idempotence_holds_in_3d():
    rng = np.random.default_rng(3)
    field = (1.0 + rng.random((6, 6, 6))).astype(np.float32)
    check_recompression_idempotence(field, _config("single", "huffman"), "single")


def test_covariance_rejects_non_power_of_two_scale():
    with pytest.raises(AssertionError, match="power-of-two"):
        check_rel_scale_covariance(
            _field_2d(), _config("single", "huffman"), "single", scale=3.0
        )
