"""Tests for the roofline-with-latency cost model."""

import pytest

from repro.gpu.costmodel import CostModel
from repro.gpu.device import A100, V100
from repro.gpu.kernel import KernelProfile, LaunchConfig


def _profile(**kw):
    defaults = dict(
        name="k",
        payload_bytes=1 << 30,
        bytes_read=1 << 30,
        bytes_written=0,
        launch=LaunchConfig(grid_blocks=1 << 16, threads_per_block=256),
    )
    defaults.update(kw)
    return KernelProfile(**defaults)


class TestMemoryTerm:
    def test_streaming_kernel_near_peak(self):
        model = CostModel(V100)
        t = model.time(_profile())
        # 1 GiB at ~900 GB/s with saturation ~1 -> ~1.2 ms.
        assert 0.8e-3 < t.seconds < 2e-3
        assert t.bound == "memory"

    def test_throughput_scales_with_bandwidth(self):
        p = _profile()
        v = CostModel(V100).time(p).gbps
        a = CostModel(A100).time(p).gbps
        assert a / v == pytest.approx(A100.mem_bw / V100.mem_bw, rel=0.05)

    def test_efficiency_scales_linearly(self):
        half = _profile(mem_efficiency=0.5)
        full = _profile(mem_efficiency=1.0)
        model = CostModel(V100)
        assert model.time(half).seconds == pytest.approx(
            2 * (model.time(full).seconds - V100.launch_overhead) + V100.launch_overhead
        )

    def test_small_payload_penalized(self):
        """Saturation ramp: small fields see a fraction of peak bandwidth."""
        model = CostModel(V100)
        small = _profile(payload_bytes=1 << 20, bytes_read=1 << 20)
        big = _profile()
        assert model.time(small).gbps < 0.5 * model.time(big).gbps

    def test_atomic_contention_slows(self):
        model = CostModel(V100)
        clean = model.time(_profile())
        contended = model.time(_profile(atomic_contention=1.0))
        assert contended.seconds > 1.5 * clean.seconds


class TestSerialTerm:
    def test_serial_dominates_when_large(self):
        p = _profile(serial_chain=1, cycles_per_step=50_000)
        t = CostModel(V100).time(p)
        assert t.bound == "serial"

    def test_serial_scales_with_issue_rate(self):
        p = _profile(
            bytes_read=0, payload_bytes=1 << 30,
            launch=LaunchConfig(grid_blocks=1 << 14, threads_per_block=256),
            serial_chain=1024, cycles_per_step=100.0,
        )
        v = CostModel(V100).time(p).seconds
        a = CostModel(A100).time(p).seconds
        assert v / a == pytest.approx(A100.issue_rate / V100.issue_rate, rel=0.15)

    def test_compute_term(self):
        p = _profile(bytes_read=1, flops=int(1e12))
        t = CostModel(V100).time(p)
        assert t.bound == "compute"
        assert t.seconds == pytest.approx(1e12 / V100.fp32_flops + V100.launch_overhead)


class TestReporting:
    def test_tiny_kernels_pay_fixed_costs(self):
        """A 64-byte kernel takes overhead+ramp time, not 64B/900GBps."""
        p = _profile(payload_bytes=64, bytes_read=64)
        t = CostModel(V100).time(p)
        assert t.seconds >= V100.launch_overhead
        assert t.seconds < 100e-6
        assert t.bound in ("memory", "overhead")

    def test_gbps_definition(self):
        model = CostModel(V100)
        t = model.time(_profile())
        assert t.gbps == pytest.approx(t.payload_bytes / t.seconds / 1e9)

    def test_saturation_monotone(self):
        model = CostModel(V100)
        sizes = [1 << 18, 1 << 22, 1 << 26, 1 << 30]
        sats = [model.saturation(s) for s in sizes]
        assert sats == sorted(sats)
        assert 0 < sats[0] < sats[-1] <= 1.0
