"""Tests for synthetic generators, the dataset registry, and binary I/O."""

import numpy as np
import pytest

import repro
from repro.core.errors import ConfigError
from repro.data import DATASETS, get_dataset, load_binary, save_binary
from repro.data import synthetic as syn
from repro.data.datasets import TABLE4_CESM_TARGETS


class TestSynthetic:
    def test_smooth_field_normalized(self):
        f = syn.smooth_field((128, 128), 8.0, np.random.default_rng(0))
        assert f.dtype == np.float32
        assert abs(float(f.std()) - 1.0) < 0.2

    def test_smooth_field_smoother_with_larger_scale(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        fine = syn.smooth_field((256, 256), 2.0, rng1)
        coarse = syn.smooth_field((256, 256), 16.0, rng2)
        assert np.abs(np.diff(coarse, axis=0)).mean() < np.abs(np.diff(fine, axis=0)).mean()

    def test_plume_field_mostly_zero(self):
        f = syn.plume_field((200, 200), 3, 10.0, np.random.default_rng(2))
        assert float((np.abs(f) < 1e-3).mean()) > 0.5
        assert f.max() > 0.1

    def test_plateau_field_piecewise_constant(self):
        f = syn.plateau_field((100, 100), 5, 8, np.random.default_rng(3))
        assert np.unique(f).size <= 9

    def test_shock_field_bounded(self):
        f = syn.shock_field((50, 50, 50), 6.0, 3.0, np.random.default_rng(4))
        assert float(np.abs(f).max()) <= 1.0

    def test_particles_in_box(self):
        p = syn.particle_positions(10_000, np.random.default_rng(5), box=100.0)
        assert p.size == 10_000
        assert -2.0 <= p.min() and p.max() <= 102.0  # jitter may exceed slightly

    def test_wave_snapshot_quiescent_bulk(self):
        f = syn.wave_snapshot(
            (60, 60, 40), 10.0, np.random.default_rng(6),
            shell_width=0.02, cone_halfangle=0.5,
        )
        assert float((np.abs(f) < 1e-3).mean()) > 0.8

    def test_determinism(self):
        a = syn.smooth_field((64, 64), 4.0, np.random.default_rng(7))
        b = syn.smooth_field((64, 64), 4.0, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestDatasets:
    def test_registry_has_seven_paper_datasets(self):
        assert set(DATASETS) == {
            "HACC", "CESM", "Hurricane", "Nyx", "RTM", "Miranda", "QMCPACK",
        }

    def test_dimensionalities_match_paper(self):
        assert DATASETS["HACC"].ndim == 1
        assert DATASETS["CESM"].ndim == 2
        for name in ("Hurricane", "Nyx", "RTM", "Miranda", "QMCPACK"):
            assert DATASETS[name].ndim == 3

    def test_cesm_has_all_table4_fields(self):
        assert set(TABLE4_CESM_TARGETS) <= set(DATASETS["CESM"].field_names)

    def test_cesm_has_papers_77_fields(self):
        assert len(DATASETS["CESM"].field_names) == 77

    def test_hurricane_field_count(self):
        assert len(DATASETS["Hurricane"].field_names) == 13

    def test_field_caching(self):
        ds = get_dataset("Hurricane")
        assert ds.field("Uf48") is ds.field("Uf48")

    def test_field_determinism_across_specs(self):
        import repro.data.datasets as mod

        a = mod.DATASETS["Miranda"].field("density").data
        # fresh spec object -> same seed -> same data
        fresh = mod.DatasetSpec(
            name="Miranda", description="", paper_shape=(256, 384, 384),
            scaled_shape=(64, 96, 96), paper_size_mb=144.0,
            makers=dict(mod.DATASETS["Miranda"].makers),
        )
        np.testing.assert_array_equal(a, fresh.field("density").data)

    def test_unknown_field_raises(self):
        with pytest.raises(ConfigError):
            get_dataset("Nyx").field("phlogiston")

    def test_unknown_dataset_raises(self):
        with pytest.raises(ConfigError):
            get_dataset("EXAWIND")

    def test_prefix_lookup(self):
        assert get_dataset("hur").name == "Hurricane"

    def test_paper_shapes(self):
        assert DATASETS["Nyx"].paper_shape == (512, 512, 512)
        assert DATASETS["CESM"].paper_shape == (1800, 3600)

    def test_example_fields_compressible(self):
        """Every example field round-trips within bound at 1e-3."""
        for ds in DATASETS.values():
            f = ds.example_field()
            res = repro.compress(f.data, eb=1e-3)
            out = repro.decompress(res.archive)
            assert np.abs(f.data.astype(np.float64) - out.astype(np.float64)).max() <= res.eb_abs
            assert res.compression_ratio > 1.5, ds.name

    def test_rle_regime_fields(self):
        """The flagship RLE fields stay in their paper regimes at eb=1e-2."""
        fsdsc = get_dataset("CESM").field("FSDSC").data
        r = repro.compress(fsdsc, eb=1e-2, workflow="rle")
        assert 15 < r.compression_ratio < 45  # paper: 26.1
        nyx = get_dataset("Nyx").field("baryon_density").data
        r = repro.compress(nyx, eb=1e-2, workflow="rle")
        assert 80 < r.compression_ratio < 170  # paper: 122.7


class TestBinaryIO:
    def test_roundtrip_f32(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(20, 30)).astype(np.float32)
        path = tmp_path / "field.f32"
        save_binary(path, data)
        out = load_binary(path, (20, 30))
        np.testing.assert_array_equal(out, data)

    def test_roundtrip_f64(self, tmp_path):
        data = np.arange(24, dtype=np.float64).reshape(4, 6)
        path = tmp_path / "field.f64"
        save_binary(path, data)
        out = load_binary(path, (4, 6))
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, data)

    def test_shape_mismatch_raises(self, tmp_path):
        path = tmp_path / "x.f32"
        save_binary(path, np.zeros(10, dtype=np.float32))
        with pytest.raises(ConfigError):
            load_binary(path, (11,))

    def test_unknown_suffix_needs_dtype(self, tmp_path):
        path = tmp_path / "x.bin"
        save_binary(path, np.zeros(4, dtype=np.float32))
        with pytest.raises(ConfigError):
            load_binary(path, (4,))
        out = load_binary(path, (4,), dtype=np.float32)
        assert out.size == 4
