"""Differential validation: independent implementations must agree.

Each test pits two code paths that compute the same quantity through
different algorithms — the strongest correctness signal available without
an external oracle.
"""

import numpy as np
import pytest

import repro
from repro.baselines import CpuSZ, OriginalCuSZ
from repro.core.config import CompressorConfig
from repro.core.dual_quant import quantize_field
from repro.encoding.deflate import deflate_bytes, inflate_bytes


@pytest.fixture(scope="module")
def small_field():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 5, 20)
    return (np.sin(x)[:, None] * np.cos(x)[None, :] * 3 + 0.05 * rng.normal(size=(20, 20))).astype(
        np.float32
    )


class TestCrossImplementation:
    def test_all_workflows_decode_identical_quant_streams(self, small_field):
        """Huffman, RLE, RLE+VLE and huffman+lz are different losslesss
        encodings of the SAME quant stream: decoded outputs must be
        bit-identical across workflows, not merely within-bound."""
        outs = [
            repro.decompress(repro.compress(small_field, eb=1e-3, workflow=wf).archive)
            for wf in ("huffman", "rle", "rle+vle", "huffman+lz")
        ]
        for other in outs[1:]:
            np.testing.assert_array_equal(outs[0], other)

    def test_old_and_new_outlier_schemes_agree(self, small_field):
        """OriginalCuSZ's branchy reconstruction and the fused partial-sum
        reconstruct the same prequantized integers."""
        config = CompressorConfig(eb=1e-3)
        old_out, eb = OriginalCuSZ(config).roundtrip(small_field)
        new_out = repro.decompress(repro.compress(small_field, config).archive)
        # Identical prequant grid (strictly: equal up to the shared step).
        assert np.abs(old_out.astype(np.float64) - new_out.astype(np.float64)).max() <= 2 * eb

    def test_cpu_sz_and_dual_quant_reconstructions_close(self, small_field):
        """In-loop reconstruction (classic SZ) and dual-quant agree within
        one quantization step everywhere."""
        config = CompressorConfig(eb=1e-3)
        _, cpu_recon, eb = CpuSZ(config).quantize(small_field)
        dq_out = repro.decompress(repro.compress(small_field, config).archive)
        diff = np.abs(cpu_recon - dq_out.astype(np.float64)).max()
        assert diff <= 2 * eb

    def test_parallel_and_heap_codebooks_on_real_histograms(self):
        """Both codebook constructions are optimal on every dataset
        histogram, not just synthetic frequency vectors."""
        from repro.data import get_dataset
        from repro.encoding.histogram import histogram
        from repro.encoding.huffman import build_codebook
        from repro.encoding.parallel_huffman import build_codebook_parallel

        config = CompressorConfig(eb=1e-3)
        for ds_name in ("CESM", "Nyx"):
            f = get_dataset(ds_name).example_field()
            bundle, _ = quantize_field(f.data, config)
            freqs = histogram(bundle.quant, config.dict_size)
            a = build_codebook(freqs).average_bit_length(freqs)
            b = build_codebook_parallel(freqs).average_bit_length(freqs)
            assert a == pytest.approx(b, abs=1e-12)

    def test_lockstep_and_sequential_decoders_on_dataset_stream(self):
        from repro.data import get_dataset
        from repro.encoding.histogram import histogram
        from repro.encoding.huffman import build_codebook
        from repro.encoding.huffman_codec import decode, decode_sequential, encode

        f = get_dataset("Hurricane").field("Wf48")
        bundle, _ = quantize_field(f.data[:10], CompressorConfig(eb=1e-3))
        syms = bundle.quant.reshape(-1)
        book = build_codebook(histogram(syms, 1024))
        enc = encode(syms, book, 512)
        np.testing.assert_array_equal(decode(enc, book), decode_sequential(enc, book))

    def test_our_lz_and_zlib_invert_each_other_semantically(self):
        """Different dictionary coders, same identity contract."""
        import zlib

        from repro.encoding.lz77 import lz_compress, lz_decompress

        rng = np.random.default_rng(1)
        payload = np.repeat(rng.integers(0, 30, 500), rng.integers(1, 40, 500)).astype(
            np.uint8
        ).tobytes()
        assert lz_decompress(lz_compress(payload)) == payload
        assert zlib.decompress(zlib.compress(payload)) == payload

    def test_deflate_wrapper_roundtrip(self):
        raw = b"scientific data " * 1000
        assert inflate_bytes(deflate_bytes(raw)) == raw
        assert len(deflate_bytes(raw)) < len(raw) / 10


class TestGlobalVsChunkedLorenzo:
    def test_chunked_equals_global_when_chunk_covers(self):
        from repro.core.lorenzo import lorenzo_construct

        rng = np.random.default_rng(2)
        x = rng.integers(-100, 100, (12, 14)).astype(np.int64)
        chunked = lorenzo_construct(x, (12, 14))
        global_ = np.diff(np.diff(x, axis=1, prepend=0), axis=0, prepend=0)
        np.testing.assert_array_equal(chunked, global_)

    def test_chunk_boundaries_localize_damage(self):
        """Corrupting one chunk's quant codes cannot perturb other chunks --
        the independence property coarse-grained decompression relies on."""
        rng = np.random.default_rng(3)
        data = rng.normal(size=(64, 64)).astype(np.float32)
        config = CompressorConfig(eb=1e-3, workflow="huffman")
        bundle, _ = quantize_field(data, config)
        from repro.core.dual_quant import reconstruct_field

        clean = reconstruct_field(bundle)
        bundle.quant = bundle.quant.copy()
        bundle.quant[0:16, 0:16] = 512  # zero out one chunk's deltas
        dirty = reconstruct_field(bundle)
        np.testing.assert_array_equal(clean[16:, :], dirty[16:, :])
        np.testing.assert_array_equal(clean[:16, 16:], dirty[:16, 16:])
