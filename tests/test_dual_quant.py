"""Tests for dual-quantization and the cuSZ+ modified outlier scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CompressorConfig
from repro.core.dual_quant import (
    dequantize,
    fuse_quant_and_outliers,
    postquantize,
    prequantize,
    quantize_field,
    reconstruct_field,
)
from repro.core.errors import ConfigError


class TestPrequant:
    def test_error_bounded(self):
        rng = np.random.default_rng(0)
        d = rng.normal(0, 10, 1000)
        eb = 0.01
        codes = prequantize(d, eb)
        np.testing.assert_array_less(np.abs(d - codes * 2 * eb), eb + 1e-12)

    def test_integer_output(self):
        codes = prequantize(np.array([0.1, 0.9, -0.5]), 0.25)
        assert codes.dtype == np.int64

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigError):
            prequantize(np.ones(3), 0.0)

    def test_rejects_overflowing_bound(self):
        with pytest.raises(ConfigError):
            prequantize(np.array([1e30]), 1e-30)

    def test_dequantize_inverts_scaling(self):
        codes = np.array([0, 1, -7, 1000], dtype=np.int64)
        out = dequantize(codes, 0.5, dtype=np.float64)
        np.testing.assert_allclose(out, codes * 1.0)

    @given(
        eb=st.floats(1e-6, 10.0),
        vals=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    @settings(max_examples=80, deadline=None)
    def test_bound_property(self, eb, vals):
        d = np.array(vals)
        codes = prequantize(d, eb)
        assert np.all(np.abs(d - codes * 2 * eb) <= eb * (1 + 1e-9))


class TestPostquant:
    def test_in_range_deltas_become_quant_codes(self):
        dq = np.array([0, 1, 2, 3], dtype=np.int64)
        quant, oidx, oval = postquantize(dq, (4,), dict_size=16)
        assert oidx.size == 0
        # delta = [0,1,1,1] -> quant = delta + radius(8)
        np.testing.assert_array_equal(quant, [8, 9, 9, 9])

    def test_out_of_range_delta_becomes_outlier(self):
        dq = np.array([0, 1000, 1001], dtype=np.int64)
        quant, oidx, oval = postquantize(dq, (3,), dict_size=16)
        # jump of +1000 exceeds radius 8 -> outlier at index 1 with delta 1000
        np.testing.assert_array_equal(oidx, [1])
        np.testing.assert_array_equal(oval, [1000])
        assert quant[1] == 8  # neutral placeholder = radius

    def test_quant_dtype_uint16_for_default_dict(self):
        quant, _, _ = postquantize(np.zeros(4, dtype=np.int64), (4,), 1024)
        assert quant.dtype == np.uint16

    def test_quant_dtype_uint32_for_large_dict(self):
        quant, _, _ = postquantize(np.zeros(4, dtype=np.int64), (4,), 1 << 17)
        assert quant.dtype == np.uint32

    def test_capture_range_is_half_open(self):
        """delta in [-radius, radius) is captured; radius itself is not."""
        radius = 8
        dq = np.array([0, radius], dtype=np.int64)  # delta[1] = radius
        quant, oidx, oval = postquantize(dq, (2,), dict_size=2 * radius)
        np.testing.assert_array_equal(oidx, [1])
        dq2 = np.array([0, -radius], dtype=np.int64)  # delta[1] = -radius
        _, oidx2, _ = postquantize(dq2, (2,), dict_size=2 * radius)
        assert oidx2.size == 0

    def test_fusion_restores_deltas_exactly(self):
        rng = np.random.default_rng(1)
        dq = rng.integers(-10000, 10000, (50,)).astype(np.int64)
        quant, oidx, oval = postquantize(dq, (8,), dict_size=64)
        from repro.core.lorenzo import lorenzo_construct

        fused = fuse_quant_and_outliers(quant, oidx, oval, 32)
        np.testing.assert_array_equal(fused, lorenzo_construct(dq, (8,)))


class TestFieldRoundtrip:
    @pytest.mark.parametrize("shape", [(500,), (40, 30), (12, 10, 8)])
    def test_quantize_reconstruct_within_bound(self, shape):
        rng = np.random.default_rng(5)
        data = rng.normal(0, 3, shape).astype(np.float32)
        config = CompressorConfig(eb=1e-3)
        bundle, eb_abs = quantize_field(data, config)
        restored = reconstruct_field(bundle, dtype=np.float32)
        assert restored.shape == data.shape
        assert np.abs(data.astype(np.float64) - restored.astype(np.float64)).max() <= eb_abs

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            quantize_field(np.zeros((0,), dtype=np.float32), CompressorConfig())

    def test_rejects_nan(self):
        bad = np.array([1.0, np.nan], dtype=np.float32)
        with pytest.raises(ConfigError):
            quantize_field(bad, CompressorConfig())

    def test_rejects_inf(self):
        bad = np.array([1.0, np.inf], dtype=np.float32)
        with pytest.raises(ConfigError):
            quantize_field(bad, CompressorConfig())

    def test_constant_field(self):
        data = np.full((64,), 2.5, dtype=np.float32)
        bundle, eb_abs = quantize_field(data, CompressorConfig(eb=1e-3))
        restored = reconstruct_field(bundle)
        assert np.abs(data - restored).max() <= eb_abs

    def test_outlier_fraction_small_on_smooth_data(self, field_2d):
        bundle, _ = quantize_field(field_2d, CompressorConfig(eb=1e-3))
        assert bundle.outlier_fraction < 0.01

    def test_rough_data_generates_outliers(self):
        rng = np.random.default_rng(2)
        # Huge jumps relative to the bound force out-of-range deltas.
        data = (rng.integers(0, 2, 2048) * 1000.0).astype(np.float32)
        config = CompressorConfig(eb=1e-5, eb_mode="rel", dict_size=16)
        bundle, _ = quantize_field(data, config)
        assert bundle.n_outliers > 0
        restored = reconstruct_field(bundle)
        eb_abs = config.absolute_bound(1000.0)
        assert np.abs(data - restored).max() <= eb_abs
